//! # prefender — a reproduction of the PREFENDER secure prefetcher
//!
//! This crate is the facade over a workspace reproducing
//! *"PREFENDER: A Prefetching Defender against Cache Side Channel Attacks
//! as A Pretender"* (Li, Huang, Feng, Wang — DATE 2022; extended version
//! arXiv:2307.06756): a prefetcher that defeats access-based cache timing
//! side-channel attacks *by prefetching the attacker's eviction set*, so
//! the defense doubles as a performance feature.
//!
//! ## The three units (re-exported from [`core`])
//!
//! * [`ScaleTracker`] — learns each register's address *scale* from ALU
//!   dataflow (the paper's Table III) and prefetches the neighbouring
//!   eviction cachelines of every secret-dependent load.
//! * [`AccessTracker`] — per-PC access buffers estimate the attacker's
//!   probe stride (`DiffMin`) and prefetch probes before they are timed.
//! * [`RecordProtector`] — a scale buffer links the two, protecting the
//!   attacker-associated buffers from noisy-instruction thrash and
//!   guiding prefetches past noisy-access corruption.
//!
//! ## Quick start
//!
//! ```
//! use prefender::{AttackKind, AttackSpec, DefenseConfig, run_attack};
//!
//! # fn main() -> Result<(), prefender::AttackError> {
//! // An undefended Spectre-style Flush+Reload leaks the secret...
//! let leak = run_attack(&AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None))?;
//! assert!(leak.leaked);
//!
//! // ...and PREFENDER defeats it.
//! let safe = run_attack(&AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full))?;
//! assert!(!safe.leaked);
//! # Ok(())
//! # }
//! ```
//!
//! The workspace layers, bottom-up: [`sim`] (cache hierarchy), [`isa`]
//! (instruction set), [`cpu`] (timing interpreter), [`prefetch`]
//! (prefetcher trait + Tagged/Stride baselines), [`core`] (PREFENDER
//! itself), [`attacks`] (attack generators/analysis), [`workloads`]
//! (synthetic SPEC-like kernels), [`stats`] (reporting helpers),
//! [`leakage`] (information-theoretic channel measurement) and
//! [`sweep`] (the parallel scenario-sweep engine). The `repro` binary in
//! `prefender-bench` regenerates every table and figure of the paper;
//! see EXPERIMENTS.md.
//!
//! ## The leakage lab
//!
//! Beyond the paper's boolean leak verdicts, the [`leakage`] crate
//! measures each scenario as a *channel*: sweep every secret value × N
//! trials, decode the attacker's observations, and report mutual
//! information, Blahut–Arimoto capacity, max-likelihood accuracy and
//! guessing entropy. An undefended Flush+Reload carries the full
//! `log2(secrets)` bits; the full PREFENDER drives it to ~0.
//!
//! ```
//! use prefender::{AttackKind, AttackSpec, DefenseConfig};
//! use prefender::leakage::LeakageCampaign;
//!
//! let base = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None);
//! let open = LeakageCampaign::new(base, 4, 1).run(7).unwrap();
//! assert!((open.mi_bits - 2.0).abs() < 0.1, "4 secrets, fully leaked");
//! ```
//!
//! ## Sweep engine
//!
//! Evaluating at scale means running thousands of
//! (attack, defense, prefetcher, hierarchy, workload, seed) combinations
//! — the [`sweep`] crate turns that grid into a declarative object,
//! shards it across a worker-thread pool (each worker owns its own
//! [`Machine`] and memory system) and streams per-scenario results into
//! `sweep.json` / `sweep.csv` artifacts. Runs are **bit-identical at any
//! thread count**: every scenario's probe seed derives from the campaign
//! seed plus the scenario's index in the stably-ordered work-list.
//!
//! ```
//! use prefender::sweep::{run_sweep, SweepGrid, SweepOptions};
//!
//! let grid = SweepGrid::security_quick();
//! let a = run_sweep(&grid, &SweepOptions { threads: 1, campaign_seed: 1 });
//! let b = run_sweep(&grid, &SweepOptions { threads: 4, campaign_seed: 1 });
//! assert_eq!(a.to_json(), b.to_json());
//! ```
//!
//! The same engine is available on the command line:
//!
//! ```sh
//! cargo run --release --bin sweep -- --threads 8 --seed 0xC0FFEE --out out/
//! ```

/// The cache hierarchy simulator (`prefender-sim`).
pub use prefender_sim as sim;

/// The RISC-like ISA (`prefender-isa`).
pub use prefender_isa as isa;

/// The timing interpreter and machine model (`prefender-cpu`).
pub use prefender_cpu as cpu;

/// The prefetcher interface and baselines (`prefender-prefetch`).
pub use prefender_prefetch as prefetch;

/// PREFENDER itself (`prefender-core`).
pub use prefender_core as core;

/// Attack generators and analysis (`prefender-attacks`).
pub use prefender_attacks as attacks;

/// Synthetic SPEC-like workloads (`prefender-workloads`).
pub use prefender_workloads as workloads;

/// Statistics and table rendering (`prefender-stats`).
pub use prefender_stats as stats;

/// Information-theoretic side-channel quantification (`prefender-leakage`).
pub use prefender_leakage as leakage;

/// Zero-cost-when-off counters, spans and telemetry (`prefender-obs`).
pub use prefender_obs as obs;

/// The parallel scenario-sweep engine (`prefender-sweep`).
pub use prefender_sweep as sweep;

/// Static secret-dependence taint analysis (`prefender-taint`).
pub use prefender_taint as taint;

// The most common types, flattened for convenience.
pub use prefender_attacks::{
    run_attack, run_attack_with_timeline, AttackError, AttackKind, AttackLayout, AttackOutcome,
    AttackSpec, DefenseConfig, NoiseSpec,
};
pub use prefender_core::{
    AccessTracker, AtConfig, Prefender, PrefenderBuilder, PrefenderConfig, PrefenderStats,
    Prefetcher, RecordProtector, RpConfig, ScaleTracker, StConfig,
};
pub use prefender_cpu::{CpuConfig, Machine, RunSummary};
pub use prefender_isa::{Instr, Program, ProgramBuilder, Reg};
pub use prefender_prefetch::{NullPrefetcher, StridePrefetcher, TaggedPrefetcher};
pub use prefender_sim::{Addr, Cycle, HierarchyConfig, MemorySystem};
pub use prefender_workloads::{spec2006, spec2017, Workload};
