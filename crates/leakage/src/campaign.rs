//! Secret-sweep campaigns: run every secret × trial, estimate the channel.

use prefender_attacks::{run_attack_full, AttackError, AttackSpec, RunMetrics};
use prefender_stats::Histogram;

use crate::channel::Channel;
use crate::observe::Decoder;

/// A secret-sweep campaign over one (attack, defense, prefetcher,
/// hierarchy, noise) point: every secret in `secrets` is injected into
/// the victim and attacked `trials` times with per-trial derived seeds,
/// and the resulting (secret, observation) pairs estimate the channel.
#[derive(Debug, Clone)]
pub struct LeakageCampaign {
    /// The scenario under test. Its `seed` is ignored — every trial runs
    /// with a seed derived from the campaign seed — and its layout secret
    /// is overridden per trial via [`AttackSpec::with_secret`].
    pub base: AttackSpec,
    /// The secret values swept (victim array indices, all inside the
    /// probe window).
    pub secrets: Vec<usize>,
    /// Trials per secret (each with its own derived probe seed).
    pub trials: u32,
    /// How the attacker decodes an observation from the latency profile.
    pub decoder: Decoder,
}

/// Evenly spaced secret values across `spec`'s probe window.
///
/// # Panics
///
/// Panics if `n` is zero or exceeds the window width (no distinct
/// placement exists).
pub fn evenly_spaced_secrets(spec: &AttackSpec, n: usize) -> Vec<usize> {
    let l = &spec.layout;
    assert!(n >= 1 && n <= l.n_indices, "need 1..={} secrets, got {n}", l.n_indices);
    (0..n).map(|k| l.first_index + k * l.n_indices / n).collect()
}

impl LeakageCampaign {
    /// A campaign over `n_secrets` evenly spaced secrets at `trials`
    /// repetitions, with the paper-rule decoder.
    pub fn new(base: AttackSpec, n_secrets: usize, trials: u32) -> Self {
        let secrets = evenly_spaced_secrets(&base, n_secrets);
        LeakageCampaign { base, secrets, trials, decoder: Decoder::PaperRule }
    }

    /// Total simulations the campaign runs.
    pub fn sims(&self) -> u64 {
        self.secrets.len() as u64 * u64::from(self.trials.max(1))
    }

    /// The per-trial probe seed: a SplitMix64 mix of the campaign seed,
    /// the secret slot and the trial slot. Depends only on campaign
    /// shape, never on execution order.
    pub fn trial_seed(&self, campaign_seed: u64, secret_slot: usize, trial: u32) -> u64 {
        let mut z = campaign_seed
            ^ (secret_slot as u64).wrapping_mul(0xA076_1D64_78BD_642F)
            ^ u64::from(trial).wrapping_mul(0xE703_7ED1_A0B4_28DB);
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Runs the full sweep and estimates the channel.
    ///
    /// Trials execute in (secret, trial) order and all metric reductions
    /// are fixed-order, so the result — including every floating-point
    /// field — is identical wherever the campaign runs.
    ///
    /// # Errors
    ///
    /// Returns the first [`AttackError`] any trial hits (invalid
    /// hierarchy override or an instruction-cap truncation).
    pub fn run(&self, campaign_seed: u64) -> Result<LeakageResult, AttackError> {
        let mut channel = Channel::new(self.secrets.len());
        let mut totals = RunMetrics::default();
        let mut hist = Histogram::new();
        for (slot, &secret) in self.secrets.iter().enumerate() {
            for trial in 0..self.trials.max(1) {
                let spec = self.base.clone().with_secret(secret).with_seed(self.trial_seed(
                    campaign_seed,
                    slot,
                    trial,
                ));
                let (outcome, metrics) = run_attack_full(&spec)?;
                channel.record(slot, self.decoder.observe(&outcome));
                totals.cycles += metrics.cycles;
                totals.instructions += metrics.instructions;
                totals.l1d += metrics.l1d;
                totals.prefetch_issued += metrics.prefetch_issued;
                totals.prefender += metrics.prefender;
                for s in &outcome.samples {
                    hist.record(s.latency);
                }
            }
        }
        Ok(LeakageResult::from_channel(channel, totals, hist))
    }
}

/// The estimated channel of one campaign plus its headline metrics.
#[derive(Debug, Clone)]
pub struct LeakageResult {
    /// The estimated (secret × observation) channel.
    pub channel: Channel,
    /// Empirical mutual information `I(secret; observation)`, bits.
    pub mi_bits: f64,
    /// Blahut–Arimoto channel capacity, bits.
    pub capacity_bits: f64,
    /// Max-likelihood attacker accuracy over the recorded trials.
    pub ml_accuracy: f64,
    /// Expected posterior rank of the true secret (1 = always first).
    pub guessing_entropy: f64,
    /// Entropy of the secret marginal (log2 |secrets| under equal trials).
    pub secret_entropy_bits: f64,
    /// Simulations executed (secrets × trials).
    pub sims: u64,
    /// Machine metrics summed over every simulation (cycles,
    /// instructions, L1D stats, prefetch counts, per-unit breakdown).
    pub metrics: RunMetrics,
    /// Probe-latency histogram aggregated over every simulation.
    pub latency_hist: Histogram,
}

impl LeakageResult {
    fn from_channel(channel: Channel, metrics: RunMetrics, latency_hist: Histogram) -> Self {
        LeakageResult {
            mi_bits: channel.mutual_information_bits(),
            capacity_bits: channel.capacity_bits(),
            ml_accuracy: channel.ml_accuracy(),
            guessing_entropy: channel.guessing_entropy(),
            secret_entropy_bits: channel.input_entropy_bits(),
            sims: channel.total_trials(),
            metrics,
            latency_hist,
            channel,
        }
    }

    /// Leakage as a fraction of the secret's entropy (`0` = sealed,
    /// `1` = the channel carries the whole secret).
    pub fn leakage_fraction(&self) -> f64 {
        if self.secret_entropy_bits == 0.0 {
            0.0
        } else {
            self.mi_bits / self.secret_entropy_bits
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_attacks::{AttackKind, DefenseConfig};

    #[test]
    fn evenly_spaced_secrets_are_distinct_and_in_window() {
        let spec = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None);
        for n in [1, 2, 8, 61] {
            let s = evenly_spaced_secrets(&spec, n);
            assert_eq!(s.len(), n);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), n, "secrets must be distinct at n={n}");
            assert!(s.iter().all(|&x| spec.layout.indices().any(|i| i == x)));
        }
    }

    #[test]
    #[should_panic(expected = "secrets")]
    fn too_many_secrets_panics() {
        let spec = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None);
        evenly_spaced_secrets(&spec, 62);
    }

    #[test]
    fn trial_seeds_differ_per_axis() {
        let c = LeakageCampaign::new(
            AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None),
            4,
            2,
        );
        assert_eq!(c.sims(), 8);
        assert_ne!(c.trial_seed(1, 0, 0), c.trial_seed(2, 0, 0));
        assert_ne!(c.trial_seed(1, 0, 0), c.trial_seed(1, 1, 0));
        assert_ne!(c.trial_seed(1, 0, 0), c.trial_seed(1, 0, 1));
        assert_eq!(c.trial_seed(1, 3, 1), c.trial_seed(1, 3, 1));
    }

    #[test]
    fn undefended_flush_reload_leaks_full_entropy() {
        let c = LeakageCampaign::new(
            AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None),
            4,
            2,
        );
        let r = c.run(0xC0FFEE).unwrap();
        assert_eq!(r.sims, 8);
        assert!((r.mi_bits - 2.0).abs() < 0.1, "expected ~2 bits, got {}", r.mi_bits);
        assert!((r.ml_accuracy - 1.0).abs() < 1e-9);
        assert!(r.leakage_fraction() > 0.95);
        assert!(r.metrics.cycles > 0 && r.metrics.instructions > 0);
        assert!(!r.latency_hist.is_empty());
    }

    #[test]
    fn full_prefender_seals_the_channel() {
        let c = LeakageCampaign::new(
            AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full),
            4,
            2,
        );
        let r = c.run(0xC0FFEE).unwrap();
        assert!(r.mi_bits <= 0.2, "expected ≤0.2 bits, got {}", r.mi_bits);
        assert!(r.ml_accuracy < 0.6, "ML accuracy {} should be near chance", r.ml_accuracy);
    }
}
