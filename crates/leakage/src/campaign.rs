//! Secret-sweep campaigns: run every secret × trial, estimate the channel.

use prefender_attacks::{AttackError, AttackSpec, RunMetrics, Runner};
use prefender_stats::{derive_seed, Histogram};

use crate::channel::{Channel, NullTest};
use crate::observe::Decoder;

/// Seed-stream tag for the label-permutation null (kept distinct from
/// every (slot, trial) pair's stream).
const PERM_STREAM: u64 = 0x7065_726d; // "perm"

/// Seed-stream tag for the bootstrap resamples.
const BOOT_STREAM: u64 = 0x626f_6f74; // "boot"

/// Resampling configuration for a campaign's channel estimate: how many
/// label permutations feed the MI null test, how many multinomial
/// bootstrap resamples feed the confidence intervals, and the
/// significance/CI level. Zero counts disable the respective analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResampleOptions {
    /// Label permutations for [`Channel::permutation_test`] (0 = off).
    pub permutations: u32,
    /// Multinomial bootstrap resamples for the MI / ML-accuracy
    /// confidence intervals (0 = off).
    pub bootstrap: u32,
    /// Bootstrap confidence-interval level: CIs cover `1 − alpha`. Must
    /// lie strictly inside (0, 1). It does not move the permutation
    /// test's fixed outputs — the reported null quantile is always q95
    /// and the leakage map stars cells at p < 0.01; compare `mi_p_value`
    /// against your own threshold for other levels.
    pub alpha: f64,
}

impl Default for ResampleOptions {
    fn default() -> Self {
        ResampleOptions { permutations: 0, bootstrap: 0, alpha: 0.05 }
    }
}

impl ResampleOptions {
    /// `true` when any resampling analysis is requested.
    pub fn is_enabled(&self) -> bool {
        self.permutations > 0 || self.bootstrap > 0
    }

    /// Validates the configuration (alpha strictly inside (0, 1)).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when alpha is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(format!("alpha must lie strictly inside (0, 1), got {}", self.alpha));
        }
        Ok(())
    }
}

/// A secret-sweep campaign over one (attack, defense, prefetcher,
/// hierarchy, noise) point: every secret in `secrets` is injected into
/// the victim and attacked `trials` times with per-trial derived seeds,
/// and the resulting (secret, observation) pairs estimate the channel.
#[derive(Debug, Clone)]
pub struct LeakageCampaign {
    /// The scenario under test. Its `seed` is ignored — every trial runs
    /// with a seed derived from the campaign seed — and its layout secret
    /// is overridden per trial via [`AttackSpec::with_secret`].
    pub base: AttackSpec,
    /// The secret values swept (victim array indices, all inside the
    /// probe window).
    pub secrets: Vec<usize>,
    /// Trials per secret (each with its own derived probe seed).
    pub trials: u32,
    /// How the attacker decodes an observation from the latency profile.
    pub decoder: Decoder,
}

/// Evenly spaced secret values across `spec`'s probe window.
///
/// # Panics
///
/// Panics if `n` is zero or exceeds the window width (no distinct
/// placement exists).
pub fn evenly_spaced_secrets(spec: &AttackSpec, n: usize) -> Vec<usize> {
    let l = &spec.layout;
    assert!(n >= 1 && n <= l.n_indices, "need 1..={} secrets, got {n}", l.n_indices);
    (0..n).map(|k| l.first_index + k * l.n_indices / n).collect()
}

impl LeakageCampaign {
    /// A campaign over `n_secrets` evenly spaced secrets at `trials`
    /// repetitions, with the paper-rule decoder.
    pub fn new(base: AttackSpec, n_secrets: usize, trials: u32) -> Self {
        let secrets = evenly_spaced_secrets(&base, n_secrets);
        LeakageCampaign { base, secrets, trials, decoder: Decoder::PaperRule }
    }

    /// Total simulations the campaign runs.
    pub fn sims(&self) -> u64 {
        self.secrets.len() as u64 * u64::from(self.trials.max(1))
    }

    /// The per-trial probe seed: the campaign seed with the secret slot
    /// and trial slot folded in through a **chained** SplitMix64
    /// finalize per axis (`prefender_stats::derive_seed`). Depends only
    /// on campaign shape, never on execution order.
    ///
    /// The earlier scheme XORed both axes' multiplied contributions into
    /// one accumulator before a single finalize, so distinct (slot,
    /// trial) pairs could cancel to the same pre-mix value and collide;
    /// chaining the finalizer (a bijection) per axis removes that
    /// structural cancellation.
    pub fn trial_seed(&self, campaign_seed: u64, secret_slot: usize, trial: u32) -> u64 {
        derive_seed(campaign_seed, &[secret_slot as u64, u64::from(trial)])
    }

    /// Runs the full sweep and estimates the channel, without any
    /// resampling analysis. Equivalent to
    /// [`run_with`](LeakageCampaign::run_with) at default (disabled)
    /// [`ResampleOptions`].
    ///
    /// # Errors
    ///
    /// Returns the first [`AttackError`] any trial hits (invalid
    /// hierarchy override or an instruction-cap truncation).
    pub fn run(&self, campaign_seed: u64) -> Result<LeakageResult, AttackError> {
        self.run_with(campaign_seed, &ResampleOptions::default())
    }

    /// Runs the full sweep, estimates the channel, and — when `resample`
    /// asks for it — attaches the permutation null test and bootstrap
    /// confidence intervals.
    ///
    /// Trials execute in (secret, trial) order and all metric reductions
    /// are fixed-order; the resampling seeds are derived from
    /// `campaign_seed` on dedicated streams. The result — including
    /// every floating-point field — is therefore identical wherever the
    /// campaign runs.
    ///
    /// # Errors
    ///
    /// Returns the first [`AttackError`] any trial hits (invalid
    /// hierarchy override or an instruction-cap truncation).
    pub fn run_with(
        &self,
        campaign_seed: u64,
        resample: &ResampleOptions,
    ) -> Result<LeakageResult, AttackError> {
        // One reusable runner (machine + prefetcher stack) serves every
        // trial: only the injected secret and the probe seed vary, so
        // each trial is an in-place machine reset, not a reconstruction.
        let mut runner = Runner::new(&self.base)?;
        self.run_with_runner(campaign_seed, resample, &mut runner)
    }

    /// Like [`run_with`](LeakageCampaign::run_with), but running every
    /// trial through a caller-owned [`Runner`] instead of building a
    /// private one. Campaign schedulers that batch many cells sharing one
    /// machine configuration (the sweep engine's config-major dispatch)
    /// hand each worker's long-lived runner in here, so consecutive
    /// campaigns pay an in-place machine reset instead of a hierarchy
    /// construction per cell. Runner reuse is bit-exact, so the result is
    /// identical to [`run_with`](LeakageCampaign::run_with) whatever state
    /// `runner` arrives in (it is reshaped on configuration mismatch).
    ///
    /// # Errors
    ///
    /// Returns the first [`AttackError`] any trial hits (invalid
    /// hierarchy override or an instruction-cap truncation).
    pub fn run_with_runner(
        &self,
        campaign_seed: u64,
        resample: &ResampleOptions,
        runner: &mut Runner,
    ) -> Result<LeakageResult, AttackError> {
        let trials = self.trials.max(1);
        let (channel, totals, hist) =
            self.run_counts_with_runner(campaign_seed, runner, 0..trials)?;
        let mut result = LeakageResult::from_parts(channel, totals, hist);
        {
            let _span = prefender_obs::span("resample");
            result.apply_resampling(resample, campaign_seed);
        }
        Ok(result)
    }

    /// Runs only the trials in `trials` (for every secret) and returns
    /// the raw mergeable state — the count matrix, the summed machine
    /// metrics, and the latency histogram — without computing any
    /// derived metric.
    ///
    /// This is the streaming/resume primitive: each trial's seed depends
    /// only on `(campaign_seed, slot, trial)`, never on what ran before,
    /// and all three pieces of state are additive. Running disjoint
    /// trial batches in any order, on any process, and combining them
    /// ([`Channel::merge`], metric sums, [`Histogram::merge`]) yields
    /// exactly the state of one uninterrupted pass, so
    /// [`LeakageResult::from_parts`] on the merged state reproduces the
    /// uninterrupted result bit for bit.
    ///
    /// # Errors
    ///
    /// Returns the first [`AttackError`] any trial hits.
    pub fn run_counts_with_runner(
        &self,
        campaign_seed: u64,
        runner: &mut Runner,
        trials: std::ops::Range<u32>,
    ) -> Result<(Channel, RunMetrics, Histogram), AttackError> {
        debug_assert!(trials.end <= self.trials.max(1), "trial range beyond the campaign");
        let mut channel = Channel::new(self.secrets.len());
        let mut totals = RunMetrics::default();
        let mut hist = Histogram::new();
        let mut spec = self.base.clone();
        for (slot, &secret) in self.secrets.iter().enumerate() {
            for trial in trials.clone() {
                spec.layout.secret = secret;
                spec.seed = self.trial_seed(campaign_seed, slot, trial);
                let (outcome, metrics) = runner.run_full(&spec)?;
                {
                    let _span = prefender_obs::span("decode");
                    channel.record(slot, self.decoder.observe(&outcome));
                }
                totals.cycles += metrics.cycles;
                totals.instructions += metrics.instructions;
                totals.l1d += metrics.l1d;
                totals.prefetch_issued += metrics.prefetch_issued;
                totals.prefender += metrics.prefender;
                for s in &outcome.samples {
                    hist.record(s.latency);
                }
            }
        }
        Ok((channel, totals, hist))
    }
}

/// The estimated channel of one campaign plus its headline metrics.
#[derive(Debug, Clone)]
pub struct LeakageResult {
    /// The estimated (secret × observation) channel.
    pub channel: Channel,
    /// Empirical mutual information `I(secret; observation)`, bits.
    pub mi_bits: f64,
    /// Miller–Madow bias-corrected mutual information, bits (always ≤
    /// [`LeakageResult::mi_bits`]).
    pub mi_corrected: f64,
    /// Blahut–Arimoto channel capacity, bits.
    pub capacity_bits: f64,
    /// Max-likelihood attacker accuracy over the recorded trials.
    pub ml_accuracy: f64,
    /// Expected posterior rank of the true secret (1 = always first).
    pub guessing_entropy: f64,
    /// Entropy of the secret marginal (log2 |secrets| under equal trials).
    pub secret_entropy_bits: f64,
    /// Simulations executed (secrets × trials).
    pub sims: u64,
    /// Machine metrics summed over every simulation (cycles,
    /// instructions, L1D stats, prefetch counts, per-unit breakdown).
    pub metrics: RunMetrics,
    /// Probe-latency histogram aggregated over every simulation.
    pub latency_hist: Histogram,
    /// The label-permutation null of the MI estimate, when the campaign
    /// ran with `permutations > 0`.
    pub mi_null: Option<NullTest>,
    /// Bootstrap `(lo, hi)` confidence interval on the MI estimate,
    /// when the campaign ran with `bootstrap > 0`.
    pub mi_ci: Option<(f64, f64)>,
    /// Bootstrap `(lo, hi)` confidence interval on the ML-attacker
    /// accuracy, when the campaign ran with `bootstrap > 0`.
    pub ml_ci: Option<(f64, f64)>,
}

impl LeakageResult {
    /// Computes every derived metric from raw campaign state — the
    /// counterpart of [`LeakageCampaign::run_counts_with_runner`] for
    /// callers that assembled the state from merged batches. All metrics
    /// are pure functions of the count matrix, so merged-then-derived
    /// equals derived-on-the-uninterrupted-run exactly.
    pub fn from_parts(channel: Channel, metrics: RunMetrics, latency_hist: Histogram) -> Self {
        LeakageResult {
            mi_bits: channel.mutual_information_bits(),
            mi_corrected: channel.mi_bits_corrected(),
            capacity_bits: channel.capacity_bits(),
            ml_accuracy: channel.ml_accuracy(),
            guessing_entropy: channel.guessing_entropy(),
            secret_entropy_bits: channel.input_entropy_bits(),
            sims: channel.total_trials(),
            metrics,
            latency_hist,
            channel,
            mi_null: None,
            mi_ci: None,
            ml_ci: None,
        }
    }

    /// Attaches the requested resampling analyses (permutation null,
    /// bootstrap CIs) to this result, with seeds derived from
    /// `campaign_seed` on dedicated streams — deterministic for a given
    /// `(campaign_seed, options)` regardless of where it runs.
    pub fn apply_resampling(&mut self, resample: &ResampleOptions, campaign_seed: u64) {
        if resample.permutations > 0 {
            self.mi_null = Some(self.channel.permutation_test(
                resample.permutations,
                derive_seed(campaign_seed, &[PERM_STREAM]),
            ));
        }
        if resample.bootstrap > 0 {
            let seed = derive_seed(campaign_seed, &[BOOT_STREAM]);
            self.mi_ci = Some(self.channel.bootstrap_ci(
                resample.bootstrap,
                resample.alpha,
                derive_seed(seed, &[0]),
                Channel::mutual_information_bits,
            ));
            self.ml_ci = Some(self.channel.bootstrap_ci(
                resample.bootstrap,
                resample.alpha,
                derive_seed(seed, &[1]),
                Channel::ml_accuracy,
            ));
        }
    }

    /// Leakage as a fraction of the secret's entropy (`0` = sealed,
    /// `1` = the channel carries the whole secret).
    pub fn leakage_fraction(&self) -> f64 {
        if self.secret_entropy_bits == 0.0 {
            0.0
        } else {
            self.mi_bits / self.secret_entropy_bits
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_attacks::{AttackKind, DefenseConfig};

    #[test]
    fn evenly_spaced_secrets_are_distinct_and_in_window() {
        let spec = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None);
        for n in [1, 2, 8, 61] {
            let s = evenly_spaced_secrets(&spec, n);
            assert_eq!(s.len(), n);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), n, "secrets must be distinct at n={n}");
            assert!(s.iter().all(|&x| spec.layout.indices().any(|i| i == x)));
        }
    }

    #[test]
    #[should_panic(expected = "secrets")]
    fn too_many_secrets_panics() {
        let spec = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None);
        evenly_spaced_secrets(&spec, 62);
    }

    #[test]
    fn trial_seeds_differ_per_axis() {
        let c = LeakageCampaign::new(
            AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None),
            4,
            2,
        );
        assert_eq!(c.sims(), 8);
        assert_ne!(c.trial_seed(1, 0, 0), c.trial_seed(2, 0, 0));
        assert_ne!(c.trial_seed(1, 0, 0), c.trial_seed(1, 1, 0));
        assert_ne!(c.trial_seed(1, 0, 0), c.trial_seed(1, 0, 1));
        assert_eq!(c.trial_seed(1, 3, 1), c.trial_seed(1, 3, 1));
    }

    #[test]
    fn trial_seeds_never_collide_across_slot_trial_grids() {
        // Regression: the old derivation XORed multiplied axis
        // contributions before one finalize, so distinct (slot, trial)
        // pairs could cancel to the same seed. The chained derivation
        // must stay collision-free over a large grid.
        let c = LeakageCampaign::new(
            AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None),
            2,
            1,
        );
        for campaign_seed in [0u64, 0xC0FFEE, u64::MAX] {
            let mut seen = std::collections::HashSet::with_capacity(512 * 512); // lint: ordered — membership only
            for slot in 0..512usize {
                for trial in 0..512u32 {
                    assert!(
                        seen.insert(c.trial_seed(campaign_seed, slot, trial)),
                        "seed collision at campaign {campaign_seed:#x}, slot {slot}, trial {trial}"
                    );
                }
            }
        }
    }

    #[test]
    fn resampling_attaches_null_and_cis() {
        let c = LeakageCampaign::new(
            AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None),
            4,
            2,
        );
        let plain = c.run(0xC0FFEE).unwrap();
        assert!(plain.mi_null.is_none() && plain.mi_ci.is_none() && plain.ml_ci.is_none());
        assert!(plain.mi_corrected <= plain.mi_bits);
        let opts = ResampleOptions { permutations: 100, bootstrap: 50, alpha: 0.05 };
        let r = c.run_with(0xC0FFEE, &opts).unwrap();
        // The undefended channel is noiseless: the null rejects hard.
        let null = r.mi_null.as_ref().expect("permutation null");
        assert!(null.p_value < 0.05, "undefended FR must reject the null, p={}", null.p_value);
        assert!(null.null_mean_bits < r.mi_bits);
        let (lo, hi) = r.mi_ci.expect("MI CI");
        assert!(lo <= r.mi_bits && r.mi_bits <= hi);
        let (alo, ahi) = r.ml_ci.expect("accuracy CI");
        assert!(alo <= r.ml_accuracy && r.ml_accuracy <= ahi);
        // Channel metrics are unchanged by the analysis layer.
        assert_eq!(r.mi_bits, plain.mi_bits);
        assert_eq!(r.channel, plain.channel);
        // And the whole analysis is deterministic.
        let again = c.run_with(0xC0FFEE, &opts).unwrap();
        assert_eq!(r.mi_null, again.mi_null);
        assert_eq!(r.mi_ci, again.mi_ci);
    }

    #[test]
    fn resample_options_validate() {
        assert!(ResampleOptions::default().validate().is_ok());
        assert!(!ResampleOptions::default().is_enabled());
        assert!(ResampleOptions { permutations: 1, ..Default::default() }.is_enabled());
        assert!(ResampleOptions { bootstrap: 1, ..Default::default() }.is_enabled());
        for alpha in [0.0, 1.0, -0.1, 1.5, f64::NAN] {
            let o = ResampleOptions { alpha, ..Default::default() };
            assert!(o.validate().is_err(), "alpha {alpha} must be rejected");
        }
        assert!(ResampleOptions { alpha: 0.01, ..Default::default() }.validate().is_ok());
    }

    #[test]
    fn shared_runner_matches_private_runner() {
        use prefender_attacks::Runner;
        // A campaign run through a caller-owned runner — even one shaped
        // for a *different* configuration, as the sweep engine's
        // config-major batching may hand over at a group boundary — must
        // reproduce `run_with`'s result exactly.
        let c = LeakageCampaign::new(
            AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full),
            4,
            2,
        );
        let private = c.run(0xC0FFEE).unwrap();
        let foreign = AttackSpec::new(AttackKind::PrimeProbe, DefenseConfig::None).cross_core(true);
        let mut runner = Runner::new(&foreign).unwrap();
        let shared = c.run_with_runner(0xC0FFEE, &ResampleOptions::default(), &mut runner).unwrap();
        assert_eq!(shared.mi_bits, private.mi_bits);
        assert_eq!(shared.channel, private.channel);
        assert_eq!(shared.metrics, private.metrics);
        assert_eq!(
            shared.latency_hist.counts().collect::<Vec<_>>(),
            private.latency_hist.counts().collect::<Vec<_>>()
        );
        // The runner is now shaped for the campaign's configuration and
        // serves a second campaign identically.
        let again = c.run_with_runner(0xC0FFEE, &ResampleOptions::default(), &mut runner).unwrap();
        assert_eq!(again.mi_bits, private.mi_bits);
    }

    #[test]
    fn merged_trial_batches_reproduce_the_uninterrupted_run_exactly() {
        use prefender_attacks::Runner;
        // Stream the campaign as trial batches (0..1, 1..3, 3..4), merge
        // the mergeable state, derive metrics — every float must equal
        // the uninterrupted run bit for bit, resampling included. This
        // is the exactness claim crash-resume and `sweep serve` rest on.
        let c = LeakageCampaign::new(
            AttackSpec::new(AttackKind::PrimeProbe, DefenseConfig::Full),
            4,
            4,
        );
        let opts = ResampleOptions { permutations: 40, bootstrap: 20, alpha: 0.05 };
        let whole = c.run_with(0xC0FFEE, &opts).unwrap();
        let mut runner = Runner::new(&c.base).unwrap();
        let mut channel = Channel::new(c.secrets.len());
        let mut totals = prefender_attacks::RunMetrics::default();
        let mut hist = prefender_stats::Histogram::new();
        // Deliberately out of order: batch independence means order
        // cannot matter.
        for range in [1..3u32, 3..4, 0..1] {
            let (ch, m, h) = c.run_counts_with_runner(0xC0FFEE, &mut runner, range).unwrap();
            channel.merge(&ch);
            totals.cycles += m.cycles;
            totals.instructions += m.instructions;
            totals.l1d += m.l1d;
            totals.prefetch_issued += m.prefetch_issued;
            totals.prefender += m.prefender;
            hist.merge(&h);
        }
        let mut merged = LeakageResult::from_parts(channel, totals, hist);
        merged.apply_resampling(&opts, 0xC0FFEE);
        assert_eq!(merged.channel, whole.channel);
        assert_eq!(merged.metrics, whole.metrics);
        assert_eq!(
            merged.latency_hist.counts().collect::<Vec<_>>(),
            whole.latency_hist.counts().collect::<Vec<_>>()
        );
        assert_eq!(merged.mi_bits.to_bits(), whole.mi_bits.to_bits());
        assert_eq!(merged.mi_corrected.to_bits(), whole.mi_corrected.to_bits());
        assert_eq!(merged.capacity_bits.to_bits(), whole.capacity_bits.to_bits());
        assert_eq!(merged.ml_accuracy.to_bits(), whole.ml_accuracy.to_bits());
        assert_eq!(merged.guessing_entropy.to_bits(), whole.guessing_entropy.to_bits());
        assert_eq!(merged.mi_null, whole.mi_null);
        assert_eq!(merged.mi_ci, whole.mi_ci);
        assert_eq!(merged.ml_ci, whole.ml_ci);
        assert_eq!(merged.sims, whole.sims);
    }

    #[test]
    fn undefended_flush_reload_leaks_full_entropy() {
        let c = LeakageCampaign::new(
            AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None),
            4,
            2,
        );
        let r = c.run(0xC0FFEE).unwrap();
        assert_eq!(r.sims, 8);
        assert!((r.mi_bits - 2.0).abs() < 0.1, "expected ~2 bits, got {}", r.mi_bits);
        assert!((r.ml_accuracy - 1.0).abs() < 1e-9);
        assert!(r.leakage_fraction() > 0.95);
        assert!(r.metrics.cycles > 0 && r.metrics.instructions > 0);
        assert!(!r.latency_hist.is_empty());
    }

    #[test]
    fn full_prefender_seals_the_channel() {
        let c = LeakageCampaign::new(
            AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full),
            4,
            2,
        );
        let r = c.run(0xC0FFEE).unwrap();
        assert!(r.mi_bits <= 0.2, "expected ≤0.2 bits, got {}", r.mi_bits);
        assert!(r.ml_accuracy < 0.6, "ML accuracy {} should be near chance", r.ml_accuracy);
    }
}
