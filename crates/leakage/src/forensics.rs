//! Differential leakage forensics: *which mechanism* carries the secret.
//!
//! A [`LeakageCampaign`] reports *how much* a scenario leaks; this module
//! answers *through what*. It re-runs a cell's secrets × trials with the
//! flight recorder armed, projects each trial's trace onto a family of
//! feature streams — per event-class × cache-set occurrence counts and
//! per-set latency maxima — and estimates a separate secret→feature
//! [`Channel`] per stream, reusing the campaign's MI estimator and
//! label-permutation null. The result is a ranked leakage map naming the
//! event classes and sets whose mutual information with the secret
//! survives the null.
//!
//! Two tiers are reported:
//!
//! * the **carrier map** ranks *every* feature, including
//!   microarchitectural events an attacker cannot observe (evictions,
//!   MSHR traffic, defense bookkeeping). Nonzero MI here says the secret
//!   is physically encoded in that mechanism — true even for sealed
//!   cells, where the defense ensures no *visible* feature correlates;
//! * the **survivors** restrict to attacker-visible features — the timed
//!   probe accesses themselves (`probe:…` streams, matched by probe
//!   PC) — and apply a Bonferroni correction over the tested set. A
//!   non-empty survivor list is a mechanistic account of residual
//!   leakage: it names the sets whose probe behaviour still depends on
//!   the secret (the full-PREFENDER Prime+Probe residual, for one).
//!
//! Determinism: trials execute in (secret, trial) order with the
//! campaign's own derived seeds, permutation seeds derive from the
//! campaign seed on a dedicated stream per feature, and features are
//! processed in sorted-name order — the report is identical wherever it
//! runs.

use std::collections::{BTreeMap, BTreeSet};

use prefender_attacks::{AttackError, Runner};
use prefender_obs::{
    arm_trace, disarm_trace, take_thread_trace, TraceEvent, Value, DEFAULT_TRACE_CAPACITY,
};
use prefender_stats::derive_seed;

use crate::campaign::LeakageCampaign;
use crate::channel::Channel;

/// Seed-stream tag for the per-feature permutation nulls (distinct from
/// the campaign's `PERM_STREAM`/`BOOT_STREAM`).
const FORENSICS_STREAM: u64 = 0x666f_7265; // "fore"

/// Forensics configuration: the permutation-null depth and the
/// family-wise significance level for the survivor tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForensicsOptions {
    /// Label permutations per tested feature (0 disables the null — every
    /// feature then reports `p_value = 1` and no survivor can exist).
    pub permutations: u32,
    /// Family-wise significance level; the survivor threshold is
    /// `alpha / n_tested_visible` (Bonferroni).
    pub alpha: f64,
}

impl Default for ForensicsOptions {
    fn default() -> Self {
        ForensicsOptions { permutations: 500, alpha: 0.05 }
    }
}

/// One feature stream's leakage estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureStat {
    /// Stream name: `{class}`, `{class}:set{N}`, `access:set{N}:latmax`,
    /// or an attacker-visible `probe:set{N}:{misses,latmax}` stream.
    pub name: String,
    /// Empirical MI between the secret and this stream, bits.
    pub mi_bits: f64,
    /// Miller–Madow bias-corrected MI, bits.
    pub mi_corrected: f64,
    /// Permutation-null p-value; `1.0` when the feature was not tested
    /// (zero MI, or `permutations == 0`).
    pub p_value: f64,
    /// Whether the permutation null actually ran for this feature.
    pub tested: bool,
    /// Whether the stream is attacker-visible (a `probe:` stream).
    pub visible: bool,
}

/// The ranked leakage map of one cell: every nonzero-MI feature, most
/// informative first, plus the Bonferroni-surviving visible features.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicsReport {
    /// Secrets swept.
    pub secrets: usize,
    /// Trials per secret.
    pub trials: u32,
    /// Permutations per tested feature.
    pub permutations: u32,
    /// Family-wise alpha the survivor tier used.
    pub alpha: f64,
    /// Feature streams observed across all trials (including zero-MI
    /// streams, which are omitted from `features`).
    pub n_features: usize,
    /// Attacker-visible streams whose null actually ran (the Bonferroni
    /// family size).
    pub n_tested_visible: usize,
    /// Nonzero-MI features, sorted by MI descending then name.
    pub features: Vec<FeatureStat>,
    /// Names of visible features whose p-value beats
    /// `alpha / n_tested_visible` — empty for a sealed cell.
    pub survivors: Vec<String>,
    /// Flight-recorder events captured over the whole cell.
    pub trace_events: u64,
    /// Events dropped to full ring buffers (nonzero means the feature
    /// counts undercount and the map should be re-run with more capacity).
    pub trace_dropped: u64,
}

impl ForensicsReport {
    /// The report as a JSON value (the `forensics.json` cell schema).
    pub fn to_value(&self) -> Value {
        let features = self
            .features
            .iter()
            .map(|f| {
                Value::Obj(vec![
                    ("feature".into(), Value::Str(f.name.clone())),
                    ("mi_bits".into(), Value::F64(f.mi_bits)),
                    ("mi_corrected".into(), Value::F64(f.mi_corrected)),
                    ("p_value".into(), Value::F64(f.p_value)),
                    ("tested".into(), Value::Bool(f.tested)),
                    ("visible".into(), Value::Bool(f.visible)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("secrets".into(), Value::U64(self.secrets as u64)),
            ("trials".into(), Value::U64(u64::from(self.trials))),
            ("permutations".into(), Value::U64(u64::from(self.permutations))),
            ("alpha".into(), Value::F64(self.alpha)),
            ("n_features".into(), Value::U64(self.n_features as u64)),
            ("n_tested_visible".into(), Value::U64(self.n_tested_visible as u64)),
            ("trace_events".into(), Value::U64(self.trace_events)),
            ("trace_dropped".into(), Value::U64(self.trace_dropped)),
            (
                "survivors".into(),
                Value::Arr(self.survivors.iter().map(|s| Value::Str(s.clone())).collect()),
            ),
            ("features".into(), Value::Arr(features)),
        ])
    }
}

/// Projects one trial's trace onto its feature streams.
///
/// Carrier streams: an occurrence count per event class (and per
/// class × set where the event carries a set index), plus a per-set
/// maximum access latency. Visible streams (`probe:`): restricted to
/// `access` events whose PC is one of the attacker's timed probe loads —
/// a per-set count of accesses served beyond L1 and a per-set latency
/// maximum, exactly the two statistics a Prime+Probe attacker extracts.
fn project(events: &[TraceEvent], probe_pcs: &BTreeSet<u64>) -> BTreeMap<String, u64> {
    let mut f: BTreeMap<String, u64> = BTreeMap::new();
    fn bump(f: &mut BTreeMap<String, u64>, name: String) {
        *f.entry(name).or_insert(0) += 1;
    }
    for e in events {
        let set = match e {
            TraceEvent::DemandHit { set, .. }
            | TraceEvent::DemandMiss { set, .. }
            | TraceEvent::Eviction { set, .. }
            | TraceEvent::PrefetchFill { set, .. }
            | TraceEvent::Access { set, .. } => Some(*set),
            _ => None,
        };
        match set {
            Some(s) => bump(&mut f, format!("{}:set{s}", e.class())),
            None => bump(&mut f, e.class().to_string()),
        }
        if let TraceEvent::Access { pc, set, latency, level, .. } = e {
            let lat = f.entry(format!("access:set{set}:latmax")).or_insert(0);
            *lat = (*lat).max(*latency);
            if probe_pcs.contains(pc) {
                if *level > 0 {
                    *f.entry(format!("probe:set{set}:misses")).or_insert(0) += 1;
                }
                let lat = f.entry(format!("probe:set{set}:latmax")).or_insert(0);
                *lat = (*lat).max(*latency);
            }
        }
    }
    f
}

/// Runs `campaign`'s secrets × trials with the flight recorder armed and
/// estimates a secret→feature channel per trace-feature stream.
///
/// The recorder is armed for the duration of the call and disarmed
/// before returning (arming is process-global; concurrent runs in other
/// threads would merely pay the capture cost — traces are thread-local,
/// so the report itself cannot be contaminated). The campaign's
/// artifacts are untouched: this runs the same trials with the same
/// derived seeds, so the simulated behaviour is bit-identical to an
/// untraced campaign run.
///
/// # Errors
///
/// Returns the first [`AttackError`] any trial hits, with the recorder
/// disarmed.
pub fn run_forensics(
    campaign: &LeakageCampaign,
    campaign_seed: u64,
    opts: &ForensicsOptions,
    runner: &mut Runner,
) -> Result<ForensicsReport, AttackError> {
    // Discard whatever earlier callers left in the runner or the thread
    // buffer, then capture this cell's trials.
    let _ = runner.take_trace();
    let _ = take_thread_trace();
    arm_trace(DEFAULT_TRACE_CAPACITY);
    let run = run_traced_trials(campaign, campaign_seed, runner);
    disarm_trace();
    let _ = take_thread_trace();
    let (per_trial, trace_events, trace_dropped) = run?;

    // Union of every stream name; absent-in-a-trial means 0.
    let names: BTreeSet<String> = per_trial.iter().flat_map(|(_, f)| f.keys().cloned()).collect();
    let n_features = names.len();

    let mut features: Vec<FeatureStat> = Vec::new();
    for (idx, name) in names.iter().enumerate() {
        let mut ch = Channel::new(campaign.secrets.len());
        for (slot, f) in &per_trial {
            ch.record(*slot, f.get(name).copied().unwrap_or(0));
        }
        let mi_bits = ch.mutual_information_bits();
        if mi_bits == 0.0 {
            continue;
        }
        let (p_value, tested) = if opts.permutations > 0 {
            let seed = derive_seed(campaign_seed, &[FORENSICS_STREAM, idx as u64]);
            (ch.permutation_test(opts.permutations, seed).p_value, true)
        } else {
            (1.0, false)
        };
        features.push(FeatureStat {
            name: name.clone(),
            mi_bits,
            mi_corrected: ch.mi_bits_corrected(),
            p_value,
            tested,
            visible: name.starts_with("probe:"),
        });
    }
    features.sort_by(|a, b| b.mi_bits.total_cmp(&a.mi_bits).then_with(|| a.name.cmp(&b.name)));

    let n_tested_visible = features.iter().filter(|f| f.visible && f.tested).count();
    let threshold = opts.alpha / n_tested_visible.max(1) as f64;
    let survivors: Vec<String> = features
        .iter()
        .filter(|f| f.visible && f.tested && f.p_value < threshold)
        .map(|f| f.name.clone())
        .collect();

    Ok(ForensicsReport {
        secrets: campaign.secrets.len(),
        trials: campaign.trials.max(1),
        permutations: opts.permutations,
        alpha: opts.alpha,
        n_features,
        n_tested_visible,
        features,
        survivors,
        trace_events,
        trace_dropped,
    })
}

/// The traced trial loop: `(slot, features)` per trial in (secret,
/// trial) order, plus total captured/dropped event counts.
#[allow(clippy::type_complexity)]
fn run_traced_trials(
    campaign: &LeakageCampaign,
    campaign_seed: u64,
    runner: &mut Runner,
) -> Result<(Vec<(usize, BTreeMap<String, u64>)>, u64, u64), AttackError> {
    let mut per_trial = Vec::with_capacity(campaign.sims() as usize);
    let (mut trace_events, mut trace_dropped) = (0u64, 0u64);
    let mut spec = campaign.base.clone();
    for (slot, &secret) in campaign.secrets.iter().enumerate() {
        for trial in 0..campaign.trials.max(1) {
            spec.layout.secret = secret;
            spec.seed = campaign.trial_seed(campaign_seed, slot, trial);
            runner.run_full(&spec)?;
            let trace = runner.take_trace();
            let probe_pcs: BTreeSet<u64> = runner.probe_pcs().iter().copied().collect();
            trace_events += trace.events.len() as u64;
            trace_dropped += trace.dropped;
            per_trial.push((slot, project(&trace.events, &probe_pcs)));
        }
    }
    Ok((per_trial, trace_events, trace_dropped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_attacks::{AttackKind, AttackSpec, DefenseConfig};

    // Arming the recorder is process-global; serialize forensics tests
    // so a disarm in one cannot cut another's capture short.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    // Eight trials per secret: a per-set indicator feature's permutation
    // null needs enough labels that grouping all "hot" trials under one
    // secret by chance is (much) rarer than the significance threshold —
    // at 2 trials the floor is only ~0.14.
    fn run_cell(kind: AttackKind, defense: DefenseConfig, perms: u32) -> ForensicsReport {
        let base = AttackSpec::new(kind, defense);
        let c = LeakageCampaign::new(base, 4, 8);
        let mut runner = Runner::new(&c.base).unwrap();
        let opts = ForensicsOptions { permutations: perms, alpha: 0.05 };
        run_forensics(&c, 0xC0FFEE, &opts, &mut runner).unwrap()
    }

    #[test]
    fn undefended_flush_reload_names_probe_survivors() {
        let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        let r = run_cell(AttackKind::FlushReload, DefenseConfig::None, 199);
        assert!(r.trace_events > 0, "tracing must capture events");
        assert_eq!(r.trace_dropped, 0);
        assert!(!r.features.is_empty(), "undefended cell must have carriers");
        assert!(!r.survivors.is_empty(), "undefended FR must leak through visible probe features");
        assert!(r.survivors.iter().all(|s| s.starts_with("probe:")));
        // The map is ranked: MI never increases down the list.
        for w in r.features.windows(2) {
            assert!(w[0].mi_bits >= w[1].mi_bits);
        }
    }

    #[test]
    fn forensics_is_deterministic() {
        let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        let a = run_cell(AttackKind::FlushReload, DefenseConfig::None, 50);
        let b = run_cell(AttackKind::FlushReload, DefenseConfig::None, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_permutations_means_no_survivors() {
        let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        let r = run_cell(AttackKind::FlushReload, DefenseConfig::None, 0);
        assert!(r.survivors.is_empty());
        assert!(r.features.iter().all(|f| !f.tested && f.p_value == 1.0));
    }

    #[test]
    fn recorder_is_disarmed_on_return() {
        let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
        let _ = run_cell(AttackKind::FlushReload, DefenseConfig::Full, 0);
        assert!(!prefender_obs::trace_armed());
    }
}
