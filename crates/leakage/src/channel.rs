//! The channel estimate: a (secret × observation) count matrix and the
//! information-theoretic metrics computed from it.
//!
//! Everything here is deterministic given the recorded counts: iteration
//! is always in (input index, symbol index) order and all floating-point
//! reductions happen in that fixed order, so campaign artifacts derived
//! from these numbers are byte-identical at any thread count.

use std::collections::BTreeMap;

use prefender_stats::{entropy_bits, multinomial, p_value_ge, quantile, shuffle, SplitMix64};

/// Default Blahut–Arimoto iteration cap for [`Channel::capacity_bits`].
pub const CAPACITY_MAX_ITERS: usize = 1000;

/// Default Blahut–Arimoto convergence tolerance, in bits.
pub const CAPACITY_TOL_BITS: f64 = 1e-6;

/// Floor the Blahut–Arimoto prior is clamped to each iteration, so a
/// collapsing prior can never underflow a `q(o)` to exactly zero and
/// divide the next iteration's KL terms by it.
pub const CAPACITY_PRIOR_FLOOR: f64 = 1e-12;

/// The label-permutation null of a channel's mutual information: what
/// the MI estimator reports on `n_perms` label-shuffled copies of the
/// same trial set, where the true leakage is zero by construction.
///
/// Small-sample plug-in MI is biased upward, so "MI > 0" alone never
/// distinguishes a residual channel from estimator noise; this null
/// calibrates it. `p_value < alpha` rejects "this channel is
/// indistinguishable from 0 bits".
#[derive(Debug, Clone, PartialEq)]
pub struct NullTest {
    /// Label permutations drawn.
    pub n_perms: u32,
    /// The observed (unshuffled) mutual information, in bits.
    pub observed_bits: f64,
    /// Mean null MI — the estimator's small-sample bias floor.
    pub null_mean_bits: f64,
    /// 95th percentile of the null MI distribution.
    pub null_q95_bits: f64,
    /// Add-one permutation p-value of the observed MI against the null.
    pub p_value: f64,
}

const LN_2: f64 = std::f64::consts::LN_2;

/// Plug-in mutual information of a raw count matrix, in bits, with the
/// fixed (input, symbol) reduction order every caller shares — the
/// permutation null re-estimates through exactly this path.
fn mi_of_counts(counts: &[Vec<u64>]) -> f64 {
    let total: u64 = counts.iter().flatten().sum();
    if total == 0 {
        return 0.0;
    }
    let joint: Vec<Vec<f64>> =
        counts.iter().map(|row| row.iter().map(|&c| c as f64 / total as f64).collect()).collect();
    let n_symbols = joint.first().map_or(0, Vec::len);
    let p_in: Vec<f64> = joint.iter().map(|row| row.iter().sum()).collect();
    let p_out: Vec<f64> = (0..n_symbols).map(|j| joint.iter().map(|row| row[j]).sum()).collect();
    let mut mi = 0.0;
    for (row, &ps) in joint.iter().zip(&p_in) {
        for (&pso, &po) in row.iter().zip(&p_out) {
            if pso > 0.0 {
                mi += pso * (pso / (ps * po)).log2();
            }
        }
    }
    // Rounding can leave a tiny negative residue on independent data.
    mi.max(0.0)
}

/// An estimated discrete memoryless channel from secret to attacker
/// observation, built by recording one observation symbol per trial.
///
/// Inputs are dense indices `0..n_inputs` (the position of a secret in
/// the campaign's secret list); observation symbols are arbitrary `u64`
/// codes and the alphabet is grown on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    n_inputs: usize,
    /// Sorted observation alphabet; column `j` of `counts` is symbol
    /// `symbols[j]`.
    symbols: Vec<u64>,
    /// `counts[i][j]` = trials where input `i` produced symbol `j`.
    counts: Vec<Vec<u64>>,
}

impl Channel {
    /// An empty channel over `n_inputs` possible secrets.
    pub fn new(n_inputs: usize) -> Self {
        Channel { n_inputs, symbols: Vec::new(), counts: vec![Vec::new(); n_inputs] }
    }

    /// Builds a channel directly from `(input, symbol)` trial records.
    pub fn from_trials(n_inputs: usize, trials: impl IntoIterator<Item = (usize, u64)>) -> Self {
        let mut c = Channel::new(n_inputs);
        for (input, symbol) in trials {
            c.record(input, symbol);
        }
        c
    }

    /// Records one trial: secret `input` produced observation `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `input >= n_inputs`.
    pub fn record(&mut self, input: usize, symbol: u64) {
        assert!(input < self.n_inputs, "input {input} out of range (n_inputs={})", self.n_inputs);
        let j = match self.symbols.binary_search(&symbol) {
            Ok(j) => j,
            Err(j) => {
                self.symbols.insert(j, symbol);
                for row in &mut self.counts {
                    row.insert(j, 0);
                }
                j
            }
        };
        self.counts[input][j] += 1;
    }

    /// Merges another channel's counts into this one: the observation
    /// alphabets are unioned and every `(input, symbol)` cell summed.
    ///
    /// Counts are plain trial tallies, so merging is **exact**: a
    /// channel assembled from any partition of a campaign's trials (a
    /// resumed shard, a streamed trial batch) equals the channel the
    /// uninterrupted run records, bit for bit — and so does every
    /// metric computed from it. This additivity is what makes
    /// crash-resumed campaigns byte-identical.
    ///
    /// # Panics
    ///
    /// Panics if the two channels disagree on `n_inputs`.
    pub fn merge(&mut self, other: &Channel) {
        assert_eq!(
            self.n_inputs, other.n_inputs,
            "cannot merge channels over different secret spaces"
        );
        for (j, &symbol) in other.symbols.iter().enumerate() {
            let col = match self.symbols.binary_search(&symbol) {
                Ok(col) => col,
                Err(col) => {
                    self.symbols.insert(col, symbol);
                    for row in &mut self.counts {
                        row.insert(col, 0);
                    }
                    col
                }
            };
            for (row, other_row) in self.counts.iter_mut().zip(&other.counts) {
                row[col] += other_row[j];
            }
        }
    }

    /// Number of possible inputs (secrets).
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// The observation alphabet seen so far, ascending.
    pub fn symbols(&self) -> &[u64] {
        &self.symbols
    }

    /// Total recorded trials.
    pub fn total_trials(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Trials recorded for one input.
    pub fn input_trials(&self, input: usize) -> u64 {
        self.counts.get(input).map_or(0, |row| row.iter().sum())
    }

    /// The joint empirical distribution `p(s, o)`, row-major.
    fn joint(&self) -> Vec<Vec<f64>> {
        let total = self.total_trials();
        if total == 0 {
            return vec![Vec::new(); self.n_inputs];
        }
        self.counts
            .iter()
            .map(|row| row.iter().map(|&c| c as f64 / total as f64).collect())
            .collect()
    }

    /// Empirical entropy of the secret marginal, in bits.
    pub fn input_entropy_bits(&self) -> f64 {
        entropy_bits(self.joint().iter().map(|row| row.iter().sum::<f64>()))
    }

    /// Empirical entropy of the observation marginal, in bits.
    pub fn output_entropy_bits(&self) -> f64 {
        let joint = self.joint();
        entropy_bits((0..self.symbols.len()).map(|j| joint.iter().map(|row| row[j]).sum::<f64>()))
    }

    /// Empirical mutual information `I(S; O)` in bits, under the recorded
    /// trial counts (a uniform secret prior when every secret gets the
    /// same trial count).
    ///
    /// Zero for an empty channel. Always within `[0, min(H(S), H(O))]` up
    /// to floating-point rounding.
    pub fn mutual_information_bits(&self) -> f64 {
        mi_of_counts(&self.counts)
    }

    /// Miller–Madow bias-corrected mutual information, in bits.
    ///
    /// The plug-in estimate biases upward by roughly
    /// `(|S| − 1)(|O| − 1) / (2·N·ln 2)` bits over the nonzero support —
    /// at 8 secrets × 4 trials that is a sizeable fraction of a bit.
    /// This subtracts the first-order term and clamps at zero, so it is
    /// always ≤ [`Channel::mutual_information_bits`].
    pub fn mi_bits_corrected(&self) -> f64 {
        let n = self.total_trials();
        if n == 0 {
            return 0.0;
        }
        let k_in = self.counts.iter().filter(|row| row.iter().any(|&c| c > 0)).count();
        let k_out =
            (0..self.symbols.len()).filter(|&j| self.counts.iter().any(|row| row[j] > 0)).count();
        let bias =
            (k_in.saturating_sub(1) * k_out.saturating_sub(1)) as f64 / (2.0 * n as f64 * LN_2);
        (self.mutual_information_bits() - bias).max(0.0)
    }

    /// Tests the observed mutual information against its label-shuffled
    /// null: the recorded trials are expanded, their secret labels
    /// permuted `n_perms` times (deterministic SplitMix-seeded
    /// Fisher–Yates), and the MI re-estimated on each shuffle.
    ///
    /// The same `(n_perms, seed)` always yields the same [`NullTest`],
    /// bit for bit, wherever it runs.
    pub fn permutation_test(&self, n_perms: u32, seed: u64) -> NullTest {
        let observed = self.mutual_information_bits();
        // Expand the count matrix into one (label, symbol-index) record
        // per trial, in fixed (input, symbol) order.
        let mut labels: Vec<usize> = Vec::new();
        let mut sym_idx: Vec<usize> = Vec::new();
        for (i, row) in self.counts.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                for _ in 0..c {
                    labels.push(i);
                    sym_idx.push(j);
                }
            }
        }
        let mut rng = SplitMix64::new(seed);
        let m = self.symbols.len();
        let mut null = Vec::with_capacity(n_perms as usize);
        for _ in 0..n_perms {
            shuffle(&mut rng, &mut labels);
            let mut counts = vec![vec![0u64; m]; self.n_inputs];
            for (&i, &j) in labels.iter().zip(&sym_idx) {
                counts[i][j] += 1;
            }
            null.push(mi_of_counts(&counts));
        }
        let p_value = p_value_ge(&null, observed);
        let null_mean_bits =
            if null.is_empty() { 0.0 } else { null.iter().sum::<f64>() / null.len() as f64 };
        let mut sorted = null;
        sorted.sort_by(f64::total_cmp);
        NullTest {
            n_perms,
            observed_bits: observed,
            null_mean_bits,
            null_q95_bits: quantile(&sorted, 0.95),
            p_value,
        }
    }

    /// One multinomial bootstrap resample of the channel: the same total
    /// trial count redrawn over the cells of the empirical joint.
    fn bootstrap_sample(&self, rng: &mut SplitMix64) -> Channel {
        let m = self.symbols.len();
        let flat: Vec<u64> = self.counts.iter().flatten().copied().collect();
        let drawn = multinomial(rng, &flat, self.total_trials());
        let counts: Vec<Vec<u64>> =
            (0..self.n_inputs).map(|i| drawn[i * m..(i + 1) * m].to_vec()).collect();
        Channel { n_inputs: self.n_inputs, symbols: self.symbols.clone(), counts }
    }

    /// A `1 − alpha` bootstrap confidence interval for any channel
    /// metric: `n_boot` multinomial resamples of the count matrix, the
    /// metric re-computed on each, and the `alpha/2` / `1 − alpha/2`
    /// percentile interval — widened, if necessary, to contain the point
    /// estimate, so the interval always brackets what it annotates.
    ///
    /// Deterministic for a given `(n_boot, alpha, seed)`.
    pub fn bootstrap_ci(
        &self,
        n_boot: u32,
        alpha: f64,
        seed: u64,
        metric: impl Fn(&Channel) -> f64,
    ) -> (f64, f64) {
        let point = metric(self);
        if n_boot == 0 || self.total_trials() == 0 {
            return (point, point);
        }
        let mut rng = SplitMix64::new(seed);
        let mut samples: Vec<f64> =
            (0..n_boot).map(|_| metric(&self.bootstrap_sample(&mut rng))).collect();
        samples.sort_by(f64::total_cmp);
        let a = alpha.clamp(1e-9, 1.0 - 1e-9);
        let lo = quantile(&samples, a / 2.0);
        let hi = quantile(&samples, 1.0 - a / 2.0);
        (lo.min(point), hi.max(point))
    }

    /// Channel capacity in bits via Blahut–Arimoto over the empirical
    /// conditionals `p(o|s)` (inputs with zero trials are excluded).
    ///
    /// An upper bound on the leakage any secret prior can extract from
    /// this channel; always ≥ [`Channel::mutual_information_bits`] up to
    /// the convergence tolerance.
    pub fn capacity_bits(&self) -> f64 {
        // Rows of p(o|s), for inputs that have trials.
        let rows: Vec<Vec<f64>> = self
            .counts
            .iter()
            .filter(|row| row.iter().any(|&c| c > 0))
            .map(|row| {
                let n: u64 = row.iter().sum();
                row.iter().map(|&c| c as f64 / n as f64).collect()
            })
            .collect();
        if rows.is_empty() || self.symbols.is_empty() {
            return 0.0;
        }
        let n = rows.len();
        let m = self.symbols.len();
        let mut prior = vec![1.0 / n as f64; n];
        let mut capacity = 0.0;
        for _ in 0..CAPACITY_MAX_ITERS {
            // q(o) under the current prior.
            let q: Vec<f64> =
                (0..m).map(|j| rows.iter().zip(&prior).map(|(row, &p)| p * row[j]).sum()).collect();
            // D(p(o|s) || q) per input, in bits. The prior floor below
            // keeps every q(o) with support strictly positive, so no
            // term here divides by zero.
            let d: Vec<f64> = rows
                .iter()
                .map(|row| {
                    row.iter()
                        .zip(&q)
                        .filter(|&(&p, _)| p > 0.0)
                        .map(|(&p, &qo)| p * (p / qo).log2())
                        .sum()
                })
                .collect();
            // Blahut–Arimoto bounds: max_s D is an upper bound, the
            // prior-weighted mean a lower bound; stop when they meet.
            let upper = d.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let lower: f64 = d.iter().zip(&prior).map(|(&di, &p)| p * di).sum();
            capacity = lower;
            if upper - lower < CAPACITY_TOL_BITS {
                break;
            }
            // Reweight the prior toward informative inputs, clamped away
            // from zero (then renormalized): on near-deterministic
            // channels the dominated inputs' mass otherwise decays until
            // it underflows to exactly 0.0, their q(o) columns collapse,
            // and the KL terms above blow up to inf/NaN.
            let weights: Vec<f64> = prior.iter().zip(&d).map(|(&p, &di)| p * di.exp2()).collect();
            let z: f64 = weights.iter().sum();
            let clamped: Vec<f64> =
                weights.iter().map(|&w| (w / z).max(CAPACITY_PRIOR_FLOOR)).collect();
            let z2: f64 = clamped.iter().sum();
            prior = clamped.iter().map(|&w| w / z2).collect();
        }
        // The estimate is a prior-weighted KL mean, so it can only land
        // outside [0, log2 n] through floating-point pathology; pin it.
        let cap_max = (n as f64).log2();
        if capacity.is_finite() {
            capacity.clamp(0.0, cap_max)
        } else {
            cap_max
        }
    }

    /// Max-likelihood attacker accuracy: the attacker guesses the secret
    /// with the highest empirical likelihood of its observation (ties
    /// split uniformly), scored against the recorded trials.
    ///
    /// `1/n_inputs` for a useless channel under uniform trials; `1.0` for
    /// a noiseless one. Zero when no trials were recorded.
    pub fn ml_accuracy(&self) -> f64 {
        let total = self.total_trials();
        if total == 0 {
            return 0.0;
        }
        // p(s|o) ∝ p(o|s)·p(s) = count/total: argmax_s count[s][o].
        let mut correct = 0.0;
        for j in 0..self.symbols.len() {
            let col_max = self.counts.iter().map(|row| row[j]).max().unwrap_or(0);
            if col_max == 0 {
                continue;
            }
            // The attacker picks uniformly among the tied argmax secrets;
            // summed over the tied block the expected correct mass is one
            // full column maximum.
            correct += col_max as f64;
        }
        correct / total as f64
    }

    /// Guessing entropy: the expected rank (1-based) of the true secret
    /// when the attacker orders secrets by posterior probability given the
    /// observation, ties averaged.
    ///
    /// `1.0` for a noiseless channel; `(n + 1) / 2` for a useless one.
    /// Zero when no trials were recorded.
    pub fn guessing_entropy(&self) -> f64 {
        let total = self.total_trials();
        if total == 0 {
            return 0.0;
        }
        let mut rank_sum = 0.0;
        let mut sorted: Vec<u64> = Vec::with_capacity(self.n_inputs);
        for j in 0..self.symbols.len() {
            // Sort the column once; ranks then come from two binary
            // searches per nonzero cell instead of a rescan of all n
            // rows (O(n log n + nnz·log n) per symbol, not O(n²)).
            sorted.clear();
            sorted.extend(self.counts.iter().map(|row| row[j]));
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            for row in &self.counts {
                let c = row[j];
                if c == 0 {
                    continue;
                }
                let better = sorted.partition_point(|&x| x > c);
                let tied = sorted.partition_point(|&x| x >= c) - better - 1;
                // Average position among the tied block.
                let rank = 1.0 + better as f64 + tied as f64 / 2.0;
                rank_sum += c as f64 * rank;
            }
        }
        rank_sum / total as f64
    }

    /// A compact per-input summary: `(input, trials, most frequent symbol
    /// if any)` — handy for debugging a campaign.
    pub fn input_summary(&self) -> Vec<(usize, u64, Option<u64>)> {
        (0..self.n_inputs)
            .map(|i| {
                let trials = self.input_trials(i);
                let top = self.counts[i]
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .max_by_key(|&(_, &c)| c)
                    .map(|(j, _)| self.symbols[j]);
                (i, trials, top)
            })
            .collect()
    }

    /// The raw count for `(input, symbol)`.
    pub fn count(&self, input: usize, symbol: u64) -> u64 {
        match self.symbols.binary_search(&symbol) {
            Ok(j) => self.counts.get(input).map_or(0, |row| row[j]),
            Err(_) => 0,
        }
    }

    /// The count matrix as `(input, symbol, count)` triples in fixed
    /// (input, symbol) order, for serialization.
    pub fn triples(&self) -> Vec<(usize, u64, u64)> {
        let mut out = Vec::new();
        for (i, row) in self.counts.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if c > 0 {
                    out.push((i, self.symbols[j], c));
                }
            }
        }
        out
    }
}

/// Convenience: builds a channel from per-trial maps, used by tests.
pub fn channel_from_map(n_inputs: usize, map: &BTreeMap<(usize, u64), u64>) -> Channel {
    let mut c = Channel::new(n_inputs);
    for (&(input, symbol), &count) in map {
        for _ in 0..count {
            c.record(input, symbol);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A noiseless n-ary channel: input i always produces symbol i.
    fn identity(n: usize, trials: u64) -> Channel {
        let mut c = Channel::new(n);
        for i in 0..n {
            for _ in 0..trials {
                c.record(i, i as u64);
            }
        }
        c
    }

    /// A useless channel: every input produces the same symbol.
    fn constant(n: usize, trials: u64) -> Channel {
        let mut c = Channel::new(n);
        for i in 0..n {
            for _ in 0..trials {
                c.record(i, 7);
            }
        }
        c
    }

    #[test]
    fn identity_channel_leaks_everything() {
        let c = identity(8, 4);
        assert!((c.mutual_information_bits() - 3.0).abs() < 1e-12);
        assert!((c.capacity_bits() - 3.0).abs() < 1e-3);
        assert!((c.ml_accuracy() - 1.0).abs() < 1e-12);
        assert!((c.guessing_entropy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_channel_leaks_nothing() {
        let c = constant(8, 4);
        assert_eq!(c.mutual_information_bits(), 0.0);
        assert!(c.capacity_bits() < 1e-9);
        assert!((c.ml_accuracy() - 1.0 / 8.0).abs() < 1e-12);
        assert!((c.guessing_entropy() - 4.5).abs() < 1e-12, "(n+1)/2 for useless");
    }

    #[test]
    fn empty_channel_is_all_zero() {
        let c = Channel::new(4);
        assert_eq!(c.total_trials(), 0);
        assert_eq!(c.mutual_information_bits(), 0.0);
        assert_eq!(c.capacity_bits(), 0.0);
        assert_eq!(c.ml_accuracy(), 0.0);
        assert_eq!(c.guessing_entropy(), 0.0);
        assert_eq!(c.input_entropy_bits(), 0.0);
    }

    #[test]
    fn binary_symmetric_channel_matches_closed_form() {
        // BSC with crossover 0.25 out of 4 trials per input:
        // I = 1 - H2(0.25) = 1 - 0.8112781... ≈ 0.1887218.
        let mut c = Channel::new(2);
        for i in 0..2u64 {
            for _ in 0..3 {
                c.record(i as usize, i);
            }
            c.record(i as usize, 1 - i);
        }
        let expected = 1.0 - (-(0.25f64.log2() * 0.25 + 0.75f64.log2() * 0.75));
        assert!((c.mutual_information_bits() - expected).abs() < 1e-9);
        // Symmetric channel: capacity equals MI at the uniform prior.
        assert!((c.capacity_bits() - expected).abs() < 1e-4);
        assert!((c.ml_accuracy() - 0.75).abs() < 1e-12);
        assert!((c.guessing_entropy() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn capacity_dominates_uniform_mi() {
        // An asymmetric channel (Z-channel): capacity > MI(uniform).
        let mut c = Channel::new(2);
        for _ in 0..8 {
            c.record(0, 0);
        }
        for _ in 0..4 {
            c.record(1, 1);
        }
        for _ in 0..4 {
            c.record(1, 0);
        }
        let mi = c.mutual_information_bits();
        let cap = c.capacity_bits();
        assert!(cap >= mi - 1e-9, "capacity {cap} must dominate MI {mi}");
        assert!(cap > 0.0 && cap < 1.0);
    }

    #[test]
    fn mi_bounded_by_marginal_entropies() {
        let mut c = Channel::new(3);
        let pattern = [(0, 0), (0, 1), (1, 1), (1, 1), (2, 2), (2, 0), (2, 2)];
        for &(i, s) in &pattern {
            c.record(i, s);
        }
        let mi = c.mutual_information_bits();
        assert!(mi >= 0.0);
        assert!(mi <= c.input_entropy_bits() + 1e-12);
        assert!(mi <= c.output_entropy_bits() + 1e-12);
    }

    #[test]
    fn record_grows_alphabet_and_counts() {
        let mut c = Channel::new(2);
        c.record(0, 100);
        c.record(1, 5);
        c.record(0, 100);
        assert_eq!(c.symbols(), &[5, 100]);
        assert_eq!(c.count(0, 100), 2);
        assert_eq!(c.count(1, 5), 1);
        assert_eq!(c.count(1, 100), 0);
        assert_eq!(c.count(0, 42), 0);
        assert_eq!(c.input_trials(0), 2);
        assert_eq!(c.triples(), vec![(0, 100, 2), (1, 5, 1)]);
        assert_eq!(c.input_summary()[0], (0, 2, Some(100)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_input_panics() {
        Channel::new(2).record(2, 0);
    }

    #[test]
    fn merge_equals_recording_everything_in_one_channel() {
        // Any partition of the trial stream must reassemble to the same
        // channel — the invariant resumed campaigns stand on.
        let trials = [(0usize, 9u64), (1, 5), (2, 9), (0, 5), (1, 1), (2, 2), (0, 9), (1, 9)];
        let whole = Channel::from_trials(3, trials);
        for split in 0..=trials.len() {
            let mut merged = Channel::from_trials(3, trials[..split].iter().copied());
            merged.merge(&Channel::from_trials(3, trials[split..].iter().copied()));
            assert_eq!(merged, whole, "split at {split}");
        }
        // Merging into an empty channel and merging an empty one are
        // both identities.
        let mut empty = Channel::new(3);
        empty.merge(&whole);
        assert_eq!(empty, whole);
        let mut copy = whole.clone();
        copy.merge(&Channel::new(3));
        assert_eq!(copy, whole);
    }

    #[test]
    fn merge_unions_disjoint_alphabets() {
        let mut a = Channel::from_trials(2, [(0, 10), (1, 30)]);
        a.merge(&Channel::from_trials(2, [(0, 20), (1, 10)]));
        assert_eq!(a.symbols(), &[10, 20, 30]);
        assert_eq!(a.count(0, 10), 1);
        assert_eq!(a.count(1, 10), 1);
        assert_eq!(a.count(0, 20), 1);
        assert_eq!(a.total_trials(), 4);
    }

    #[test]
    #[should_panic(expected = "different secret spaces")]
    fn merge_rejects_mismatched_inputs() {
        Channel::new(2).merge(&Channel::new(3));
    }

    #[test]
    fn permutation_test_rejects_identity_and_accepts_constant() {
        // A noiseless channel: label shuffles destroy the dependence, so
        // the observed 3 bits sit far above every null re-estimate.
        let open = identity(8, 4).permutation_test(199, 7);
        assert_eq!(open.n_perms, 199);
        assert!((open.observed_bits - 3.0).abs() < 1e-12);
        assert!(open.null_mean_bits < open.observed_bits, "null must sit below a real channel");
        assert!(open.null_q95_bits < open.observed_bits);
        assert!((open.p_value - 1.0 / 200.0).abs() < 1e-12, "p = 1/(n+1), got {}", open.p_value);
        // A useless channel: every shuffle is just as informative (MI 0),
        // so the null is accepted outright.
        let sealed = constant(8, 4).permutation_test(199, 7);
        assert_eq!(sealed.observed_bits, 0.0);
        assert_eq!(sealed.p_value, 1.0);
        assert_eq!(sealed.null_mean_bits, 0.0);
        // Determinism: same channel, same seed, same null.
        assert_eq!(identity(8, 4).permutation_test(50, 3), identity(8, 4).permutation_test(50, 3));
        assert_ne!(
            identity(8, 4).permutation_test(50, 3).null_mean_bits,
            identity(8, 4).permutation_test(50, 4).null_mean_bits,
            "different seeds draw different permutations"
        );
    }

    #[test]
    fn permutation_test_degenerate_channels() {
        let empty = Channel::new(4).permutation_test(20, 1);
        assert_eq!(empty.p_value, 1.0);
        assert_eq!(empty.null_q95_bits, 0.0);
        let zero = identity(3, 2).permutation_test(0, 1);
        assert_eq!(zero.p_value, 1.0, "no permutations: the null cannot reject");
    }

    #[test]
    fn miller_madow_correction_shrinks_mi() {
        let c = identity(8, 4);
        let mi = c.mutual_information_bits();
        let corrected = c.mi_bits_corrected();
        assert!(corrected <= mi, "corrected {corrected} must not exceed plug-in {mi}");
        // 8 inputs × 8 symbols over 32 trials: bias = 49/(64·ln 2).
        let expected = mi - 49.0 / (64.0 * std::f64::consts::LN_2);
        assert!((corrected - expected).abs() < 1e-12);
        assert_eq!(constant(8, 4).mi_bits_corrected(), 0.0, "clamped at zero");
        assert_eq!(Channel::new(3).mi_bits_corrected(), 0.0);
    }

    #[test]
    fn bootstrap_ci_brackets_the_point_estimate() {
        let c = identity(4, 8);
        let (lo, hi) = c.bootstrap_ci(60, 0.05, 9, Channel::mutual_information_bits);
        let mi = c.mutual_information_bits();
        assert!(lo <= mi && mi <= hi, "CI [{lo}, {hi}] must contain MI {mi}");
        assert!(lo <= hi);
        // Resampling a noiseless channel can only lose information.
        assert!(hi <= mi + 1e-9, "identity resamples cannot exceed log2 n");
        let (alo, ahi) = c.bootstrap_ci(60, 0.05, 9, Channel::ml_accuracy);
        let acc = c.ml_accuracy();
        assert!(alo <= acc && acc <= ahi);
        // Zero resamples or an empty channel degenerate to the point.
        assert_eq!(c.bootstrap_ci(0, 0.05, 9, Channel::ml_accuracy), (acc, acc));
        let e = Channel::new(2);
        assert_eq!(e.bootstrap_ci(10, 0.05, 9, Channel::mutual_information_bits), (0.0, 0.0));
        // Determinism across calls.
        assert_eq!(
            c.bootstrap_ci(30, 0.1, 5, Channel::mutual_information_bits),
            c.bootstrap_ci(30, 0.1, 5, Channel::mutual_information_bits)
        );
    }

    #[test]
    fn capacity_survives_pathological_channels() {
        // Near-deterministic channels with strictly dominated inputs and
        // extreme count asymmetry drive the Blahut–Arimoto prior toward
        // zero; the clamped prior must keep capacity finite and inside
        // [MI, log2 n].
        let mut dominated = Channel::new(6);
        for i in 0..4 {
            for _ in 0..50 {
                dominated.record(i, i as u64);
            }
        }
        // Two dominated inputs: mixtures of the informative symbols.
        for j in 0..4 {
            dominated.record(4, j);
            dominated.record(5, 3 - j);
        }
        let mut extreme = Channel::new(3);
        extreme.record(0, 0);
        for _ in 0..1_000_000 {
            extreme.record(0, 1);
        }
        for _ in 0..7 {
            extreme.record(1, 0);
            extreme.record(2, 2);
        }
        for c in [dominated, extreme, identity(32, 1)] {
            let cap = c.capacity_bits();
            let mi = c.mutual_information_bits();
            let max = (c.n_inputs() as f64).log2();
            assert!(cap.is_finite(), "capacity must stay finite");
            assert!(cap >= mi - 1e-3, "capacity {cap} must dominate MI {mi}");
            assert!(cap <= max + 1e-9, "capacity {cap} above log2 n = {max}");
        }
    }

    #[test]
    fn guessing_entropy_matches_naive_rescan() {
        // The sorted-column ranking must reproduce the O(n²·m) rescan
        // bit for bit (same rank values, same accumulation order).
        let naive = |c: &Channel| -> f64 {
            let total = c.total_trials();
            if total == 0 {
                return 0.0;
            }
            let mut rank_sum = 0.0;
            for s in 0..c.symbols().len() {
                let sym = c.symbols()[s];
                let col: Vec<u64> = (0..c.n_inputs()).map(|i| c.count(i, sym)).collect();
                for (i, &cnt) in col.iter().enumerate() {
                    if cnt == 0 {
                        continue;
                    }
                    let better = col.iter().filter(|&&x| x > cnt).count() as f64;
                    let tied =
                        col.iter().enumerate().filter(|&(k, &x)| k != i && x == cnt).count() as f64;
                    rank_sum += cnt as f64 * (1.0 + better + tied / 2.0);
                }
            }
            rank_sum / total as f64
        };
        let pattern = [(0, 0), (0, 1), (1, 1), (1, 1), (2, 2), (2, 0), (2, 2), (3, 1), (3, 1)];
        let c = Channel::from_trials(4, pattern);
        assert_eq!(c.guessing_entropy(), naive(&c));
        assert_eq!(identity(8, 4).guessing_entropy(), naive(&identity(8, 4)));
        assert_eq!(constant(8, 4).guessing_entropy(), naive(&constant(8, 4)));
    }
}
