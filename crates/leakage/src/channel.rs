//! The channel estimate: a (secret × observation) count matrix and the
//! information-theoretic metrics computed from it.
//!
//! Everything here is deterministic given the recorded counts: iteration
//! is always in (input index, symbol index) order and all floating-point
//! reductions happen in that fixed order, so campaign artifacts derived
//! from these numbers are byte-identical at any thread count.

use std::collections::BTreeMap;

use prefender_stats::entropy_bits;

/// Default Blahut–Arimoto iteration cap for [`Channel::capacity_bits`].
pub const CAPACITY_MAX_ITERS: usize = 1000;

/// Default Blahut–Arimoto convergence tolerance, in bits.
pub const CAPACITY_TOL_BITS: f64 = 1e-6;

/// An estimated discrete memoryless channel from secret to attacker
/// observation, built by recording one observation symbol per trial.
///
/// Inputs are dense indices `0..n_inputs` (the position of a secret in
/// the campaign's secret list); observation symbols are arbitrary `u64`
/// codes and the alphabet is grown on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    n_inputs: usize,
    /// Sorted observation alphabet; column `j` of `counts` is symbol
    /// `symbols[j]`.
    symbols: Vec<u64>,
    /// `counts[i][j]` = trials where input `i` produced symbol `j`.
    counts: Vec<Vec<u64>>,
}

impl Channel {
    /// An empty channel over `n_inputs` possible secrets.
    pub fn new(n_inputs: usize) -> Self {
        Channel { n_inputs, symbols: Vec::new(), counts: vec![Vec::new(); n_inputs] }
    }

    /// Builds a channel directly from `(input, symbol)` trial records.
    pub fn from_trials(n_inputs: usize, trials: impl IntoIterator<Item = (usize, u64)>) -> Self {
        let mut c = Channel::new(n_inputs);
        for (input, symbol) in trials {
            c.record(input, symbol);
        }
        c
    }

    /// Records one trial: secret `input` produced observation `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `input >= n_inputs`.
    pub fn record(&mut self, input: usize, symbol: u64) {
        assert!(input < self.n_inputs, "input {input} out of range (n_inputs={})", self.n_inputs);
        let j = match self.symbols.binary_search(&symbol) {
            Ok(j) => j,
            Err(j) => {
                self.symbols.insert(j, symbol);
                for row in &mut self.counts {
                    row.insert(j, 0);
                }
                j
            }
        };
        self.counts[input][j] += 1;
    }

    /// Number of possible inputs (secrets).
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// The observation alphabet seen so far, ascending.
    pub fn symbols(&self) -> &[u64] {
        &self.symbols
    }

    /// Total recorded trials.
    pub fn total_trials(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Trials recorded for one input.
    pub fn input_trials(&self, input: usize) -> u64 {
        self.counts.get(input).map_or(0, |row| row.iter().sum())
    }

    /// The joint empirical distribution `p(s, o)`, row-major.
    fn joint(&self) -> Vec<Vec<f64>> {
        let total = self.total_trials();
        if total == 0 {
            return vec![Vec::new(); self.n_inputs];
        }
        self.counts
            .iter()
            .map(|row| row.iter().map(|&c| c as f64 / total as f64).collect())
            .collect()
    }

    /// Empirical entropy of the secret marginal, in bits.
    pub fn input_entropy_bits(&self) -> f64 {
        entropy_bits(self.joint().iter().map(|row| row.iter().sum::<f64>()))
    }

    /// Empirical entropy of the observation marginal, in bits.
    pub fn output_entropy_bits(&self) -> f64 {
        let joint = self.joint();
        entropy_bits((0..self.symbols.len()).map(|j| joint.iter().map(|row| row[j]).sum::<f64>()))
    }

    /// Empirical mutual information `I(S; O)` in bits, under the recorded
    /// trial counts (a uniform secret prior when every secret gets the
    /// same trial count).
    ///
    /// Zero for an empty channel. Always within `[0, min(H(S), H(O))]` up
    /// to floating-point rounding.
    pub fn mutual_information_bits(&self) -> f64 {
        let joint = self.joint();
        let p_in: Vec<f64> = joint.iter().map(|row| row.iter().sum()).collect();
        let p_out: Vec<f64> =
            (0..self.symbols.len()).map(|j| joint.iter().map(|row| row[j]).sum()).collect();
        let mut mi = 0.0;
        for (row, &ps) in joint.iter().zip(&p_in) {
            for (&pso, &po) in row.iter().zip(&p_out) {
                if pso > 0.0 {
                    mi += pso * (pso / (ps * po)).log2();
                }
            }
        }
        // Rounding can leave a tiny negative residue on independent data.
        mi.max(0.0)
    }

    /// Channel capacity in bits via Blahut–Arimoto over the empirical
    /// conditionals `p(o|s)` (inputs with zero trials are excluded).
    ///
    /// An upper bound on the leakage any secret prior can extract from
    /// this channel; always ≥ [`Channel::mutual_information_bits`] up to
    /// the convergence tolerance.
    pub fn capacity_bits(&self) -> f64 {
        // Rows of p(o|s), for inputs that have trials.
        let rows: Vec<Vec<f64>> = self
            .counts
            .iter()
            .filter(|row| row.iter().any(|&c| c > 0))
            .map(|row| {
                let n: u64 = row.iter().sum();
                row.iter().map(|&c| c as f64 / n as f64).collect()
            })
            .collect();
        if rows.is_empty() || self.symbols.is_empty() {
            return 0.0;
        }
        let n = rows.len();
        let m = self.symbols.len();
        let mut prior = vec![1.0 / n as f64; n];
        let mut capacity = 0.0;
        for _ in 0..CAPACITY_MAX_ITERS {
            // q(o) under the current prior.
            let q: Vec<f64> =
                (0..m).map(|j| rows.iter().zip(&prior).map(|(row, &p)| p * row[j]).sum()).collect();
            // D(p(o|s) || q) per input, in bits.
            let d: Vec<f64> = rows
                .iter()
                .map(|row| {
                    row.iter()
                        .zip(&q)
                        .filter(|&(&p, _)| p > 0.0)
                        .map(|(&p, &qo)| p * (p / qo).log2())
                        .sum()
                })
                .collect();
            // Blahut–Arimoto bounds: max_s D is an upper bound, the
            // prior-weighted mean a lower bound; stop when they meet.
            let upper = d.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let lower: f64 = d.iter().zip(&prior).map(|(&di, &p)| p * di).sum();
            capacity = lower;
            if upper - lower < CAPACITY_TOL_BITS {
                break;
            }
            // Reweight the prior toward informative inputs.
            let weights: Vec<f64> = prior.iter().zip(&d).map(|(&p, &di)| p * di.exp2()).collect();
            let z: f64 = weights.iter().sum();
            prior = weights.iter().map(|&w| w / z).collect();
        }
        capacity.max(0.0)
    }

    /// Max-likelihood attacker accuracy: the attacker guesses the secret
    /// with the highest empirical likelihood of its observation (ties
    /// split uniformly), scored against the recorded trials.
    ///
    /// `1/n_inputs` for a useless channel under uniform trials; `1.0` for
    /// a noiseless one. Zero when no trials were recorded.
    pub fn ml_accuracy(&self) -> f64 {
        let total = self.total_trials();
        if total == 0 {
            return 0.0;
        }
        // p(s|o) ∝ p(o|s)·p(s) = count/total: argmax_s count[s][o].
        let mut correct = 0.0;
        for j in 0..self.symbols.len() {
            let col_max = self.counts.iter().map(|row| row[j]).max().unwrap_or(0);
            if col_max == 0 {
                continue;
            }
            // The attacker picks uniformly among the tied argmax secrets;
            // summed over the tied block the expected correct mass is one
            // full column maximum.
            correct += col_max as f64;
        }
        correct / total as f64
    }

    /// Guessing entropy: the expected rank (1-based) of the true secret
    /// when the attacker orders secrets by posterior probability given the
    /// observation, ties averaged.
    ///
    /// `1.0` for a noiseless channel; `(n + 1) / 2` for a useless one.
    /// Zero when no trials were recorded.
    pub fn guessing_entropy(&self) -> f64 {
        let total = self.total_trials();
        if total == 0 {
            return 0.0;
        }
        let mut rank_sum = 0.0;
        for j in 0..self.symbols.len() {
            for (i, row) in self.counts.iter().enumerate() {
                let c = row[j];
                if c == 0 {
                    continue;
                }
                let better = self.counts.iter().filter(|r| r[j] > c).count() as f64;
                let tied =
                    self.counts.iter().enumerate().filter(|&(k, r)| k != i && r[j] == c).count()
                        as f64;
                // Average position among the tied block.
                let rank = 1.0 + better + tied / 2.0;
                rank_sum += c as f64 * rank;
            }
        }
        rank_sum / total as f64
    }

    /// A compact per-input summary: `(input, trials, most frequent symbol
    /// if any)` — handy for debugging a campaign.
    pub fn input_summary(&self) -> Vec<(usize, u64, Option<u64>)> {
        (0..self.n_inputs)
            .map(|i| {
                let trials = self.input_trials(i);
                let top = self.counts[i]
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .max_by_key(|&(_, &c)| c)
                    .map(|(j, _)| self.symbols[j]);
                (i, trials, top)
            })
            .collect()
    }

    /// The raw count for `(input, symbol)`.
    pub fn count(&self, input: usize, symbol: u64) -> u64 {
        match self.symbols.binary_search(&symbol) {
            Ok(j) => self.counts.get(input).map_or(0, |row| row[j]),
            Err(_) => 0,
        }
    }

    /// The count matrix as `(input, symbol, count)` triples in fixed
    /// (input, symbol) order, for serialization.
    pub fn triples(&self) -> Vec<(usize, u64, u64)> {
        let mut out = Vec::new();
        for (i, row) in self.counts.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if c > 0 {
                    out.push((i, self.symbols[j], c));
                }
            }
        }
        out
    }
}

/// Convenience: builds a channel from per-trial maps, used by tests.
pub fn channel_from_map(n_inputs: usize, map: &BTreeMap<(usize, u64), u64>) -> Channel {
    let mut c = Channel::new(n_inputs);
    for (&(input, symbol), &count) in map {
        for _ in 0..count {
            c.record(input, symbol);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A noiseless n-ary channel: input i always produces symbol i.
    fn identity(n: usize, trials: u64) -> Channel {
        let mut c = Channel::new(n);
        for i in 0..n {
            for _ in 0..trials {
                c.record(i, i as u64);
            }
        }
        c
    }

    /// A useless channel: every input produces the same symbol.
    fn constant(n: usize, trials: u64) -> Channel {
        let mut c = Channel::new(n);
        for i in 0..n {
            for _ in 0..trials {
                c.record(i, 7);
            }
        }
        c
    }

    #[test]
    fn identity_channel_leaks_everything() {
        let c = identity(8, 4);
        assert!((c.mutual_information_bits() - 3.0).abs() < 1e-12);
        assert!((c.capacity_bits() - 3.0).abs() < 1e-3);
        assert!((c.ml_accuracy() - 1.0).abs() < 1e-12);
        assert!((c.guessing_entropy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_channel_leaks_nothing() {
        let c = constant(8, 4);
        assert_eq!(c.mutual_information_bits(), 0.0);
        assert!(c.capacity_bits() < 1e-9);
        assert!((c.ml_accuracy() - 1.0 / 8.0).abs() < 1e-12);
        assert!((c.guessing_entropy() - 4.5).abs() < 1e-12, "(n+1)/2 for useless");
    }

    #[test]
    fn empty_channel_is_all_zero() {
        let c = Channel::new(4);
        assert_eq!(c.total_trials(), 0);
        assert_eq!(c.mutual_information_bits(), 0.0);
        assert_eq!(c.capacity_bits(), 0.0);
        assert_eq!(c.ml_accuracy(), 0.0);
        assert_eq!(c.guessing_entropy(), 0.0);
        assert_eq!(c.input_entropy_bits(), 0.0);
    }

    #[test]
    fn binary_symmetric_channel_matches_closed_form() {
        // BSC with crossover 0.25 out of 4 trials per input:
        // I = 1 - H2(0.25) = 1 - 0.8112781... ≈ 0.1887218.
        let mut c = Channel::new(2);
        for i in 0..2u64 {
            for _ in 0..3 {
                c.record(i as usize, i);
            }
            c.record(i as usize, 1 - i);
        }
        let expected = 1.0 - (-(0.25f64.log2() * 0.25 + 0.75f64.log2() * 0.75));
        assert!((c.mutual_information_bits() - expected).abs() < 1e-9);
        // Symmetric channel: capacity equals MI at the uniform prior.
        assert!((c.capacity_bits() - expected).abs() < 1e-4);
        assert!((c.ml_accuracy() - 0.75).abs() < 1e-12);
        assert!((c.guessing_entropy() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn capacity_dominates_uniform_mi() {
        // An asymmetric channel (Z-channel): capacity > MI(uniform).
        let mut c = Channel::new(2);
        for _ in 0..8 {
            c.record(0, 0);
        }
        for _ in 0..4 {
            c.record(1, 1);
        }
        for _ in 0..4 {
            c.record(1, 0);
        }
        let mi = c.mutual_information_bits();
        let cap = c.capacity_bits();
        assert!(cap >= mi - 1e-9, "capacity {cap} must dominate MI {mi}");
        assert!(cap > 0.0 && cap < 1.0);
    }

    #[test]
    fn mi_bounded_by_marginal_entropies() {
        let mut c = Channel::new(3);
        let pattern = [(0, 0), (0, 1), (1, 1), (1, 1), (2, 2), (2, 0), (2, 2)];
        for &(i, s) in &pattern {
            c.record(i, s);
        }
        let mi = c.mutual_information_bits();
        assert!(mi >= 0.0);
        assert!(mi <= c.input_entropy_bits() + 1e-12);
        assert!(mi <= c.output_entropy_bits() + 1e-12);
    }

    #[test]
    fn record_grows_alphabet_and_counts() {
        let mut c = Channel::new(2);
        c.record(0, 100);
        c.record(1, 5);
        c.record(0, 100);
        assert_eq!(c.symbols(), &[5, 100]);
        assert_eq!(c.count(0, 100), 2);
        assert_eq!(c.count(1, 5), 1);
        assert_eq!(c.count(1, 100), 0);
        assert_eq!(c.count(0, 42), 0);
        assert_eq!(c.input_trials(0), 2);
        assert_eq!(c.triples(), vec![(0, 100, 2), (1, 5, 1)]);
        assert_eq!(c.input_summary()[0], (0, 2, Some(100)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_input_panics() {
        Channel::new(2).record(2, 0);
    }
}
