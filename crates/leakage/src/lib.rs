//! # prefender-leakage — information-theoretic side-channel quantification
//!
//! The paper's security claim ("PREFENDER misleads the attacker") is a
//! boolean per Figure 8 panel. This crate strengthens it to a *measured
//! channel*: each (attack, defense, prefetcher, hierarchy, noise)
//! scenario is a communication channel from the victim's secret to the
//! attacker's observation, and a [`LeakageCampaign`] estimates it by
//! sweeping every secret value × N trials (per-trial derived seeds) and
//! decoding each [`AttackOutcome`](prefender_attacks::AttackOutcome) into
//! an observation symbol via a [`Decoder`].
//!
//! From the estimated [`Channel`] come the side-channel literature's
//! standard metrics:
//!
//! * **mutual information** `I(S; O)` — bits the observation carries
//!   about the secret under the recorded trial counts;
//! * **channel capacity** — the Blahut–Arimoto supremum over secret
//!   priors, an upper bound on extractable leakage;
//! * **max-likelihood accuracy** — how often the best classifier recovers
//!   the secret (chance = `1/n_secrets`);
//! * **guessing entropy** — the expected posterior rank of the true
//!   secret (1 = recovered first try).
//!
//! Because small-sample MI estimates bias upward, every estimate can be
//! calibrated against its **label-permutation null**
//! ([`Channel::permutation_test`]): shuffle the secret labels, re-estimate,
//! and report how often pure estimator noise matches the observed MI — a
//! p-value that lets a leakage-map cell say "indistinguishable from 0
//! bits". [`Channel::mi_bits_corrected`] subtracts the Miller–Madow
//! first-order bias, and [`Channel::bootstrap_ci`] brackets any channel
//! metric with a deterministic multinomial-bootstrap confidence interval
//! ([`ResampleOptions`] wires all three into a campaign).
//!
//! An undefended Flush+Reload is a noiseless channel: MI ≈
//! `log2(n_secrets)` and ML accuracy 1.0. Under the full PREFENDER the
//! probe profile decouples from the secret and MI collapses toward 0.
//!
//! ```
//! use prefender_attacks::{AttackKind, AttackSpec, DefenseConfig};
//! use prefender_leakage::LeakageCampaign;
//!
//! let base = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None);
//! let r = LeakageCampaign::new(base, 4, 1).run(7).unwrap();
//! assert!((r.mi_bits - 2.0).abs() < 0.1, "4 secrets leak ~2 bits undefended");
//! ```
//!
//! Campaigns shard through `prefender-sweep` (`Payload::Leakage`), which
//! emits `leakage.json` / `leakage.csv` artifacts byte-identical at any
//! thread count; `repro leakage` renders the attack × defense leakage
//! map. Entropy/histogram primitives live in `prefender-stats`.

mod campaign;
mod channel;
mod forensics;
mod observe;

pub use campaign::{evenly_spaced_secrets, LeakageCampaign, LeakageResult, ResampleOptions};
pub use channel::{
    channel_from_map, Channel, NullTest, CAPACITY_MAX_ITERS, CAPACITY_PRIOR_FLOOR,
    CAPACITY_TOL_BITS,
};
pub use forensics::{run_forensics, FeatureStat, ForensicsOptions, ForensicsReport};
pub use observe::{Decoder, OBS_CONFUSED, OBS_SILENT};
