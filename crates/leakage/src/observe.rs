//! Mapping an [`AttackOutcome`] to a discrete observation symbol.

use prefender_attacks::AttackOutcome;

/// Observation symbol for "no anomaly at all" (the attacker sees a flat
/// latency profile and cannot guess).
pub const OBS_SILENT: u64 = u64::MAX;

/// Observation symbol for "multiple anomalies" under the paper decoder.
/// The paper's attacker treats any round without exactly one anomaly as a
/// failure, so every such round collapses to this one symbol — the count
/// itself is not observable information under that inference rule (and
/// keeping it would let small-sample MI bias masquerade as leakage).
pub const OBS_CONFUSED: u64 = u64::MAX - 1;

/// How the attacker turns a probe-latency profile into an observation
/// symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Decoder {
    /// The paper's inference rule (Section V-B): exactly one anomalous
    /// index is a guess of that index; zero anomalies observe
    /// [`OBS_SILENT`]; several anomalies observe [`OBS_CONFUSED`].
    #[default]
    PaperRule,
    /// A stronger attacker that remembers the entire anomaly *set*
    /// (order-independent 64-bit hash). Upper-bounds what any classifier
    /// over the thresholded profile can extract.
    AnomalySet,
}

impl Decoder {
    /// Stable tag for scenario ids and artifacts.
    pub fn tag(&self) -> &'static str {
        match self {
            Decoder::PaperRule => "paper",
            Decoder::AnomalySet => "set",
        }
    }

    /// Parses a tag produced by [`Decoder::tag`].
    pub fn from_tag(tag: &str) -> Option<Decoder> {
        match tag {
            "paper" => Some(Decoder::PaperRule),
            "set" => Some(Decoder::AnomalySet),
            _ => None,
        }
    }

    /// Encodes one attack outcome as an observation symbol.
    pub fn observe(&self, outcome: &AttackOutcome) -> u64 {
        match self {
            Decoder::PaperRule => match outcome.anomalies.as_slice() {
                [] => OBS_SILENT,
                [only] => *only as u64,
                _ => OBS_CONFUSED,
            },
            Decoder::AnomalySet => {
                if outcome.anomalies.is_empty() {
                    return OBS_SILENT;
                }
                // FNV-1a over the sorted anomaly indices (classify sorts
                // samples, so anomalies are already ascending).
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for &a in &outcome.anomalies {
                    for b in (a as u64).to_le_bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x100_0000_01b3);
                    }
                }
                // Keep clear of the reserved sentinels.
                h % OBS_CONFUSED
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_attacks::classify;

    fn outcome(anomalies: &[(usize, u64)], flat: &[(usize, u64)], secret: usize) -> AttackOutcome {
        let samples = anomalies
            .iter()
            .chain(flat)
            .map(|&(index, latency)| prefender_attacks::ProbeSample { index, latency })
            .collect();
        classify(samples, 100, true, secret)
    }

    #[test]
    fn paper_rule_symbols() {
        let d = Decoder::PaperRule;
        let one = outcome(&[(65, 4)], &[(50, 200), (51, 200)], 65);
        assert_eq!(d.observe(&one), 65);
        let none = outcome(&[], &[(50, 200), (51, 200)], 65);
        assert_eq!(d.observe(&none), OBS_SILENT);
        let many = outcome(&[(50, 4), (51, 4), (52, 4)], &[(53, 200)], 65);
        assert_eq!(d.observe(&many), OBS_CONFUSED);
        let more = outcome(&[(50, 4), (51, 4), (52, 4), (54, 4)], &[], 65);
        assert_eq!(d.observe(&more), OBS_CONFUSED, "count is not observable");
    }

    #[test]
    fn anomaly_set_distinguishes_sets_of_equal_size() {
        let d = Decoder::AnomalySet;
        let a = outcome(&[(50, 4), (51, 4)], &[(52, 200)], 65);
        let b = outcome(&[(50, 4), (52, 4)], &[(51, 200)], 65);
        assert_ne!(d.observe(&a), d.observe(&b));
        assert_eq!(d.observe(&a), d.observe(&a.clone()));
        let none = outcome(&[], &[(52, 200)], 65);
        assert_eq!(d.observe(&none), OBS_SILENT);
    }

    #[test]
    fn tags_round_trip() {
        for d in [Decoder::PaperRule, Decoder::AnomalySet] {
            assert_eq!(Decoder::from_tag(d.tag()), Some(d));
        }
        assert_eq!(Decoder::from_tag("nope"), None);
    }
}
