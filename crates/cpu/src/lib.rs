//! # prefender-cpu — timing interpreter and machine model
//!
//! Executes [`prefender-isa`](prefender_isa) programs against a
//! [`prefender-sim`](prefender_sim) memory hierarchy with per-instruction
//! cycle accounting:
//!
//! * loads block the core for their full load-to-use latency — exactly the
//!   signal cache side-channel attacks measure;
//! * a per-core [`Prefetcher`](prefender_prefetch::Prefetcher) observes
//!   every retired instruction and every L1D access, and its requests are
//!   issued into the hierarchy;
//! * multiple cores interleave in time order, sharing the inclusive L2 —
//!   the substrate for the paper's cross-core attacks (Figure 4);
//! * an optional memory-access trace records `(pc, addr, latency)` for the
//!   attack analysis harness.
//!
//! The paper evaluated on gem5's out-of-order CPU. This model is in-order;
//! see DESIGN.md for why that substitution preserves both the security and
//! the relative-performance results.
//!
//! ```
//! use prefender_cpu::Machine;
//! use prefender_isa::Program;
//! use prefender_sim::HierarchyConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = Machine::new(HierarchyConfig::paper_baseline(1)?);
//! m.load_program(0, Program::parse("li r1, 0x1000\nld r2, 0(r1)\nhalt\n")?);
//! let summary = m.run();
//! assert_eq!(summary.instructions, 3);
//! assert!(summary.cycles > 200, "the cold load missed to memory");
//! # Ok(())
//! # }
//! ```

mod core_model;
mod machine;
mod regfile;
mod trace;

pub use core_model::{Core, CoreState};
pub use machine::{CpuConfig, Machine, RunSummary};
pub use regfile::RegFile;
pub use trace::{MemTrace, TraceEntry};
