//! One CPU core: program, register file, program counter, readiness.

use prefender_isa::Program;
use prefender_sim::Cycle;

use crate::regfile::RegFile;

/// Execution status of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// No program loaded.
    Idle,
    /// Executing.
    Running,
    /// Executed `halt` (or ran off the end of the program).
    Halted,
}

/// One in-order core.
///
/// Cores are owned and stepped by [`Machine`](crate::Machine); the public
/// surface is read-only inspection plus register poking for test setup.
#[derive(Debug, Clone)]
pub struct Core {
    id: usize,
    pub(crate) regs: RegFile,
    pub(crate) program: Option<Program>,
    pub(crate) pc_index: usize,
    pub(crate) state: CoreState,
    pub(crate) ready_at: Cycle,
    pub(crate) retired: u64,
}

impl Core {
    pub(crate) fn new(id: usize) -> Self {
        Core {
            id,
            regs: RegFile::new(),
            program: None,
            pc_index: 0,
            state: CoreState::Idle,
            ready_at: Cycle::ZERO,
            retired: 0,
        }
    }

    /// The core's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current execution status.
    pub fn state(&self) -> CoreState {
        self.state
    }

    /// The loaded program, if any.
    pub fn program(&self) -> Option<&Program> {
        self.program.as_ref()
    }

    /// Index of the next instruction to execute.
    pub fn pc_index(&self) -> usize {
        self.pc_index
    }

    /// PC (address) of the next instruction, if a program is loaded.
    pub fn pc(&self) -> Option<u64> {
        self.program.as_ref().map(|p| p.pc_of(self.pc_index))
    }

    /// The register file (for result inspection).
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Mutable register file access (test setup / ABI emulation).
    pub fn regs_mut(&mut self) -> &mut RegFile {
        &mut self.regs
    }

    /// When the core can execute its next instruction.
    pub fn ready_at(&self) -> Cycle {
        self.ready_at
    }

    /// Instructions retired since the program was loaded.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Returns the core to its just-constructed state: no program,
    /// zeroed registers, idle at cycle zero.
    pub(crate) fn reset(&mut self) {
        self.regs.reset();
        self.program = None;
        self.pc_index = 0;
        self.state = CoreState::Idle;
        self.ready_at = Cycle::ZERO;
        self.retired = 0;
    }

    pub(crate) fn load(&mut self, program: Program, start_at: Cycle) {
        self.program = Some(program);
        self.pc_index = 0;
        self.state = CoreState::Running;
        self.ready_at = start_at;
        self.retired = 0;
        // Registers intentionally persist across loads so a harness can
        // pass arguments; call `regs_mut().reset()` for a cold start.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_isa::Program;

    #[test]
    fn fresh_core_is_idle() {
        let c = Core::new(3);
        assert_eq!(c.id(), 3);
        assert_eq!(c.state(), CoreState::Idle);
        assert_eq!(c.pc(), None);
    }

    #[test]
    fn load_sets_running() {
        let mut c = Core::new(0);
        let p = Program::parse("halt\n").unwrap();
        c.load(p, Cycle::new(10));
        assert_eq!(c.state(), CoreState::Running);
        assert_eq!(c.ready_at(), Cycle::new(10));
        assert_eq!(c.pc(), Some(0x8000));
    }
}
