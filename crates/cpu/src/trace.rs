//! Memory access tracing for attack analysis.

use prefender_sim::{AccessKind, Addr, Cycle, Level};

/// One traced memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Core that issued the access.
    pub core: usize,
    /// PC of the load/store instruction.
    pub pc: u64,
    /// Accessed address.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// Observed load-to-use latency in cycles — the attacker's measurement.
    pub latency: u64,
    /// Level that served the access.
    pub served_by: Level,
    /// When the access was issued.
    pub at: Cycle,
}

/// A bounded in-memory log of demand accesses.
///
/// The attack harness reads an attacker's probe latencies out of the trace
/// instead of emitting `rdtsc` pairs around every probe (both work; the
/// trace keeps attack programs shorter). Disabled traces cost nothing.
#[derive(Debug, Clone)]
pub struct MemTrace {
    entries: Vec<TraceEntry>,
    enabled: bool,
    capacity: usize,
    dropped: u64,
}

impl MemTrace {
    /// Default maximum retained entries.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a disabled trace (enable with [`MemTrace::set_enabled`]).
    pub fn new() -> Self {
        MemTrace {
            entries: Vec::new(),
            enabled: false,
            capacity: Self::DEFAULT_CAPACITY,
            dropped: 0,
        }
    }

    /// Turns recording on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// `true` when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Caps retained entries (older entries are kept, new ones dropped).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Appends an entry when enabled and under capacity.
    pub fn record(&mut self, e: TraceEntry) {
        if !self.enabled {
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(e);
        } else {
            self.dropped += 1;
        }
    }

    /// All retained entries in program order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries issued by one load/store PC (the usual attack query).
    pub fn by_pc(&self, pc: u64) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.pc == pc)
    }

    /// Entries issued by one core.
    pub fn by_core(&self, core: usize) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.core == core)
    }

    /// Number of entries dropped after hitting capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears all entries (keeps enablement and capacity).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dropped = 0;
    }
}

impl Default for MemTrace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pc: u64, core: usize) -> TraceEntry {
        TraceEntry {
            core,
            pc,
            addr: Addr::new(0x1000),
            kind: AccessKind::Read,
            latency: 4,
            served_by: Level::L1,
            at: Cycle::ZERO,
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = MemTrace::new();
        t.record(entry(1, 0));
        assert!(t.entries().is_empty());
    }

    #[test]
    fn enabled_records() {
        let mut t = MemTrace::new();
        t.set_enabled(true);
        t.record(entry(1, 0));
        t.record(entry(2, 1));
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.by_pc(1).count(), 1);
        assert_eq!(t.by_core(1).count(), 1);
    }

    #[test]
    fn capacity_drops_new_entries() {
        let mut t = MemTrace::new();
        t.set_enabled(true);
        t.set_capacity(1);
        t.record(entry(1, 0));
        t.record(entry(2, 0));
        assert_eq!(t.entries().len(), 1);
        assert_eq!(t.entries()[0].pc, 1);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut t = MemTrace::new();
        t.set_enabled(true);
        t.record(entry(1, 0));
        t.clear();
        assert!(t.entries().is_empty());
        assert!(t.is_enabled());
    }
}
