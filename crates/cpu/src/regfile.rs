//! The architectural register file.

use prefender_isa::{Operand, Reg, NUM_REGS};

/// 32 × 64-bit architectural registers, all starting at zero.
///
/// # Examples
///
/// ```
/// use prefender_cpu::RegFile;
/// use prefender_isa::{Reg, Operand};
///
/// let mut rf = RegFile::new();
/// rf.write(Reg::R3, 42);
/// assert_eq!(rf.read(Reg::R3), 42);
/// assert_eq!(rf.value(Operand::Reg(Reg::R3)), 42);
/// assert_eq!(rf.value(Operand::Imm(-1)), u64::MAX);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFile {
    regs: [u64; NUM_REGS],
}

impl RegFile {
    /// A zeroed register file.
    pub fn new() -> Self {
        RegFile { regs: [0; NUM_REGS] }
    }

    /// Reads a register.
    #[inline]
    pub fn read(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn write(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Resolves an operand: register content or sign-extended immediate.
    #[inline]
    pub fn value(&self, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.read(r),
            Operand::Imm(i) => i as u64,
        }
    }

    /// Zeroes every register.
    pub fn reset(&mut self) {
        self.regs = [0; NUM_REGS];
    }
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed() {
        let rf = RegFile::new();
        for r in Reg::all() {
            assert_eq!(rf.read(r), 0);
        }
    }

    #[test]
    fn write_read_round_trip() {
        let mut rf = RegFile::new();
        for (i, r) in Reg::all().enumerate() {
            rf.write(r, i as u64 * 3);
        }
        for (i, r) in Reg::all().enumerate() {
            assert_eq!(rf.read(r), i as u64 * 3);
        }
    }

    #[test]
    fn immediates_sign_extend() {
        let rf = RegFile::new();
        assert_eq!(rf.value(Operand::Imm(-2)), u64::MAX - 1);
        assert_eq!(rf.value(Operand::Imm(7)), 7);
    }

    #[test]
    fn reset_zeroes() {
        let mut rf = RegFile::new();
        rf.write(Reg::R9, 1);
        rf.reset();
        assert_eq!(rf.read(Reg::R9), 0);
    }
}
