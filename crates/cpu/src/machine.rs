//! The multi-core machine: time-ordered execution with prefetcher plumbing.

use std::fmt;

use prefender_isa::Instr;
#[cfg(test)]
use prefender_isa::Reg;
use prefender_prefetch::{AccessEvent, PrefetchRequest, Prefetcher, RetireEvent, RetireInterest};
use prefender_sim::{AccessKind, Addr, Cycle, HierarchyConfig, MemorySystem};

use crate::core_model::{Core, CoreState};
use crate::trace::{MemTrace, TraceEntry};

/// Per-instruction timing costs and execution limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuConfig {
    /// Cycles for simple ALU ops, moves, `li`, `rdtsc`, `nop`.
    pub alu_cost: u64,
    /// Cycles for multiplication.
    pub mul_cost: u64,
    /// Cycles for branches (taken or not).
    pub branch_cost: u64,
    /// Retire cost of a store (the cache access happens asynchronously
    /// through a store buffer; only state effects are modelled).
    pub store_cost: u64,
    /// Base cost of a `flush`, added to the hierarchy's flush latency.
    pub flush_cost: u64,
    /// Model instruction fetch through the L1I (misses stall the core).
    pub model_fetch: bool,
    /// Safety cap on totally retired instructions per [`Machine::run`].
    pub max_instructions: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            alu_cost: 1,
            mul_cost: 3,
            branch_cost: 1,
            store_cost: 1,
            flush_cost: 1,
            model_fetch: true,
            max_instructions: 200_000_000,
        }
    }
}

/// What a [`Machine::run`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Wall-clock cycles: the latest `ready_at` over all cores.
    pub cycles: u64,
    /// Instructions retired across all cores during this run.
    pub instructions: u64,
    /// `true` when the run stopped at the instruction cap, not at `halt`.
    pub truncated: bool,
}

impl RunSummary {
    /// Instructions per cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for RunSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions in {} cycles (IPC {:.3})",
            self.instructions,
            self.cycles,
            self.ipc()
        )
    }
}

/// The sparse data memory: keyed by 64-bit addresses and never iterated,
/// so the shared SplitMix64-finalizer hasher applies (see
/// [`prefender_sim::Mix64Map`]) — it just makes every simulated
/// load/store cheaper.
type AddrMap = prefender_sim::Mix64Map<u64>;

/// Notifies a core's prefetcher of one demand access and issues the
/// proposed prefetches — over the caller's already-destructured machine
/// fields so `step_core`'s disjoint borrows stay intact. The scratch
/// buffer is cleared (not shrunk) per access: no allocation once warm.
/// Emits the flight recorder's retired-access event — the latency stream a
/// measuring attacker observes. Disarmed (the default) this is one relaxed
/// atomic load; the set index is only computed inside the armed closure.
fn record_access(
    mem: &MemorySystem,
    core: usize,
    pc: u64,
    addr: Addr,
    now: Cycle,
    outcome: &prefender_sim::AccessOutcome,
) {
    let latency = outcome.latency;
    let served_by = outcome.served_by;
    prefender_obs::trace_event(|| prefender_obs::TraceEvent::Access {
        at: u64::from(now),
        core: core as u32,
        pc,
        set: mem.config().l1d.set_index(addr) as u32,
        latency,
        level: match served_by {
            prefender_sim::Level::L1 => 0,
            prefender_sim::Level::L2 => 1,
            prefender_sim::Level::Memory => 2,
        },
    });
}

fn notify_access(
    mem: &mut MemorySystem,
    pf: &mut dyn Prefetcher,
    scratch: &mut Vec<PrefetchRequest>,
    ev: &AccessEvent,
) {
    let _span = prefender_obs::span("defense");
    scratch.clear();
    pf.on_access_into(ev, &|a| mem.probe_l1d(ev.core, a), scratch);
    for r in scratch.iter() {
        mem.prefetch(ev.core, r.addr, r.source, ev.now);
    }
}

/// A multi-core machine: cores + hierarchy + per-core prefetchers + sparse
/// data memory + access trace.
///
/// Cores execute in global time order: each [`Machine::step`] runs one
/// instruction on the core whose `ready_at` is earliest, so two cores'
/// memory accesses interleave exactly as their latencies dictate — the
/// paper's cross-core attacks depend on this.
pub struct Machine {
    cfg: CpuConfig,
    mem: MemorySystem,
    cores: Vec<Core>,
    prefetchers: Vec<Option<Box<dyn Prefetcher>>>,
    /// Per-core cache of `prefetchers[c].retire_interest()`, so the
    /// per-instruction retire gate is one enum compare instead of a
    /// virtual call.
    retire_interest: Vec<RetireInterest>,
    data: AddrMap,
    trace: MemTrace,
    /// Reusable prefetch-request buffer handed to
    /// `Prefetcher::on_access_into`: cleared (not shrunk) per access, so
    /// the notify path performs no allocation once warm.
    prefetch_scratch: Vec<PrefetchRequest>,
    /// Observability: batched consecutive-`nop` retires dispatched via
    /// [`Machine::retire_nop_run`] (always-on plain counter).
    retire_fast_dispatches: u64,
    /// Observability: instructions retired through those batches.
    retire_fast_nops: u64,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cores.len())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds a machine over a fresh hierarchy with default CPU timing.
    pub fn new(hierarchy: HierarchyConfig) -> Self {
        Self::with_cpu_config(hierarchy, CpuConfig::default())
    }

    /// Builds a machine with explicit CPU timing.
    pub fn with_cpu_config(hierarchy: HierarchyConfig, cfg: CpuConfig) -> Self {
        let n = hierarchy.n_cores;
        Machine {
            cfg,
            mem: MemorySystem::new(hierarchy),
            cores: (0..n).map(Core::new).collect(),
            prefetchers: (0..n).map(|_| None).collect(),
            retire_interest: vec![RetireInterest::None; n],
            data: AddrMap::default(),
            trace: MemTrace::new(),
            prefetch_scratch: Vec::new(),
            retire_fast_dispatches: 0,
            retire_fast_nops: 0,
        }
    }

    /// Returns the machine to its just-constructed state without
    /// releasing any allocation: the hierarchy and every core reset in
    /// place, attached prefetchers keep their configuration but lose all
    /// learned state and counters, and the sparse data memory and trace
    /// are cleared (trace enablement is kept). Behaviour after `reset`
    /// is bit-identical to a freshly built machine with the same
    /// hierarchy, CPU config and prefetcher stack — the contract the
    /// reusable attack runner in `prefender-attacks` builds on.
    pub fn reset(&mut self) {
        self.mem.reset();
        for c in &mut self.cores {
            c.reset();
        }
        for p in self.prefetchers.iter_mut().flatten() {
            p.reset();
        }
        self.data.clear();
        self.trace.clear();
        self.retire_fast_dispatches = 0;
        self.retire_fast_nops = 0;
    }

    /// The memory hierarchy (stats, probes).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable hierarchy access (warm-up fills, stat resets).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// A core, for inspection.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core(&self, core: usize) -> &Core {
        &self.cores[core]
    }

    /// Mutable core access (register setup).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_mut(&mut self, core: usize) -> &mut Core {
        &mut self.cores[core]
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Batched consecutive-`nop` retire dispatches (see
    /// [`Machine::retire_nop_run`]) and the instructions they retired —
    /// how often the hottest dispatch shortcut actually fires.
    pub fn retire_fast_path(&self) -> (u64, u64) {
        (self.retire_fast_dispatches, self.retire_fast_nops)
    }

    /// The access trace.
    pub fn trace(&self) -> &MemTrace {
        &self.trace
    }

    /// Mutable trace access (enable, clear).
    pub fn trace_mut(&mut self) -> &mut MemTrace {
        &mut self.trace
    }

    /// Attaches a prefetcher to `core`'s L1D, replacing any previous one.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_prefetcher(&mut self, core: usize, p: Box<dyn Prefetcher>) {
        self.retire_interest[core] = p.retire_interest();
        self.prefetchers[core] = Some(p);
    }

    /// The prefetcher attached to `core`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn prefetcher(&self, core: usize) -> Option<&dyn Prefetcher> {
        self.prefetchers[core].as_deref()
    }

    /// Mutable access to `core`'s prefetcher (stat queries on concrete types).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn prefetcher_mut(&mut self, core: usize) -> Option<&mut (dyn Prefetcher + '_)> {
        match self.prefetchers[core].as_mut() {
            Some(b) => Some(&mut **b),
            None => None,
        }
    }

    /// Loads `program` on `core`, starting when the core is next free.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn load_program(&mut self, core: usize, program: prefender_isa::Program) {
        let at = self.cores[core].ready_at;
        self.cores[core].load(program, at);
    }

    /// Loads `program` on `core` to begin no earlier than `start`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn load_program_at(&mut self, core: usize, program: prefender_isa::Program, start: Cycle) {
        let at = self.cores[core].ready_at.max(start);
        self.cores[core].load(program, at);
    }

    /// Writes a 64-bit word of simulated data memory.
    pub fn write_data(&mut self, addr: u64, value: u64) {
        self.data.insert(addr, value);
    }

    /// Reads a 64-bit word of simulated data memory (unwritten = 0).
    pub fn read_data(&self, addr: u64) -> u64 {
        self.data.get(&addr).copied().unwrap_or(0)
    }

    /// Latest point in simulated time any core has reached.
    pub fn now(&self) -> Cycle {
        self.cores.iter().map(|c| c.ready_at).max().unwrap_or(Cycle::ZERO)
    }

    fn runnable(&self) -> Option<usize> {
        match self.cores.as_slice() {
            // The overwhelmingly common shapes (single-core cells and
            // two-core cross-core attacks) resolve without the iterator
            // chain; ties keep `min_by_key`'s first-wins order.
            [a] => (a.state == CoreState::Running).then_some(0),
            [a, b] => match (a.state == CoreState::Running, b.state == CoreState::Running) {
                (true, true) => Some(usize::from(b.ready_at < a.ready_at)),
                (true, false) => Some(0),
                (false, true) => Some(1),
                (false, false) => None,
            },
            _ => self
                .cores
                .iter()
                .filter(|c| c.state == CoreState::Running)
                .min_by_key(|c| c.ready_at)
                .map(|c| c.id()),
        }
    }

    /// Executes one instruction on the earliest-ready running core.
    ///
    /// Returns `false` when no core is runnable.
    pub fn step(&mut self) -> bool {
        let Some(c) = self.runnable() else { return false };
        self.step_core(c);
        true
    }

    /// Retires a run of consecutive `nop`s on core `c` in one dispatch,
    /// bounded by `budget` instructions. Only legal when instruction
    /// fetch is unmodelled (each fetch would touch the L1I) and the
    /// core's prefetcher ignores non-register-writing retires — then a
    /// `nop` has *no* effect beyond `ready_at`/`pc_index`/`retired`
    /// bookkeeping, so retiring `k` of them at once is indistinguishable
    /// from `k` single steps (including to the other cores: a `nop`
    /// never touches the memory system, so interleaving order against
    /// other cores' accesses is unobservable). Attack programs spend
    /// ~80% of their retired instructions in measurement-spacing `nop`
    /// runs, which makes this the single hottest dispatch shortcut.
    ///
    /// Returns how many instructions were retired (0 = the current
    /// instruction is not a batchable `nop`; the caller single-steps).
    fn retire_nop_run(&mut self, c: usize, budget: u64) -> u64 {
        if self.cfg.model_fetch || self.retire_interest[c] == RetireInterest::All {
            return 0;
        }
        let core = &mut self.cores[c];
        let Some(prog) = core.program.as_ref() else { return 0 };
        let mut k = 0u64;
        while k < budget {
            match prog.instr(core.pc_index + k as usize) {
                Some(Instr::Nop) => k += 1,
                _ => break,
            }
        }
        if k > 0 {
            core.pc_index += k as usize;
            core.ready_at += k * self.cfg.alu_cost;
            core.retired += k;
            self.retire_fast_dispatches += 1;
            self.retire_fast_nops += k;
        }
        k
    }

    /// One scheduling decision for [`Machine::run`]: the earliest-ready
    /// core retires either one instruction or a whole `nop` run (at most
    /// `budget` instructions). Returns how many instructions retired,
    /// or `None` when no core is runnable.
    fn step_budget(&mut self, budget: u64) -> Option<u64> {
        let c = self.runnable()?;
        let batched = self.retire_nop_run(c, budget);
        if batched > 0 {
            return Some(batched);
        }
        self.step_core(c);
        Some(1)
    }

    /// Runs until every core halts (or the instruction cap trips).
    pub fn run(&mut self) -> RunSummary {
        let start_retired: u64 = self.cores.iter().map(|c| c.retired).sum();
        let mut executed = 0u64;
        while executed < self.cfg.max_instructions {
            match self.step_budget(self.cfg.max_instructions - executed) {
                None => {
                    let total: u64 = self.cores.iter().map(|c| c.retired).sum();
                    return RunSummary {
                        cycles: self.now().raw(),
                        instructions: total - start_retired,
                        truncated: false,
                    };
                }
                Some(k) => executed += k,
            }
        }
        let total: u64 = self.cores.iter().map(|c| c.retired).sum();
        RunSummary {
            cycles: self.now().raw(),
            instructions: total - start_retired,
            truncated: true,
        }
    }

    /// Runs until `deadline` (useful for phase-structured attack drivers).
    pub fn run_until(&mut self, deadline: Cycle) -> RunSummary {
        let start_retired: u64 = self.cores.iter().map(|c| c.retired).sum();
        let mut executed = 0u64;
        while executed < self.cfg.max_instructions {
            match self.runnable() {
                Some(c) if self.cores[c].ready_at < deadline => {
                    self.step_core(c);
                    executed += 1;
                }
                _ => break,
            }
        }
        let total: u64 = self.cores.iter().map(|c| c.retired).sum();
        RunSummary {
            cycles: self.now().raw(),
            instructions: total - start_retired,
            truncated: executed >= self.cfg.max_instructions,
        }
    }

    fn step_core(&mut self, c: usize) {
        // One destructure up front: every field borrow below is disjoint,
        // so the dispatch loop pays the `cores[c]` bounds check once
        // instead of once per register access.
        let Machine {
            cfg,
            mem,
            cores,
            prefetchers,
            retire_interest,
            data,
            trace,
            prefetch_scratch,
            retire_fast_dispatches: _,
            retire_fast_nops: _,
        } = self;
        let core = &mut cores[c];
        let mut t = core.ready_at;
        let (instr, pc) = {
            let prog = core.program.as_ref().expect("running core has a program");
            match prog.instr(core.pc_index) {
                Some(i) => (*i, prog.pc_of(core.pc_index)),
                None => {
                    core.state = CoreState::Halted;
                    return;
                }
            }
        };

        if cfg.model_fetch {
            let _span = prefender_obs::span("fetch");
            t += mem.fetch(c, Addr::new(pc), t);
        }

        // The execute span covers dispatch, the memory access and the
        // in-line defense notification; nested spans (settle, defense,
        // expiry) subtract themselves from its self-time.
        let execute_span = prefender_obs::span("execute");
        let mut next = core.pc_index + 1;
        let cost = match instr {
            Instr::LoadImm { rd, imm } => {
                core.regs.write(rd, imm as u64);
                cfg.alu_cost
            }
            Instr::Load { rd, base, offset } => {
                let addr = Addr::new(core.regs.read(base).wrapping_add(offset as u64));
                let outcome = mem.access(c, addr, AccessKind::Read, t);
                let value = data.get(&addr.raw()).copied().unwrap_or(0);
                core.regs.write(rd, value);
                trace.record(TraceEntry {
                    core: c,
                    pc,
                    addr,
                    kind: AccessKind::Read,
                    latency: outcome.latency,
                    served_by: outcome.served_by,
                    at: t,
                });
                record_access(mem, c, pc, addr, t, &outcome);
                if let Some(pf) = prefetchers[c].as_mut() {
                    let ev = AccessEvent {
                        core: c,
                        pc,
                        vaddr: addr,
                        base: Some(base),
                        kind: AccessKind::Read,
                        outcome,
                        now: t,
                    };
                    notify_access(mem, pf.as_mut(), prefetch_scratch, &ev);
                }
                outcome.latency
            }
            Instr::Store { src, base, offset } => {
                let addr = Addr::new(core.regs.read(base).wrapping_add(offset as u64));
                let outcome = mem.access(c, addr, AccessKind::Write, t);
                let value = core.regs.read(src);
                data.insert(addr.raw(), value);
                trace.record(TraceEntry {
                    core: c,
                    pc,
                    addr,
                    kind: AccessKind::Write,
                    latency: outcome.latency,
                    served_by: outcome.served_by,
                    at: t,
                });
                record_access(mem, c, pc, addr, t, &outcome);
                if let Some(pf) = prefetchers[c].as_mut() {
                    let ev = AccessEvent {
                        core: c,
                        pc,
                        vaddr: addr,
                        base: Some(base),
                        kind: AccessKind::Write,
                        outcome,
                        now: t,
                    };
                    notify_access(mem, pf.as_mut(), prefetch_scratch, &ev);
                }
                cfg.store_cost
            }
            Instr::Add { rd, a, b } => {
                let v = core.regs.read(a).wrapping_add(core.regs.value(b));
                core.regs.write(rd, v);
                cfg.alu_cost
            }
            Instr::Sub { rd, a, b } => {
                let v = core.regs.read(a).wrapping_sub(core.regs.value(b));
                core.regs.write(rd, v);
                cfg.alu_cost
            }
            Instr::Mul { rd, a, b } => {
                let v = core.regs.read(a).wrapping_mul(core.regs.value(b));
                core.regs.write(rd, v);
                cfg.mul_cost
            }
            Instr::Shl { rd, a, b } => {
                let sh = core.regs.value(b) & 63;
                let v = core.regs.read(a).wrapping_shl(sh as u32);
                core.regs.write(rd, v);
                cfg.alu_cost
            }
            Instr::Shr { rd, a, b } => {
                let sh = core.regs.value(b) & 63;
                let v = core.regs.read(a).wrapping_shr(sh as u32);
                core.regs.write(rd, v);
                cfg.alu_cost
            }
            Instr::And { rd, a, b } => {
                let v = core.regs.read(a) & core.regs.value(b);
                core.regs.write(rd, v);
                cfg.alu_cost
            }
            Instr::Or { rd, a, b } => {
                let v = core.regs.read(a) | core.regs.value(b);
                core.regs.write(rd, v);
                cfg.alu_cost
            }
            Instr::Xor { rd, a, b } => {
                let v = core.regs.read(a) ^ core.regs.value(b);
                core.regs.write(rd, v);
                cfg.alu_cost
            }
            Instr::Mov { rd, rs } => {
                let v = core.regs.read(rs);
                core.regs.write(rd, v);
                cfg.alu_cost
            }
            Instr::Flush { base, offset } => {
                let addr = Addr::new(core.regs.read(base).wrapping_add(offset as u64));
                let lat = mem.flush(addr, t);
                cfg.flush_cost + lat
            }
            Instr::Rdtsc { rd } => {
                core.regs.write(rd, t.raw());
                cfg.alu_cost
            }
            Instr::Nop => cfg.alu_cost,
            Instr::Jmp { target } => {
                next = target;
                cfg.branch_cost
            }
            Instr::Bnz { cond, target } => {
                if core.regs.read(cond) != 0 {
                    next = target;
                }
                cfg.branch_cost
            }
            Instr::Beq { a, b, target } => {
                if core.regs.read(a) == core.regs.read(b) {
                    next = target;
                }
                cfg.branch_cost
            }
            Instr::Blt { a, b, target } => {
                if core.regs.read(a) < core.regs.read(b) {
                    next = target;
                }
                cfg.branch_cost
            }
            Instr::Halt => {
                core.state = CoreState::Halted;
                0
            }
        };
        drop(execute_span);

        let wanted = match retire_interest[c] {
            RetireInterest::None => false,
            RetireInterest::RegWriters => instr.writes_reg(),
            RetireInterest::All => true,
        };
        if wanted {
            if let Some(pf) = prefetchers[c].as_mut() {
                let _span = prefender_obs::span("defense");
                pf.on_retire(&RetireEvent { core: c, pc, instr: &instr, now: t });
            }
        }

        core.pc_index = next;
        core.ready_at = t + cost;
        core.retired += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_isa::Program;
    use prefender_prefetch::TaggedPrefetcher;

    fn machine() -> Machine {
        Machine::new(HierarchyConfig::paper_baseline(1).unwrap())
    }

    #[test]
    fn arithmetic_program_computes() {
        let mut m = machine();
        m.load_program(
            0,
            Program::parse(
                "
                li r1, 6
                li r2, 7
                mul r3, r1, r2
                add r3, r3, 0x100
                halt
                ",
            )
            .unwrap(),
        );
        m.run();
        assert_eq!(m.core(0).regs().read(Reg::R3), 42 + 0x100);
        assert_eq!(m.core(0).state(), CoreState::Halted);
    }

    #[test]
    fn loads_return_stored_data() {
        let mut m = machine();
        m.write_data(0x5000, 0xDEAD);
        m.load_program(0, Program::parse("li r1, 0x5000\nld r2, 0(r1)\nhalt\n").unwrap());
        m.run();
        assert_eq!(m.core(0).regs().read(Reg::R2), 0xDEAD);
    }

    #[test]
    fn store_then_load_round_trips() {
        let mut m = machine();
        m.load_program(
            0,
            Program::parse("li r1, 0x6000\nli r2, 99\nst r2, 8(r1)\nld r3, 8(r1)\nhalt\n").unwrap(),
        );
        m.run();
        assert_eq!(m.core(0).regs().read(Reg::R3), 99);
        assert_eq!(m.read_data(0x6008), 99);
    }

    #[test]
    fn loop_executes_expected_iterations() {
        let mut m = machine();
        m.load_program(
            0,
            Program::parse(
                "
                li r1, 10
                li r2, 0
                top:
                add r2, r2, 1
                sub r1, r1, 1
                bnz r1, top
                halt
                ",
            )
            .unwrap(),
        );
        let s = m.run();
        assert_eq!(m.core(0).regs().read(Reg::R2), 10);
        assert_eq!(s.instructions, 2 + 3 * 10 + 1);
    }

    #[test]
    fn cold_load_costs_memory_latency() {
        let mut m = machine();
        m.trace_mut().set_enabled(true);
        m.load_program(
            0,
            Program::parse("li r1, 0x9000\nld r2, 0(r1)\nld r3, 0(r1)\nhalt\n").unwrap(),
        );
        m.run();
        let t = m.trace().entries();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].latency, 200);
        assert_eq!(t[1].latency, 4);
    }

    #[test]
    fn rdtsc_measures_latency_difference() {
        let mut m = machine();
        // Warm r4's line, then time a hit and a (flushed) miss.
        m.load_program(
            0,
            Program::parse(
                "
                li r1, 0x9000
                ld r2, 0(r1)      ; warm
                rdtsc r5
                ld r2, 0(r1)      ; hit
                rdtsc r6
                flush 0(r1)
                rdtsc r7
                ld r2, 0(r1)      ; miss
                rdtsc r8
                halt
                ",
            )
            .unwrap(),
        );
        m.run();
        let hit = m.core(0).regs().read(Reg::R6) - m.core(0).regs().read(Reg::R5);
        let miss = m.core(0).regs().read(Reg::R8) - m.core(0).regs().read(Reg::R7);
        assert!(miss > hit + 100, "hit {hit} vs miss {miss}");
    }

    #[test]
    fn flush_forces_next_load_to_memory() {
        let mut m = machine();
        m.trace_mut().set_enabled(true);
        m.load_program(
            0,
            Program::parse("li r1, 0x9000\nld r2, 0(r1)\nflush 0(r1)\nld r2, 0(r1)\nhalt\n")
                .unwrap(),
        );
        m.run();
        let t = m.trace().entries();
        assert_eq!(t[1].latency, 200);
    }

    #[test]
    fn prefetcher_receives_events_and_prefetches() {
        let mut m = machine();
        m.set_prefetcher(0, Box::new(TaggedPrefetcher::new(64, 1)));
        m.trace_mut().set_enabled(true);
        // Miss on 0x9000 triggers next-line prefetch of 0x9040; a later
        // access to 0x9040 should be (at least partially) covered.
        m.load_program(
            0,
            Program::parse(
                "
                li r1, 0x9000
                ld r2, 0(r1)
                li r3, 1000
                spin:
                sub r3, r3, 1
                bnz r3, spin
                ld r2, 64(r1)
                halt
                ",
            )
            .unwrap(),
        );
        m.run();
        assert_eq!(m.prefetcher(0).unwrap().issued(), 2, "miss + chained tag-bit use");
        let entries = m.trace().entries();
        let covered = entries.iter().find(|e| e.addr.raw() == 0x9040).unwrap();
        assert!(covered.latency <= 4, "prefetched line should be an L1 hit");
    }

    #[test]
    fn two_cores_interleave_in_time() {
        let mut m = Machine::new(HierarchyConfig::paper_baseline(2).unwrap());
        m.trace_mut().set_enabled(true);
        m.load_program(0, Program::parse("li r1, 0x9000\nld r2, 0(r1)\nhalt\n").unwrap());
        m.load_program(1, Program::parse("li r1, 0xA000\nld r2, 0(r1)\nhalt\n").unwrap());
        m.run();
        assert_eq!(m.core(0).state(), CoreState::Halted);
        assert_eq!(m.core(1).state(), CoreState::Halted);
        assert_eq!(m.trace().by_core(0).count(), 1);
        assert_eq!(m.trace().by_core(1).count(), 1);
    }

    #[test]
    fn cross_core_sharing_through_l2() {
        let mut m = Machine::new(HierarchyConfig::paper_baseline(2).unwrap());
        m.trace_mut().set_enabled(true);
        m.load_program(0, Program::parse("li r1, 0x9000\nld r2, 0(r1)\nhalt\n").unwrap());
        m.run();
        m.load_program(1, Program::parse("li r1, 0x9000\nld r2, 0(r1)\nhalt\n").unwrap());
        m.run();
        let second = m.trace().by_core(1).next().unwrap();
        assert_eq!(second.served_by, prefender_sim::Level::L2);
    }

    #[test]
    fn instruction_cap_truncates() {
        let mut m = Machine::with_cpu_config(
            HierarchyConfig::paper_baseline(1).unwrap(),
            CpuConfig { max_instructions: 10, ..CpuConfig::default() },
        );
        m.load_program(0, Program::parse("top: jmp top\n").unwrap());
        let s = m.run();
        assert!(s.truncated);
        assert_eq!(s.instructions, 10);
    }

    #[test]
    fn retire_fast_path_counters_track_batches() {
        let mut m = Machine::with_cpu_config(
            HierarchyConfig::paper_baseline(1).unwrap(),
            CpuConfig { model_fetch: false, ..CpuConfig::default() },
        );
        m.load_program(0, Program::parse("nop\nnop\nnop\nli r1, 1\nnop\nnop\nhalt\n").unwrap());
        m.run();
        let (dispatches, nops) = m.retire_fast_path();
        assert_eq!(dispatches, 2, "two separate nop runs");
        assert_eq!(nops, 5);
        m.reset();
        assert_eq!(m.retire_fast_path(), (0, 0));
        // With fetch modelled the fast path must not fire at all.
        let mut slow = machine();
        slow.load_program(0, Program::parse("nop\nnop\nhalt\n").unwrap());
        slow.run();
        assert_eq!(slow.retire_fast_path(), (0, 0));
    }

    #[test]
    fn running_off_the_end_halts() {
        let mut m = machine();
        m.load_program(0, Program::parse("nop\n").unwrap());
        let s = m.run();
        assert!(!s.truncated);
        assert_eq!(m.core(0).state(), CoreState::Halted);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut m = machine();
        m.load_program(0, Program::parse("top: nop\njmp top\n").unwrap());
        // 5000 cycles is far past the cold-fetch warm-up, so the overshoot
        // is at most one instruction's cost.
        m.run_until(Cycle::new(5000));
        assert!(m.now().raw() >= 4990 && m.now().raw() <= 5010, "now = {}", m.now());
        assert_eq!(m.core(0).state(), CoreState::Running);
    }

    #[test]
    fn summary_display() {
        let s = RunSummary { cycles: 100, instructions: 50, truncated: false };
        assert!(s.to_string().contains("IPC 0.500"));
    }

    fn attack_like_program() -> Program {
        Program::parse(
            "
            li r1, 0x9000
            ld r2, 0(r1)
            ld r3, 64(r1)
            flush 0(r1)
            ld r2, 0(r1)
            st r2, 128(r1)
            halt
            ",
        )
        .unwrap()
    }

    #[test]
    fn reset_replays_bit_identically_to_fresh() {
        let build = || {
            let mut m = Machine::new(HierarchyConfig::paper_baseline(1).unwrap());
            m.set_prefetcher(0, Box::new(TaggedPrefetcher::new(64, 1)));
            m.trace_mut().set_enabled(true);
            m
        };
        let mut fresh = build();
        fresh.write_data(0x9000, 7);
        fresh.load_program(0, attack_like_program());
        let fresh_summary = fresh.run();

        let mut reused = build();
        reused.write_data(0x9040, 99); // different data, to be wiped
        reused.load_program(0, attack_like_program());
        reused.run();
        reused.reset();
        assert_eq!(reused.now(), Cycle::ZERO);
        assert_eq!(reused.core(0).state(), CoreState::Idle);
        assert_eq!(reused.read_data(0x9040), 0, "data memory cleared");
        assert_eq!(reused.prefetcher(0).unwrap().issued(), 0);
        assert!(reused.trace().entries().is_empty());
        assert!(reused.trace().is_enabled(), "enablement survives reset");

        reused.write_data(0x9000, 7);
        reused.load_program(0, attack_like_program());
        let replay = reused.run();
        assert_eq!(replay, fresh_summary);
        assert_eq!(reused.trace().entries(), fresh.trace().entries());
        assert_eq!(reused.mem().l1d(0).stats(), fresh.mem().l1d(0).stats());
        assert_eq!(reused.core(0).regs().read(Reg::R2), fresh.core(0).regs().read(Reg::R2));
    }
}
