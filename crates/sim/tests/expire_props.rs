//! Property tests pinning the event-driven (min-heap) in-flight
//! completion path bit-for-bit against the original scan-and-sort
//! semantics on random prefetch schedules.
//!
//! The reference model re-implements the pre-heap algorithm through the
//! public API: it mirrors the in-flight set in its own map and, at each
//! expiry point, collects the due entries, sorts them by `(ready_at,
//! line_addr)` and applies them through plain [`Cache::fill`] calls in
//! that order — exactly what `expire_inflight` used to do. Any
//! divergence in fill order, eviction victims, statistics or residency
//! between the model and the real cache fails the property.

use std::collections::HashMap;

use proptest::prelude::*;

use prefender_sim::{
    Addr, Cache, CacheConfig, Cycle, EvictedLine, PrefetchSource, ReplacementPolicy,
};

/// One step of a random prefetch schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Register an in-flight prefetch of line `slot` completing after
    /// `delay` cycles.
    Inflight { slot: u64, delay: u64 },
    /// Cancel line `slot` (flush / back-invalidation path).
    Invalidate { slot: u64 },
    /// Demand-fill line `slot` right now (cancels any in-flight copy).
    Fill { slot: u64 },
    /// Advance time by `advance` and materialize everything due.
    Expire { advance: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    // 24 line slots over an 8-set cache: constant same-set collisions.
    prop_oneof![
        (0u64..24, 0u64..60).prop_map(|(slot, delay)| Op::Inflight { slot, delay }),
        (0u64..24).prop_map(|slot| Op::Invalidate { slot }),
        (0u64..24).prop_map(|slot| Op::Fill { slot }),
        (0u64..40).prop_map(|advance| Op::Expire { advance }),
    ]
}

fn addr_of(slot: u64) -> Addr {
    Addr::new(slot * 64)
}

fn source_of(slot: u64) -> PrefetchSource {
    match slot % 3 {
        0 => PrefetchSource::Basic,
        1 => PrefetchSource::ScaleTracker,
        _ => PrefetchSource::AccessTracker,
    }
}

/// The pre-heap reference: a cache that never uses `fill_inflight`, plus
/// a hand-maintained in-flight map replaying the old scan-sort-fill
/// expiry through public `fill` calls.
struct SortScanModel {
    cache: Cache,
    inflight: HashMap<u64, (Cycle, PrefetchSource)>,
}

impl SortScanModel {
    fn new(cfg: CacheConfig) -> Self {
        SortScanModel { cache: Cache::new(cfg), inflight: HashMap::new() }
    }

    fn fill_inflight(&mut self, addr: Addr, ready_at: Cycle, source: PrefetchSource) {
        let la = addr.line(64).raw();
        if self.cache.contains(addr) || self.inflight.contains_key(&la) {
            return;
        }
        self.inflight.insert(la, (ready_at, source));
    }

    fn invalidate(&mut self, addr: Addr) -> Option<EvictedLine> {
        self.inflight.remove(&addr.line(64).raw());
        self.cache.invalidate(addr)
    }

    fn fill(&mut self, addr: Addr, now: Cycle) -> Option<EvictedLine> {
        self.inflight.remove(&addr.line(64).raw());
        self.cache.fill(addr, now, None, false)
    }

    fn expire(&mut self, now: Cycle) -> Vec<EvictedLine> {
        // Verbatim old algorithm: collect due entries, sort by
        // (ready_at, line_addr), fill in that order.
        let mut ready: Vec<(Cycle, u64)> = self
            .inflight
            .iter()
            .filter(|(_, (t, _))| *t <= now)
            .map(|(&la, &(t, _))| (t, la))
            .collect();
        ready.sort_unstable();
        let mut evicted = Vec::new();
        for (_, la) in ready {
            let (t, source) = self.inflight.remove(&la).expect("collected above");
            if let Some(e) = self.cache.fill(Addr::new(la), t, Some(source), false) {
                evicted.push(e);
            }
        }
        evicted
    }
}

fn tiny_cfg() -> CacheConfig {
    // 1 KB, 2-way, 64 B lines => 8 sets; 24 slots = 3 lines per set.
    CacheConfig::new("P", 1024, 2, 64, 4).unwrap().with_replacement(ReplacementPolicy::Lru)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The heap-based cache and the sort-scan model stay bit-identical —
    /// same evictions in the same order, same residency, same stats —
    /// across random schedules of prefetches, cancellations, demand
    /// fills and expiries with mixed ready times and same-set collisions.
    #[test]
    fn heap_expiry_matches_sort_scan(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut real = Cache::new(tiny_cfg());
        let mut model = SortScanModel::new(tiny_cfg());
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Inflight { slot, delay } => {
                    let (a, t) = (addr_of(slot), Cycle::new(now + delay));
                    real.fill_inflight(a, t, source_of(slot));
                    model.fill_inflight(a, t, source_of(slot));
                }
                Op::Invalidate { slot } => {
                    let a = addr_of(slot);
                    prop_assert_eq!(real.invalidate(a), model.invalidate(a));
                }
                Op::Fill { slot } => {
                    let a = addr_of(slot);
                    prop_assert_eq!(real.fill(a, Cycle::new(now), None, false),
                                    model.fill(a, Cycle::new(now)));
                }
                Op::Expire { advance } => {
                    now += advance;
                    let evs = real.expire_inflight(Cycle::new(now));
                    let model_evs = model.expire(Cycle::new(now));
                    prop_assert_eq!(evs, model_evs, "eviction stream diverged at t={}", now);
                }
            }
            // The in-flight view must agree at every step, not just at
            // expiry points.
            for slot in 0..24u64 {
                let a = addr_of(slot);
                prop_assert_eq!(
                    real.contains_or_inflight(a),
                    model.cache.contains(a)
                        || model.inflight.contains_key(&a.line(64).raw()),
                    "in-flight view diverged for slot {} at t={}", slot, now
                );
            }
        }
        // Drain everything still pending and compare the final states.
        now += 10_000;
        prop_assert_eq!(real.expire_inflight(Cycle::new(now)), model.expire(Cycle::new(now)));
        prop_assert_eq!(real.resident_lines(), model.cache.resident_lines());
        prop_assert_eq!(real.occupancy(), model.cache.occupancy());
        prop_assert_eq!(real.stats(), model.cache.stats());
    }

    /// `expire_inflight` on an idle (or all-pending) queue returns
    /// nothing and changes nothing, at any time.
    #[test]
    fn idle_expiry_is_inert(slots in prop::collection::vec(0u64..24, 0..8), at in 0u64..100) {
        let mut c = Cache::new(tiny_cfg());
        for &s in &slots {
            c.fill_inflight(addr_of(s), Cycle::new(200 + s), source_of(s));
        }
        let before = *c.stats();
        prop_assert!(c.expire_inflight(Cycle::new(at)).is_empty());
        prop_assert_eq!(c.occupancy(), 0);
        prop_assert_eq!(c.stats(), &before);
        for &s in &slots {
            prop_assert!(c.contains_or_inflight(addr_of(s)), "pending entry lost");
        }
    }
}
