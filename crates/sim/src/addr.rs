//! Physical addresses and address arithmetic.

use std::fmt;

/// A physical byte address in the simulated memory.
///
/// `Addr` is a transparent newtype around `u64` providing the address
/// arithmetic the simulator and the prefetchers need: cacheline alignment,
/// page extraction and bounded signed offsets. Formatting with `{:#x}` works
/// as it would for the raw integer.
///
/// # Examples
///
/// ```
/// use prefender_sim::Addr;
///
/// let a = Addr::new(0x12345);
/// assert_eq!(a.line(64).raw(), 0x12340);
/// assert_eq!(a.page(4096).raw(), 0x12000);
/// assert!(a.same_page(Addr::new(0x12FFF), 4096));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The zero address.
    pub const ZERO: Addr = Addr(0);

    /// Creates an address from a raw byte value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address aligned down to the start of its cacheline.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `line_size` is not a power of two.
    #[inline]
    pub fn line(self, line_size: u64) -> Addr {
        debug_assert!(line_size.is_power_of_two(), "line size must be a power of two");
        Addr(self.0 & !(line_size - 1))
    }

    /// Returns the address aligned down to the start of its page.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `page_size` is not a power of two.
    #[inline]
    pub fn page(self, page_size: u64) -> Addr {
        debug_assert!(page_size.is_power_of_two(), "page size must be a power of two");
        Addr(self.0 & !(page_size - 1))
    }

    /// Returns `true` when `self` and `other` live on the same page.
    #[inline]
    pub fn same_page(self, other: Addr, page_size: u64) -> bool {
        self.page(page_size) == other.page(page_size)
    }

    /// Returns `true` when `self` and `other` live on the same cacheline.
    #[inline]
    pub fn same_line(self, other: Addr, line_size: u64) -> bool {
        self.line(line_size) == other.line(line_size)
    }

    /// Offsets the address by a signed byte amount, returning `None` on
    /// overflow or underflow (an address can never be negative).
    #[inline]
    pub fn offset(self, delta: i64) -> Option<Addr> {
        self.0.checked_add_signed(delta).map(Addr)
    }

    /// Offsets the address by a signed byte amount, saturating at the
    /// boundaries of the address space.
    #[inline]
    pub fn saturating_offset(self, delta: i64) -> Addr {
        if delta >= 0 {
            Addr(self.0.saturating_add(delta as u64))
        } else {
            Addr(self.0.saturating_sub(delta.unsigned_abs()))
        }
    }

    /// Absolute distance in bytes between two addresses.
    #[inline]
    pub fn distance(self, other: Addr) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_alignment_masks_low_bits() {
        assert_eq!(Addr::new(0x12345).line(64), Addr::new(0x12340));
        assert_eq!(Addr::new(0x12340).line(64), Addr::new(0x12340));
        assert_eq!(Addr::new(0x1237F).line(64), Addr::new(0x12340));
        assert_eq!(Addr::new(0x12380).line(64), Addr::new(0x12380));
    }

    #[test]
    fn page_alignment_masks_low_bits() {
        assert_eq!(Addr::new(0x12FFF).page(4096), Addr::new(0x12000));
        assert_eq!(Addr::new(0x13000).page(4096), Addr::new(0x13000));
    }

    #[test]
    fn same_page_boundaries() {
        let p = 4096;
        assert!(Addr::new(0x1000).same_page(Addr::new(0x1FFF), p));
        assert!(!Addr::new(0x1FFF).same_page(Addr::new(0x2000), p));
    }

    #[test]
    fn same_line_boundaries() {
        assert!(Addr::new(0x100).same_line(Addr::new(0x13F), 64));
        assert!(!Addr::new(0x13F).same_line(Addr::new(0x140), 64));
    }

    #[test]
    fn offset_checked_behaviour() {
        assert_eq!(Addr::new(100).offset(-100), Some(Addr::new(0)));
        assert_eq!(Addr::new(100).offset(-101), None);
        assert_eq!(Addr::new(u64::MAX).offset(1), None);
        assert_eq!(Addr::new(0x1000).offset(0x200), Some(Addr::new(0x1200)));
    }

    #[test]
    fn saturating_offset_clamps() {
        assert_eq!(Addr::new(5).saturating_offset(-10), Addr::ZERO);
        assert_eq!(Addr::new(u64::MAX).saturating_offset(3), Addr::new(u64::MAX));
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Addr::new(0x1000);
        let b = Addr::new(0x1400);
        assert_eq!(a.distance(b), 0x400);
        assert_eq!(b.distance(a), 0x400);
        assert_eq!(a.distance(a), 0);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(0x1C00).to_string(), "0x1c00");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
        assert_eq!(format!("{:X}", Addr::new(255)), "FF");
        assert_eq!(format!("{:b}", Addr::new(5)), "101");
        assert_eq!(format!("{:o}", Addr::new(8)), "10");
    }

    #[test]
    fn conversions_round_trip() {
        let a: Addr = 0xdead_beefu64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 0xdead_beef);
    }
}
