//! A fast deterministic hasher for u64-keyed maps that are never
//! iterated.
//!
//! Several simulator-internal maps — a cache's in-flight prefetches, the
//! CPU's sparse data memory, the Access Tracker's PC index — are keyed by
//! 64-bit addresses, looked up on the hot path, and *never iterated*, so
//! their bucket order is unobservable. For those maps one SplitMix64
//! finalizer round replaces the standard library's SipHash with no
//! behavioural difference; it just makes every simulated access cheaper.
//! Do **not** use it for maps whose iteration order can reach an
//! artifact.

use std::collections::HashMap; // lint: ordered — never iterated, see module docs
use std::hash::BuildHasherDefault;

/// One-round SplitMix64-finalizer [`std::hash::Hasher`] for u64 keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct Mix64Hasher(u64);

impl std::hash::Hasher for Mix64Hasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a); the u64 key path below is the one
        // these maps actually exercise.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut z = n.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

/// A `u64 → V` hash map on [`Mix64Hasher`].
pub type Mix64Map<V> = HashMap<u64, V, BuildHasherDefault<Mix64Hasher>>; // lint: ordered

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: Mix64Map<u32> = Mix64Map::default();
        for k in 0..1000u64 {
            m.insert(k * 0x40, k as u32);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(&(k * 0x40)), Some(&(k as u32)));
        }
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn byte_fallback_hashes() {
        use std::hash::Hasher as _;
        let mut h = Mix64Hasher::default();
        h.write(b"abc");
        let a = h.finish();
        let mut h = Mix64Hasher::default();
        h.write(b"abd");
        assert_ne!(a, h.finish());
    }
}
