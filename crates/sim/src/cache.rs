//! A single set-associative cache array with in-flight prefetch tracking.

use std::collections::HashMap;

use crate::addr::Addr;
use crate::config::CacheConfig;
use crate::line::CacheLine;
use crate::replacement::ReplacementPolicy;
use crate::stats::{CacheStats, PrefetchSource};
use crate::time::Cycle;

/// Result of a demand lookup in one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The line was present.
    Hit {
        /// `true` when this was the first demand use of a prefetched line
        /// (the Tagged prefetcher's tag-bit event).
        first_prefetch_use: bool,
        /// Who installed the line (meaningful when `first_prefetch_use`).
        source: PrefetchSource,
    },
    /// The line is being prefetched but has not arrived yet; the demand
    /// access pays the remaining latency until `ready_at`.
    InFlight {
        /// When the prefetch completes.
        ready_at: Cycle,
        /// Who issued the prefetch.
        source: PrefetchSource,
    },
    /// The line is absent.
    Miss,
}

/// A line displaced by a fill, reported upward for write-back and for the
/// inclusive hierarchy's back-invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line-aligned address of the displaced line.
    pub addr: Addr,
    /// The line was dirty and must be written back.
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    ready_at: Cycle,
    source: PrefetchSource,
}

/// One set-associative cache array.
///
/// `Cache` models presence, recency and dirtiness — never data. It is
/// composed into a [`MemorySystem`](crate::MemorySystem) which drives the
/// multi-level (inclusive) behaviour; `Cache` itself only answers lookups,
/// picks victims and tracks in-flight prefetches.
///
/// # Examples
///
/// ```
/// use prefender_sim::{Cache, CacheConfig, Addr, Cycle, LookupResult};
///
/// # fn main() -> Result<(), prefender_sim::ConfigError> {
/// let mut c = Cache::new(CacheConfig::new("L1D", 1024, 2, 64, 4)?);
/// let a = Addr::new(0x80);
/// assert_eq!(c.demand_lookup(a, Cycle::ZERO), LookupResult::Miss);
/// c.fill(a, Cycle::ZERO, None, false);
/// assert!(matches!(c.demand_lookup(a, Cycle::new(1)), LookupResult::Hit { .. }));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<CacheLine>>,
    inflight: HashMap<u64, InFlight>,
    stats: CacheStats,
    fill_seq: u64,
    rng_state: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let n_sets = cfg.n_sets() as usize;
        let assoc = cfg.associativity() as usize;
        Cache {
            cfg,
            sets: vec![vec![CacheLine::empty(); assoc]; n_sets],
            inflight: HashMap::new(),
            stats: CacheStats::new(),
            fill_seq: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The cache's geometry and timing configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Read access to the event counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable access to the event counters (the hierarchy adds latencies).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    fn line_addr(&self, addr: Addr) -> u64 {
        addr.line(self.cfg.line_size()).raw()
    }

    fn set_of(&self, addr: Addr) -> usize {
        self.cfg.set_index(addr) as usize
    }

    /// Non-mutating presence check (installed lines only).
    pub fn contains(&self, addr: Addr) -> bool {
        let la = self.line_addr(addr);
        self.sets[self.set_of(addr)].iter().any(|l| l.valid && l.tag == la)
    }

    /// Presence check that also counts lines still in flight from a
    /// prefetch. PREFENDER's "not currently in the L1D cache" test uses
    /// this, so a line is never prefetched twice.
    pub fn contains_or_inflight(&self, addr: Addr) -> bool {
        self.contains(addr) || self.inflight.contains_key(&self.line_addr(addr))
    }

    /// Number of valid lines currently installed (test/debug helper).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().filter(|l| l.valid).count()
    }

    /// Materializes every in-flight prefetch whose completion time has
    /// passed. Called by the hierarchy before each lookup so that lazy
    /// completion is invisible to callers.
    ///
    /// Returns evicted lines (write-back / back-invalidation work for the
    /// hierarchy).
    pub fn expire_inflight(&mut self, now: Cycle) -> Vec<EvictedLine> {
        let mut ready: Vec<(Cycle, u64)> = self
            .inflight
            .iter()
            .filter(|(_, f)| f.ready_at <= now)
            .map(|(&la, f)| (f.ready_at, la))
            .collect();
        // Fill in completion order (ties by address): the map's iteration
        // order is hash-randomized per process, and when two expiring
        // fills target the same set the fill order picks the eviction
        // victim — sorting keeps whole-machine runs bit-deterministic.
        ready.sort_unstable();
        let ready: Vec<u64> = ready.into_iter().map(|(_, la)| la).collect();
        let mut evicted = Vec::new();
        for la in ready {
            let f = self.inflight.remove(&la).expect("key collected above");
            if let Some(e) = self.fill(Addr::new(la), f.ready_at, Some(f.source), false) {
                evicted.push(e);
            }
        }
        evicted
    }

    /// Performs a demand lookup, updating recency and prefetch-use
    /// bookkeeping. Does *not* update hit/miss counters — the hierarchy
    /// does, because only it knows the final latency.
    pub fn demand_lookup(&mut self, addr: Addr, now: Cycle) -> LookupResult {
        let la = self.line_addr(addr);
        let set = self.set_of(addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == la {
                line.last_touch = now;
                let first_use = line.prefetched;
                let source = line.source;
                if first_use {
                    line.prefetched = false;
                    self.stats.prefetch_useful += 1;
                }
                return LookupResult::Hit { first_prefetch_use: first_use, source };
            }
        }
        if let Some(f) = self.inflight.remove(&la) {
            // Late prefetch: materialize at its completion time (the
            // moment the demand access can actually use it); the caller
            // charges the remaining latency.
            self.stats.prefetch_late += 1;
            let evicted = self.fill(addr, f.ready_at.max(now), Some(f.source), false);
            debug_assert!(evicted.is_none() || evicted.unwrap().addr.raw() != la);
            // The demand access is about to use it: clear the tag bit.
            if let Some(line) = self.line_mut(addr) {
                line.prefetched = false;
            }
            return LookupResult::InFlight { ready_at: f.ready_at, source: f.source };
        }
        LookupResult::Miss
    }

    fn line_mut(&mut self, addr: Addr) -> Option<&mut CacheLine> {
        let la = self.line_addr(addr);
        let set = self.set_of(addr);
        self.sets[set].iter_mut().find(|l| l.valid && l.tag == la)
    }

    /// Marks an installed line dirty (store hit).
    pub fn mark_dirty(&mut self, addr: Addr) {
        if let Some(line) = self.line_mut(addr) {
            line.dirty = true;
        }
    }

    /// Refreshes a line's recency without demand-access bookkeeping.
    ///
    /// Used when a prefetch is served from this cache: the fill *reads*
    /// the line, so its replacement state is updated exactly as a demand
    /// hit would, but no hit/miss or tag-bit accounting applies.
    pub fn touch(&mut self, addr: Addr, now: Cycle) {
        if let Some(line) = self.line_mut(addr) {
            line.last_touch = now;
        }
    }

    /// Installs a line, evicting a victim if the set is full.
    ///
    /// `prefetch` attributes the fill to a prefetch source and sets the
    /// tag bit; `write` installs the line dirty (write-allocate).
    /// Filling an already-present line only refreshes recency.
    pub fn fill(
        &mut self,
        addr: Addr,
        now: Cycle,
        prefetch: Option<PrefetchSource>,
        write: bool,
    ) -> Option<EvictedLine> {
        let la = self.line_addr(addr);
        // Already present: refresh.
        if let Some(line) = self.line_mut(addr) {
            line.last_touch = now;
            if write {
                line.dirty = true;
            }
            return None;
        }
        self.inflight.remove(&la);
        let seq = self.fill_seq;
        self.fill_seq += 1;
        let set = self.set_of(addr);
        let victim_way = self.pick_victim(set);
        let victim = &mut self.sets[set][victim_way];
        let evicted = if victim.valid {
            self.stats.evictions += 1;
            if victim.prefetched {
                self.stats.prefetch_unused += 1;
            }
            Some(EvictedLine { addr: Addr::new(victim.tag), dirty: victim.dirty })
        } else {
            None
        };
        *victim = CacheLine {
            tag: la,
            valid: true,
            dirty: write,
            prefetched: prefetch.is_some(),
            source: prefetch.unwrap_or(PrefetchSource::Other),
            last_touch: now,
            fill_seq: seq,
        };
        if prefetch.is_some() {
            self.stats.prefetch_fills += 1;
        }
        evicted
    }

    /// Registers an in-flight prefetch completing at `ready_at`.
    ///
    /// No-op when the line is already installed or already in flight.
    pub fn fill_inflight(&mut self, addr: Addr, ready_at: Cycle, source: PrefetchSource) {
        let la = self.line_addr(addr);
        if self.contains(addr) || self.inflight.contains_key(&la) {
            return;
        }
        self.inflight.insert(la, InFlight { ready_at, source });
    }

    /// Removes a line (flush or back-invalidation). Also cancels any
    /// in-flight prefetch of the line.
    ///
    /// Returns the line's state if it was present (so the hierarchy can
    /// write back dirty data), `None` otherwise.
    pub fn invalidate(&mut self, addr: Addr) -> Option<EvictedLine> {
        let la = self.line_addr(addr);
        self.inflight.remove(&la);
        let set = self.set_of(addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == la {
                self.stats.invalidations += 1;
                if line.prefetched {
                    self.stats.prefetch_unused += 1;
                }
                let out = EvictedLine { addr: Addr::new(la), dirty: line.dirty };
                *line = CacheLine::empty();
                return Some(out);
            }
        }
        None
    }

    /// All line-aligned addresses currently installed (test/debug helper).
    pub fn resident_lines(&self) -> Vec<Addr> {
        let mut v: Vec<Addr> =
            self.sets.iter().flatten().filter(|l| l.valid).map(|l| Addr::new(l.tag)).collect();
        v.sort_unstable();
        v
    }

    fn pick_victim(&mut self, set: usize) -> usize {
        let ways = &self.sets[set];
        if let Some(i) = ways.iter().position(|l| !l.valid) {
            return i;
        }
        match self.cfg.replacement() {
            ReplacementPolicy::Lru => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_touch)
                .map(|(i, _)| i)
                .expect("associativity >= 1"),
            ReplacementPolicy::Fifo => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.fill_seq)
                .map(|(i, _)| i)
                .expect("associativity >= 1"),
            ReplacementPolicy::Random => {
                // xorshift64*: deterministic, cheap, good enough to ablate.
                let mut x = self.rng_state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng_state = x;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % ways.len() as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: u32, policy: ReplacementPolicy) -> Cache {
        // 512 B, `assoc`-way, 64 B lines => 8/assoc sets.
        let cfg = CacheConfig::new("T", 512, assoc, 64, 4).unwrap().with_replacement(policy);
        Cache::new(cfg)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x100);
        assert_eq!(c.demand_lookup(a, Cycle::ZERO), LookupResult::Miss);
        assert!(c.fill(a, Cycle::ZERO, None, false).is_none());
        assert!(c.contains(a));
        match c.demand_lookup(a, Cycle::new(1)) {
            LookupResult::Hit { first_prefetch_use, .. } => assert!(!first_prefetch_use),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn hit_anywhere_in_line() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        c.fill(Addr::new(0x100), Cycle::ZERO, None, false);
        assert!(c.contains(Addr::new(0x13F)));
        assert!(!c.contains(Addr::new(0x140)));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        // Set count = 4; 0x000 and 0x400 and 0x800 share set 0 (line/64 % 4).
        let a = Addr::new(0x000);
        let b = Addr::new(0x400);
        let d = Addr::new(0x800);
        c.fill(a, Cycle::new(0), None, false);
        c.fill(b, Cycle::new(1), None, false);
        // touch a so b becomes LRU
        c.demand_lookup(a, Cycle::new(2));
        let evicted = c.fill(d, Cycle::new(3), None, false).expect("set was full");
        assert_eq!(evicted.addr, b);
        assert!(c.contains(a) && c.contains(d) && !c.contains(b));
    }

    #[test]
    fn fifo_evicts_oldest_fill() {
        let mut c = tiny(2, ReplacementPolicy::Fifo);
        let a = Addr::new(0x000);
        let b = Addr::new(0x400);
        let d = Addr::new(0x800);
        c.fill(a, Cycle::new(0), None, false);
        c.fill(b, Cycle::new(1), None, false);
        c.demand_lookup(a, Cycle::new(2)); // recency must NOT matter
        let evicted = c.fill(d, Cycle::new(3), None, false).expect("set was full");
        assert_eq!(evicted.addr, a);
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let run = || {
            let mut c = tiny(2, ReplacementPolicy::Random);
            let mut evictions = Vec::new();
            for i in 0..16u64 {
                if let Some(e) = c.fill(Addr::new(i * 0x400), Cycle::new(i), None, false) {
                    evictions.push(e.addr.raw());
                }
            }
            evictions
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn prefetch_fill_sets_tag_bit_and_first_use_clears_it() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x100);
        c.fill(a, Cycle::ZERO, Some(PrefetchSource::ScaleTracker), false);
        assert_eq!(c.stats().prefetch_fills, 1);
        match c.demand_lookup(a, Cycle::new(1)) {
            LookupResult::Hit { first_prefetch_use, source } => {
                assert!(first_prefetch_use);
                assert_eq!(source, PrefetchSource::ScaleTracker);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.stats().prefetch_useful, 1);
        // Second use is an ordinary hit.
        match c.demand_lookup(a, Cycle::new(2)) {
            LookupResult::Hit { first_prefetch_use, .. } => assert!(!first_prefetch_use),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn inflight_prefetch_arrives_on_time() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x100);
        c.fill_inflight(a, Cycle::new(100), PrefetchSource::AccessTracker);
        assert!(c.contains_or_inflight(a));
        assert!(!c.contains(a));
        let evicted = c.expire_inflight(Cycle::new(100));
        assert!(evicted.is_empty());
        assert!(c.contains(a));
        assert_eq!(c.stats().prefetch_fills, 1);
    }

    #[test]
    fn demand_on_late_prefetch_reports_inflight() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x100);
        c.fill_inflight(a, Cycle::new(100), PrefetchSource::Basic);
        match c.demand_lookup(a, Cycle::new(40)) {
            LookupResult::InFlight { ready_at, source } => {
                assert_eq!(ready_at, Cycle::new(100));
                assert_eq!(source, PrefetchSource::Basic);
            }
            other => panic!("expected in-flight, got {other:?}"),
        }
        assert_eq!(c.stats().prefetch_late, 1);
        // The line materialized and is present afterwards, not counted useful
        // again.
        assert!(c.contains(a));
        assert_eq!(c.stats().prefetch_useful, 0);
    }

    #[test]
    fn invalidate_removes_line_and_inflight() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x100);
        let b = Addr::new(0x200);
        c.fill(a, Cycle::ZERO, None, false);
        c.fill_inflight(b, Cycle::new(50), PrefetchSource::Basic);
        assert!(c.invalidate(a).is_some());
        assert!(c.invalidate(b).is_none(), "inflight line was never installed");
        assert!(!c.contains(a));
        assert!(!c.contains_or_inflight(b));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn dirty_eviction_reports_writeback_needed() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x000);
        c.fill(a, Cycle::new(0), None, true); // write-allocate
        c.fill(Addr::new(0x400), Cycle::new(1), None, false);
        let e = c.fill(Addr::new(0x800), Cycle::new(2), None, false).unwrap();
        assert_eq!(e.addr, a);
        assert!(e.dirty);
    }

    #[test]
    fn mark_dirty_on_store_hit() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x100);
        c.fill(a, Cycle::ZERO, None, false);
        c.mark_dirty(a);
        let e = c.invalidate(a).unwrap();
        assert!(e.dirty);
    }

    #[test]
    fn unused_prefetch_eviction_counted() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        c.fill(Addr::new(0x000), Cycle::new(0), Some(PrefetchSource::Basic), false);
        c.fill(Addr::new(0x400), Cycle::new(1), None, false);
        c.fill(Addr::new(0x800), Cycle::new(2), None, false); // evicts the prefetch
        assert_eq!(c.stats().prefetch_unused, 1);
    }

    #[test]
    fn refill_refreshes_instead_of_duplicating() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x100);
        c.fill(a, Cycle::new(0), None, false);
        assert!(c.fill(a, Cycle::new(5), None, false).is_none());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn resident_lines_sorted() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        c.fill(Addr::new(0x400), Cycle::ZERO, None, false);
        c.fill(Addr::new(0x100), Cycle::ZERO, None, false);
        assert_eq!(c.resident_lines(), vec![Addr::new(0x100), Addr::new(0x400)]);
    }
}
