//! A single set-associative cache array with in-flight prefetch tracking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use prefender_obs::{trace_event, CacheTag, TraceEvent};

use crate::addr::Addr;
use crate::config::CacheConfig;
use crate::line::CacheLine;
use crate::replacement::ReplacementPolicy;
use crate::stats::{CacheStats, PrefetchSource};
use crate::time::Cycle;

/// Result of a demand lookup in one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The line was present.
    Hit {
        /// `true` when this was the first demand use of a prefetched line
        /// (the Tagged prefetcher's tag-bit event).
        first_prefetch_use: bool,
        /// Who installed the line (meaningful when `first_prefetch_use`).
        source: PrefetchSource,
    },
    /// The line is being prefetched but has not arrived yet; the demand
    /// access pays the remaining latency until `ready_at`.
    InFlight {
        /// When the prefetch completes.
        ready_at: Cycle,
        /// Who issued the prefetch.
        source: PrefetchSource,
    },
    /// The line is absent.
    Miss,
}

/// A line displaced by a fill, reported upward for write-back and for the
/// inclusive hierarchy's back-invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line-aligned address of the displaced line.
    pub addr: Addr,
    /// The line was dirty and must be written back.
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    ready_at: Cycle,
    source: PrefetchSource,
}

/// One set-associative cache array.
///
/// `Cache` models presence, recency and dirtiness — never data. It is
/// composed into a [`MemorySystem`](crate::MemorySystem) which drives the
/// multi-level (inclusive) behaviour; `Cache` itself only answers lookups,
/// picks victims and tracks in-flight prefetches.
///
/// # Examples
///
/// ```
/// use prefender_sim::{Cache, CacheConfig, Addr, Cycle, LookupResult};
///
/// # fn main() -> Result<(), prefender_sim::ConfigError> {
/// let mut c = Cache::new(CacheConfig::new("L1D", 1024, 2, 64, 4)?);
/// let a = Addr::new(0x80);
/// assert_eq!(c.demand_lookup(a, Cycle::ZERO), LookupResult::Miss);
/// c.fill(a, Cycle::ZERO, None, false);
/// assert!(matches!(c.demand_lookup(a, Cycle::new(1)), LookupResult::Hit { .. }));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// All lines, flattened set-major: set `s` occupies
    /// `sets[s * assoc .. (s + 1) * assoc]`. One contiguous allocation —
    /// a set lookup is one slice index, not a pointer chase through a
    /// nested `Vec`, and neighbouring ways share cache lines of the
    /// *host* machine.
    sets: Vec<CacheLine>,
    assoc: usize,
    inflight: crate::hash::Mix64Map<InFlight>,
    /// Completion events mirroring `inflight`, min-ordered by
    /// `(ready_at, line_addr)` so [`Cache::expire_inflight_into`] pops in
    /// the exact deterministic order the old sort-scan produced — and
    /// early-exits in O(1) when nothing is due. Entries may be stale
    /// (cancelled or already materialized); they are skipped on pop by
    /// checking the map.
    completions: BinaryHeap<Reverse<(Cycle, u64)>>,
    /// Sets that have held at least one installed line since the last
    /// reset; [`Cache::reset`] clears only these instead of sweeping the
    /// whole array. Capped at `n_sets` recordings — beyond that
    /// `touched_overflow` triggers a full sweep.
    touched_sets: Vec<u32>,
    touched_overflow: bool,
    stats: CacheStats,
    fill_seq: u64,
    rng_state: u64,
    /// Flight-recorder identity (`level << 4 | core`), assigned by the
    /// hierarchy. Not part of simulated state: it survives [`Cache::reset`]
    /// and standalone caches keep the 0 default.
    trace_id: CacheTag,
}

/// The replacement RNG's cold-start state (xorshift64* seed).
const COLD_RNG_STATE: u64 = 0x9E37_79B9_7F4A_7C15;

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let n_sets = cfg.n_sets() as usize;
        let assoc = cfg.associativity() as usize;
        Cache {
            cfg,
            sets: vec![CacheLine::empty(); n_sets * assoc],
            assoc,
            inflight: crate::hash::Mix64Map::default(),
            completions: BinaryHeap::new(),
            touched_sets: Vec::new(),
            touched_overflow: false,
            stats: CacheStats::new(),
            fill_seq: 0,
            rng_state: COLD_RNG_STATE,
            trace_id: 0,
        }
    }

    /// Sets this array's flight-recorder identity (see
    /// [`prefender_obs::CacheTag`]).
    pub fn set_trace_id(&mut self, id: CacheTag) {
        self.trace_id = id;
    }

    /// Returns the cache to its cold (just-constructed) state without
    /// releasing any allocation: installed lines are emptied (only the
    /// sets actually touched since the last reset are visited), in-flight
    /// prefetches are cancelled, statistics and the replacement state are
    /// zeroed. Behaviour after `reset` is bit-identical to a fresh
    /// [`Cache::new`] with the same config.
    pub fn reset(&mut self) {
        if self.touched_overflow {
            for line in &mut self.sets {
                if line.valid {
                    *line = CacheLine::empty();
                }
            }
        } else {
            let assoc = self.assoc;
            for i in 0..self.touched_sets.len() {
                let set = self.touched_sets[i] as usize;
                for line in &mut self.sets[set * assoc..(set + 1) * assoc] {
                    if line.valid {
                        *line = CacheLine::empty();
                    }
                }
            }
        }
        self.touched_sets.clear();
        self.touched_overflow = false;
        self.inflight.clear();
        self.completions.clear();
        self.stats.reset();
        self.fill_seq = 0;
        self.rng_state = COLD_RNG_STATE;
    }

    /// The cache's geometry and timing configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Read access to the event counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable access to the event counters (the hierarchy adds latencies).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    #[inline]
    fn line_addr(&self, addr: Addr) -> u64 {
        self.cfg.line_addr_of(addr)
    }

    #[inline]
    fn set_of(&self, addr: Addr) -> usize {
        self.cfg.set_index(addr) as usize
    }

    /// The ways of one set, as a contiguous slice (way order preserved —
    /// victim choice and fill order are identical to the nested layout).
    #[inline]
    fn ways(&self, set: usize) -> &[CacheLine] {
        &self.sets[set * self.assoc..(set + 1) * self.assoc]
    }

    #[inline]
    fn ways_mut(&mut self, set: usize) -> &mut [CacheLine] {
        &mut self.sets[set * self.assoc..(set + 1) * self.assoc]
    }

    /// Presence check for an already line-aligned address (the internal
    /// form: computes the set once and reuses the caller's alignment).
    #[inline]
    fn contains_line(&self, la: u64) -> bool {
        let set = self.cfg.set_index_of_line(la) as usize;
        self.ways(set).iter().any(|l| l.valid && l.tag == la)
    }

    /// Non-mutating presence check (installed lines only).
    pub fn contains(&self, addr: Addr) -> bool {
        self.contains_line(self.line_addr(addr))
    }

    /// Presence check that also counts lines still in flight from a
    /// prefetch. PREFENDER's "not currently in the L1D cache" test uses
    /// this, so a line is never prefetched twice.
    pub fn contains_or_inflight(&self, addr: Addr) -> bool {
        let la = self.line_addr(addr);
        self.contains_line(la) || self.inflight.contains_key(&la)
    }

    /// Number of valid lines currently installed (test/debug helper).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().filter(|l| l.valid).count()
    }

    /// `true` when at least one completion-queue entry is due at `now` —
    /// a single heap peek. The hierarchy uses this to open its `settle`
    /// profiling span only when settling will actually pop entries, so an
    /// armed span collector costs the idle access path nothing. (The peek
    /// may report a *cancelled* entry as due; settling then just discards
    /// it, which is still real queue work.)
    pub fn completion_due(&self, now: Cycle) -> bool {
        matches!(self.completions.peek(), Some(&Reverse((ready_at, _))) if ready_at <= now)
    }

    /// Materializes every in-flight prefetch whose completion time has
    /// passed. Called by the hierarchy before each lookup so that lazy
    /// completion is invisible to callers.
    ///
    /// Returns evicted lines (write-back / back-invalidation work for the
    /// hierarchy). Convenience wrapper over
    /// [`Cache::expire_inflight_into`] that allocates the result vector.
    pub fn expire_inflight(&mut self, now: Cycle) -> Vec<EvictedLine> {
        let mut evicted = Vec::new();
        self.expire_inflight_into(now, &mut evicted);
        evicted
    }

    /// Allocation-free form of [`Cache::expire_inflight`]: evicted lines
    /// are appended to the caller-provided `evicted` buffer.
    ///
    /// Completions pop off a min-heap ordered by `(ready_at, line_addr)`,
    /// which is exactly the fill order the earlier scan-and-sort
    /// implementation produced (when two expiring fills target the same
    /// set the fill order picks the eviction victim, so this ordering is
    /// load-bearing for whole-machine bit-determinism). When nothing is
    /// due — the common case — the method returns after one heap peek
    /// without touching the in-flight map.
    pub fn expire_inflight_into(&mut self, now: Cycle, evicted: &mut Vec<EvictedLine>) {
        while let Some(&Reverse((ready_at, la))) = self.completions.peek() {
            if ready_at > now {
                break;
            }
            self.completions.pop();
            // Heap entries outlive cancellations (flush, late-prefetch
            // materialization, reinsertion after invalidate): an entry is
            // live only while the map still holds this line at this exact
            // completion time.
            match self.inflight.get(&la) {
                Some(f) if f.ready_at == ready_at => {}
                _ => continue,
            }
            let f = self.inflight.remove(&la).expect("checked live above");
            if let Some(e) = self.fill(Addr::new(la), f.ready_at, Some(f.source), false) {
                evicted.push(e);
            }
        }
    }

    /// Performs a demand lookup, updating recency and prefetch-use
    /// bookkeeping. Does *not* update hit/miss counters — the hierarchy
    /// does, because only it knows the final latency.
    pub fn demand_lookup(&mut self, addr: Addr, now: Cycle) -> LookupResult {
        let la = self.line_addr(addr);
        let set = self.set_of(addr);
        let tid = self.trace_id;
        for (way, line) in self.ways_mut(set).iter_mut().enumerate() {
            if line.valid && line.tag == la {
                line.last_touch = now;
                let first_use = line.prefetched;
                let source = line.source;
                if first_use {
                    line.prefetched = false;
                    self.stats.prefetch_useful += 1;
                }
                trace_event(|| TraceEvent::DemandHit {
                    at: u64::from(now),
                    cache: tid,
                    set: set as u32,
                    way: way as u32,
                    line: la,
                });
                return LookupResult::Hit { first_prefetch_use: first_use, source };
            }
        }
        if let Some(f) = self.inflight.remove(&la) {
            // Late prefetch: materialize at its completion time (the
            // moment the demand access can actually use it); the caller
            // charges the remaining latency.
            self.stats.prefetch_late += 1;
            trace_event(|| TraceEvent::PrefetchLate {
                at: u64::from(now),
                cache: tid,
                line: la,
                source: f.source as u8,
            });
            let (set, way, evicted) =
                self.fill_resolved(addr, f.ready_at.max(now), Some(f.source), false);
            debug_assert!(evicted.is_none() || evicted.unwrap().addr.raw() != la);
            // The demand access is about to use it: clear the tag bit
            // (the fill resolved the way, so no second set scan).
            self.sets[set * self.assoc + way].prefetched = false;
            return LookupResult::InFlight { ready_at: f.ready_at, source: f.source };
        }
        trace_event(|| TraceEvent::DemandMiss {
            at: u64::from(now),
            cache: tid,
            set: set as u32,
            line: la,
        });
        LookupResult::Miss
    }

    fn line_mut(&mut self, addr: Addr) -> Option<&mut CacheLine> {
        let la = self.line_addr(addr);
        let set = self.set_of(addr);
        self.ways_mut(set).iter_mut().find(|l| l.valid && l.tag == la)
    }

    /// Marks an installed line dirty (store hit).
    pub fn mark_dirty(&mut self, addr: Addr) {
        if let Some(line) = self.line_mut(addr) {
            line.dirty = true;
        }
    }

    /// Refreshes a line's recency without demand-access bookkeeping.
    ///
    /// Used when a prefetch is served from this cache: the fill *reads*
    /// the line, so its replacement state is updated exactly as a demand
    /// hit would, but no hit/miss or tag-bit accounting applies.
    pub fn touch(&mut self, addr: Addr, now: Cycle) {
        if let Some(line) = self.line_mut(addr) {
            line.last_touch = now;
        }
    }

    /// Installs a line, evicting a victim if the set is full.
    ///
    /// `prefetch` attributes the fill to a prefetch source and sets the
    /// tag bit; `write` installs the line dirty (write-allocate).
    /// Filling an already-present line only refreshes recency.
    pub fn fill(
        &mut self,
        addr: Addr,
        now: Cycle,
        prefetch: Option<PrefetchSource>,
        write: bool,
    ) -> Option<EvictedLine> {
        self.fill_resolved(addr, now, prefetch, write).2
    }

    /// [`Cache::fill`] that also reports `(set, way)` where the line now
    /// lives, so callers needing to adjust line state afterwards (the
    /// late-prefetch path) avoid a second set scan.
    fn fill_resolved(
        &mut self,
        addr: Addr,
        now: Cycle,
        prefetch: Option<PrefetchSource>,
        write: bool,
    ) -> (usize, usize, Option<EvictedLine>) {
        let la = self.line_addr(addr);
        let set = self.set_of(addr);
        // Already present: refresh.
        if let Some(way) = self.ways(set).iter().position(|l| l.valid && l.tag == la) {
            let line = &mut self.sets[set * self.assoc + way];
            line.last_touch = now;
            if write {
                line.dirty = true;
            }
            return (set, way, None);
        }
        self.inflight.remove(&la);
        self.record_touched(set);
        let seq = self.fill_seq;
        self.fill_seq += 1;
        let victim_way = self.pick_victim(set);
        let tid = self.trace_id;
        let victim = &mut self.sets[set * self.assoc + victim_way];
        let evicted = if victim.valid {
            self.stats.evictions += 1;
            let victim_tag = victim.tag;
            trace_event(|| TraceEvent::Eviction {
                at: u64::from(now),
                cache: tid,
                set: set as u32,
                way: victim_way as u32,
                victim: victim_tag,
            });
            if victim.prefetched {
                self.stats.prefetch_unused += 1;
                trace_event(|| TraceEvent::PrefetchExpire {
                    at: u64::from(now),
                    cache: tid,
                    line: victim_tag,
                });
            }
            Some(EvictedLine { addr: Addr::new(victim.tag), dirty: victim.dirty })
        } else {
            None
        };
        *victim = CacheLine {
            tag: la,
            valid: true,
            dirty: write,
            prefetched: prefetch.is_some(),
            source: prefetch.unwrap_or(PrefetchSource::Other),
            last_touch: now,
            fill_seq: seq,
        };
        if prefetch.is_some() {
            self.stats.prefetch_fills += 1;
            trace_event(|| TraceEvent::PrefetchFill {
                at: u64::from(now),
                cache: tid,
                set: set as u32,
                way: victim_way as u32,
                line: la,
            });
        }
        (set, victim_way, evicted)
    }

    /// Remembers that `set` may now hold installed lines, so
    /// [`Cache::reset`] can clear only the touched portion of the array.
    #[inline]
    fn record_touched(&mut self, set: usize) {
        if self.touched_overflow {
            return;
        }
        if self.touched_sets.len() * self.assoc >= self.sets.len() {
            // More recordings than sets: a full sweep is cheaper than
            // deduplicating, and the list stays bounded.
            self.touched_overflow = true;
            return;
        }
        self.touched_sets.push(set as u32);
    }

    /// Registers an in-flight prefetch completing at `ready_at`.
    ///
    /// No-op when the line is already installed or already in flight.
    pub fn fill_inflight(&mut self, addr: Addr, ready_at: Cycle, source: PrefetchSource) {
        let la = self.line_addr(addr);
        if self.contains_line(la) || self.inflight.contains_key(&la) {
            return;
        }
        self.inflight.insert(la, InFlight { ready_at, source });
        self.completions.push(Reverse((ready_at, la)));
    }

    /// Removes a line (flush or back-invalidation). Also cancels any
    /// in-flight prefetch of the line.
    ///
    /// Returns the line's state if it was present (so the hierarchy can
    /// write back dirty data), `None` otherwise.
    pub fn invalidate(&mut self, addr: Addr) -> Option<EvictedLine> {
        // A cache that has never been filled since its last reset (e.g.
        // the L1I when instruction fetch is not modelled) holds nothing
        // to invalidate — skip the map probe and set scan entirely.
        if self.touched_sets.is_empty() && !self.touched_overflow && self.inflight.is_empty() {
            return None;
        }
        let la = self.line_addr(addr);
        self.inflight.remove(&la);
        let set = self.set_of(addr);
        let assoc = self.assoc;
        for line in &mut self.sets[set * assoc..(set + 1) * assoc] {
            if line.valid && line.tag == la {
                self.stats.invalidations += 1;
                if line.prefetched {
                    self.stats.prefetch_unused += 1;
                }
                let out = EvictedLine { addr: Addr::new(la), dirty: line.dirty };
                *line = CacheLine::empty();
                return Some(out);
            }
        }
        None
    }

    /// All line-aligned addresses currently installed (test/debug helper).
    pub fn resident_lines(&self) -> Vec<Addr> {
        let mut v: Vec<Addr> =
            self.sets.iter().filter(|l| l.valid).map(|l| Addr::new(l.tag)).collect();
        v.sort_unstable();
        v
    }

    fn pick_victim(&mut self, set: usize) -> usize {
        let ways = &self.sets[set * self.assoc..(set + 1) * self.assoc];
        if let Some(i) = ways.iter().position(|l| !l.valid) {
            return i;
        }
        match self.cfg.replacement() {
            ReplacementPolicy::Lru => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_touch)
                .map(|(i, _)| i)
                .expect("associativity >= 1"),
            ReplacementPolicy::Fifo => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.fill_seq)
                .map(|(i, _)| i)
                .expect("associativity >= 1"),
            ReplacementPolicy::Random => {
                // xorshift64*: deterministic, cheap, good enough to ablate.
                let n = ways.len() as u64;
                let mut x = self.rng_state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.rng_state = x;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % n) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: u32, policy: ReplacementPolicy) -> Cache {
        // 512 B, `assoc`-way, 64 B lines => 8/assoc sets.
        let cfg = CacheConfig::new("T", 512, assoc, 64, 4).unwrap().with_replacement(policy);
        Cache::new(cfg)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x100);
        assert_eq!(c.demand_lookup(a, Cycle::ZERO), LookupResult::Miss);
        assert!(c.fill(a, Cycle::ZERO, None, false).is_none());
        assert!(c.contains(a));
        match c.demand_lookup(a, Cycle::new(1)) {
            LookupResult::Hit { first_prefetch_use, .. } => assert!(!first_prefetch_use),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn hit_anywhere_in_line() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        c.fill(Addr::new(0x100), Cycle::ZERO, None, false);
        assert!(c.contains(Addr::new(0x13F)));
        assert!(!c.contains(Addr::new(0x140)));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        // Set count = 4; 0x000 and 0x400 and 0x800 share set 0 (line/64 % 4).
        let a = Addr::new(0x000);
        let b = Addr::new(0x400);
        let d = Addr::new(0x800);
        c.fill(a, Cycle::new(0), None, false);
        c.fill(b, Cycle::new(1), None, false);
        // touch a so b becomes LRU
        c.demand_lookup(a, Cycle::new(2));
        let evicted = c.fill(d, Cycle::new(3), None, false).expect("set was full");
        assert_eq!(evicted.addr, b);
        assert!(c.contains(a) && c.contains(d) && !c.contains(b));
    }

    #[test]
    fn fifo_evicts_oldest_fill() {
        let mut c = tiny(2, ReplacementPolicy::Fifo);
        let a = Addr::new(0x000);
        let b = Addr::new(0x400);
        let d = Addr::new(0x800);
        c.fill(a, Cycle::new(0), None, false);
        c.fill(b, Cycle::new(1), None, false);
        c.demand_lookup(a, Cycle::new(2)); // recency must NOT matter
        let evicted = c.fill(d, Cycle::new(3), None, false).expect("set was full");
        assert_eq!(evicted.addr, a);
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let run = || {
            let mut c = tiny(2, ReplacementPolicy::Random);
            let mut evictions = Vec::new();
            for i in 0..16u64 {
                if let Some(e) = c.fill(Addr::new(i * 0x400), Cycle::new(i), None, false) {
                    evictions.push(e.addr.raw());
                }
            }
            evictions
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn prefetch_fill_sets_tag_bit_and_first_use_clears_it() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x100);
        c.fill(a, Cycle::ZERO, Some(PrefetchSource::ScaleTracker), false);
        assert_eq!(c.stats().prefetch_fills, 1);
        match c.demand_lookup(a, Cycle::new(1)) {
            LookupResult::Hit { first_prefetch_use, source } => {
                assert!(first_prefetch_use);
                assert_eq!(source, PrefetchSource::ScaleTracker);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.stats().prefetch_useful, 1);
        // Second use is an ordinary hit.
        match c.demand_lookup(a, Cycle::new(2)) {
            LookupResult::Hit { first_prefetch_use, .. } => assert!(!first_prefetch_use),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn inflight_prefetch_arrives_on_time() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x100);
        c.fill_inflight(a, Cycle::new(100), PrefetchSource::AccessTracker);
        assert!(c.contains_or_inflight(a));
        assert!(!c.contains(a));
        let evicted = c.expire_inflight(Cycle::new(100));
        assert!(evicted.is_empty());
        assert!(c.contains(a));
        assert_eq!(c.stats().prefetch_fills, 1);
    }

    #[test]
    fn demand_on_late_prefetch_reports_inflight() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x100);
        c.fill_inflight(a, Cycle::new(100), PrefetchSource::Basic);
        match c.demand_lookup(a, Cycle::new(40)) {
            LookupResult::InFlight { ready_at, source } => {
                assert_eq!(ready_at, Cycle::new(100));
                assert_eq!(source, PrefetchSource::Basic);
            }
            other => panic!("expected in-flight, got {other:?}"),
        }
        assert_eq!(c.stats().prefetch_late, 1);
        // The line materialized and is present afterwards, not counted useful
        // again.
        assert!(c.contains(a));
        assert_eq!(c.stats().prefetch_useful, 0);
    }

    #[test]
    fn invalidate_removes_line_and_inflight() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x100);
        let b = Addr::new(0x200);
        c.fill(a, Cycle::ZERO, None, false);
        c.fill_inflight(b, Cycle::new(50), PrefetchSource::Basic);
        assert!(c.invalidate(a).is_some());
        assert!(c.invalidate(b).is_none(), "inflight line was never installed");
        assert!(!c.contains(a));
        assert!(!c.contains_or_inflight(b));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn dirty_eviction_reports_writeback_needed() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x000);
        c.fill(a, Cycle::new(0), None, true); // write-allocate
        c.fill(Addr::new(0x400), Cycle::new(1), None, false);
        let e = c.fill(Addr::new(0x800), Cycle::new(2), None, false).unwrap();
        assert_eq!(e.addr, a);
        assert!(e.dirty);
    }

    #[test]
    fn mark_dirty_on_store_hit() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x100);
        c.fill(a, Cycle::ZERO, None, false);
        c.mark_dirty(a);
        let e = c.invalidate(a).unwrap();
        assert!(e.dirty);
    }

    #[test]
    fn unused_prefetch_eviction_counted() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        c.fill(Addr::new(0x000), Cycle::new(0), Some(PrefetchSource::Basic), false);
        c.fill(Addr::new(0x400), Cycle::new(1), None, false);
        c.fill(Addr::new(0x800), Cycle::new(2), None, false); // evicts the prefetch
        assert_eq!(c.stats().prefetch_unused, 1);
    }

    #[test]
    fn refill_refreshes_instead_of_duplicating() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x100);
        c.fill(a, Cycle::new(0), None, false);
        assert!(c.fill(a, Cycle::new(5), None, false).is_none());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn resident_lines_sorted() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        c.fill(Addr::new(0x400), Cycle::ZERO, None, false);
        c.fill(Addr::new(0x100), Cycle::ZERO, None, false);
        assert_eq!(c.resident_lines(), vec![Addr::new(0x100), Addr::new(0x400)]);
    }

    #[test]
    fn expire_pops_in_ready_then_address_order() {
        // Two same-set lines expiring together: fills must land in
        // (ready_at, addr) order so the eviction victim is deterministic.
        let mut c = tiny(2, ReplacementPolicy::Lru);
        c.fill_inflight(Addr::new(0x800), Cycle::new(50), PrefetchSource::Basic);
        c.fill_inflight(Addr::new(0x400), Cycle::new(50), PrefetchSource::Basic);
        c.fill_inflight(Addr::new(0x000), Cycle::new(40), PrefetchSource::Basic);
        // Set 0 holds two ways; three fills => one eviction. 0x000 fills
        // first (earlier ready), then 0x400 (address tie-break), then
        // 0x800 evicts the LRU line 0x000.
        let evicted = c.expire_inflight(Cycle::new(60));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].addr, Addr::new(0x000));
        assert!(c.contains(Addr::new(0x400)) && c.contains(Addr::new(0x800)));
    }

    #[test]
    fn cancelled_inflight_never_materializes() {
        // A stale completion-queue entry (invalidated, then re-prefetched
        // at a different time) must not fill early or twice.
        let mut c = tiny(2, ReplacementPolicy::Lru);
        let a = Addr::new(0x100);
        c.fill_inflight(a, Cycle::new(100), PrefetchSource::Basic);
        c.invalidate(a);
        assert!(!c.contains_or_inflight(a));
        assert!(c.expire_inflight(Cycle::new(200)).is_empty());
        assert!(!c.contains(a), "cancelled prefetch must not materialize");

        c.fill_inflight(a, Cycle::new(300), PrefetchSource::ScaleTracker);
        c.invalidate(a);
        c.fill_inflight(a, Cycle::new(250), PrefetchSource::AccessTracker);
        c.expire_inflight(Cycle::new(400));
        assert!(c.contains(a));
        assert_eq!(c.stats().prefetch_fills, 1, "exactly one fill despite stale queue entries");
        match c.demand_lookup(a, Cycle::new(500)) {
            LookupResult::Hit { first_prefetch_use, source } => {
                assert!(first_prefetch_use);
                assert_eq!(source, PrefetchSource::AccessTracker, "the live (second) prefetch won");
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn expire_into_appends_without_clearing() {
        let mut c = tiny(2, ReplacementPolicy::Lru);
        c.fill(Addr::new(0x000), Cycle::new(0), None, false);
        c.fill(Addr::new(0x400), Cycle::new(1), None, false);
        c.fill_inflight(Addr::new(0x800), Cycle::new(10), PrefetchSource::Basic);
        let mut sink = vec![EvictedLine { addr: Addr::new(0xDEAD), dirty: false }];
        c.expire_inflight_into(Cycle::new(10), &mut sink);
        assert_eq!(sink.len(), 2, "appends after existing content");
        assert_eq!(sink[1].addr, Addr::new(0x000));
    }

    #[test]
    fn reset_restores_cold_state_including_replacement_rng() {
        let run = |c: &mut Cache| {
            let mut evictions = Vec::new();
            for i in 0..16u64 {
                if let Some(e) = c.fill(Addr::new(i * 0x400), Cycle::new(i), None, false) {
                    evictions.push(e.addr.raw());
                }
            }
            evictions
        };
        let mut c = tiny(2, ReplacementPolicy::Random);
        let first = run(&mut c);
        c.fill_inflight(Addr::new(0x7000), Cycle::new(999), PrefetchSource::Basic);
        c.reset();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains_or_inflight(Addr::new(0x7000)));
        assert_eq!(c.stats(), &CacheStats::new());
        let second = run(&mut c);
        assert_eq!(first, second, "reset must restore the cold replacement RNG stream");
        assert!(c.expire_inflight(Cycle::new(10_000)).is_empty(), "completion queue drained");
    }

    #[test]
    fn reset_survives_touched_set_overflow() {
        // More installs than sets: the touched list overflows and reset
        // falls back to a full sweep — still leaving a cold cache.
        let mut c = tiny(2, ReplacementPolicy::Lru);
        for i in 0..64u64 {
            c.fill(Addr::new(i * 0x40), Cycle::new(i), None, false);
        }
        c.reset();
        assert_eq!(c.occupancy(), 0);
        for i in 0..64u64 {
            assert!(!c.contains(Addr::new(i * 0x40)), "line {i} must be gone");
        }
    }
}
