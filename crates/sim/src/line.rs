//! A single cacheline's bookkeeping state.

use crate::stats::PrefetchSource;
use crate::time::Cycle;

/// Metadata for one way of one cache set.
///
/// The simulator never stores data bytes — attacks and workloads only need
/// presence, timing and dirtiness. The `prefetched` flag doubles as the
/// Tagged prefetcher's *tag bit*: it is set on prefetch fill and cleared on
/// the first demand use (that first use is reported upward so the Tagged
/// prefetcher can chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLine {
    /// Line-aligned address tag (full address; the simulator trades bits for clarity).
    pub tag: u64,
    /// Whether this way currently holds a line.
    pub valid: bool,
    /// Whether the line has been written since fill.
    pub dirty: bool,
    /// Set on prefetch fill, cleared on first demand use.
    pub prefetched: bool,
    /// Who installed the line (valid only when `prefetched`).
    pub source: PrefetchSource,
    /// Last demand/fill touch, for LRU.
    pub last_touch: Cycle,
    /// Monotonic fill sequence number, for FIFO.
    pub fill_seq: u64,
}

impl CacheLine {
    /// An invalid (empty) way.
    pub fn empty() -> Self {
        CacheLine {
            tag: 0,
            valid: false,
            dirty: false,
            prefetched: false,
            source: PrefetchSource::Other,
            last_touch: Cycle::ZERO,
            fill_seq: 0,
        }
    }
}

impl Default for CacheLine {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_invalid() {
        let l = CacheLine::empty();
        assert!(!l.valid);
        assert!(!l.dirty);
        assert!(!l.prefetched);
    }

    #[test]
    fn default_matches_empty() {
        assert_eq!(CacheLine::default(), CacheLine::empty());
    }
}
