//! Replacement policies.

use std::fmt;

/// Victim-selection policy used inside every cache set.
///
/// The paper's gem5 baseline uses LRU; FIFO and a deterministic
/// pseudo-random policy are provided for the replacement-policy ablation
/// (`repro ablate-replacement`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way (the default).
    #[default]
    Lru,
    /// Evict the way that was filled earliest.
    Fifo,
    /// Evict a pseudo-random way (deterministic xorshift keyed by set state).
    Random,
}

impl ReplacementPolicy {
    /// All supported policies, for ablation sweeps.
    pub const ALL: [ReplacementPolicy; 3] =
        [ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Random];
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Fifo => "FIFO",
            ReplacementPolicy::Random => "Random",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }

    #[test]
    fn display_names() {
        assert_eq!(ReplacementPolicy::Lru.to_string(), "LRU");
        assert_eq!(ReplacementPolicy::Fifo.to_string(), "FIFO");
        assert_eq!(ReplacementPolicy::Random.to_string(), "Random");
    }

    #[test]
    fn all_lists_every_policy() {
        assert_eq!(ReplacementPolicy::ALL.len(), 3);
    }
}
