//! Per-cache statistics and prefetch attribution.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Which mechanism issued a prefetch.
///
/// Used to attribute fills and to regenerate the paper's Figures 9 and 11,
/// which break prefetch counts down by Scale Tracker, Access Tracker and
/// Record Protector (AT prefetches *guided by* RP count as `RecordProtector`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PrefetchSource {
    /// PREFENDER's Scale Tracker (phase-2 defense).
    ScaleTracker,
    /// PREFENDER's Access Tracker using its own DiffMin estimate.
    AccessTracker,
    /// Access Tracker prefetch guided by the Record Protector's hit scale.
    RecordProtector,
    /// A conventional basic prefetcher (Tagged, Stride, ...).
    Basic,
    /// Anything else (tests, manual warm-up fills).
    Other,
}

impl fmt::Display for PrefetchSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrefetchSource::ScaleTracker => "ST",
            PrefetchSource::AccessTracker => "AT",
            PrefetchSource::RecordProtector => "RP",
            PrefetchSource::Basic => "basic",
            PrefetchSource::Other => "other",
        };
        f.write_str(s)
    }
}

/// Event counters kept by every [`Cache`](crate::Cache).
///
/// All counters are cumulative since construction (or the last
/// [`CacheStats::reset`]). `demand_miss_latency` accumulates the full
/// latency of every demand miss and regenerates the paper's Figure 10
/// (normalized total L1D miss latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Demand (CPU-issued) accesses, loads and stores.
    pub demand_accesses: u64,
    /// Demand accesses that hit.
    pub demand_hits: u64,
    /// Demand accesses that missed.
    pub demand_misses: u64,
    /// Total cycles spent by demand misses (Figure 10's quantity).
    pub demand_miss_latency: u64,
    /// Lines evicted by fills.
    pub evictions: u64,
    /// Lines invalidated (flush or back-invalidation).
    pub invalidations: u64,
    /// Explicit `clflush`-style flushes that found the line present.
    pub flushes: u64,
    /// Dirty lines written back on eviction/flush.
    pub writebacks: u64,
    /// Lines installed by prefetches.
    pub prefetch_fills: u64,
    /// Demand accesses that hit a line installed by a prefetch (first use).
    pub prefetch_useful: u64,
    /// Demand accesses that hit an in-flight prefetch (late but still useful).
    pub prefetch_late: u64,
    /// Prefetched lines evicted or invalidated without ever being used.
    pub prefetch_unused: u64,
}

impl CacheStats {
    /// A zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Demand hit rate in `[0, 1]`; `None` when no accesses happened.
    pub fn hit_rate(&self) -> Option<f64> {
        if self.demand_accesses == 0 {
            None
        } else {
            Some(self.demand_hits as f64 / self.demand_accesses as f64)
        }
    }

    /// Demand miss rate in `[0, 1]`; `None` when no accesses happened.
    pub fn miss_rate(&self) -> Option<f64> {
        self.hit_rate().map(|h| 1.0 - h)
    }

    /// Prefetch accuracy: useful fills / total fills; `None` without fills.
    pub fn prefetch_accuracy(&self) -> Option<f64> {
        if self.prefetch_fills == 0 {
            None
        } else {
            Some((self.prefetch_useful + self.prefetch_late) as f64 / self.prefetch_fills as f64)
        }
    }

    /// Zeroes every counter.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            demand_accesses: self.demand_accesses + rhs.demand_accesses,
            demand_hits: self.demand_hits + rhs.demand_hits,
            demand_misses: self.demand_misses + rhs.demand_misses,
            demand_miss_latency: self.demand_miss_latency + rhs.demand_miss_latency,
            evictions: self.evictions + rhs.evictions,
            invalidations: self.invalidations + rhs.invalidations,
            flushes: self.flushes + rhs.flushes,
            writebacks: self.writebacks + rhs.writebacks,
            prefetch_fills: self.prefetch_fills + rhs.prefetch_fills,
            prefetch_useful: self.prefetch_useful + rhs.prefetch_useful,
            prefetch_late: self.prefetch_late + rhs.prefetch_late,
            prefetch_unused: self.prefetch_unused + rhs.prefetch_unused,
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} hits={} misses={} miss_lat={} pf_fills={} pf_useful={}",
            self.demand_accesses,
            self.demand_hits,
            self.demand_misses,
            self.demand_miss_latency,
            self.prefetch_fills,
            self.prefetch_useful
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_empty() {
        let s = CacheStats::new();
        assert_eq!(s.hit_rate(), None);
        assert_eq!(s.miss_rate(), None);
        assert_eq!(s.prefetch_accuracy(), None);
    }

    #[test]
    fn rates_computed() {
        let s = CacheStats {
            demand_accesses: 10,
            demand_hits: 7,
            demand_misses: 3,
            prefetch_fills: 4,
            prefetch_useful: 1,
            prefetch_late: 1,
            ..CacheStats::default()
        };
        assert!((s.hit_rate().unwrap() - 0.7).abs() < 1e-12);
        assert!((s.miss_rate().unwrap() - 0.3).abs() < 1e-12);
        assert!((s.prefetch_accuracy().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn add_is_fieldwise() {
        let a = CacheStats { demand_accesses: 1, demand_hits: 1, ..CacheStats::default() };
        let b = CacheStats { demand_accesses: 2, demand_misses: 2, ..CacheStats::default() };
        let c = a + b;
        assert_eq!(c.demand_accesses, 3);
        assert_eq!(c.demand_hits, 1);
        assert_eq!(c.demand_misses, 2);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = CacheStats { demand_accesses: 5, ..CacheStats::default() };
        s.reset();
        assert_eq!(s, CacheStats::default());
    }

    #[test]
    fn source_display() {
        assert_eq!(PrefetchSource::ScaleTracker.to_string(), "ST");
        assert_eq!(PrefetchSource::AccessTracker.to_string(), "AT");
        assert_eq!(PrefetchSource::RecordProtector.to_string(), "RP");
        assert_eq!(PrefetchSource::Basic.to_string(), "basic");
    }

    #[test]
    fn display_nonempty() {
        assert!(!CacheStats::new().to_string().is_empty());
    }
}
