//! The multi-core, inclusive memory hierarchy.

use std::fmt;

use prefender_obs::{trace_event, TraceEvent};

use crate::addr::Addr;
use crate::cache::{Cache, EvictedLine, LookupResult};
use crate::config::HierarchyConfig;
use crate::mshr::MshrFile;
use crate::stats::{CacheStats, PrefetchSource};
use crate::time::Cycle;

/// Whether a demand access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store (write-allocate, write-back).
    Write,
}

/// Which level ultimately served a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// Private L1 data cache.
    L1,
    /// Shared last-level cache.
    L2,
    /// DRAM.
    Memory,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Level::L1 => "L1",
            Level::L2 => "L2",
            Level::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// The result of one demand access, as seen by the issuing core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Total load-to-use latency in cycles. This is the quantity a
    /// side-channel attacker measures.
    pub latency: u64,
    /// The level that provided the line.
    pub served_by: Level,
    /// `true` when this was the first demand use of a line a prefetcher
    /// installed in the L1D (the Tagged prefetcher's chaining event).
    pub first_prefetch_use: bool,
    /// The prefetch source when `first_prefetch_use`, or when the access
    /// was served by an in-flight prefetch.
    pub prefetch_source: Option<PrefetchSource>,
}

impl AccessOutcome {
    /// `true` when the access hit in the private L1D.
    pub fn l1_hit(&self) -> bool {
        self.served_by == Level::L1
    }
}

/// An inclusive two-level cache hierarchy shared by `n_cores` cores.
///
/// * per-core L1I and L1D;
/// * one shared L2 (the LLC), inclusive of all L1s — an L2 eviction
///   *back-invalidates* every L1 copy, which is what makes cross-core
///   Evict+Reload and Prime+Probe work exactly as in the paper's Figure 4;
/// * an MSHR file at the L2/memory boundary shared by demand misses and
///   prefetches (so aggressive prefetching can stall demand misses);
/// * `clflush`-style [`flush`](MemorySystem::flush) that removes a line
///   from every cache.
///
/// The hierarchy is passive: callers pass the current [`Cycle`] and get
/// latencies back; the CPU model owns time.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: HierarchyConfig,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Cache,
    mshrs: MshrFile,
    /// Reusable eviction scratch for [`MemorySystem::settle`]: the settled
    /// fast path (idle completion queues) must not allocate per access.
    scratch: Vec<EvictedLine>,
    /// Prefetch requests declined because the line was already present or
    /// in flight in the target L1D (an always-on observability counter).
    prefetches_dropped: u64,
}

impl MemorySystem {
    /// Builds an empty hierarchy from a validated configuration.
    pub fn new(cfg: HierarchyConfig) -> Self {
        // Flight-recorder identities: `level << 4 | core`, level 1 = L1I,
        // 2 = L1D, 3 = the shared L2.
        let tag = |level: u8, core: usize| (level << 4) | core as u8;
        let l1i = (0..cfg.n_cores)
            .map(|core| {
                let mut c = Cache::new(cfg.l1i.clone());
                c.set_trace_id(tag(1, core));
                c
            })
            .collect();
        let l1d = (0..cfg.n_cores)
            .map(|core| {
                let mut c = Cache::new(cfg.l1d.clone());
                c.set_trace_id(tag(2, core));
                c
            })
            .collect();
        let mut l2 = Cache::new(cfg.l2.clone());
        l2.set_trace_id(tag(3, 0));
        let mshrs = MshrFile::new(cfg.n_mshrs, cfg.mshr_merge_limit);
        MemorySystem { cfg, l1i, l1d, l2, mshrs, scratch: Vec::new(), prefetches_dropped: 0 }
    }

    /// Returns the hierarchy to its cold (just-constructed) state without
    /// releasing any allocation: every cache is emptied in place (see
    /// [`Cache::reset`]) and the MSHR file is drained. Behaviour after
    /// `reset` is bit-identical to a fresh [`MemorySystem::new`] with the
    /// same configuration.
    pub fn reset(&mut self) {
        for c in self.l1i.iter_mut().chain(self.l1d.iter_mut()) {
            c.reset();
        }
        self.l2.reset();
        self.mshrs.reset();
        self.scratch.clear();
        self.prefetches_dropped = 0;
    }

    /// The hierarchy's configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cfg.n_cores
    }

    /// Immutable view of a core's L1D.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn l1d(&self, core: usize) -> &Cache {
        &self.l1d[core]
    }

    /// Immutable view of a core's L1I.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn l1i(&self, core: usize) -> &Cache {
        &self.l1i[core]
    }

    /// Immutable view of the shared L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The MSHR file at the memory boundary.
    pub fn mshrs(&self) -> &MshrFile {
        &self.mshrs
    }

    /// Prefetch requests declined because the target L1D already held (or
    /// was receiving) the line — the gap between what the prefetch units
    /// *proposed* and what the memory system actually *issued*.
    pub fn prefetches_dropped(&self) -> u64 {
        self.prefetches_dropped
    }

    /// Sum of all L1D statistics across cores.
    pub fn total_l1d_stats(&self) -> CacheStats {
        self.l1d.iter().fold(CacheStats::new(), |acc, c| acc + *c.stats())
    }

    /// Zeroes every cache's statistics (the MSHR counters are kept).
    pub fn reset_stats(&mut self) {
        for c in self.l1i.iter_mut().chain(self.l1d.iter_mut()) {
            c.stats_mut().reset();
        }
        self.l2.stats_mut().reset();
    }

    /// `true` when the line holding `addr` is in `core`'s L1D, installed
    /// or in flight. This is the probe PREFENDER uses before prefetching.
    pub fn probe_l1d(&self, core: usize, addr: Addr) -> bool {
        self.l1d[core].contains_or_inflight(addr)
    }

    /// `true` when the line holding `addr` is installed in the L2.
    pub fn probe_l2(&self, addr: Addr) -> bool {
        self.l2.contains(addr)
    }

    fn settle(&mut self, now: Cycle) {
        // Materialize in-flight prefetches everywhere, honouring
        // inclusion. Each expiry is an O(1) completion-queue peek when
        // nothing is due, and evictions land in the reused scratch buffer
        // — the settled fast path performs no heap allocation.
        //
        // The profiling span opens only when a completion is actually due:
        // with spans disabled this line is one relaxed atomic load, and
        // even with a collector armed the settled (idle-queue) access path
        // never reads the clock.
        let _span =
            prefender_obs::span_if("settle", prefender_obs::spans_enabled() && self.due(now));
        let mut evicted = std::mem::take(&mut self.scratch);
        evicted.clear();
        self.l2.expire_inflight_into(now, &mut evicted);
        for e in evicted.drain(..) {
            self.back_invalidate(e, now);
        }
        for core in 0..self.l1d.len() {
            self.l1d[core].expire_inflight_into(now, &mut evicted);
            for e in evicted.drain(..) {
                self.writeback_from_l1(e);
            }
        }
        self.scratch = evicted;
    }

    /// One heap peek per cache: is any completion due at `now`?
    fn due(&self, now: Cycle) -> bool {
        self.l2.completion_due(now) || self.l1d.iter().any(|c| c.completion_due(now))
    }

    fn writeback_from_l1(&mut self, e: EvictedLine) {
        if e.dirty {
            // Inclusive hierarchy: the L2 still holds the line; mark it.
            self.l2.mark_dirty(e.addr);
        }
    }

    fn back_invalidate(&mut self, e: EvictedLine, _now: Cycle) {
        let mut dirty = e.dirty;
        for l1 in self.l1d.iter_mut().chain(self.l1i.iter_mut()) {
            if let Some(inv) = l1.invalidate(e.addr) {
                dirty |= inv.dirty;
            }
        }
        if dirty {
            self.l2.stats_mut().writebacks += 1;
        }
    }

    /// Performs one demand data access by `core` at time `now`, returning
    /// the load-to-use latency and how it was served.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(
        &mut self,
        core: usize,
        addr: Addr,
        kind: AccessKind,
        now: Cycle,
    ) -> AccessOutcome {
        self.settle(now);
        let is_write = kind == AccessKind::Write;
        self.l1d[core].stats_mut().demand_accesses += 1;

        match self.l1d[core].demand_lookup(addr, now) {
            LookupResult::Hit { first_prefetch_use, source } => {
                self.l1d[core].stats_mut().demand_hits += 1;
                if is_write {
                    self.l1d[core].mark_dirty(addr);
                    self.invalidate_other_l1ds(core, addr);
                }
                AccessOutcome {
                    latency: self.cfg.l1d.hit_latency(),
                    served_by: Level::L1,
                    first_prefetch_use,
                    prefetch_source: first_prefetch_use.then_some(source),
                }
            }
            LookupResult::InFlight { ready_at, source } => {
                let latency = self.cfg.l1d.hit_latency() + ready_at.since(now);
                let st = self.l1d[core].stats_mut();
                st.demand_misses += 1;
                st.demand_miss_latency += latency;
                if is_write {
                    self.l1d[core].mark_dirty(addr);
                    self.invalidate_other_l1ds(core, addr);
                }
                AccessOutcome {
                    latency,
                    served_by: Level::L1,
                    first_prefetch_use: false,
                    prefetch_source: Some(source),
                }
            }
            LookupResult::Miss => {
                let (latency, served_by, source) = self.access_l2(addr, now);
                let st = self.l1d[core].stats_mut();
                st.demand_misses += 1;
                st.demand_miss_latency += latency;
                // The line is usable only once the miss completes; stamping
                // the fill with the completion time keeps LRU ordering
                // consistent with overlapping prefetch completions.
                if let Some(e) = self.l1d[core].fill(addr, now + latency, None, is_write) {
                    self.writeback_from_l1(e);
                }
                if is_write {
                    self.invalidate_other_l1ds(core, addr);
                }
                AccessOutcome {
                    latency,
                    served_by,
                    first_prefetch_use: false,
                    prefetch_source: source,
                }
            }
        }
    }

    fn access_l2(&mut self, addr: Addr, now: Cycle) -> (u64, Level, Option<PrefetchSource>) {
        self.l2.stats_mut().demand_accesses += 1;
        match self.l2.demand_lookup(addr, now) {
            LookupResult::Hit { first_prefetch_use, source } => {
                self.l2.stats_mut().demand_hits += 1;
                (self.cfg.l2.hit_latency(), Level::L2, first_prefetch_use.then_some(source))
            }
            LookupResult::InFlight { ready_at, source } => {
                let latency = self.cfg.l2.hit_latency() + ready_at.since(now);
                let st = self.l2.stats_mut();
                st.demand_misses += 1;
                st.demand_miss_latency += latency;
                (latency, Level::L2, Some(source))
            }
            LookupResult::Miss => {
                let line = addr.line(self.cfg.line_size()).raw();
                let outcome = self.mshrs.request(line, now, self.cfg.memory_latency);
                let latency = outcome.ready_at().since(now).max(self.cfg.memory_latency);
                let st = self.l2.stats_mut();
                st.demand_misses += 1;
                st.demand_miss_latency += latency;
                if let Some(e) = self.l2.fill(addr, now + latency, None, false) {
                    self.back_invalidate(e, now);
                }
                (latency, Level::Memory, None)
            }
        }
    }

    fn invalidate_other_l1ds(&mut self, writer: usize, addr: Addr) {
        for (i, l1) in self.l1d.iter_mut().enumerate() {
            if i != writer {
                if let Some(inv) = l1.invalidate(addr) {
                    if inv.dirty {
                        self.l2.mark_dirty(addr);
                    }
                }
            }
        }
    }

    /// Performs one instruction fetch by `core` at `now`.
    ///
    /// Returns the *stall* latency: an L1I hit is fully pipelined and costs
    /// zero extra cycles; misses pay the lower levels' latency.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn fetch(&mut self, core: usize, addr: Addr, now: Cycle) -> u64 {
        self.l1i[core].stats_mut().demand_accesses += 1;
        match self.l1i[core].demand_lookup(addr, now) {
            LookupResult::Hit { .. } => {
                self.l1i[core].stats_mut().demand_hits += 1;
                0
            }
            LookupResult::InFlight { ready_at, .. } => {
                let latency = ready_at.since(now);
                let st = self.l1i[core].stats_mut();
                st.demand_misses += 1;
                st.demand_miss_latency += latency;
                latency
            }
            LookupResult::Miss => {
                let (latency, _, _) = self.access_l2(addr, now);
                let st = self.l1i[core].stats_mut();
                st.demand_misses += 1;
                st.demand_miss_latency += latency;
                let _ = self.l1i[core].fill(addr, now + latency, None, false);
                latency
            }
        }
    }

    /// Issues a non-blocking prefetch of the line holding `addr` into
    /// `core`'s L1D (and the L2 when it came from memory), attributed to
    /// `source`.
    ///
    /// No-op when the line is already in (or on its way to) that L1D.
    /// Returns `true` when a prefetch was actually issued.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn prefetch(
        &mut self,
        core: usize,
        addr: Addr,
        source: PrefetchSource,
        now: Cycle,
    ) -> bool {
        self.settle(now);
        let line = addr.line(self.cfg.line_size()).raw();
        if self.l1d[core].contains_or_inflight(addr) {
            self.prefetches_dropped += 1;
            trace_event(|| TraceEvent::PrefetchDrop {
                at: u64::from(now),
                core: core as u32,
                line,
                source: source as u8,
            });
            return false;
        }
        trace_event(|| TraceEvent::PrefetchIssue {
            at: u64::from(now),
            core: core as u32,
            line,
            source: source as u8,
        });
        let ready_at = if self.l2.contains(addr) {
            // The prefetch reads the L2 line: refresh its recency.
            self.l2.touch(addr, now);
            now + self.cfg.l2.hit_latency()
        } else if self.l2.contains_or_inflight(addr) {
            // Ride the existing in-flight L2 fill.
            now + self.cfg.l2.hit_latency()
        } else {
            let outcome = self.mshrs.request(line, now, self.cfg.memory_latency);
            let ready = outcome.ready_at();
            self.l2.fill_inflight(addr, ready, source);
            ready
        };
        self.l1d[core].fill_inflight(addr, ready_at, source);
        true
    }

    /// `clflush`: removes the line holding `addr` from every cache in the
    /// hierarchy, writing back dirty copies. Returns the flush latency.
    ///
    /// A flush that finds an *installed* copy anywhere pays roughly an L2
    /// round trip; a flush of an absent line retires at the cheap L1
    /// latency. A flush that only cancels an **in-flight** prefetch also
    /// pays the cheap latency — deliberately: no installed copy exists
    /// yet, so there is nothing to write back or invalidate at the
    /// coherence point; the cancellation itself is free bookkeeping.
    /// (This is the timing contract the attack latency thresholds and
    /// every recorded artifact are calibrated against — pinned by
    /// `flush_of_inflight_only_is_cheap_and_cancels` below.)
    pub fn flush(&mut self, addr: Addr, now: Cycle) -> u64 {
        self.settle(now);
        let mut dirty = false;
        let mut found = false;
        for c in self.l1d.iter_mut().chain(self.l1i.iter_mut()) {
            if let Some(inv) = c.invalidate(addr) {
                found = true;
                dirty |= inv.dirty;
                c.stats_mut().flushes += 1;
            }
        }
        if let Some(inv) = self.l2.invalidate(addr) {
            found = true;
            dirty |= inv.dirty;
            self.l2.stats_mut().flushes += 1;
        }
        if dirty {
            self.l2.stats_mut().writebacks += 1;
        }
        // A flush of a present line costs roughly an L2 round trip; an
        // absent line retires quickly.
        let latency = if found { self.cfg.l2.hit_latency() } else { self.cfg.l1d.hit_latency() };
        trace_event(|| TraceEvent::Flush {
            at: u64::from(now),
            line: addr.line(self.cfg.line_size()).raw(),
            latency,
        });
        latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;

    fn sys(cores: usize) -> MemorySystem {
        MemorySystem::new(HierarchyConfig::paper_baseline(cores).unwrap())
    }

    #[test]
    fn cold_miss_then_l1_hit() {
        let mut m = sys(1);
        let a = Addr::new(0x4000);
        let miss = m.access(0, a, AccessKind::Read, Cycle::ZERO);
        assert_eq!(miss.served_by, Level::Memory);
        assert_eq!(miss.latency, 200);
        let hit = m.access(0, a, AccessKind::Read, Cycle::new(300));
        assert_eq!(hit.served_by, Level::L1);
        assert_eq!(hit.latency, 4);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = sys(1);
        let a = Addr::new(0x0);
        m.access(0, a, AccessKind::Read, Cycle::ZERO);
        // Evict `a` from the 2-way L1D set 0 by touching two conflicting lines.
        let l1_way_stride = 64 * 1024 / 2; // sets * line = 32 KB
        m.access(0, Addr::new(l1_way_stride), AccessKind::Read, Cycle::new(300));
        m.access(0, Addr::new(2 * l1_way_stride), AccessKind::Read, Cycle::new(600));
        let out = m.access(0, a, AccessKind::Read, Cycle::new(900));
        assert_eq!(out.served_by, Level::L2, "line must still be in the inclusive L2");
        assert_eq!(out.latency, 20);
    }

    #[test]
    fn flush_removes_from_all_levels() {
        let mut m = sys(2);
        let a = Addr::new(0x4000);
        m.access(0, a, AccessKind::Read, Cycle::ZERO);
        m.access(1, a, AccessKind::Read, Cycle::new(300));
        assert!(m.probe_l1d(0, a) && m.probe_l1d(1, a) && m.probe_l2(a));
        m.flush(a, Cycle::new(600));
        assert!(!m.probe_l1d(0, a) && !m.probe_l1d(1, a) && !m.probe_l2(a));
        let out = m.access(0, a, AccessKind::Read, Cycle::new(900));
        assert_eq!(out.served_by, Level::Memory);
    }

    #[test]
    fn cross_core_llc_hit_latency_is_distinguishable() {
        // The Flush+Reload cross-core signal: victim on core 1 loads a line,
        // attacker on core 0 then sees an L2 (not memory) latency.
        let mut m = sys(2);
        let a = Addr::new(0x8000);
        m.access(1, a, AccessKind::Read, Cycle::ZERO); // victim
        let probe = m.access(0, a, AccessKind::Read, Cycle::new(300)); // attacker
        assert_eq!(probe.served_by, Level::L2);
        assert!(probe.latency < 200 / 2, "LLC hit must sit well below memory latency");
    }

    #[test]
    fn prefetch_into_l1_serves_after_completion() {
        let mut m = sys(1);
        let a = Addr::new(0x4000);
        assert!(m.prefetch(0, a, PrefetchSource::ScaleTracker, Cycle::ZERO));
        // Long after completion the access behaves like an L1 hit.
        let out = m.access(0, a, AccessKind::Read, Cycle::new(1000));
        assert_eq!(out.served_by, Level::L1);
        assert_eq!(out.latency, 4);
        assert!(out.first_prefetch_use);
        assert_eq!(out.prefetch_source, Some(PrefetchSource::ScaleTracker));
    }

    #[test]
    fn late_prefetch_pays_partial_latency() {
        let mut m = sys(1);
        let a = Addr::new(0x4000);
        m.prefetch(0, a, PrefetchSource::Basic, Cycle::ZERO); // ready at 200
        let out = m.access(0, a, AccessKind::Read, Cycle::new(150));
        assert_eq!(out.served_by, Level::L1);
        assert_eq!(out.latency, 4 + 50, "pays only the remaining 50 cycles plus L1 hit");
        assert_eq!(out.prefetch_source, Some(PrefetchSource::Basic));
    }

    #[test]
    fn duplicate_prefetch_not_issued() {
        let mut m = sys(1);
        let a = Addr::new(0x4000);
        assert!(m.prefetch(0, a, PrefetchSource::Basic, Cycle::ZERO));
        assert_eq!(m.prefetches_dropped(), 0);
        assert!(!m.prefetch(0, a, PrefetchSource::Basic, Cycle::new(1)));
        m.access(0, a, AccessKind::Read, Cycle::new(500));
        assert!(!m.prefetch(0, a, PrefetchSource::Basic, Cycle::new(600)));
        assert_eq!(m.prefetches_dropped(), 2, "in-flight and installed drops both count");
        m.reset();
        assert_eq!(m.prefetches_dropped(), 0);
    }

    #[test]
    fn prefetch_l2_hit_is_fast() {
        let mut m = sys(2);
        let a = Addr::new(0x4000);
        m.access(1, a, AccessKind::Read, Cycle::ZERO); // line now in L2
        m.prefetch(0, a, PrefetchSource::AccessTracker, Cycle::new(300));
        // Ready after only an L2 latency (20), so at 330 it's an L1 hit.
        let out = m.access(0, a, AccessKind::Read, Cycle::new(330));
        assert_eq!(out.served_by, Level::L1);
        assert_eq!(out.latency, 4);
    }

    #[test]
    fn write_invalidates_other_cores() {
        let mut m = sys(2);
        let a = Addr::new(0x4000);
        m.access(0, a, AccessKind::Read, Cycle::ZERO);
        m.access(1, a, AccessKind::Read, Cycle::new(300));
        assert!(m.probe_l1d(0, a) && m.probe_l1d(1, a));
        m.access(0, a, AccessKind::Write, Cycle::new(600));
        assert!(m.probe_l1d(0, a));
        assert!(!m.probe_l1d(1, a), "writer must invalidate the other L1 copy");
    }

    #[test]
    fn stats_accumulate() {
        let mut m = sys(1);
        let a = Addr::new(0x4000);
        m.access(0, a, AccessKind::Read, Cycle::ZERO);
        m.access(0, a, AccessKind::Read, Cycle::new(300));
        let s = m.l1d(0).stats();
        assert_eq!(s.demand_accesses, 2);
        assert_eq!(s.demand_hits, 1);
        assert_eq!(s.demand_misses, 1);
        assert_eq!(s.demand_miss_latency, 200);
    }

    #[test]
    fn instruction_fetch_hits_are_free() {
        let mut m = sys(1);
        let pc = Addr::new(0x1000);
        let first = m.fetch(0, pc, Cycle::ZERO);
        assert!(first > 0);
        let second = m.fetch(0, pc, Cycle::new(300));
        assert_eq!(second, 0);
    }

    #[test]
    fn inclusion_back_invalidates_l1() {
        // Build a tiny hierarchy so we can overflow the L2 quickly.
        let mut m = MemorySystem::new(HierarchyConfig::tiny(1).unwrap());
        let a = Addr::new(0);
        m.access(0, a, AccessKind::Read, Cycle::ZERO);
        assert!(m.probe_l1d(0, a));
        // The tiny L2 is 8 KB, 4-way, 32 sets. Fill set 0 of L2 with 4 more
        // conflicting lines to force `a` out.
        let l2_set_stride = 64 * 32;
        for i in 1..=4u64 {
            m.access(0, Addr::new(i * l2_set_stride), AccessKind::Read, Cycle::new(300 * i));
        }
        assert!(!m.probe_l2(a));
        assert!(!m.probe_l1d(0, a), "L2 eviction must back-invalidate the L1 copy");
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut m = sys(1);
        m.access(0, Addr::new(0x40), AccessKind::Read, Cycle::ZERO);
        m.reset_stats();
        assert_eq!(m.l1d(0).stats().demand_accesses, 0);
        assert_eq!(m.l2().stats().demand_accesses, 0);
    }

    #[test]
    fn flush_of_inflight_only_is_cheap_and_cancels() {
        // The pinned timing contract: a flush that only cancels an
        // in-flight prefetch retires at the cheap absent-line latency —
        // no installed copy exists yet, so nothing reaches the coherence
        // point (see the `flush` docs).
        let mut m = sys(1);
        let a = Addr::new(0x4000);
        assert!(m.prefetch(0, a, PrefetchSource::Basic, Cycle::ZERO)); // ready at 200
        assert!(m.probe_l1d(0, a), "in flight counts as present for the prefetch probe");
        let lat = m.flush(a, Cycle::new(50));
        assert_eq!(lat, m.config().l1d.hit_latency(), "in-flight-only flush is cheap");
        assert!(!m.probe_l1d(0, a) && !m.probe_l2(a), "the prefetch is cancelled");
        assert_eq!(m.l1d(0).stats().flushes, 0, "no installed copy was flushed");
        // The cancelled line never materializes, even past its old
        // completion time.
        let out = m.access(0, a, AccessKind::Read, Cycle::new(1000));
        assert_eq!(out.served_by, Level::Memory);
    }

    #[test]
    fn flush_of_installed_line_pays_l2_round_trip() {
        let mut m = sys(1);
        let a = Addr::new(0x4000);
        m.access(0, a, AccessKind::Read, Cycle::ZERO);
        assert_eq!(m.flush(a, Cycle::new(300)), m.config().l2.hit_latency());
        assert_eq!(m.flush(a, Cycle::new(600)), m.config().l1d.hit_latency(), "absent is cheap");
    }

    // Drives one deterministic mixed schedule (accesses, prefetches,
    // flushes) against a hierarchy and collects every observable.
    fn drive_schedule(m: &mut MemorySystem) -> Vec<(u64, Level)> {
        let mut out = Vec::new();
        let mut now = 0u64;
        for k in 0..200u64 {
            let a = Addr::new((k % 23) * 0x940 + (k % 5) * 64);
            match k % 7 {
                0 | 3 => {
                    let o = m.access(0, a, AccessKind::Read, Cycle::new(now));
                    out.push((o.latency, o.served_by));
                }
                1 => {
                    let o = m.access(0, a, AccessKind::Write, Cycle::new(now));
                    out.push((o.latency, o.served_by));
                }
                2 | 5 => {
                    m.prefetch(0, a, PrefetchSource::Basic, Cycle::new(now));
                }
                4 => {
                    out.push((m.flush(a, Cycle::new(now)), Level::L1));
                }
                _ => {
                    let o = m.access(0, a, AccessKind::Read, Cycle::new(now));
                    out.push((o.latency, o.served_by));
                }
            }
            now += 11 + (k % 13) * 17;
        }
        out
    }

    #[test]
    fn reset_replays_bit_identically_to_fresh() {
        let mut fresh = MemorySystem::new(HierarchyConfig::tiny(1).unwrap());
        let expected = drive_schedule(&mut fresh);
        let fresh_stats = *fresh.l1d(0).stats();

        let mut reused = MemorySystem::new(HierarchyConfig::tiny(1).unwrap());
        drive_schedule(&mut reused); // dirty it
        reused.reset();
        assert_eq!(reused.l1d(0).occupancy(), 0);
        assert_eq!(reused.l2().occupancy(), 0);
        assert_eq!(reused.l1d(0).stats(), &CacheStats::new());
        let replay = drive_schedule(&mut reused);
        assert_eq!(replay, expected, "a reset hierarchy must replay bit-identically");
        assert_eq!(reused.l1d(0).stats(), &fresh_stats);
        assert_eq!(reused.l2().resident_lines(), fresh.l2().resident_lines());
        assert_eq!(reused.l1d(0).resident_lines(), fresh.l1d(0).resident_lines());
    }
}
