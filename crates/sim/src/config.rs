//! Cache and hierarchy configuration.

use std::error::Error;
use std::fmt;

use crate::replacement::ReplacementPolicy;

/// Errors produced when validating a cache or hierarchy configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A size or associativity parameter was zero or not a power of two.
    NotPowerOfTwo {
        /// Name of the offending parameter.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// The cache size is not divisible into `associativity` ways of whole sets.
    Indivisible {
        /// Total cache capacity in bytes.
        size: u64,
        /// Ways per set.
        associativity: u32,
        /// Line size in bytes.
        line_size: u64,
    },
    /// The hierarchy was configured with zero cores.
    NoCores,
    /// L2 must be at least as large as every L1 for the inclusive hierarchy.
    LlcSmallerThanL1 {
        /// L2 capacity in bytes.
        l2_size: u64,
        /// The larger L1 capacity in bytes.
        l1_size: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { field, value } => {
                write!(f, "{field} must be a nonzero power of two, got {value}")
            }
            ConfigError::Indivisible { size, associativity, line_size } => write!(
                f,
                "cache of {size} bytes cannot be divided into {associativity}-way sets of {line_size}-byte lines"
            ),
            ConfigError::NoCores => write!(f, "hierarchy needs at least one core"),
            ConfigError::LlcSmallerThanL1 { l2_size, l1_size } => write!(
                f,
                "inclusive L2 ({l2_size} bytes) must not be smaller than an L1 ({l1_size} bytes)"
            ),
        }
    }
}

impl Error for ConfigError {}

/// Geometry and timing of a single cache.
///
/// # Examples
///
/// ```
/// use prefender_sim::CacheConfig;
///
/// let l1d = CacheConfig::new("L1D", 64 * 1024, 2, 64, 4).unwrap();
/// assert_eq!(l1d.n_sets(), 512);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    name: String,
    size: u64,
    associativity: u32,
    line_size: u64,
    hit_latency: u64,
    replacement: ReplacementPolicy,
    // Derived geometry, precomputed once so the per-access hot path does
    // shift-and-mask instead of div/mod (all parameters are validated
    // powers of two, so these are exact).
    line_shift: u32,
    line_mask: u64,
    set_mask: u64,
}

impl CacheConfig {
    /// Creates a validated cache configuration.
    ///
    /// `size` and `line_size` are in bytes; `hit_latency` is the total
    /// load-to-use latency in cycles when this cache hits.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `size`, `associativity` or `line_size` is
    /// zero or not a power of two, or if the geometry does not divide into
    /// whole sets.
    pub fn new(
        name: &str,
        size: u64,
        associativity: u32,
        line_size: u64,
        hit_latency: u64,
    ) -> Result<Self, ConfigError> {
        if size == 0 || !size.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo { field: "size", value: size });
        }
        if line_size == 0 || !line_size.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo { field: "line_size", value: line_size });
        }
        if associativity == 0 || !associativity.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "associativity",
                value: associativity as u64,
            });
        }
        let lines = size / line_size;
        if lines == 0 || !lines.is_multiple_of(associativity as u64) {
            return Err(ConfigError::Indivisible { size, associativity, line_size });
        }
        let n_sets = lines / associativity as u64;
        if !n_sets.is_power_of_two() {
            // size, line_size and associativity are powers of two, so this
            // cannot trip; it guards the mask arithmetic below regardless.
            return Err(ConfigError::Indivisible { size, associativity, line_size });
        }
        Ok(CacheConfig {
            name: name.to_owned(),
            size,
            associativity,
            line_size,
            hit_latency,
            replacement: ReplacementPolicy::Lru,
            line_shift: line_size.trailing_zeros(),
            line_mask: !(line_size - 1),
            set_mask: n_sets - 1,
        })
    }

    /// Replaces the replacement policy (default: [`ReplacementPolicy::Lru`]).
    #[must_use]
    pub fn with_replacement(mut self, policy: ReplacementPolicy) -> Self {
        self.replacement = policy;
        self
    }

    /// The cache's human-readable name (used in stats output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total capacity in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Ways per set.
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Load-to-use latency in cycles when this cache hits.
    pub fn hit_latency(&self) -> u64 {
        self.hit_latency
    }

    /// The configured replacement policy.
    pub fn replacement(&self) -> ReplacementPolicy {
        self.replacement
    }

    /// Number of sets (`size / line_size / associativity`).
    pub fn n_sets(&self) -> u64 {
        self.set_mask + 1
    }

    /// The set index an address maps to.
    #[inline]
    pub fn set_index(&self, addr: crate::Addr) -> u64 {
        (addr.raw() >> self.line_shift) & self.set_mask
    }

    /// The set index a line-aligned address maps to (same value as
    /// [`CacheConfig::set_index`]; the alignment makes no difference).
    #[inline]
    pub(crate) fn set_index_of_line(&self, line_addr: u64) -> u64 {
        (line_addr >> self.line_shift) & self.set_mask
    }

    /// The line-aligned address containing `addr` (the cache tag).
    #[inline]
    pub(crate) fn line_addr_of(&self, addr: crate::Addr) -> u64 {
        addr.raw() & self.line_mask
    }
}

/// Configuration of the full multi-core hierarchy.
///
/// The paper's baseline (Section V-A): per-core 32 KB L1I and 64 KB L1D,
/// a shared 2 MB L2 (the LLC), 4 MSHRs merging up to 20 requests each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of cores, each with private L1I/L1D.
    pub n_cores: usize,
    /// Per-core instruction cache geometry.
    pub l1i: CacheConfig,
    /// Per-core data cache geometry.
    pub l1d: CacheConfig,
    /// Shared last-level cache geometry.
    pub l2: CacheConfig,
    /// Total load-to-use latency of a DRAM access, in cycles.
    pub memory_latency: u64,
    /// Number of MSHR entries at the L2/memory boundary.
    pub n_mshrs: usize,
    /// Maximum requests merged into one MSHR entry.
    pub mshr_merge_limit: u32,
    /// Page size in bytes (bounds prefetching; the paper prefetches within a page).
    pub page_size: u64,
}

impl HierarchyConfig {
    /// The paper's gem5 baseline configuration for `n_cores` cores.
    ///
    /// 32 KB / 2-way L1I, 64 KB / 2-way L1D (Section V-E says the L1D is
    /// 2-way), 2 MB / 16-way shared L2, 64-byte lines, 4 KB pages.
    /// Latencies: L1 hit 4 cycles, L2 hit 20 cycles, memory 200 cycles
    /// (total load-to-use, chosen so hits and misses separate cleanly
    /// around the ~100-cycle hit threshold of the paper's Figure 8).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoCores`] when `n_cores` is zero; the fixed
    /// geometries themselves always validate.
    pub fn paper_baseline(n_cores: usize) -> Result<Self, ConfigError> {
        let cfg = HierarchyConfig {
            n_cores,
            l1i: CacheConfig::new("L1I", 32 * 1024, 2, 64, 4)?,
            l1d: CacheConfig::new("L1D", 64 * 1024, 2, 64, 4)?,
            l2: CacheConfig::new("L2", 2 * 1024 * 1024, 16, 64, 20)?,
            memory_latency: 200,
            n_mshrs: 4,
            mshr_merge_limit: 20,
            page_size: 4096,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// A small hierarchy useful for fast unit tests: 1 KB / 2-way L1s,
    /// 8 KB / 4-way L2, 64-byte lines.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoCores`] when `n_cores` is zero.
    pub fn tiny(n_cores: usize) -> Result<Self, ConfigError> {
        let cfg = HierarchyConfig {
            n_cores,
            l1i: CacheConfig::new("L1I", 1024, 2, 64, 4)?,
            l1d: CacheConfig::new("L1D", 1024, 2, 64, 4)?,
            l2: CacheConfig::new("L2", 8192, 4, 64, 20)?,
            memory_latency: 200,
            n_mshrs: 4,
            mshr_merge_limit: 20,
            page_size: 4096,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Validates cross-cache invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoCores`] for a zero-core hierarchy and
    /// [`ConfigError::LlcSmallerThanL1`] when inclusion cannot hold.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_cores == 0 {
            return Err(ConfigError::NoCores);
        }
        let l1_max = self.l1i.size().max(self.l1d.size());
        if self.l2.size() < l1_max {
            return Err(ConfigError::LlcSmallerThanL1 { l2_size: self.l2.size(), l1_size: l1_max });
        }
        Ok(())
    }

    /// Line size shared by every level (the L1D's).
    pub fn line_size(&self) -> u64 {
        self.l1d.line_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    #[test]
    fn l1d_geometry_matches_paper() {
        let c = CacheConfig::new("L1D", 64 * 1024, 2, 64, 4).unwrap();
        assert_eq!(c.n_sets(), 512);
        assert_eq!(c.associativity(), 2);
        assert_eq!(c.line_size(), 64);
    }

    #[test]
    fn rejects_non_power_of_two_size() {
        let err = CacheConfig::new("X", 3000, 2, 64, 1).unwrap_err();
        assert!(matches!(err, ConfigError::NotPowerOfTwo { field: "size", .. }));
    }

    #[test]
    fn rejects_zero_associativity() {
        let err = CacheConfig::new("X", 1024, 0, 64, 1).unwrap_err();
        assert!(matches!(err, ConfigError::NotPowerOfTwo { field: "associativity", .. }));
    }

    #[test]
    fn rejects_line_larger_than_cache() {
        let err = CacheConfig::new("X", 64, 2, 128, 1).unwrap_err();
        assert!(matches!(err, ConfigError::Indivisible { .. }));
    }

    #[test]
    fn set_index_wraps() {
        let c = CacheConfig::new("L1D", 1024, 2, 64, 4).unwrap(); // 8 sets
        assert_eq!(c.n_sets(), 8);
        assert_eq!(c.set_index(Addr::new(0)), 0);
        assert_eq!(c.set_index(Addr::new(64)), 1);
        assert_eq!(c.set_index(Addr::new(64 * 8)), 0);
        assert_eq!(c.set_index(Addr::new(64 * 9 + 63)), 1);
    }

    #[test]
    fn paper_baseline_validates() {
        let h = HierarchyConfig::paper_baseline(4).unwrap();
        assert_eq!(h.n_cores, 4);
        assert_eq!(h.l1d.size(), 64 * 1024);
        assert_eq!(h.l2.size(), 2 * 1024 * 1024);
        assert_eq!(h.n_mshrs, 4);
        assert_eq!(h.mshr_merge_limit, 20);
    }

    #[test]
    fn zero_cores_rejected() {
        assert_eq!(HierarchyConfig::paper_baseline(0).unwrap_err(), ConfigError::NoCores);
    }

    #[test]
    fn inclusive_violation_rejected() {
        let mut h = HierarchyConfig::tiny(1).unwrap();
        h.l2 = CacheConfig::new("L2", 512, 2, 64, 10).unwrap();
        assert!(matches!(h.validate().unwrap_err(), ConfigError::LlcSmallerThanL1 { .. }));
    }

    #[test]
    fn errors_display_readably() {
        let e = ConfigError::NotPowerOfTwo { field: "size", value: 3 };
        assert_eq!(e.to_string(), "size must be a nonzero power of two, got 3");
        assert!(ConfigError::NoCores.to_string().contains("at least one core"));
    }
}
