//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in CPU clock cycles.
///
/// The whole simulator is driven by a single monotonically increasing cycle
/// counter owned by the machine model; caches and prefetchers receive the
/// current `Cycle` on every call and use it for LRU bookkeeping and for
/// in-flight (prefetch / MSHR) completion times.
///
/// # Examples
///
/// ```
/// use prefender_sim::Cycle;
///
/// let t = Cycle::new(100) + 40;
/// assert_eq!(t.raw(), 140);
/// assert_eq!(t - Cycle::new(100), 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Cycle zero — the beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle timestamp.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Cycles elapsed since `earlier`, or zero if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns the later of two timestamps.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Saturating difference: a cycle difference can never be negative.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> Self {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Cycle::new(10);
        assert_eq!((t + 5).raw(), 15);
        assert_eq!(Cycle::new(20) - t, 10);
        assert_eq!(t - Cycle::new(20), 0, "difference saturates at zero");
    }

    #[test]
    fn add_assign_advances() {
        let mut t = Cycle::ZERO;
        t += 7;
        t += 3;
        assert_eq!(t, Cycle::new(10));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Cycle::new(5).since(Cycle::new(3)), 2);
        assert_eq!(Cycle::new(3).since(Cycle::new(5)), 0);
    }

    #[test]
    fn ordering_and_max() {
        assert!(Cycle::new(1) < Cycle::new(2));
        assert_eq!(Cycle::new(1).max(Cycle::new(2)), Cycle::new(2));
    }

    #[test]
    fn display() {
        assert_eq!(Cycle::new(42).to_string(), "42 cyc");
    }
}
