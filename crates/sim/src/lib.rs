//! # prefender-sim — cache hierarchy simulator
//!
//! A set-associative, inclusive, multi-core cache/memory hierarchy simulator.
//! This crate is the *substrate* on which the PREFENDER secure prefetcher
//! (DATE 2022) is evaluated: it models the gem5-like configuration used by
//! the paper — per-core L1I/L1D caches, a shared L2 (last-level) cache,
//! an MSHR file (4 entries, up to 20 merged requests per line), `clflush`
//! semantics, and non-blocking prefetch fills with completion times.
//!
//! The simulator is *timing-approximate*: every demand access returns the
//! number of cycles it took, so attack programs can discriminate cache hits
//! from misses exactly the way real side-channel attacks do.
//!
//! ## Quick example
//!
//! ```
//! use prefender_sim::{HierarchyConfig, MemorySystem, AccessKind, Addr, Cycle};
//!
//! # fn main() -> Result<(), prefender_sim::ConfigError> {
//! let cfg = HierarchyConfig::paper_baseline(1)?; // one core, paper's sizes
//! let mut mem = MemorySystem::new(cfg);
//! let a = Addr::new(0x4000);
//!
//! let miss = mem.access(0, a, AccessKind::Read, Cycle::ZERO);
//! let hit = mem.access(0, a, AccessKind::Read, Cycle::new(1000));
//! assert!(miss.latency > hit.latency);
//! # Ok(())
//! # }
//! ```

mod addr;
mod cache;
mod config;
mod hash;
mod hierarchy;
mod line;
mod mshr;
mod replacement;
mod stats;
mod time;

pub use addr::Addr;
pub use cache::{Cache, EvictedLine, LookupResult};
pub use config::{CacheConfig, ConfigError, HierarchyConfig};
pub use hash::{Mix64Hasher, Mix64Map};
pub use hierarchy::{AccessKind, AccessOutcome, Level, MemorySystem};
pub use line::CacheLine;
pub use mshr::{MshrFile, MshrOutcome};
pub use replacement::ReplacementPolicy;
pub use stats::{CacheStats, PrefetchSource};
pub use time::Cycle;
