//! Miss-status handling registers (MSHRs).
//!
//! The paper's baseline has "4 miss-status handling registers, each of which
//! can merge at most 20 requests to the same line". The MSHR file sits at
//! the L2/memory boundary: every memory-bound request (demand miss or
//! prefetch) allocates or merges into an entry; when the file is full the
//! request stalls until the earliest outstanding entry completes.

use prefender_obs::{trace_event, TraceEvent};

use crate::time::Cycle;

/// How a memory-bound request interacted with the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A fresh entry was allocated; data arrives at `ready_at`.
    Allocated {
        /// Completion time of the memory access.
        ready_at: Cycle,
    },
    /// The request merged into an outstanding entry for the same line and
    /// completes when that entry does.
    Merged {
        /// Completion time of the outstanding access.
        ready_at: Cycle,
    },
    /// The file was full (or the merge limit was reached); the request
    /// waited until `stalled_until` for a slot, then issued.
    Stalled {
        /// When a slot became free.
        stalled_until: Cycle,
        /// Completion time of the (delayed) memory access.
        ready_at: Cycle,
    },
}

impl MshrOutcome {
    /// Completion time regardless of how the request was handled.
    pub fn ready_at(self) -> Cycle {
        match self {
            MshrOutcome::Allocated { ready_at }
            | MshrOutcome::Merged { ready_at }
            | MshrOutcome::Stalled { ready_at, .. } => ready_at,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    line: u64,
    ready_at: Cycle,
    merged: u32,
}

/// A bounded file of outstanding memory requests.
///
/// # Examples
///
/// ```
/// use prefender_sim::{MshrFile, MshrOutcome, Cycle};
///
/// let mut m = MshrFile::new(4, 20);
/// let a = m.request(0x1000, Cycle::ZERO, 200);
/// assert!(matches!(a, MshrOutcome::Allocated { .. }));
/// // A second request to the same line merges.
/// let b = m.request(0x1000, Cycle::new(10), 200);
/// assert!(matches!(b, MshrOutcome::Merged { .. }));
/// assert_eq!(a.ready_at(), b.ready_at());
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
    merge_limit: u32,
    stalls: u64,
    merges: u64,
    high_water: usize,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries each merging at most
    /// `merge_limit` requests (the paper: 4 and 20).
    pub fn new(capacity: usize, merge_limit: u32) -> Self {
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            merge_limit,
            stalls: 0,
            merges: 0,
            high_water: 0,
        }
    }

    /// Drops every outstanding entry and zeroes the counters, returning
    /// the file to its just-constructed state (capacity is kept).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.stalls = 0;
        self.merges = 0;
        self.high_water = 0;
    }

    /// Number of entries still outstanding at `now`.
    pub fn occupancy(&self, now: Cycle) -> usize {
        self.entries.iter().filter(|e| e.ready_at > now).count()
    }

    /// Total requests that had to stall for a free entry.
    pub fn stall_count(&self) -> u64 {
        self.stalls
    }

    /// Total requests merged into outstanding entries.
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// Peak simultaneous entry count since construction or [`reset`]
    /// (`reset`). Retired entries are pruned lazily on the next
    /// [`request`](MshrFile::request), so this is the high-water mark of
    /// *allocated slots*, the quantity capacity planning cares about.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Issues a memory request for `line` at time `now` taking
    /// `service_latency` cycles, modelling allocation, merging and
    /// full-file stalls.
    pub fn request(&mut self, line: u64, now: Cycle, service_latency: u64) -> MshrOutcome {
        self.entries.retain(|e| {
            let live = e.ready_at > now;
            if !live {
                trace_event(|| TraceEvent::MshrRelease { at: u64::from(now), line: e.line });
            }
            live
        });
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            if e.merged < self.merge_limit {
                e.merged += 1;
                self.merges += 1;
                return MshrOutcome::Merged { ready_at: e.ready_at };
            }
            // Merge limit reached: fall through and behave like a fresh
            // request needing its own slot.
        }
        if self.entries.len() < self.capacity {
            let ready_at = now + service_latency;
            self.entries.push(Entry { line, ready_at, merged: 1 });
            self.high_water = self.high_water.max(self.entries.len());
            trace_event(|| TraceEvent::MshrAlloc { at: u64::from(now), line });
            return MshrOutcome::Allocated { ready_at };
        }
        // Full: wait for the earliest entry to retire.
        let (idx, stalled_until) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.ready_at)
            .map(|(i, e)| (i, e.ready_at))
            .expect("file is full, so nonempty");
        trace_event(|| TraceEvent::MshrRelease {
            at: u64::from(stalled_until),
            line: self.entries[idx].line,
        });
        self.entries.swap_remove(idx);
        self.stalls += 1;
        let ready_at = stalled_until + service_latency;
        self.entries.push(Entry { line, ready_at, merged: 1 });
        self.high_water = self.high_water.max(self.entries.len());
        trace_event(|| TraceEvent::MshrAlloc { at: u64::from(stalled_until), line });
        MshrOutcome::Stalled { stalled_until, ready_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_and_completion_time() {
        let mut m = MshrFile::new(4, 20);
        match m.request(0x40, Cycle::new(10), 200) {
            MshrOutcome::Allocated { ready_at } => assert_eq!(ready_at, Cycle::new(210)),
            other => panic!("{other:?}"),
        }
        assert_eq!(m.occupancy(Cycle::new(10)), 1);
        assert_eq!(m.occupancy(Cycle::new(210)), 0);
    }

    #[test]
    fn same_line_merges_up_to_limit() {
        let mut m = MshrFile::new(4, 3);
        let first = m.request(0x40, Cycle::ZERO, 100);
        // merged counter starts at 1 (the allocating request), so 2 merges fit.
        assert!(matches!(m.request(0x40, Cycle::new(1), 100), MshrOutcome::Merged { .. }));
        assert!(matches!(m.request(0x40, Cycle::new(2), 100), MshrOutcome::Merged { .. }));
        // Limit reached: next one allocates a second entry.
        assert!(matches!(m.request(0x40, Cycle::new(3), 100), MshrOutcome::Allocated { .. }));
        assert_eq!(m.merge_count(), 2);
        assert_eq!(first.ready_at(), Cycle::new(100));
    }

    #[test]
    fn full_file_stalls() {
        let mut m = MshrFile::new(2, 20);
        m.request(0x40, Cycle::ZERO, 100);
        m.request(0x80, Cycle::new(5), 100);
        match m.request(0xC0, Cycle::new(10), 100) {
            MshrOutcome::Stalled { stalled_until, ready_at } => {
                assert_eq!(stalled_until, Cycle::new(100), "earliest entry frees at 100");
                assert_eq!(ready_at, Cycle::new(200));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(m.stall_count(), 1);
    }

    #[test]
    fn high_water_tracks_peak_and_resets() {
        let mut m = MshrFile::new(4, 20);
        assert_eq!(m.high_water(), 0);
        m.request(0x40, Cycle::ZERO, 100);
        m.request(0x80, Cycle::new(1), 100);
        m.request(0xC0, Cycle::new(2), 100);
        assert_eq!(m.high_water(), 3);
        // Everything retires; a single fresh request does not lower the peak.
        m.request(0x100, Cycle::new(500), 100);
        assert_eq!(m.high_water(), 3);
        m.reset();
        assert_eq!(m.high_water(), 0);
    }

    #[test]
    fn retired_entries_free_slots() {
        let mut m = MshrFile::new(1, 20);
        m.request(0x40, Cycle::ZERO, 100);
        // At t=150 the entry has retired; no stall.
        assert!(matches!(m.request(0x80, Cycle::new(150), 100), MshrOutcome::Allocated { .. }));
        assert_eq!(m.stall_count(), 0);
    }

    #[test]
    fn merge_after_retirement_allocates_fresh() {
        let mut m = MshrFile::new(2, 20);
        m.request(0x40, Cycle::ZERO, 100);
        match m.request(0x40, Cycle::new(200), 100) {
            MshrOutcome::Allocated { ready_at } => assert_eq!(ready_at, Cycle::new(300)),
            other => panic!("{other:?}"),
        }
    }
}
