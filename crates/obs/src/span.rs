//! Scoped phase timers with a per-thread span stack.
//!
//! Spans are **off by default**: until [`enable_spans`]`(true)` runs,
//! [`span`] costs one `Relaxed` atomic load and returns a disarmed guard
//! without reading the clock — cheap enough to leave in per-access and
//! per-instruction paths. When enabled, each span records wall time into
//! a thread-local profile keyed by phase name, with parent spans
//! accumulating child time so *self* time (exclusive of nested spans) is
//! reported alongside totals.
//!
//! The collector is thread-local on purpose: the sweep engine's workers
//! never share collector state, and `repro profile` runs its grids at one
//! thread so the whole profile lands on the calling thread.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static SPANS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether a span collector is installed (spans record wall time).
#[inline]
pub fn spans_enabled() -> bool {
    SPANS_ENABLED.load(Ordering::Relaxed)
}

/// Globally arms or disarms span collection. Off by default; artifacts
/// are byte-identical either way (spans only feed profile outputs).
pub fn enable_spans(on: bool) {
    SPANS_ENABLED.store(on, Ordering::Relaxed);
}

struct Frame {
    name: &'static str,
    start: Instant,
    child_nanos: u64,
}

/// Accumulated timing for one phase name on one thread.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct PhaseAcc {
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

/// One phase of a drained thread profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// The phase name passed to [`span`].
    pub name: &'static str,
    /// How many spans of this phase closed.
    pub count: u64,
    /// Total wall nanoseconds, including nested spans.
    pub total_ns: u64,
    /// Wall nanoseconds exclusive of nested spans.
    pub self_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static PROFILE: RefCell<BTreeMap<&'static str, PhaseAcc>> =
        const { RefCell::new(BTreeMap::new()) };
}

/// An open span; closes (and records, if armed) on drop.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to — bind it to a named local"]
pub struct SpanGuard {
    armed: bool,
}

/// Opens a span named `name` on this thread's span stack.
///
/// When spans are disabled this is one atomic load — no clock read, no
/// thread-local touch.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !spans_enabled() {
        return SpanGuard { armed: false };
    }
    STACK.with(|s| {
        s.borrow_mut().push(Frame { name, start: Instant::now(), child_nanos: 0 });
    });
    SpanGuard { armed: true }
}

/// Opens a span only when `cond` also holds — for hot paths where even
/// an *enabled* span should open solely when there is real work to time
/// (e.g. the settle path opens its span only when completions are due).
#[inline]
pub fn span_if(name: &'static str, cond: bool) -> SpanGuard {
    if cond {
        span(name)
    } else {
        SpanGuard { armed: false }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let (name, total, self_ns) = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let frame = stack.pop().expect("span stack underflow");
            let total = frame.start.elapsed().as_nanos() as u64;
            if let Some(parent) = stack.last_mut() {
                parent.child_nanos += total;
            }
            (frame.name, total, total.saturating_sub(frame.child_nanos))
        });
        PROFILE.with(|p| {
            let mut profile = p.borrow_mut();
            let acc = profile.entry(name).or_default();
            acc.count += 1;
            acc.total_ns += total;
            acc.self_ns += self_ns;
        });
    }
}

/// Drains this thread's accumulated profile, sorted by phase name.
pub fn take_thread_profile() -> Vec<Phase> {
    PROFILE.with(|p| {
        std::mem::take(&mut *p.borrow_mut())
            .into_iter()
            .map(|(name, acc)| Phase {
                name,
                count: acc.count,
                total_ns: acc.total_ns,
                self_ns: acc.self_ns,
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled-spans tests share the one global switch, so they all
    // run under this lock (and restore the disabled default) to avoid
    // arming spans while an unrelated test is mid-flight.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = GATE.lock().unwrap();
        enable_spans(false);
        let _ = take_thread_profile();
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        assert!(take_thread_profile().is_empty());
    }

    #[test]
    fn nested_spans_split_self_time() {
        let _g = GATE.lock().unwrap();
        enable_spans(true);
        let _ = take_thread_profile();
        {
            let _outer = span("outer");
            for _ in 0..3 {
                let _inner = span("inner");
                std::hint::black_box(0u64);
            }
        }
        enable_spans(false);
        let phases = take_thread_profile();
        let by_name =
            |n: &str| phases.iter().find(|p| p.name == n).cloned().expect("phase present");
        let outer = by_name("outer");
        let inner = by_name("inner");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        // Outer's self time excludes the nested spans' total.
        assert!(outer.total_ns >= inner.total_ns);
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
        // Names come back sorted.
        let mut names: Vec<_> = phases.iter().map(|p| p.name).collect();
        let sorted = names.clone();
        names.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn span_if_respects_condition() {
        let _g = GATE.lock().unwrap();
        enable_spans(true);
        let _ = take_thread_profile();
        {
            let _skipped = span_if("skipped", false);
            let _taken = span_if("taken", true);
        }
        enable_spans(false);
        let phases = take_thread_profile();
        assert!(phases.iter().any(|p| p.name == "taken"));
        assert!(!phases.iter().any(|p| p.name == "skipped"));
    }

    #[test]
    fn take_drains() {
        let _g = GATE.lock().unwrap();
        enable_spans(true);
        let _ = take_thread_profile();
        {
            let _s = span("once");
        }
        enable_spans(false);
        assert_eq!(take_thread_profile().len(), 1);
        assert!(take_thread_profile().is_empty());
    }
}
