//! Fault injection: a registry of named failure points.
//!
//! Crash-safety code is only as trustworthy as the crashes it has been
//! tested against. A *failpoint* is a named hook compiled into
//! production paths (shard commits, atomic writes) that normally does
//! nothing — disarmed, each site costs one `Relaxed` atomic load, the
//! same zero-cost-when-off contract the span and trace layers keep.
//! Armed with a rule, the hook can:
//!
//! * **kill** the process on the spot (`std::process::abort`, i.e. an
//!   un-catchable SIGABRT — the in-process stand-in for `kill -9`),
//! * **hang** forever (so an out-of-process harness can deliver a real
//!   SIGKILL while the victim is alive mid-campaign), or
//! * **err** — return an injected `io::Error` for the caller's error
//!   path to handle.
//!
//! Rules are deterministic: `name=action@n` fires on the *n*-th hit of
//! `name` (1-based, one-shot), so "kill after the 3rd shard commit" is
//! reproducible run-to-run. Specs arm either programmatically
//! ([`arm_failpoints`]) or from the `PREFENDER_FAILPOINTS` environment
//! variable ([`arm_failpoints_from_env`]), which the binaries read at
//! startup; several `;`-separated rules may be armed at once.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Environment variable the binaries read at startup to arm failpoints.
pub const FAILPOINTS_ENV: &str = "PREFENDER_FAILPOINTS";

static FAILPOINTS_ARMED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Vec<Rule>> = Mutex::new(Vec::new());

/// What an armed failpoint does when its hit count comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Abort the process immediately (un-catchable, like `kill -9`).
    Kill,
    /// Sleep forever so an external harness can SIGKILL a live process.
    Hang,
    /// Return an injected `io::Error` from the failpoint site.
    Err,
}

#[derive(Debug)]
struct Rule {
    name: String,
    action: FailAction,
    /// Hits remaining before the rule fires; 0 = already fired.
    countdown: u64,
}

fn parse_rule(spec: &str) -> Result<Rule, String> {
    let (name, rest) = spec
        .split_once('=')
        .ok_or_else(|| format!("failpoint rule `{spec}` is not `name=action[@n]`"))?;
    if name.is_empty() {
        return Err(format!("failpoint rule `{spec}` has an empty name"));
    }
    let (action_s, count_s) = match rest.split_once('@') {
        Some((a, n)) => (a, Some(n)),
        None => (rest, None),
    };
    let action = match action_s {
        "kill" => FailAction::Kill,
        "hang" => FailAction::Hang,
        "err" => FailAction::Err,
        other => return Err(format!("unknown failpoint action `{other}` (kill|hang|err)")),
    };
    let countdown = match count_s {
        None => 1,
        Some(n) => n
            .parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("failpoint count `{n}` is not a positive integer"))?,
    };
    Ok(Rule { name: name.to_string(), action, countdown })
}

/// Arms failpoints from a spec string: `;`-separated `name=action[@n]`
/// rules, where action is `kill`, `hang` or `err` and `@n` (default 1)
/// fires the rule on the n-th hit of `name`. Replaces any previously
/// armed rules; an empty spec disarms.
pub fn arm_failpoints(spec: &str) -> Result<(), String> {
    let mut rules = Vec::new();
    for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
        rules.push(parse_rule(part)?);
    }
    let armed = !rules.is_empty();
    *REGISTRY.lock().unwrap() = rules;
    FAILPOINTS_ARMED.store(armed, Ordering::Relaxed);
    Ok(())
}

/// Disarms all failpoints, restoring the zero-cost default.
pub fn disarm_failpoints() {
    REGISTRY.lock().unwrap().clear();
    FAILPOINTS_ARMED.store(false, Ordering::Relaxed);
}

/// Arms failpoints from [`FAILPOINTS_ENV`] if it is set. Returns whether
/// anything was armed; a malformed spec is an error (binaries should
/// refuse to run rather than silently skip the requested fault).
pub fn arm_failpoints_from_env() -> Result<bool, String> {
    match std::env::var(FAILPOINTS_ENV) {
        Ok(spec) if !spec.trim().is_empty() => {
            arm_failpoints(&spec)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// A named failure point. Disarmed (the default) this is one `Relaxed`
/// atomic load. Armed, the matching rule's n-th hit either returns an
/// injected [`io::Error`] (`err`), aborts the process (`kill`), or
/// sleeps forever (`hang`).
#[inline]
pub fn failpoint(name: &str) -> io::Result<()> {
    if !FAILPOINTS_ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    fire(name)
}

#[cold]
fn fire(name: &str) -> io::Result<()> {
    let action = {
        let mut registry = REGISTRY.lock().unwrap();
        let mut fired = None;
        for rule in registry.iter_mut().filter(|r| r.name == name) {
            match rule.countdown {
                0 => {} // already fired (one-shot)
                1 => {
                    rule.countdown = 0;
                    fired = Some(rule.action);
                    break;
                }
                _ => {
                    rule.countdown -= 1;
                    break; // counted this hit; not yet
                }
            }
        }
        fired
    };
    match action {
        None => Ok(()),
        Some(FailAction::Err) => {
            Err(io::Error::other(format!("failpoint `{name}`: injected I/O failure")))
        }
        Some(FailAction::Kill) => {
            eprintln!("failpoint `{name}`: aborting process");
            std::process::abort();
        }
        Some(FailAction::Hang) => {
            eprintln!("failpoint `{name}`: hanging (awaiting external kill)");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Failpoints are global state; serialize the tests that arm them and
    // always restore the disarmed default (same pattern as the trace
    // tests' gate).
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_is_a_no_op() {
        let _g = GATE.lock().unwrap();
        disarm_failpoints();
        for _ in 0..3 {
            assert!(failpoint("anything").is_ok());
        }
    }

    #[test]
    fn err_fires_on_the_nth_hit_once() {
        let _g = GATE.lock().unwrap();
        arm_failpoints("io.write=err@3").unwrap();
        assert!(failpoint("io.write").is_ok(), "hit 1 passes");
        assert!(failpoint("other").is_ok(), "unrelated names never fire");
        assert!(failpoint("io.write").is_ok(), "hit 2 passes");
        let err = failpoint("io.write").unwrap_err();
        assert!(err.to_string().contains("failpoint `io.write`"), "{err}");
        assert!(failpoint("io.write").is_ok(), "one-shot: hit 4 passes again");
        disarm_failpoints();
    }

    #[test]
    fn multiple_rules_fire_independently() {
        let _g = GATE.lock().unwrap();
        arm_failpoints("a=err; b=err@2").unwrap();
        assert!(failpoint("b").is_ok());
        assert!(failpoint("a").is_err());
        assert!(failpoint("b").is_err());
        disarm_failpoints();
    }

    #[test]
    fn rearming_replaces_rules_and_empty_spec_disarms() {
        let _g = GATE.lock().unwrap();
        arm_failpoints("a=err").unwrap();
        arm_failpoints("b=err").unwrap();
        assert!(failpoint("a").is_ok(), "old rules are gone");
        assert!(failpoint("b").is_err());
        arm_failpoints("").unwrap();
        assert!(failpoint("b").is_ok());
        disarm_failpoints();
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _g = GATE.lock().unwrap();
        for bad in ["nameonly", "=err", "a=explode", "a=err@0", "a=err@x", "a=kill@-1"] {
            assert!(arm_failpoints(bad).is_err(), "spec `{bad}` must be rejected");
        }
        // A rejected spec must not leave stale rules armed.
        disarm_failpoints();
    }

    #[test]
    fn kill_and_hang_specs_parse() {
        let _g = GATE.lock().unwrap();
        arm_failpoints("shard.commit=kill@7; atomic.fsync=hang").unwrap();
        // Don't hit them (that would abort the test runner) — just check
        // they armed and then disarm.
        assert!(failpoint("unrelated").is_ok());
        disarm_failpoints();
    }
}
