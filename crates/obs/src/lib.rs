//! Zero-cost-when-off observability for the PREFENDER reproduction.
//!
//! This crate is dependency-free and sits below every other workspace
//! crate. It provides three layers, all designed around one hard
//! contract: **enabling observability never changes an artifact byte**.
//! Wall-clock time is allowed only in obs/profile outputs, never in
//! `sweep.json`/`leakage.json`/CSV/figure artifacts.
//!
//! 1. **Counters** ([`ObsCounters`]) — plain-`u64` event counts kept
//!    always-on by the simulator, CPU, defense models and attack runner.
//!    Incrementing one is a single add on an ordinary field; there is no
//!    atomic, no branch, no feature flag. Per-scenario counter blocks are
//!    pure functions of the scenario, so campaign totals are identical at
//!    every thread count (merging is a field-wise sum, plus `max` for
//!    high-water marks — both order-independent).
//! 2. **Spans** ([`span`], [`take_thread_profile`]) — a manual scoped
//!    timer API with a per-thread span stack. Unless a collector is
//!    enabled via [`enable_spans`], opening a span is one `Relaxed`
//!    atomic load and no clock read. Enabled spans accumulate
//!    (count, total, self-time) per phase name into a thread-local
//!    profile, drained by [`take_thread_profile`].
//! 3. **Flight recorder** ([`trace_event`], [`take_thread_trace`]) — a
//!    typed, cycle-stamped µarch event trace captured into a preallocated
//!    per-thread buffer. Disarmed (the default), each site is one
//!    `Relaxed` load and never constructs its event; armed via
//!    [`arm_trace`], a full buffer drops-and-counts rather than
//!    reallocating. Per-run drains make traces byte-identical at any
//!    thread count.
//! 4. **Snapshots & telemetry** ([`Value`], [`HostInfo`],
//!    [`ProgressReporter`]) — a tiny deterministic JSON tree (the build
//!    environment vendors no serde) for `obs.json`/`PROFILE.json`, host
//!    identification for bench reports, and a throttled stderr progress
//!    meter for long campaigns.
//! 5. **Crash safety** ([`write_atomic`], [`failpoint`]) — the one
//!    atomic-rename + fsync path every artifact write goes through, and
//!    a deterministic fault-injection registry (env/flag-armed,
//!    zero-cost when off) that can kill the process or fail an I/O
//!    operation at chosen points so the crash-resume story is testable.

mod counters;
mod failpoint;
mod fsio;
mod host;
mod progress;
mod snapshot;
mod span;
mod trace;

pub use counters::ObsCounters;
pub use failpoint::{
    arm_failpoints, arm_failpoints_from_env, disarm_failpoints, failpoint, FailAction,
    FAILPOINTS_ENV,
};
pub use fsio::{atomic_tmp_pid, is_atomic_tmp, pid_alive, write_atomic};
pub use host::HostInfo;
pub use progress::ProgressReporter;
pub use snapshot::Value;
pub use span::{enable_spans, span, span_if, spans_enabled, take_thread_profile, Phase, SpanGuard};
pub use trace::{
    arm_trace, disarm_trace, take_thread_trace, trace_armed, trace_event, CacheTag, TraceBuf,
    TraceEvent, DEFAULT_TRACE_CAPACITY,
};
