//! Host identification for bench and obs outputs.

use crate::snapshot::Value;

/// The machine a measurement ran on.
///
/// Bench throughput numbers (`BENCH_sim.json`, `BENCH_sweep.json`) are
/// only interpretable next to the host that produced them — a flat
/// 8-thread parallel efficiency on a single-vCPU runner is expected, the
/// same number on an 8-core box is a regression. This block carries just
/// enough to tell those apart. It never goes into determinism-checked
/// artifacts (it contains a wall-clock timestamp).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// Available logical CPUs (`std::thread::available_parallelism`).
    pub nproc: usize,
    /// CPU model name from `/proc/cpuinfo`, when readable.
    pub model_name: Option<String>,
    /// Capture time, seconds since the UNIX epoch.
    pub timestamp_unix: u64,
}

impl HostInfo {
    /// Captures the current host.
    pub fn capture() -> Self {
        let nproc = std::thread::available_parallelism().map_or(1, |n| n.get());
        let model_name = std::fs::read_to_string("/proc/cpuinfo").ok().and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split_once(':'))
                .map(|(_, v)| v.trim().to_string())
        });
        let timestamp_unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        HostInfo { nproc, model_name, timestamp_unix }
    }

    /// The host block as a JSON object value.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("nproc".into(), Value::U64(self.nproc as u64)),
            ("model_name".into(), self.model_name.clone().map_or(Value::Null, Value::Str)),
            ("timestamp_unix".into(), Value::U64(self.timestamp_unix)),
        ])
    }

    /// The host block as a single-line JSON object, for embedding in the
    /// hand-rolled bench reports.
    pub fn json_inline(&self) -> String {
        let model = match &self.model_name {
            Some(m) => {
                let mut esc = String::with_capacity(m.len() + 2);
                for c in m.chars() {
                    match c {
                        '"' => esc.push_str("\\\""),
                        '\\' => esc.push_str("\\\\"),
                        c if (c as u32) < 0x20 => esc.push(' '),
                        c => esc.push(c),
                    }
                }
                format!("\"{esc}\"")
            }
            None => "null".to_string(),
        };
        format!(
            "{{\"nproc\": {}, \"model_name\": {}, \"timestamp_unix\": {}}}",
            self.nproc, model, self.timestamp_unix
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_is_sane() {
        let h = HostInfo::capture();
        assert!(h.nproc >= 1);
        assert!(h.timestamp_unix > 1_600_000_000, "clock looks unset: {}", h.timestamp_unix);
    }

    #[test]
    fn inline_json_shape() {
        let h = HostInfo {
            nproc: 8,
            model_name: Some("Fake \"CPU\" 9000".into()),
            timestamp_unix: 1_700_000_000,
        };
        let j = h.json_inline();
        assert!(j.starts_with("{\"nproc\": 8, \"model_name\": \"Fake \\\"CPU\\\" 9000\""));
        assert!(j.ends_with("\"timestamp_unix\": 1700000000}"));
        let none = HostInfo { nproc: 1, model_name: None, timestamp_unix: 0 };
        assert_eq!(
            none.json_inline(),
            "{\"nproc\": 1, \"model_name\": null, \"timestamp_unix\": 0}"
        );
    }

    #[test]
    fn value_shape() {
        let h = HostInfo { nproc: 2, model_name: None, timestamp_unix: 5 };
        let j = h.to_value().to_json(0);
        assert!(j.contains("\"nproc\": 2"));
        assert!(j.contains("\"model_name\": null"));
    }
}
