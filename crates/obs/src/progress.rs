//! A throttled stderr progress meter for long campaigns.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Prints `label: done/total (rate/s, ETA …)` lines to stderr, at most
/// once per throttle interval (default 200 ms), plus a final summary
/// line from [`finish`](ProgressReporter::finish).
///
/// Progress is *presentation only*: it writes to stderr, never touches
/// artifacts, and is off by default behind the sweep CLI's `--progress`
/// flag. Updates may arrive from multiple worker threads — callers wrap
/// the reporter in a mutex (updates are rare: one per completed chunk).
#[derive(Debug)]
pub struct ProgressReporter {
    label: String,
    total: u64,
    started: Instant,
    last_print: Option<Instant>,
    throttle: Duration,
}

fn fmt_eta(secs: f64) -> String {
    if !secs.is_finite() || secs < 0.0 {
        return "?".to_string();
    }
    let s = secs.round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

impl ProgressReporter {
    /// A reporter for `total` work items, printing under `label`.
    pub fn new(label: impl Into<String>, total: u64) -> Self {
        ProgressReporter {
            label: label.into(),
            total,
            started: Instant::now(),
            last_print: None,
            throttle: Duration::from_millis(200),
        }
    }

    /// Overrides the minimum interval between prints.
    #[must_use]
    pub fn throttle(mut self, interval: Duration) -> Self {
        self.throttle = interval;
        self
    }

    /// Records `done` items complete; prints when the throttle allows.
    pub fn update(&mut self, done: u64) {
        let now = Instant::now();
        if let Some(last) = self.last_print {
            if now.duration_since(last) < self.throttle {
                return;
            }
        }
        self.last_print = Some(now);
        let line = self.render(done, now);
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r{line}");
        let _ = err.flush();
    }

    /// Prints the final line (unthrottled) and ends the stderr line.
    pub fn finish(&mut self, done: u64) {
        let line = self.render(done, Instant::now());
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "\r{line}");
        let _ = err.flush();
    }

    fn render(&self, done: u64, now: Instant) -> String {
        let elapsed = now.duration_since(self.started).as_secs_f64();
        let rate = if elapsed > 0.0 { done as f64 / elapsed } else { 0.0 };
        let eta = if done > 0 && done < self.total {
            fmt_eta(elapsed * (self.total - done) as f64 / done as f64)
        } else if done >= self.total {
            "0s".to_string()
        } else {
            "?".to_string()
        };
        format!("{}: {}/{} ({:.0}/s, ETA {})", self.label, done, self.total, rate, eta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_formats() {
        assert_eq!(fmt_eta(5.2), "5s");
        assert_eq!(fmt_eta(65.0), "1m05s");
        assert_eq!(fmt_eta(3700.0), "1h01m");
        assert_eq!(fmt_eta(f64::NAN), "?");
    }

    #[test]
    fn render_reports_rate_and_eta() {
        let r = ProgressReporter::new("sweep", 100);
        let line = r.render(0, r.started);
        assert!(line.starts_with("sweep: 0/100"));
        assert!(line.contains("ETA ?"));
        let done = r.render(100, r.started + Duration::from_secs(2));
        assert!(done.contains("100/100 (50/s, ETA 0s)"), "{done}");
    }

    #[test]
    fn throttle_suppresses_rapid_updates() {
        let mut r = ProgressReporter::new("t", 10).throttle(Duration::from_secs(3600));
        r.update(1);
        let first = r.last_print;
        assert!(first.is_some());
        r.update(2);
        assert_eq!(r.last_print, first, "second update inside throttle window must not print");
    }
}
