//! A tiny deterministic JSON tree for obs and profile outputs.
//!
//! The build environment vendors no serde, so like the sweep artifacts
//! this is hand-rolled: object keys keep insertion order, floats go
//! through Rust's shortest-round-trip formatter (non-finite becomes
//! `null`), and strings are escaped the same way `sweep.json` escapes
//! them — equal trees serialize to identical bytes.

use std::fmt::Write as _;

/// One JSON value. Objects preserve key insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common counter case).
    U64(u64),
    /// A float; non-finite serializes as `null`.
    F64(f64),
    /// An escaped string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with ordered keys.
    Obj(Vec<(String, Value)>),
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Value {
    /// Serializes the tree, pretty-printed with two-space indentation
    /// starting at `indent` levels.
    pub fn to_json(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, indent);
        out
    }

    /// Serializes the tree on one line, no whitespace — the JSONL form.
    pub fn to_json_inline(&self) -> String {
        let mut out = String::new();
        self.write_inline(&mut out);
        out
    }

    fn write_inline(&self, out: &mut String) {
        match self {
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.write_inline(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push('"');
                    escape(k, out);
                    out.push_str("\": ");
                    v.write_inline(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => {
                out.push('"');
                escape(s, out);
                out.push('"');
            }
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    for _ in 0..=indent {
                        out.push_str("  ");
                    }
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                for _ in 0..indent {
                    out.push_str("  ");
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    for _ in 0..=indent {
                        out.push_str("  ");
                    }
                    out.push('"');
                    escape(k, out);
                    out.push_str("\": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                for _ in 0..indent {
                    out.push_str("  ");
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Value::Null.to_json(0), "null");
        assert_eq!(Value::Bool(true).to_json(0), "true");
        assert_eq!(Value::U64(42).to_json(0), "42");
        assert_eq!(Value::F64(0.5).to_json(0), "0.5");
        assert_eq!(Value::F64(f64::NAN).to_json(0), "null");
        assert_eq!(Value::Str("a\"b\n".into()).to_json(0), "\"a\\\"b\\n\"");
    }

    #[test]
    fn nested_shape_is_stable() {
        let v = Value::Obj(vec![
            ("b".into(), Value::U64(1)),
            ("a".into(), Value::Arr(vec![Value::U64(2), Value::Null])),
            ("empty".into(), Value::Obj(vec![])),
        ]);
        let expected = "{\n  \"b\": 1,\n  \"a\": [\n    2,\n    null\n  ],\n  \"empty\": {}\n}";
        assert_eq!(v.to_json(0), expected);
        // Equal trees serialize to equal bytes.
        assert_eq!(v.to_json(0), v.clone().to_json(0));
    }

    #[test]
    fn inline_form_is_single_line() {
        let v = Value::Obj(vec![
            ("w".into(), Value::U64(3)),
            ("xs".into(), Value::Arr(vec![Value::U64(1), Value::F64(2.5)])),
        ]);
        assert_eq!(v.to_json_inline(), "{\"w\": 3, \"xs\": [1, 2.5]}");
    }

    #[test]
    fn control_chars_escaped() {
        let v = Value::Str("\u{1}".into());
        assert_eq!(v.to_json(0), "\"\\u0001\"");
    }
}
