//! The cross-layer counter block harvested from a machine after a run.

use crate::snapshot::Value;

/// Event counters accumulated by one simulation (or merged over many).
///
/// Every field is a plain `u64` kept always-on by its owning layer — the
/// cache hierarchy, the CPU retire loop, the PREFENDER defense units and
/// the attack runner all bump ordinary struct fields; this type only
/// *collects* them after a run. A scenario's counter block is a pure
/// function of the scenario (machine resets are bit-identical to fresh
/// builds), so merging per-scenario blocks in any order yields the same
/// campaign totals: every field merges by summation except
/// [`mshr_high_water`](ObsCounters::mshr_high_water), which merges by
/// `max` — both order-independent, which is what lets tests assert
/// 1-vs-8-thread equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsCounters {
    /// Demand accesses that hit, summed over every cache level.
    pub cache_demand_hits: u64,
    /// Demand accesses that missed, summed over every cache level.
    pub cache_demand_misses: u64,
    /// Lines evicted by fills, summed over every cache level.
    pub cache_evictions: u64,
    /// Prefetch requests the memory system accepted (all units + basic).
    pub prefetch_issued: u64,
    /// Prefetch requests dropped because the line was already present or
    /// in flight.
    pub prefetch_dropped: u64,
    /// Demand accesses that hit an in-flight prefetch (late but useful).
    pub prefetch_late: u64,
    /// Prefetched lines evicted or invalidated without ever being used.
    pub prefetch_expired: u64,
    /// Peak simultaneous MSHR occupancy (merges by `max`, not `+`).
    pub mshr_high_water: u64,
    /// Record Protector protections granted (unprotected buffer hit a
    /// recorded pattern).
    pub rp_protections_granted: u64,
    /// Protections dropped again — guided-prefetch budget exhausted or
    /// idle expiry.
    pub rp_protections_expired: u64,
    /// Access Tracker buffer allocations (every PC (re)association).
    pub at_buffer_allocs: u64,
    /// Allocations that evicted a live buffer to make room.
    pub at_buffer_evictions: u64,
    /// DiffMin updates served by the incremental O(n) pass.
    pub diffmin_incremental: u64,
    /// DiffMin updates that fell back to the full O(n²) rescan.
    pub diffmin_rescans: u64,
    /// Retire fast-path dispatches (consecutive-`nop` runs retired as one
    /// batch).
    pub retire_fast_dispatches: u64,
    /// Instructions retired through the fast path.
    pub retire_fast_nops: u64,
    /// Shard leases claimed (multi-process campaigns; O_EXCL creates
    /// that succeeded).
    pub lease_claims: u64,
    /// Lease heartbeats renewed while executing a claimed shard.
    pub lease_renewals: u64,
    /// Stale leases broken (heartbeat older than the TTL — the holder is
    /// presumed dead).
    pub lease_breaks: u64,
    /// Shards re-executed after their lease was broken or their partial
    /// state discarded — work reclaimed from a dead worker.
    pub lease_reclaims: u64,
    /// Committed-but-invalid shard files moved to `quarantine/` before
    /// re-execution (torn writes, corruption, foreign campaigns).
    pub shard_quarantines: u64,
}

impl ObsCounters {
    /// A zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another block into this one: field-wise sum, except the
    /// high-water mark which merges by `max`.
    pub fn merge(&mut self, rhs: &ObsCounters) {
        self.cache_demand_hits += rhs.cache_demand_hits;
        self.cache_demand_misses += rhs.cache_demand_misses;
        self.cache_evictions += rhs.cache_evictions;
        self.prefetch_issued += rhs.prefetch_issued;
        self.prefetch_dropped += rhs.prefetch_dropped;
        self.prefetch_late += rhs.prefetch_late;
        self.prefetch_expired += rhs.prefetch_expired;
        self.mshr_high_water = self.mshr_high_water.max(rhs.mshr_high_water);
        self.rp_protections_granted += rhs.rp_protections_granted;
        self.rp_protections_expired += rhs.rp_protections_expired;
        self.at_buffer_allocs += rhs.at_buffer_allocs;
        self.at_buffer_evictions += rhs.at_buffer_evictions;
        self.diffmin_incremental += rhs.diffmin_incremental;
        self.diffmin_rescans += rhs.diffmin_rescans;
        self.retire_fast_dispatches += rhs.retire_fast_dispatches;
        self.retire_fast_nops += rhs.retire_fast_nops;
        self.lease_claims += rhs.lease_claims;
        self.lease_renewals += rhs.lease_renewals;
        self.lease_breaks += rhs.lease_breaks;
        self.lease_reclaims += rhs.lease_reclaims;
        self.shard_quarantines += rhs.shard_quarantines;
    }

    /// Returns the block and leaves `self` zeroed.
    pub fn take(&mut self) -> ObsCounters {
        std::mem::take(self)
    }

    /// The block as an ordered JSON object (field declaration order).
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("cache_demand_hits".into(), Value::U64(self.cache_demand_hits)),
            ("cache_demand_misses".into(), Value::U64(self.cache_demand_misses)),
            ("cache_evictions".into(), Value::U64(self.cache_evictions)),
            ("prefetch_issued".into(), Value::U64(self.prefetch_issued)),
            ("prefetch_dropped".into(), Value::U64(self.prefetch_dropped)),
            ("prefetch_late".into(), Value::U64(self.prefetch_late)),
            ("prefetch_expired".into(), Value::U64(self.prefetch_expired)),
            ("mshr_high_water".into(), Value::U64(self.mshr_high_water)),
            ("rp_protections_granted".into(), Value::U64(self.rp_protections_granted)),
            ("rp_protections_expired".into(), Value::U64(self.rp_protections_expired)),
            ("at_buffer_allocs".into(), Value::U64(self.at_buffer_allocs)),
            ("at_buffer_evictions".into(), Value::U64(self.at_buffer_evictions)),
            ("diffmin_incremental".into(), Value::U64(self.diffmin_incremental)),
            ("diffmin_rescans".into(), Value::U64(self.diffmin_rescans)),
            ("retire_fast_dispatches".into(), Value::U64(self.retire_fast_dispatches)),
            ("retire_fast_nops".into(), Value::U64(self.retire_fast_nops)),
            ("lease_claims".into(), Value::U64(self.lease_claims)),
            ("lease_renewals".into(), Value::U64(self.lease_renewals)),
            ("lease_breaks".into(), Value::U64(self.lease_breaks)),
            ("lease_reclaims".into(), Value::U64(self.lease_reclaims)),
            ("shard_quarantines".into(), Value::U64(self.shard_quarantines)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(k: u64) -> ObsCounters {
        ObsCounters {
            cache_demand_hits: k,
            cache_demand_misses: 2 * k,
            cache_evictions: 3 * k,
            prefetch_issued: 4 * k,
            prefetch_dropped: 5 * k,
            prefetch_late: 6 * k,
            prefetch_expired: 7 * k,
            mshr_high_water: 8 * k,
            rp_protections_granted: 9 * k,
            rp_protections_expired: 10 * k,
            at_buffer_allocs: 11 * k,
            at_buffer_evictions: 12 * k,
            diffmin_incremental: 13 * k,
            diffmin_rescans: 14 * k,
            retire_fast_dispatches: 15 * k,
            retire_fast_nops: 16 * k,
            lease_claims: 17 * k,
            lease_renewals: 18 * k,
            lease_breaks: 19 * k,
            lease_reclaims: 20 * k,
            shard_quarantines: 21 * k,
        }
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = sample(1);
        a.merge(&sample(2));
        assert_eq!(a.cache_demand_hits, 3);
        assert_eq!(a.retire_fast_nops, 48);
        assert_eq!(a.lease_breaks, 57);
        assert_eq!(a.shard_quarantines, 63);
        // High water merges by max, not sum.
        assert_eq!(a.mshr_high_water, 16);
    }

    #[test]
    fn merge_is_order_independent() {
        let blocks = [sample(3), sample(1), sample(7), sample(2)];
        let mut fwd = ObsCounters::new();
        for b in &blocks {
            fwd.merge(b);
        }
        let mut rev = ObsCounters::new();
        for b in blocks.iter().rev() {
            rev.merge(b);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn take_leaves_zero() {
        let mut a = sample(5);
        let t = a.take();
        assert_eq!(t, sample(5));
        assert_eq!(a, ObsCounters::new());
    }

    #[test]
    fn to_value_has_every_field() {
        let v = sample(1).to_value();
        let json = v.to_json(0);
        for key in [
            "cache_demand_hits",
            "mshr_high_water",
            "diffmin_rescans",
            "retire_fast_nops",
            "rp_protections_granted",
            "lease_claims",
            "lease_renewals",
            "lease_breaks",
            "lease_reclaims",
            "shard_quarantines",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
