//! The flight recorder: a typed, cycle-stamped µarch event trace.
//!
//! Tracing is **off by default**: until [`arm_trace`] runs, every
//! [`trace_event`] site costs one `Relaxed` atomic load and does not even
//! construct its event (the site passes a closure) — the same
//! zero-cost-when-off contract the span layer keeps. When armed, events
//! land in a preallocated per-thread buffer of fixed capacity; a full
//! buffer **drops and counts** instead of reallocating, so an armed
//! recorder never perturbs the allocator mid-run.
//!
//! The buffer is thread-local on purpose: a machine run executes on one
//! thread, so draining the buffer after each run ([`take_thread_trace`])
//! yields that run's events in emission order — a pure function of the
//! scenario. Harness code (the attack runner, the sweep engine)
//! reassembles per-scenario traces in scenario-index order, which is what
//! makes trace artifacts byte-identical at any thread count.
//!
//! The hard artifact contract extends to tracing: hooks only *observe* —
//! arming the recorder never changes a simulated outcome, so
//! `sweep.json`/`leakage.json` stay byte-identical with tracing on.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::snapshot::Value;

static TRACE_ARMED: AtomicBool = AtomicBool::new(false);
static TRACE_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_TRACE_CAPACITY);

/// Default per-thread event capacity (events, not bytes).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// Whether the flight recorder is armed (events are captured).
#[inline]
pub fn trace_armed() -> bool {
    TRACE_ARMED.load(Ordering::Relaxed)
}

/// Globally arms the flight recorder with a per-thread buffer of
/// `capacity` events. Buffers are preallocated lazily, once per thread,
/// at the first captured event; a full buffer drops further events and
/// counts the drops. Artifacts are byte-identical armed or not — trace
/// hooks only observe.
pub fn arm_trace(capacity: usize) {
    TRACE_CAPACITY.store(capacity.max(1), Ordering::Relaxed);
    TRACE_ARMED.store(true, Ordering::Relaxed);
}

/// Globally disarms the flight recorder. Already-captured events stay in
/// their thread buffers until drained.
pub fn disarm_trace() {
    TRACE_ARMED.store(false, Ordering::Relaxed);
}

/// Identity of one cache array in the hierarchy, packed as
/// `level << 4 | core`: level 1 = L1I, 2 = L1D, 3 = shared L2 (core 0).
/// The simulator assigns these at hierarchy construction.
pub type CacheTag = u8;

/// One cycle-stamped microarchitectural event.
///
/// `at` is always simulated cycles; `line` is a line-aligned address;
/// `cache` is a [`CacheTag`]; `source` is the prefetch-source code the
/// simulator assigns (0 = ScaleTracker, 1 = AccessTracker,
/// 2 = RecordProtector, 3 = Basic, 4 = Other); `level` on
/// [`TraceEvent::Access`] is the serving level (0 = L1, 1 = L2,
/// 2 = memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A demand lookup hit an installed line.
    DemandHit {
        /// Cycle stamp.
        at: u64,
        /// Which cache array.
        cache: CacheTag,
        /// Set index.
        set: u32,
        /// Way index within the set.
        way: u32,
        /// Line-aligned address.
        line: u64,
    },
    /// A demand lookup found neither an installed nor an in-flight line.
    DemandMiss {
        /// Cycle stamp.
        at: u64,
        /// Which cache array.
        cache: CacheTag,
        /// Set index.
        set: u32,
        /// Line-aligned address.
        line: u64,
    },
    /// A fill displaced a valid line.
    Eviction {
        /// Cycle stamp.
        at: u64,
        /// Which cache array.
        cache: CacheTag,
        /// Set index.
        set: u32,
        /// Victim way.
        way: u32,
        /// The displaced line's address (the victim's identity).
        victim: u64,
    },
    /// A prefetcher proposed a prefetch (before the memory system's
    /// dedup) — emitted by the prefetch units themselves.
    PrefetchPropose {
        /// Cycle stamp.
        at: u64,
        /// Proposing core.
        core: u32,
        /// Program counter of the triggering access.
        pc: u64,
        /// Proposed line address.
        line: u64,
    },
    /// The memory system accepted and issued a prefetch.
    PrefetchIssue {
        /// Cycle stamp.
        at: u64,
        /// Target core (whose L1D receives the line).
        core: u32,
        /// Line address.
        line: u64,
        /// Prefetch source code.
        source: u8,
    },
    /// A prefetched line materialized in a cache array.
    PrefetchFill {
        /// Cycle stamp (the fill's completion time).
        at: u64,
        /// Which cache array.
        cache: CacheTag,
        /// Set index.
        set: u32,
        /// Way filled.
        way: u32,
        /// Line address.
        line: u64,
    },
    /// The memory system declined a prefetch (line present or in flight).
    PrefetchDrop {
        /// Cycle stamp.
        at: u64,
        /// Target core.
        core: u32,
        /// Line address.
        line: u64,
        /// Prefetch source code.
        source: u8,
    },
    /// A demand access caught a prefetch still in flight (late but
    /// useful).
    PrefetchLate {
        /// Cycle stamp of the demand access.
        at: u64,
        /// Which cache array.
        cache: CacheTag,
        /// Line address.
        line: u64,
        /// Prefetch source code.
        source: u8,
    },
    /// A prefetched line left the cache without ever being demanded.
    PrefetchExpire {
        /// Cycle stamp.
        at: u64,
        /// Which cache array.
        cache: CacheTag,
        /// Line address.
        line: u64,
    },
    /// The Record Protector granted protection to an access buffer.
    RpGrant {
        /// Cycle stamp.
        at: u64,
        /// The protected buffer's associated load PC.
        pc: u64,
    },
    /// A protection lapsed (guided-prefetch budget spent or idle expiry).
    RpExpire {
        /// Cycle stamp.
        at: u64,
        /// The unprotected buffer's associated load PC.
        pc: u64,
    },
    /// The Access Tracker (re)associated a buffer with a load PC.
    AtAlloc {
        /// Cycle stamp.
        at: u64,
        /// The newly associated PC.
        pc: u64,
        /// Buffer index.
        buffer: u32,
    },
    /// An allocation displaced a live buffer.
    AtEvict {
        /// Cycle stamp.
        at: u64,
        /// The displaced buffer's old PC.
        pc: u64,
        /// Buffer index.
        buffer: u32,
    },
    /// A `clflush` retired.
    Flush {
        /// Cycle stamp.
        at: u64,
        /// Flushed line address.
        line: u64,
        /// Flush latency paid.
        latency: u64,
    },
    /// An MSHR entry was allocated for a memory-bound miss or prefetch.
    MshrAlloc {
        /// Cycle stamp.
        at: u64,
        /// Line address.
        line: u64,
    },
    /// An MSHR entry retired (its fill completed and it was pruned).
    MshrRelease {
        /// Prune stamp (the cycle the file noticed the completion).
        at: u64,
        /// Line address.
        line: u64,
    },
    /// One retired demand access as the core observed it — the stream a
    /// latency-measuring attacker sees.
    Access {
        /// Cycle stamp.
        at: u64,
        /// Issuing core.
        core: u32,
        /// Program counter of the load/store.
        pc: u64,
        /// L1D set index of the target address.
        set: u32,
        /// Load-to-use latency.
        latency: u64,
        /// Serving level code (0 = L1, 1 = L2, 2 = memory).
        level: u8,
    },
}

impl TraceEvent {
    /// The event's class name, as serialized in the `e` field.
    pub fn class(&self) -> &'static str {
        match self {
            TraceEvent::DemandHit { .. } => "demand_hit",
            TraceEvent::DemandMiss { .. } => "demand_miss",
            TraceEvent::Eviction { .. } => "eviction",
            TraceEvent::PrefetchPropose { .. } => "prefetch_propose",
            TraceEvent::PrefetchIssue { .. } => "prefetch_issue",
            TraceEvent::PrefetchFill { .. } => "prefetch_fill",
            TraceEvent::PrefetchDrop { .. } => "prefetch_drop",
            TraceEvent::PrefetchLate { .. } => "prefetch_late",
            TraceEvent::PrefetchExpire { .. } => "prefetch_expire",
            TraceEvent::RpGrant { .. } => "rp_grant",
            TraceEvent::RpExpire { .. } => "rp_expire",
            TraceEvent::AtAlloc { .. } => "at_alloc",
            TraceEvent::AtEvict { .. } => "at_evict",
            TraceEvent::Flush { .. } => "flush",
            TraceEvent::MshrAlloc { .. } => "mshr_alloc",
            TraceEvent::MshrRelease { .. } => "mshr_release",
            TraceEvent::Access { .. } => "access",
        }
    }

    /// The cycle stamp.
    pub fn at(&self) -> u64 {
        match *self {
            TraceEvent::DemandHit { at, .. }
            | TraceEvent::DemandMiss { at, .. }
            | TraceEvent::Eviction { at, .. }
            | TraceEvent::PrefetchPropose { at, .. }
            | TraceEvent::PrefetchIssue { at, .. }
            | TraceEvent::PrefetchFill { at, .. }
            | TraceEvent::PrefetchDrop { at, .. }
            | TraceEvent::PrefetchLate { at, .. }
            | TraceEvent::PrefetchExpire { at, .. }
            | TraceEvent::RpGrant { at, .. }
            | TraceEvent::RpExpire { at, .. }
            | TraceEvent::AtAlloc { at, .. }
            | TraceEvent::AtEvict { at, .. }
            | TraceEvent::Flush { at, .. }
            | TraceEvent::MshrAlloc { at, .. }
            | TraceEvent::MshrRelease { at, .. }
            | TraceEvent::Access { at, .. } => at,
        }
    }

    /// The event as an ordered JSON object (`e` first, then `at`, then
    /// the class-specific fields) — serialize with
    /// [`Value::to_json_inline`] for the JSONL artifact form.
    pub fn to_value(&self) -> Value {
        let mut f: Vec<(String, Value)> = vec![
            ("e".into(), Value::Str(self.class().into())),
            ("at".into(), Value::U64(self.at())),
        ];
        let mut u = |k: &str, v: u64| f.push((k.into(), Value::U64(v)));
        match *self {
            TraceEvent::DemandHit { cache, set, way, line, .. } => {
                u("cache", cache as u64);
                u("set", set as u64);
                u("way", way as u64);
                u("line", line);
            }
            TraceEvent::DemandMiss { cache, set, line, .. } => {
                u("cache", cache as u64);
                u("set", set as u64);
                u("line", line);
            }
            TraceEvent::Eviction { cache, set, way, victim, .. } => {
                u("cache", cache as u64);
                u("set", set as u64);
                u("way", way as u64);
                u("victim", victim);
            }
            TraceEvent::PrefetchPropose { core, pc, line, .. } => {
                u("core", core as u64);
                u("pc", pc);
                u("line", line);
            }
            TraceEvent::PrefetchIssue { core, line, source, .. } => {
                u("core", core as u64);
                u("line", line);
                u("source", source as u64);
            }
            TraceEvent::PrefetchFill { cache, set, way, line, .. } => {
                u("cache", cache as u64);
                u("set", set as u64);
                u("way", way as u64);
                u("line", line);
            }
            TraceEvent::PrefetchDrop { core, line, source, .. } => {
                u("core", core as u64);
                u("line", line);
                u("source", source as u64);
            }
            TraceEvent::PrefetchLate { cache, line, source, .. } => {
                u("cache", cache as u64);
                u("line", line);
                u("source", source as u64);
            }
            TraceEvent::PrefetchExpire { cache, line, .. } => {
                u("cache", cache as u64);
                u("line", line);
            }
            TraceEvent::RpGrant { pc, .. } | TraceEvent::RpExpire { pc, .. } => {
                u("pc", pc);
            }
            TraceEvent::AtAlloc { pc, buffer, .. } | TraceEvent::AtEvict { pc, buffer, .. } => {
                u("pc", pc);
                u("buffer", buffer as u64);
            }
            TraceEvent::Flush { line, latency, .. } => {
                u("line", line);
                u("latency", latency);
            }
            TraceEvent::MshrAlloc { line, .. } | TraceEvent::MshrRelease { line, .. } => {
                u("line", line);
            }
            TraceEvent::Access { core, pc, set, latency, level, .. } => {
                u("core", core as u64);
                u("pc", pc);
                u("set", set as u64);
                u("latency", latency);
                u("level", level as u64);
            }
        }
        Value::Obj(f)
    }
}

/// One drained thread trace: events in emission order, plus how many
/// events a full buffer dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceBuf {
    /// Captured events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events discarded because the buffer was full.
    pub dropped: u64,
}

impl TraceBuf {
    /// Appends another drained buffer (events concatenate, drop counts
    /// sum) — how harnesses stitch per-run drains into a scenario trace.
    pub fn merge(&mut self, mut rhs: TraceBuf) {
        self.events.append(&mut rhs.events);
        self.dropped += rhs.dropped;
    }

    /// Total events this buffer *observed* (captured + dropped).
    pub fn observed(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }
}

struct ThreadTrace {
    events: Vec<TraceEvent>,
    /// Hard capacity: `events` never grows past this (allocator rounding
    /// of the initial reservation notwithstanding).
    cap: usize,
    dropped: u64,
}

thread_local! {
    static TRACE: RefCell<ThreadTrace> =
        const { RefCell::new(ThreadTrace { events: Vec::new(), cap: 0, dropped: 0 }) };
}

/// Captures one event when the recorder is armed. Disarmed this is one
/// `Relaxed` atomic load; the closure keeping event construction off the
/// disarmed path is the per-site cost contract.
#[inline]
pub fn trace_event(make: impl FnOnce() -> TraceEvent) {
    if !trace_armed() {
        return;
    }
    TRACE.with(|t| {
        let mut t = t.borrow_mut();
        if t.cap == 0 {
            // First event on this thread since the last drain: size the
            // buffer once from the armed capacity.
            t.cap = TRACE_CAPACITY.load(Ordering::Relaxed);
            let cap = t.cap;
            t.events.reserve(cap);
        }
        if t.events.len() >= t.cap {
            t.dropped += 1;
            return;
        }
        t.events.push(make());
    });
}

/// Drains this thread's captured events and drop count, leaving an empty
/// (deallocated) buffer; the next captured event re-reads the armed
/// capacity.
pub fn take_thread_trace() -> TraceBuf {
    TRACE.with(|t| {
        let mut t = t.borrow_mut();
        t.cap = 0;
        TraceBuf { events: std::mem::take(&mut t.events), dropped: std::mem::take(&mut t.dropped) }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // The armed-trace tests share the one global switch; serialize them
    // (and restore the disarmed default) like the span tests do.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn ev(at: u64) -> TraceEvent {
        TraceEvent::DemandMiss { at, cache: 0x20, set: 3, line: 0x1040 }
    }

    #[test]
    fn disarmed_captures_nothing_and_never_builds_the_event() {
        let _g = GATE.lock().unwrap();
        disarm_trace();
        let _ = take_thread_trace();
        trace_event(|| unreachable!("disarmed sites must not construct events"));
        assert_eq!(take_thread_trace(), TraceBuf::default());
    }

    #[test]
    fn armed_captures_in_order_and_drains() {
        let _g = GATE.lock().unwrap();
        arm_trace(16);
        let _ = take_thread_trace();
        for i in 0..4 {
            trace_event(|| ev(i));
        }
        disarm_trace();
        let t = take_thread_trace();
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 0);
        assert_eq!(t.observed(), 4);
        assert!(t.events.iter().enumerate().all(|(i, e)| e.at() == i as u64));
        assert!(take_thread_trace().events.is_empty(), "drain leaves nothing behind");
    }

    #[test]
    fn full_buffer_drops_and_counts_without_reallocating() {
        let _g = GATE.lock().unwrap();
        arm_trace(8);
        let _ = take_thread_trace();
        trace_event(|| ev(0));
        let ptr = TRACE.with(|t| t.borrow().events.as_ptr());
        for i in 1..20 {
            trace_event(|| ev(i));
        }
        let after = TRACE.with(|t| t.borrow().events.as_ptr());
        assert_eq!(ptr, after, "a full buffer must never reallocate");
        disarm_trace();
        let t = take_thread_trace();
        assert_eq!(t.events.len(), 8, "capacity bounds the capture");
        assert_eq!(t.dropped, 12, "overflow drops and counts");
        assert_eq!(t.observed(), 20);
        // The oldest events survive (drop-newest).
        assert!(t.events.iter().enumerate().all(|(i, e)| e.at() == i as u64));
    }

    #[test]
    fn merge_concatenates() {
        let mut a = TraceBuf { events: vec![ev(0)], dropped: 1 };
        a.merge(TraceBuf { events: vec![ev(1), ev(2)], dropped: 2 });
        assert_eq!(a.events.len(), 3);
        assert_eq!(a.dropped, 3);
    }

    #[test]
    fn jsonl_form_is_stable() {
        let v = ev(7).to_value().to_json_inline();
        assert_eq!(
            v,
            "{\"e\": \"demand_miss\", \"at\": 7, \"cache\": 32, \"set\": 3, \"line\": 4160}"
        );
        let a = TraceEvent::Access { at: 9, core: 0, pc: 0x40, set: 2, latency: 200, level: 2 };
        assert_eq!(
            a.to_value().to_json_inline(),
            "{\"e\": \"access\", \"at\": 9, \"core\": 0, \"pc\": 64, \"set\": 2, \
             \"latency\": 200, \"level\": 2}"
        );
        assert_eq!(a.class(), "access");
        assert_eq!(a.at(), 9);
    }

    #[test]
    fn every_class_serializes_its_fields() {
        let events = [
            TraceEvent::DemandHit { at: 1, cache: 0x20, set: 0, way: 1, line: 64 },
            TraceEvent::Eviction { at: 1, cache: 0x30, set: 0, way: 0, victim: 128 },
            TraceEvent::PrefetchPropose { at: 1, core: 0, pc: 4, line: 64 },
            TraceEvent::PrefetchIssue { at: 1, core: 0, line: 64, source: 3 },
            TraceEvent::PrefetchFill { at: 1, cache: 0x20, set: 0, way: 0, line: 64 },
            TraceEvent::PrefetchDrop { at: 1, core: 0, line: 64, source: 0 },
            TraceEvent::PrefetchLate { at: 1, cache: 0x20, line: 64, source: 1 },
            TraceEvent::PrefetchExpire { at: 1, cache: 0x20, line: 64 },
            TraceEvent::RpGrant { at: 1, pc: 4 },
            TraceEvent::RpExpire { at: 1, pc: 4 },
            TraceEvent::AtAlloc { at: 1, pc: 4, buffer: 2 },
            TraceEvent::AtEvict { at: 1, pc: 4, buffer: 2 },
            TraceEvent::Flush { at: 1, line: 64, latency: 20 },
            TraceEvent::MshrAlloc { at: 1, line: 64 },
            TraceEvent::MshrRelease { at: 1, line: 64 },
        ];
        for e in events {
            let json = e.to_value().to_json_inline();
            assert!(json.starts_with(&format!("{{\"e\": \"{}\", \"at\": 1", e.class())), "{json}");
        }
    }
}
