//! Crash-safe artifact I/O: the one way this workspace writes a file.
//!
//! A bare `std::fs::write` can tear: a crash (or `kill -9`) between the
//! open and the final flush leaves a half-written `sweep.json` that a
//! later reader trusts. [`write_atomic`] closes that window with the
//! classic protocol:
//!
//! 1. write the full contents to a **temporary sibling** (same
//!    directory, so the final rename cannot cross filesystems),
//! 2. `fsync` the temporary file (contents durable before visible),
//! 3. `rename` over the destination (atomic on POSIX — readers see the
//!    old bytes or the new bytes, never a mix),
//! 4. best-effort `fsync` of the containing directory (the rename
//!    itself durable across power loss).
//!
//! The temporary name embeds the writing PID, so concurrent campaign
//! processes sharing a directory never collide, and a crashed writer's
//! leftover is recognizable (see [`is_atomic_tmp`]) and safe to sweep
//! up on resume. Each step carries a [`failpoint`](crate::failpoint)
//! hook (`atomic.write`, `atomic.fsync`, `atomic.rename`) so the
//! crash-resume tests can fault any stage of the protocol.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::failpoint::failpoint;

/// Marker embedded in temporary sibling names: `<name>.tmp.<pid>`.
const TMP_MARKER: &str = ".tmp.";

/// Whether a file name looks like a [`write_atomic`] temporary — a
/// leftover from a writer that died before its rename. Such files carry
/// no committed data and are safe to delete **once their writer is
/// dead**; use [`atomic_tmp_pid`] + [`pid_alive`] before sweeping a
/// directory that concurrent worker processes may be writing into.
pub fn is_atomic_tmp(path: &Path) -> bool {
    path.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.contains(TMP_MARKER))
}

/// The PID embedded in a [`write_atomic`] temporary's name
/// (`<name>.tmp.<pid>`), or `None` if the name is not a recognizable
/// temporary. Multi-process campaigns use this to sweep only the
/// leftovers of *dead* writers: a live worker's in-flight temporary must
/// never be deleted out from under its rename.
pub fn atomic_tmp_pid(path: &Path) -> Option<u32> {
    let name = path.file_name()?.to_str()?;
    let at = name.rfind(TMP_MARKER)?;
    name[at + TMP_MARKER.len()..].parse().ok()
}

/// Whether a process with this PID is currently alive on this host.
/// Reads `/proc/<pid>` where procfs exists; on hosts without procfs
/// every PID reads as dead — the single-process behavior, where any
/// leftover temporary belongs to a previous (finished) run.
pub fn pid_alive(pid: u32) -> bool {
    Path::new("/proc").is_dir() && Path::new(&format!("/proc/{pid}")).exists()
}

fn tmp_sibling(path: &Path) -> io::Result<PathBuf> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::other(format!("write_atomic: bad path {}", path.display())))?;
    Ok(path.with_file_name(format!("{name}{TMP_MARKER}{}", std::process::id())))
}

/// Atomically replaces `path` with `contents`: tmp sibling → fsync →
/// rename → directory fsync. On any failure the temporary is removed
/// and `path` is untouched (old bytes, or absent if it never existed).
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = tmp_sibling(path)?;
    let result = (|| {
        failpoint("atomic.write")?;
        let mut file = File::create(&tmp)?;
        file.write_all(contents.as_ref())?;
        failpoint("atomic.fsync")?;
        file.sync_all()?;
        drop(file);
        failpoint("atomic.rename")?;
        fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Best-effort directory fsync: makes the rename durable. Some
/// filesystems refuse to fsync a directory handle; that only weakens
/// power-loss durability, never atomicity, so errors are ignored.
fn sync_parent_dir(path: &Path) {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    if let Ok(dir) = File::open(parent) {
        let _ = dir.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::{arm_failpoints, disarm_failpoints};

    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("prefender-fsio-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn leftovers(dir: &Path) -> Vec<PathBuf> {
        fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| is_atomic_tmp(p))
            .collect()
    }

    #[test]
    fn writes_and_overwrites_leaving_no_tmp() {
        let _g = GATE.lock().unwrap();
        disarm_failpoints();
        let dir = scratch_dir("roundtrip");
        let path = dir.join("artifact.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        assert!(leftovers(&dir).is_empty(), "no tmp siblings survive success");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_failure_preserves_old_bytes_and_cleans_tmp() {
        let _g = GATE.lock().unwrap();
        let dir = scratch_dir("inject");
        let path = dir.join("artifact.json");
        write_atomic(&path, b"committed").unwrap();
        for stage in ["atomic.write", "atomic.fsync", "atomic.rename"] {
            arm_failpoints(&format!("{stage}=err")).unwrap();
            let err = write_atomic(&path, b"torn?").unwrap_err();
            assert!(err.to_string().contains(stage), "{err}");
            assert_eq!(fs::read(&path).unwrap(), b"committed", "{stage} kept old bytes");
            assert!(leftovers(&dir).is_empty(), "{stage} left a tmp behind");
        }
        disarm_failpoints();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tmp_names_are_recognizable() {
        assert!(is_atomic_tmp(Path::new("/x/sweep.json.tmp.1234")));
        assert!(!is_atomic_tmp(Path::new("/x/sweep.json")));
        assert!(!is_atomic_tmp(Path::new("/x/tmp")));
    }

    #[test]
    fn tmp_pids_parse_from_any_writer() {
        assert_eq!(atomic_tmp_pid(Path::new("/x/shard-00001.psd.tmp.999")), Some(999));
        assert_eq!(atomic_tmp_pid(Path::new("/x/a.tmp.1.tmp.42")), Some(42), "rightmost marker");
        assert_eq!(atomic_tmp_pid(Path::new("/x/sweep.json")), None);
        assert_eq!(atomic_tmp_pid(Path::new("/x/sweep.json.tmp.notapid")), None);
    }

    #[test]
    fn own_pid_is_alive_and_impossible_pids_are_dead() {
        if Path::new("/proc").is_dir() {
            assert!(pid_alive(std::process::id()), "the test process itself is alive");
        }
        // Linux pid_max tops out at 2^22; this PID can never exist.
        assert!(!pid_alive(4_000_000_000));
    }

    #[test]
    fn rejects_pathless_targets() {
        let _g = GATE.lock().unwrap();
        disarm_failpoints();
        assert!(write_atomic(Path::new("/"), b"x").is_err());
    }
}
