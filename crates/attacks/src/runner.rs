//! The attack runner: builds the machine, runs the phases, analyses.

use std::error::Error;
use std::fmt;

use rand::seq::SliceRandom;
use rand::{Rng as _, SeedableRng};

use prefender_core::{Prefender, PrefenderStats};
use prefender_cpu::Machine;
use prefender_isa::ProgramBuilder;
use prefender_obs::{take_thread_trace, trace_armed, ObsCounters, TraceBuf};
use prefender_prefetch::{Prefetcher, StridePrefetcher, TaggedPrefetcher};
use prefender_sim::{Addr, CacheStats, ConfigError, HierarchyConfig};

use crate::analysis::{classify, AttackOutcome, ProbeSample};
use crate::layout::AttackLayout;
use crate::programs::{
    emit_evict, emit_flush, emit_pp_loop, emit_reload_probe, emit_victim, pp_geometry,
    prime_probe_probe_program, prime_probe_program, reload_probe_program, victim_program,
};

/// Which attack to run (paper Section II-A / Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttackKind {
    /// Flush the eviction set with `clflush`, reload and time.
    FlushReload,
    /// Evict the set via L2 conflicts, reload and time.
    EvictReload,
    /// Prime the sets with attacker lines, probe for the miss.
    PrimeProbe,
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttackKind::FlushReload => "Flush+Reload",
            AttackKind::EvictReload => "Evict+Reload",
            AttackKind::PrimeProbe => "Prime+Probe",
        };
        f.write_str(s)
    }
}

/// The conventional (basic) prefetcher of a configuration — either alone
/// or chained under PREFENDER (paper Tables IV–VI columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Basic {
    /// No basic prefetcher.
    #[default]
    None,
    /// Tagged next-line prefetcher (paper reference [15]).
    Tagged,
    /// Baer–Chen stride prefetcher (paper reference [16]).
    Stride,
}

impl Basic {
    /// All variants, in table-column order.
    pub const ALL: [Basic; 3] = [Basic::None, Basic::Tagged, Basic::Stride];

    /// Builds the basic prefetcher instance, or `None`.
    pub fn build(self) -> Option<Box<dyn Prefetcher>> {
        match self {
            Basic::None => None,
            Basic::Tagged => Some(Box::new(TaggedPrefetcher::new(64, 1))),
            Basic::Stride => Some(Box::new(StridePrefetcher::default_config())),
        }
    }
}

impl fmt::Display for Basic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Basic::None => f.write_str("-"),
            Basic::Tagged => f.write_str("Tagged"),
            Basic::Stride => f.write_str("Stride"),
        }
    }
}

/// Which noise challenges are active (paper challenges C3 / C4; C1 and
/// C2 are inherent to every run — single victim access, random probes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoiseSpec {
    /// C3: noisy instructions (distinct-PC loads thrash the access buffers).
    pub c3: bool,
    /// C4: noisy accesses (the probe load touches non-eviction lines).
    pub c4: bool,
}

impl NoiseSpec {
    /// No noise: challenges C1+C2 only.
    pub const NONE: NoiseSpec = NoiseSpec { c3: false, c4: false };
    /// C3 only.
    pub const C3: NoiseSpec = NoiseSpec { c3: true, c4: false };
    /// C4 only.
    pub const C4: NoiseSpec = NoiseSpec { c3: false, c4: true };
    /// C3 + C4.
    pub const C3C4: NoiseSpec = NoiseSpec { c3: true, c4: true };
}

/// Which PREFENDER units defend (the paper's Figure 8 legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DefenseConfig {
    /// No prefetcher at all (the "Base" curves).
    None,
    /// Scale Tracker only.
    St,
    /// Access Tracker only.
    At,
    /// Scale Tracker + Access Tracker (Table IV's configuration).
    StAt,
    /// Access Tracker + Record Protector.
    AtRp,
    /// All three units (the full PREFENDER, Table V's configuration).
    Full,
}

impl DefenseConfig {
    /// All configurations, in the paper's legend order.
    pub const ALL: [DefenseConfig; 6] = [
        DefenseConfig::None,
        DefenseConfig::St,
        DefenseConfig::At,
        DefenseConfig::StAt,
        DefenseConfig::AtRp,
        DefenseConfig::Full,
    ];

    /// Builds the per-core PREFENDER instance, or `None` for the baseline.
    pub fn build_prefender(
        self,
        line_size: u64,
        page_size: u64,
        buffers: usize,
    ) -> Option<Prefender> {
        self.build_prefender_over(line_size, page_size, buffers, Basic::None)
    }

    /// Like [`DefenseConfig::build_prefender`], but with a basic
    /// prefetcher chained underneath (the paper's "PREFENDER over
    /// Tagged/Stride" columns). With [`DefenseConfig::None`] the result is
    /// `None` regardless of `basic` — use [`Basic::build`] directly for a
    /// basic-only core.
    pub fn build_prefender_over(
        self,
        line_size: u64,
        page_size: u64,
        buffers: usize,
        basic: Basic,
    ) -> Option<Prefender> {
        let mut b = Prefender::builder(line_size, page_size);
        if let Some(p) = basic.build() {
            b = b.basic(p);
        }
        let b = match self {
            DefenseConfig::None => return None,
            DefenseConfig::St => b.access_tracker(false).record_protector(false),
            DefenseConfig::At => {
                b.scale_tracker(false).record_protector(false).access_buffers(buffers)
            }
            DefenseConfig::StAt => b.record_protector(false).access_buffers(buffers),
            // The paper's "AT+RP": the Record Protector is *defined* as
            // linking ST and AT, so the Scale Tracker keeps tracking and
            // feeding the scale buffer but issues no prefetches itself.
            DefenseConfig::AtRp => b.scale_tracker_prefetching(false).access_buffers(buffers),
            DefenseConfig::Full => b.access_buffers(buffers),
        };
        Some(b.build())
    }

    /// The complete per-core prefetcher for a (defense, basic) point:
    /// PREFENDER with `basic` chained underneath, `basic` alone for
    /// [`DefenseConfig::None`], or nothing at all. This is the one
    /// factory the attack runner, the sweep engine and the performance
    /// tables all build cores from.
    pub fn build_prefetcher(
        self,
        line_size: u64,
        page_size: u64,
        buffers: usize,
        basic: Basic,
    ) -> Option<Box<dyn Prefetcher>> {
        match self.build_prefender_over(line_size, page_size, buffers, basic) {
            Some(p) => Some(Box::new(p)),
            None => basic.build(),
        }
    }
}

impl fmt::Display for DefenseConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DefenseConfig::None => "Base",
            DefenseConfig::St => "Prefender-ST",
            DefenseConfig::At => "Prefender-AT",
            DefenseConfig::StAt => "Prefender-ST+AT",
            DefenseConfig::AtRp => "Prefender-AT+RP",
            DefenseConfig::Full => "Prefender",
        };
        f.write_str(s)
    }
}

/// Errors from attack runs.
#[derive(Debug)]
#[non_exhaustive]
pub enum AttackError {
    /// The hierarchy configuration was invalid.
    Config(ConfigError),
    /// A run hit the machine's instruction cap before completing.
    Truncated,
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Config(e) => write!(f, "hierarchy configuration: {e}"),
            AttackError::Truncated => write!(f, "attack run hit the instruction cap"),
        }
    }
}

impl Error for AttackError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AttackError::Config(e) => Some(e),
            AttackError::Truncated => None,
        }
    }
}

impl From<ConfigError> for AttackError {
    fn from(e: ConfigError) -> Self {
        AttackError::Config(e)
    }
}

/// A full attack experiment specification.
#[derive(Debug, Clone)]
pub struct AttackSpec {
    /// Which attack.
    pub kind: AttackKind,
    /// Which PREFENDER units defend.
    pub defense: DefenseConfig,
    /// Active noise challenges.
    pub noise: NoiseSpec,
    /// Attacker and victim on different cores (paper Figure 4).
    pub cross_core: bool,
    /// Memory layout and probe window.
    pub layout: AttackLayout,
    /// Access-buffer count for the defense.
    pub buffers: usize,
    /// Probe order shuffle seed (reload-style attacks).
    pub seed: u64,
    /// Basic prefetcher on every core (alone, or under the defense).
    pub basic: Basic,
    /// Cache-hierarchy override; `None` uses the paper baseline. The
    /// core count is always forced to match `cross_core`.
    pub hierarchy: Option<HierarchyConfig>,
    /// Measurement-noise amplitude: every probe latency the attacker
    /// records is perturbed by a deterministic per-trial jitter drawn
    /// uniformly from `0..=latency_jitter` cycles (seeded from `seed`).
    /// `0` models a perfectly clean timer, the paper's setting.
    pub latency_jitter: u64,
}

impl AttackSpec {
    /// A single-core, noise-free (C1+C2) spec at paper defaults.
    pub fn new(kind: AttackKind, defense: DefenseConfig) -> Self {
        AttackSpec {
            kind,
            defense,
            noise: NoiseSpec::NONE,
            cross_core: false,
            layout: AttackLayout::paper(),
            buffers: 32,
            seed: 0xC0FFEE,
            basic: Basic::None,
            hierarchy: None,
            latency_jitter: 0,
        }
    }

    /// Sets the noise challenges.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseSpec) -> Self {
        self.noise = noise;
        self
    }

    /// Moves the victim to a second core.
    #[must_use]
    pub fn cross_core(mut self, yes: bool) -> Self {
        self.cross_core = yes;
        self
    }

    /// Changes the probe-order seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a basic prefetcher to every core.
    #[must_use]
    pub fn with_basic(mut self, basic: Basic) -> Self {
        self.basic = basic;
        self
    }

    /// Overrides the cache hierarchy (core count is still derived from
    /// `cross_core`).
    #[must_use]
    pub fn with_hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.hierarchy = Some(hierarchy);
        self
    }

    /// Injects a different secret into the victim (a probe-window array
    /// index; the paper's Figure 8 uses 65). The leakage lab sweeps this
    /// to treat the scenario as a secret → observation channel.
    #[must_use]
    pub fn with_secret(mut self, secret: usize) -> Self {
        self.layout.secret = secret;
        self
    }

    /// Sets the attacker's measurement-noise amplitude (see
    /// [`AttackSpec::latency_jitter`]).
    #[must_use]
    pub fn with_latency_jitter(mut self, jitter: u64) -> Self {
        self.latency_jitter = jitter;
        self
    }
}

/// Machine-level metrics of one attack run, for sweep aggregation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Wall-clock cycles over all phases.
    pub cycles: u64,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// L1D statistics summed over all cores.
    pub l1d: CacheStats,
    /// Prefetches issued by every per-core prefetcher, summed.
    pub prefetch_issued: u64,
    /// PREFENDER per-unit counts summed over all cores (zero for
    /// non-PREFENDER configurations).
    pub prefender: PrefenderStats,
}

impl RunMetrics {
    /// Instructions per cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

fn run_metrics(m: &Machine) -> RunMetrics {
    let mut l1d = CacheStats::new();
    let mut issued = 0u64;
    let mut prefender = PrefenderStats::new();
    for c in 0..m.n_cores() {
        l1d += *m.mem().l1d(c).stats();
        if let Some(p) = m.prefetcher(c) {
            issued += p.issued();
        }
        if let Some(ps) = prefender_stats(m, c) {
            prefender += ps;
        }
    }
    RunMetrics {
        cycles: m.now().raw(),
        instructions: (0..m.n_cores()).map(|c| m.core(c).retired()).sum(),
        l1d,
        prefetch_issued: issued,
        prefender,
    }
}

/// One point of the Figure 9 timeline: cumulative prefetch counts by unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Simulated time of the sample (cycles).
    pub at: u64,
    /// Cumulative Scale Tracker prefetches.
    pub st: u64,
    /// Cumulative Access Tracker (DiffMin) prefetches.
    pub at_count: u64,
    /// Cumulative RP-guided prefetches.
    pub rp: u64,
    /// Currently protected access buffers (Figure 12's quantity).
    pub protected: u64,
}

/// Reads PREFENDER's per-unit stats out of a machine core, when the
/// attached prefetcher is a [`Prefender`].
pub(crate) fn prefender_stats(m: &Machine, core: usize) -> Option<PrefenderStats> {
    m.prefetcher(core)?.as_any()?.downcast_ref::<Prefender>().map(|p| p.stats())
}

pub(crate) fn prefender_protected(m: &Machine, core: usize) -> usize {
    m.prefetcher(core)
        .and_then(|p| p.as_any())
        .and_then(|a| a.downcast_ref::<Prefender>())
        .map_or(0, |p| p.protected_count())
}

/// Harvests a machine's observability counters into one [`ObsCounters`]
/// block: demand/eviction and prefetch-outcome stats summed over the L1Ds
/// and the L2, per-core prefetcher issue counts, hierarchy prefetch drops,
/// the MSHR high-water mark, the retire fast-path tallies, and — for
/// PREFENDER cores — the Access Tracker / Record Protector lifecycle
/// counters. Everything read here is a pure function of the executed
/// scenario, so the harvest is deterministic and thread-invariant.
pub fn machine_obs(m: &Machine) -> ObsCounters {
    let mem = m.mem();
    let mut stats = mem.total_l1d_stats();
    stats += *mem.l2().stats();
    let mut c = ObsCounters::new();
    c.cache_demand_hits = stats.demand_hits;
    c.cache_demand_misses = stats.demand_misses;
    c.cache_evictions = stats.evictions;
    c.prefetch_late = stats.prefetch_late;
    // "Expired": prefetched lines evicted or invalidated without use.
    c.prefetch_expired = stats.prefetch_unused;
    c.prefetch_dropped = mem.prefetches_dropped();
    c.mshr_high_water = mem.mshrs().high_water() as u64;
    let (dispatches, nops) = m.retire_fast_path();
    c.retire_fast_dispatches = dispatches;
    c.retire_fast_nops = nops;
    for core in 0..m.n_cores() {
        let Some(p) = m.prefetcher(core) else { continue };
        c.prefetch_issued += p.issued();
        let Some(pf) = p.as_any().and_then(|a| a.downcast_ref::<Prefender>()) else { continue };
        let Some(at) = pf.access_tracker() else { continue };
        let (allocs, evictions) = at.alloc_counts();
        let (incremental, rescans) = at.diffmin_update_counts();
        let (granted, expired) = at.protection_event_counts();
        c.at_buffer_allocs += allocs;
        c.at_buffer_evictions += evictions;
        c.diffmin_incremental += incremental;
        c.diffmin_rescans += rescans;
        c.rp_protections_granted += granted;
        c.rp_protections_expired += expired;
    }
    c
}

fn total_stats(m: &Machine) -> (PrefenderStats, u64) {
    let mut s = PrefenderStats::new();
    let mut protected = 0u64;
    for c in 0..m.n_cores() {
        if let Some(cs) = prefender_stats(m, c) {
            s += cs;
        }
        protected += prefender_protected(m, c) as u64;
    }
    (s, protected)
}

/// Runs one attack experiment.
///
/// One-shot convenience over [`Runner`]: builds a machine, runs, drops
/// it. Campaign-style callers running many trials against one
/// configuration should hold a [`Runner`] instead and reuse the machine.
///
/// # Errors
///
/// Returns [`AttackError::Config`] if the paper baseline hierarchy fails
/// to validate (it cannot for in-range core counts) and
/// [`AttackError::Truncated`] if a phase hits the instruction cap.
pub fn run_attack(spec: &AttackSpec) -> Result<AttackOutcome, AttackError> {
    Runner::new(spec)?.run(spec)
}

/// Runs one attack experiment and also returns machine-level metrics
/// (cycles, IPC, L1D stats, prefetch counts) — the sweep engine's entry
/// point. One-shot wrapper over [`Runner`]; see [`run_attack`].
///
/// # Errors
///
/// See [`run_attack`].
pub fn run_attack_full(spec: &AttackSpec) -> Result<(AttackOutcome, RunMetrics), AttackError> {
    Runner::new(spec)?.run_full(spec)
}

/// Runs one attack experiment, sampling prefetch counters every
/// `bucket_cycles` (the Figure 9 harness).
///
/// # Errors
///
/// See [`run_attack`].
pub fn run_attack_with_timeline(
    spec: &AttackSpec,
    bucket_cycles: u64,
) -> Result<(AttackOutcome, Vec<TimelinePoint>), AttackError> {
    let mut runner = Runner::new(spec)?;
    let (outcome, timeline, _) = runner.run_inner(spec, Some(bucket_cycles))?;
    Ok((outcome, timeline))
}

/// The machine-shaping axes of an [`AttackSpec`]: two specs with equal
/// keys run on identically constructed machines, so a [`Runner`] can
/// serve both with an in-place reset instead of a rebuild.
///
/// Campaign schedulers group work by this key so consecutive items on a
/// worker hit the runner's cheap reset path — the sweep engine's
/// config-major dispatch sorts its work-list by exactly these axes.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineKey {
    /// Attacker and victim on different cores (fixes the core count).
    pub cross_core: bool,
    /// Which PREFENDER units defend.
    pub defense: DefenseConfig,
    /// Basic prefetcher on every core.
    pub basic: Basic,
    /// Access-buffer count for the defense.
    pub buffers: usize,
    /// Cache-hierarchy override, when the spec carries one.
    pub hierarchy: Option<HierarchyConfig>,
}

impl MachineKey {
    /// The machine-shaping axes of `spec`.
    pub fn of(spec: &AttackSpec) -> Self {
        MachineKey {
            cross_core: spec.cross_core,
            defense: spec.defense,
            basic: spec.basic,
            buffers: spec.buffers,
            hierarchy: spec.hierarchy.clone(),
        }
    }
}

/// A reusable attack executor: owns one [`Machine`] (and its prefetcher
/// stack) per machine-shaping configuration and runs specs against it
/// through an in-place [`Machine::reset`] instead of reconstructing the
/// whole hierarchy — every cache's set arrays, the MSHR file, the trace
/// — for each trial.
///
/// Reuse is bit-exact: a reset machine replays any spec identically to a
/// freshly built one (pinned by `tests/runner_reuse.rs`), so campaign
/// artifacts do not change — trials just stop paying the construction
/// and teardown cost. Specs whose machine-shaping axes (`cross_core`,
/// `defense`, `basic`, `buffers`, `hierarchy`) differ from the current
/// machine's transparently trigger a rebuild, so a single `Runner` can
/// be long-lived and fed arbitrary specs.
///
/// # Examples
///
/// ```no_run
/// use prefender_attacks::{AttackKind, AttackSpec, DefenseConfig, Runner};
///
/// let base = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full);
/// let mut runner = Runner::new(&base).unwrap();
/// for trial in 0..100u64 {
///     let outcome = runner.run(&base.clone().with_seed(trial)).unwrap();
///     assert!(!outcome.leaked);
/// }
/// ```
#[derive(Debug)]
pub struct Runner {
    machine: Machine,
    key: MachineKey,
    /// Counters harvested from the machine at the end of every run,
    /// accumulated until [`Runner::take_obs`] drains them.
    obs: ObsCounters,
    /// Flight-recorder events drained from the thread buffer at the end
    /// of each run (empty unless tracing is armed), accumulated until
    /// [`Runner::take_trace`] drains them.
    trace: TraceBuf,
    /// Probe-instruction PCs of the most recent run — the uniform way to
    /// identify the attacker's measurement accesses in a trace.
    last_probe_pcs: Vec<u64>,
    /// Runs served by the cheap in-place reset path.
    resets: u64,
    /// Machine constructions (the initial build counts as one).
    rebuilds: u64,
}

impl Runner {
    /// Builds the machine for `spec`'s configuration (the spec's secret
    /// and seed do not matter — only its machine-shaping axes do).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Config`] when the hierarchy override fails
    /// to validate.
    pub fn new(spec: &AttackSpec) -> Result<Self, AttackError> {
        let key = MachineKey::of(spec);
        let machine = build_machine(&key)?;
        Ok(Runner {
            machine,
            key,
            obs: ObsCounters::new(),
            trace: TraceBuf::default(),
            last_probe_pcs: Vec::new(),
            resets: 0,
            rebuilds: 1,
        })
    }

    /// The machine-shaping key the owned machine was built for. Specs
    /// matching this key run through an in-place reset; any other spec
    /// transparently rebuilds the machine (and updates the key).
    pub fn key(&self) -> &MachineKey {
        &self.key
    }

    /// Runs one attack experiment on the owned machine.
    ///
    /// # Errors
    ///
    /// See [`run_attack`].
    pub fn run(&mut self, spec: &AttackSpec) -> Result<AttackOutcome, AttackError> {
        let (outcome, _, _) = self.run_inner(spec, None)?;
        Ok(outcome)
    }

    /// Runs one attack experiment and also returns machine-level metrics.
    ///
    /// # Errors
    ///
    /// See [`run_attack`].
    pub fn run_full(
        &mut self,
        spec: &AttackSpec,
    ) -> Result<(AttackOutcome, RunMetrics), AttackError> {
        let (outcome, _, metrics) = self.run_inner(spec, None)?;
        Ok((outcome, metrics))
    }

    /// Resets (or, on a configuration change, rebuilds) the machine so it
    /// is cold and shaped for `spec`.
    fn prepare(&mut self, spec: &AttackSpec) -> Result<(), AttackError> {
        let key = MachineKey::of(spec);
        if key == self.key {
            self.resets += 1;
            self.machine.reset();
        } else {
            self.rebuilds += 1;
            self.machine = build_machine(&key)?;
            self.key = key;
        }
        Ok(())
    }

    /// Drains (returns and zeroes) the counters accumulated over every
    /// run since construction or the previous drain. The machine's own
    /// counters are folded in at the end of each run — and zeroed by the
    /// next run's reset — so nothing is double-counted.
    pub fn take_obs(&mut self) -> ObsCounters {
        self.obs.take()
    }

    /// Drains the `(resets, rebuilds)` reuse tallies: how many runs were
    /// served by the in-place reset path vs. a full machine construction
    /// (the initial build counts as the first rebuild). Scheduling-
    /// dependent under work stealing, so obs reports place these in the
    /// `timing` section, not the deterministic `counters` section.
    pub fn take_reuse_counts(&mut self) -> (u64, u64) {
        (std::mem::take(&mut self.resets), std::mem::take(&mut self.rebuilds))
    }

    /// Drains the flight-recorder events captured across every run since
    /// construction or the previous drain. Empty unless tracing was armed
    /// (see [`prefender_obs::arm_trace`]) while runs executed.
    pub fn take_trace(&mut self) -> TraceBuf {
        std::mem::take(&mut self.trace)
    }

    /// Probe-instruction PCs of the most recent run: the PCs of the
    /// attacker's timed measurement loads, matching the trace's
    /// `access` events by their `pc` field.
    pub fn probe_pcs(&self) -> &[u64] {
        &self.last_probe_pcs
    }

    fn run_inner(
        &mut self,
        spec: &AttackSpec,
        bucket: Option<u64>,
    ) -> Result<(AttackOutcome, Vec<TimelinePoint>, RunMetrics), AttackError> {
        self.prepare(spec)?;
        let m = &mut self.machine;
        let l = &spec.layout;
        m.write_data(l.secret_addr, l.secret as u64);

        // Reload-style attacks probe through a shuffled pointer table.
        let reload_targets = build_reload_targets(spec);
        for (k, t) in reload_targets.iter().enumerate() {
            m.write_data(l.order_table + 8 * k as u64, t.raw());
        }

        let mut timeline = Vec::new();
        let probe_pcs = if spec.cross_core {
            run_cross_core(spec, m, reload_targets.len(), bucket, &mut timeline)?
        } else {
            run_single_core(spec, m, reload_targets.len(), bucket, &mut timeline)?
        };

        if trace_armed() {
            // The whole run executed on this thread: drain its flight
            // recorder so the events accumulate per-runner (and per-run
            // for callers draining between runs), never bleeding across
            // worker threads.
            self.trace.merge(take_thread_trace());
        }
        self.last_probe_pcs = probe_pcs.clone();

        let mut samples = collect_samples(spec, m, &probe_pcs);
        apply_latency_jitter(spec, &mut samples);
        // Reload-style attacks leak through the single hit (L2-or-better
        // vs. memory). Prime+Probe leaks through the single miss: at
        // L1-vs-L2 granularity single-core, at L2-vs-memory granularity
        // cross-core.
        let (threshold, anomaly_is_hit) = match spec.kind {
            AttackKind::FlushReload | AttackKind::EvictReload => (l.hit_threshold, true),
            AttackKind::PrimeProbe if spec.cross_core => (l.hit_threshold, false),
            AttackKind::PrimeProbe => (l.l1_hit_threshold, false),
        };
        let metrics = run_metrics(m);
        self.obs.merge(&machine_obs(m));
        Ok((classify(samples, threshold, anomaly_is_hit, l.secret), timeline, metrics))
    }
}

/// Builds the machine a [`RunnerKey`] describes: resolved hierarchy, CPU
/// config, trace enabled, one prefetcher per core.
fn build_machine(key: &MachineKey) -> Result<Machine, AttackError> {
    let n_cores = if key.cross_core { 2 } else { 1 };
    let hierarchy = match &key.hierarchy {
        Some(h) => {
            let mut h = h.clone();
            h.n_cores = n_cores;
            h.validate()?;
            h
        }
        None => HierarchyConfig::paper_baseline(n_cores)?,
    };
    let line = hierarchy.line_size();
    let page = hierarchy.page_size;
    // Instruction fetch is not modelled for attack runs: a code line
    // whose first touch happens mid-probe would perturb primed sets in a
    // way the paper's warmed-up gem5 checkpoints never see.
    let cpu = prefender_cpu::CpuConfig { model_fetch: false, ..Default::default() };
    let mut m = Machine::with_cpu_config(hierarchy, cpu);
    m.trace_mut().set_enabled(true);
    for core in 0..n_cores {
        if let Some(p) = key.defense.build_prefetcher(line, page, key.buffers, key.basic) {
            m.set_prefetcher(core, p);
        }
    }
    Ok(m)
}

/// The probe-order pointer table: all eviction lines shuffled
/// deterministically (challenge C2). With C4, the attacker front-loads
/// its noise lines (corrupting DiffMin before the Access Tracker can make
/// a single on-pattern prediction) and re-touches them every few probes
/// so the corrupting entries stay most-recently-used.
fn build_reload_targets(spec: &AttackSpec) -> Vec<Addr> {
    let l = &spec.layout;
    let mut evictions: Vec<Addr> = l.indices().map(|i| l.index_addr(i)).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    evictions.shuffle(&mut rng);
    if !spec.noise.c4 {
        return evictions;
    }
    let mut targets: Vec<Addr> = (0..l.n_c4_lines).map(|k| l.c4_noise_addr(k)).collect();
    let mut cursor = l.n_c4_lines;
    for (j, e) in evictions.into_iter().enumerate() {
        targets.push(e);
        if j % 2 == 1 {
            targets.push(l.c4_noise_addr(cursor));
            cursor += 1;
        }
    }
    targets
}

fn run_phase(
    m: &mut Machine,
    bucket: Option<u64>,
    timeline: &mut Vec<TimelinePoint>,
) -> Result<(), AttackError> {
    match bucket {
        None => {
            if m.run().truncated {
                return Err(AttackError::Truncated);
            }
        }
        Some(bucket) => {
            let mut next = m.now().raw() + bucket;
            while m.step() {
                if m.now().raw() >= next {
                    let (s, protected) = total_stats(m);
                    timeline.push(TimelinePoint {
                        at: m.now().raw(),
                        st: s.st_prefetches,
                        at_count: s.at_prefetches,
                        rp: s.rp_prefetches,
                        protected,
                    });
                    next += bucket;
                }
            }
            let (s, protected) = total_stats(m);
            timeline.push(TimelinePoint {
                at: m.now().raw(),
                st: s.st_prefetches,
                at_count: s.at_prefetches,
                rp: s.rp_prefetches,
                protected,
            });
        }
    }
    Ok(())
}

/// The single-core program the runner composes for `spec`: the attacker's
/// prepare phase, the victim gadget (Spectre-gadget style, same core) and
/// the measurement phase, concatenated. Returns the program and its probe
/// instruction indices. Exposed so static analyses can audit exactly what
/// the runner executes; cross-core runs instead use the standalone
/// programs ([`flush_program`](crate::flush_program) and friends) per
/// core.
pub fn composed_attack_program(spec: &AttackSpec) -> (prefender_isa::Program, Vec<usize>) {
    compose_single_core(spec, build_reload_targets(spec).len())
}

fn compose_single_core(
    spec: &AttackSpec,
    n_reload_probes: usize,
) -> (prefender_isa::Program, Vec<usize>) {
    let l = &spec.layout;
    let mut b = ProgramBuilder::new();
    b.name("attack");
    // Phase 1.
    match spec.kind {
        AttackKind::FlushReload => emit_flush(&mut b, l),
        AttackKind::EvictReload => emit_evict(&mut b, l),
        AttackKind::PrimeProbe => {
            let (ways, stride, mask) = pp_geometry(false);
            emit_pp_loop(&mut b, l, ways, stride, mask, false, false);
        }
    }
    // Phase 2: the victim runs on the same core (Spectre-gadget style).
    emit_victim(&mut b, l);
    // Phase 3.
    let probe_idxs = match spec.kind {
        AttackKind::FlushReload | AttackKind::EvictReload => {
            vec![emit_reload_probe(&mut b, l, n_reload_probes, spec.noise.c3)]
        }
        AttackKind::PrimeProbe => {
            let (ways, stride, mask) = pp_geometry(false);
            emit_pp_loop(&mut b, l, ways, stride, mask, spec.noise.c3, spec.noise.c4)
        }
    };
    b.halt();
    let program = b.build().expect("attack programs are statically correct");
    (program, probe_idxs)
}

fn run_single_core(
    spec: &AttackSpec,
    m: &mut Machine,
    n_reload_probes: usize,
    bucket: Option<u64>,
    timeline: &mut Vec<TimelinePoint>,
) -> Result<Vec<u64>, AttackError> {
    let (program, probe_idxs) = compose_single_core(spec, n_reload_probes);
    let probe_pcs: Vec<u64> = probe_idxs.iter().map(|&i| program.pc_of(i)).collect();
    m.load_program(0, program);
    run_phase(m, bucket, timeline)?;
    Ok(probe_pcs)
}

fn run_cross_core(
    spec: &AttackSpec,
    m: &mut Machine,
    n_reload_probes: usize,
    bucket: Option<u64>,
    timeline: &mut Vec<TimelinePoint>,
) -> Result<Vec<u64>, AttackError> {
    let l = &spec.layout;
    // Phase 1: attacker prepares on core 0.
    let phase1 = match spec.kind {
        AttackKind::FlushReload => crate::programs::flush_program(l),
        AttackKind::EvictReload => crate::programs::evict_program(l),
        AttackKind::PrimeProbe => prime_probe_program(l, true),
    };
    m.load_program(0, phase1);
    run_phase(m, bucket, timeline)?;

    // Phase 2: the victim runs on core 1.
    m.load_program_at(1, victim_program(l), m.now());
    run_phase(m, bucket, timeline)?;

    // Phase 3: attacker measures from core 0.
    let probe = match spec.kind {
        AttackKind::FlushReload | AttackKind::EvictReload => {
            reload_probe_program(l, n_reload_probes, spec.noise.c3)
        }
        AttackKind::PrimeProbe => prime_probe_probe_program(l, true, spec.noise.c3, spec.noise.c4),
    };
    m.load_program_at(0, probe.program.clone(), m.now());
    run_phase(m, bucket, timeline)?;
    Ok(probe.probe_pcs)
}

/// Perturbs the measured latencies with the spec's per-trial timer noise:
/// each sample gains a uniform draw from `0..=latency_jitter` cycles,
/// seeded from the probe seed so a trial's noise is reproducible.
fn apply_latency_jitter(spec: &AttackSpec, samples: &mut [ProbeSample]) {
    if spec.latency_jitter == 0 {
        return;
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed ^ 0x6A77_6974_7465_7221);
    for s in samples {
        s.latency += rng.gen_range(0..=spec.latency_jitter);
    }
}

fn collect_samples(spec: &AttackSpec, m: &Machine, probe_pcs: &[u64]) -> Vec<ProbeSample> {
    let l = &spec.layout;
    match spec.kind {
        AttackKind::FlushReload | AttackKind::EvictReload => {
            // One probe per eviction line; C4 noise probes are filtered out
            // by `addr_index` (they are off-pattern).
            m.trace()
                .by_pc(probe_pcs[0])
                .filter_map(|e| {
                    l.addr_index(e.addr).map(|index| ProbeSample { index, latency: e.latency })
                })
                .collect()
        }
        AttackKind::PrimeProbe => {
            // Map each probed prime line back to its index; per index keep
            // the worst (max) way latency. C4's +0x100 probes are filtered
            // out by the on-set check.
            let (_, way_stride, mask) = pp_geometry(spec.cross_core);
            let mut per_index: std::collections::BTreeMap<usize, u64> = Default::default();
            for pc in probe_pcs {
                for e in m.trace().by_pc(*pc) {
                    let off = e.addr.raw().wrapping_sub(l.prime_region);
                    let set_off = off % way_stride;
                    if set_off % l.probe_stride != 0 {
                        continue; // C4 off-set access
                    }
                    let slot = set_off / l.probe_stride;
                    let index = l
                        .indices()
                        .find(|i| (*i as u64 * l.probe_stride) & mask == slot * l.probe_stride);
                    if let Some(index) = index {
                        let worst = per_index.entry(index).or_insert(0);
                        *worst = (*worst).max(e.latency);
                    }
                }
            }
            per_index.into_iter().map(|(index, latency)| ProbeSample { index, latency }).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full-system security tests (the paper's Figure 8) live in
    // `tests/figure8.rs`; here we test the spec plumbing.

    #[test]
    fn defense_configs_build_expected_units() {
        let p = DefenseConfig::Full.build_prefender(64, 4096, 32).unwrap();
        assert!(p.scale_tracker().is_some() && p.access_tracker().is_some());
        assert!(p.record_protector().is_some());
        let p = DefenseConfig::St.build_prefender(64, 4096, 32).unwrap();
        assert!(p.scale_tracker().is_some() && p.access_tracker().is_none());
        // AT+RP keeps the ST for scale recording (RP links ST and AT),
        // only its prefetching is off.
        let p = DefenseConfig::AtRp.build_prefender(64, 4096, 16).unwrap();
        assert!(p.scale_tracker().is_some());
        assert!(p.record_protector().is_some());
        assert_eq!(p.access_tracker().unwrap().config().n_buffers, 16);
        assert!(DefenseConfig::None.build_prefender(64, 4096, 32).is_none());
    }

    #[test]
    fn reload_targets_cover_window_and_shuffle_deterministically() {
        let spec = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None);
        let a = build_reload_targets(&spec);
        let b = build_reload_targets(&spec);
        assert_eq!(a, b, "same seed, same order");
        assert_eq!(a.len(), spec.layout.n_indices);
        let c = build_reload_targets(&spec.clone().with_seed(7));
        assert_ne!(a, c, "different seed shuffles differently");
        let mut sorted = a.clone();
        sorted.sort();
        let expected: Vec<Addr> =
            spec.layout.indices().map(|i| spec.layout.index_addr(i)).collect();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn c4_adds_front_loaded_noise() {
        let spec =
            AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None).with_noise(NoiseSpec::C4);
        let l = &spec.layout;
        let t = build_reload_targets(&spec);
        assert_eq!(t.len(), l.n_c4_lines + l.n_indices + l.n_indices / 2);
        // The first accesses are all noise (DiffMin corrupts immediately).
        for (k, addr) in t.iter().take(l.n_c4_lines).enumerate() {
            assert_eq!(*addr, l.c4_noise_addr(k));
        }
        // Every eviction line still appears exactly once.
        let mut ev: Vec<u64> =
            t.iter().filter(|a| l.addr_index(**a).is_some()).map(|a| a.raw()).collect();
        ev.sort_unstable();
        let expected: Vec<u64> = l.indices().map(|i| l.index_addr(i).raw()).collect();
        assert_eq!(ev, expected);
    }

    #[test]
    fn secret_injection_moves_the_leak() {
        for secret in [50, 80, 110] {
            let spec =
                AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None).with_secret(secret);
            let o = run_attack(&spec).unwrap();
            assert!(o.leaked, "undefended FR must leak secret {secret}");
            assert_eq!(o.anomalies, vec![secret]);
        }
    }

    #[test]
    fn latency_jitter_is_deterministic_and_bounded() {
        let base = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None);
        let clean = run_attack(&base).unwrap();
        let noisy = run_attack(&base.clone().with_latency_jitter(5)).unwrap();
        assert_eq!(noisy, run_attack(&base.clone().with_latency_jitter(5)).unwrap());
        assert_ne!(clean.samples, noisy.samples, "jitter must perturb some latency");
        for (c, n) in clean.samples.iter().zip(&noisy.samples) {
            assert_eq!(c.index, n.index);
            assert!((c.latency..=c.latency + 5).contains(&n.latency));
        }
    }

    #[test]
    fn runner_accumulates_obs_and_reuse_counts() {
        let spec = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full);
        let mut runner = Runner::new(&spec).unwrap();
        runner.run(&spec).unwrap();
        runner.run(&spec.clone().with_seed(7)).unwrap();
        let (resets, rebuilds) = runner.take_reuse_counts();
        assert_eq!((resets, rebuilds), (2, 1), "two same-key runs, one construction");
        assert_eq!(runner.take_reuse_counts(), (0, 0), "drain zeroes the tallies");

        let two = runner.take_obs();
        assert!(two.cache_demand_hits > 0 && two.cache_demand_misses > 0);
        assert!(two.at_buffer_allocs > 0, "the Full defense tracks loads");
        assert_eq!(runner.take_obs(), ObsCounters::new(), "drain zeroes the counters");

        // The accumulated two-run total equals the sum of per-run drains.
        runner.run(&spec).unwrap();
        let mut sum = runner.take_obs();
        runner.run(&spec.clone().with_seed(7)).unwrap();
        sum.merge(&runner.take_obs());
        assert_eq!(sum, two, "per-run harvests sum to the accumulated total");

        // A key change takes the rebuild path.
        runner.run(&spec.clone().cross_core(true)).unwrap();
        assert_eq!(runner.take_reuse_counts(), (2, 1));
    }

    #[test]
    fn display_names() {
        assert_eq!(AttackKind::FlushReload.to_string(), "Flush+Reload");
        assert_eq!(DefenseConfig::Full.to_string(), "Prefender");
        assert_eq!(DefenseConfig::StAt.to_string(), "Prefender-ST+AT");
    }
}
