//! # prefender-attacks — cache side-channel attacks and analysis
//!
//! Generates the attack programs the PREFENDER paper evaluates against
//! (Section V-B / Figure 8) and analyses their outcomes:
//!
//! * **Flush+Reload** — flush the eviction set, let the victim run, reload
//!   and time every line; the single *hit* leaks the secret.
//! * **Evict+Reload** — like Flush+Reload but phase 1 evicts by loading
//!   L2-set-conflicting attacker data instead of flushing.
//! * **Prime+Probe** — fill the victim's cache sets with attacker data;
//!   the victim's access evicts one line; the single probe *miss* leaks.
//!
//! Each attack supports the paper's four challenge combinations:
//! C1+C2 (baseline: single victim access + random probe order), +C3
//! (noisy instructions thrash the Access Tracker's buffers) and +C4
//! (noisy accesses by the probe load corrupt DiffMin), plus single-core
//! and cross-core variants (paper Figure 4).
//!
//! The victim performs the paper's Figure-5 address computation
//! (`array[secret × 0x200]`), so the Scale Tracker can learn the scale
//! from real dataflow.
//!
//! ```no_run
//! use prefender_attacks::{AttackSpec, AttackKind, DefenseConfig, run_attack};
//!
//! let spec = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None);
//! let outcome = run_attack(&spec).unwrap();
//! assert!(outcome.leaked, "an undefended Flush+Reload leaks the secret");
//!
//! let spec = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full);
//! let outcome = run_attack(&spec).unwrap();
//! assert!(!outcome.leaked, "PREFENDER defeats it");
//! ```

mod analysis;
mod layout;
mod programs;
mod runner;

pub use analysis::{classify, AttackOutcome, ProbeSample};
pub use layout::AttackLayout;
pub use programs::{
    evict_program, flush_program, prime_probe_probe_program, prime_probe_program,
    reload_probe_program, victim_program, ProbeProgram,
};
pub use runner::{
    composed_attack_program, machine_obs, run_attack, run_attack_full, run_attack_with_timeline,
    AttackError, AttackKind, AttackSpec, Basic, DefenseConfig, MachineKey, NoiseSpec, RunMetrics,
    Runner, TimelinePoint,
};
