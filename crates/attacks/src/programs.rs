//! Attack-phase program generators.
//!
//! Every generator emits into a [`ProgramBuilder`] so the single-core
//! runner can concatenate phase 1 + victim + phase 3 into one program
//! (the attacker and victim share a core, as in a Spectre gadget), while
//! the cross-core runner builds them as separate per-core programs.

use prefender_isa::{Program, ProgramBuilder, Reg};

use crate::layout::AttackLayout;

/// A phase-3 program plus the PCs of its measuring loads (the trace is
/// filtered by these PCs to recover the attacker's latencies).
#[derive(Debug, Clone)]
pub struct ProbeProgram {
    /// The program (possibly including earlier phases).
    pub program: Program,
    /// PCs of the probe load instructions.
    pub probe_pcs: Vec<u64>,
    /// Number of probe-loop iterations.
    pub n_probes: usize,
}

// Register conventions: the victim block uses r0–r6 (paper Figure 5);
// attacker phases use r10–r20; r14 doubles as the victim's stack pointer
// stand-in only inside the victim block.

/// Emits phase 1 of Flush+Reload: flush every eviction cacheline.
pub(crate) fn emit_flush(b: &mut ProgramBuilder, l: &AttackLayout) {
    b.li(Reg::R10, l.index_addr(l.first_index).raw() as i64);
    b.li(Reg::R11, l.n_indices as i64);
    let top = b.label();
    b.flush(0, Reg::R10);
    b.add(Reg::R10, Reg::R10, l.probe_stride as i64);
    b.sub(Reg::R11, Reg::R11, 1);
    b.bnz(Reg::R11, top);
}

/// Emits the victim block — the paper's Figure 5:
/// `r6 = array[secret * stride]`, with the secret loaded from memory so
/// the Scale Tracker sees a genuine variable.
pub(crate) fn emit_victim(b: &mut ProgramBuilder, l: &AttackLayout) {
    b.li(Reg::R0, l.secret_addr as i64); // r0 = &secret
    b.ld(Reg::R1, 0, Reg::R0); //            r1 = secret        (variable)
    b.li(Reg::R2, l.array_base as i64); //   r2 = arr_addr      (immediate)
    b.li(Reg::R3, l.probe_stride as i64); // r3 = 0x200         (immediate)
    b.mul(Reg::R4, Reg::R1, Reg::R3); //     r4 = secret*0x200  (sc = 0x200)
    b.add(Reg::R5, Reg::R2, Reg::R4); //     r5 = &array[secret*0x200]
    b.ld(Reg::R6, 0, Reg::R5); //            the secret-dependent access
}

/// Emits phase 1 of Evict+Reload: for each eviction cacheline, load 17
/// attacker lines that conflict in its (16-way) L2 set, forcing it out of
/// the whole inclusive hierarchy.
pub(crate) fn emit_evict(b: &mut ProgramBuilder, l: &AttackLayout) {
    b.li(Reg::R10, l.index_addr(l.first_index).raw() as i64); // target addr
    b.li(Reg::R11, l.n_indices as i64);
    let outer = b.label();
    // e = evict_region + (target mod 128 KB): same L2 set as the target.
    b.and(Reg::R12, Reg::R10, 0x1_FFFF);
    b.li(Reg::R13, l.evict_region as i64);
    b.add(Reg::R12, Reg::R12, Reg::R13);
    b.li(Reg::R14, 17);
    let inner = b.label();
    b.ld(Reg::R15, 0, Reg::R12);
    b.add(Reg::R12, Reg::R12, 0x2_0000);
    b.sub(Reg::R14, Reg::R14, 1);
    b.bnz(Reg::R14, inner);
    b.add(Reg::R10, Reg::R10, l.probe_stride as i64);
    b.sub(Reg::R11, Reg::R11, 1);
    b.bnz(Reg::R11, outer);
}

/// Emits the C3 noise block: `n_noise_loads` loads with *distinct PCs*
/// targeting fixed benign lines, enough of them to thrash every access
/// buffer between two probe activations.
pub(crate) fn emit_noise(b: &mut ProgramBuilder, l: &AttackLayout) {
    b.li(Reg::R20, l.noise_region as i64);
    for j in 0..l.n_noise_loads {
        b.ld(Reg::R21, j as i64 * 0x200, Reg::R20);
    }
}

/// Per-probe measurement overhead: a real attacker brackets every probe
/// with serializing `rdtscp` pairs and records the measurement, costing
/// tens of cycles per probe (the paper's Figure 9 shows ≈1 µs per probed
/// line end to end). Modelled as a serializing timestamp read plus delay
/// slots; without it, back-to-back probes would outrun any prefetcher in
/// a way no real attack loop does.
pub(crate) fn emit_measure_overhead(b: &mut ProgramBuilder) {
    b.rdtsc(Reg::R22);
    for _ in 0..48 {
        b.nop();
    }
}

/// Emits phase 3 of a reload-style attack: walk the probe-order pointer
/// table, load each target through a *single* probe PC, optionally
/// interleaving the C3 noise block.
///
/// Returns the probe load's PC (requires the builder's `base_pc` to be
/// final before calling — the runner sets it first).
pub(crate) fn emit_reload_probe(
    b: &mut ProgramBuilder,
    l: &AttackLayout,
    n_probes: usize,
    noise_c3: bool,
) -> usize {
    b.li(Reg::R10, l.order_table as i64);
    b.li(Reg::R11, n_probes as i64);
    let top = b.label();
    b.ld(Reg::R12, 0, Reg::R10); // target pointer
    let probe_idx = b.ld(Reg::R13, 0, Reg::R12); // THE probe access
    emit_measure_overhead(b);
    if noise_c3 {
        emit_noise(b, l);
    }
    b.add(Reg::R10, Reg::R10, 8);
    b.sub(Reg::R11, Reg::R11, 1);
    b.bnz(Reg::R11, top);
    probe_idx
}

/// Emits the Prime+Probe prime/probe loop body shared by phase 1 and
/// phase 3: for each index, touch `ways` conflict lines of its cache set.
///
/// `way_stride`/`set_mask`: 32 KB/0x7FFF for L1-granularity (single-core),
/// 128 KB/0x1FFFF for L2-granularity (cross-core).
///
/// With `noise_c4`, on-set visits alternate with visits to the C4 noise
/// region *through the same load instructions*, corrupting DiffMin to
/// 0x40 without changing the probe PCs.
///
/// Returns the instruction indices of the `ways` loads.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_pp_loop(
    b: &mut ProgramBuilder,
    l: &AttackLayout,
    ways: usize,
    way_stride: u64,
    set_mask: u64,
    noise_c3: bool,
    noise_c4: bool,
) -> Vec<usize> {
    let iters = if noise_c4 { 2 * l.n_indices } else { l.n_indices };
    let c4_mask = (l.n_c4_lines as i64 - 1) * 0x40; // cycling cursor mask
    b.li(Reg::R10, l.first_index as i64); // index i
    b.li(Reg::R11, 0); //                    parity (C4)
    b.li(Reg::R12, iters as i64); //         loop counter
    b.li(Reg::R13, l.prime_region as i64);
    b.li(Reg::R17, 0); //                    C4 noise cursor
    let top = b.label();
    // addr = prime_region + ((i * stride) & mask)
    b.mul(Reg::R14, Reg::R10, l.probe_stride as i64);
    b.and(Reg::R14, Reg::R14, set_mask as i64);
    b.add(Reg::R14, Reg::R13, Reg::R14);
    if noise_c4 {
        // On odd iterations the same loads target the C4 noise region:
        // addr = c4_region + (cursor & mask); cursor += 0x40.
        let after = b.new_label();
        let use_noise = b.new_label();
        b.bnz(Reg::R11, use_noise);
        b.jmp(after);
        b.bind(use_noise);
        b.and(Reg::R18, Reg::R17, c4_mask);
        b.li(Reg::R19, l.c4_region as i64);
        b.add(Reg::R14, Reg::R19, Reg::R18);
        b.add(Reg::R17, Reg::R17, 0x40);
        b.bind(after);
    }
    let mut probe_idxs = Vec::with_capacity(ways);
    for w in 0..ways {
        probe_idxs.push(b.ld(Reg::R16, (w as u64 * way_stride) as i64, Reg::R14));
        emit_measure_overhead(b);
    }
    if noise_c3 {
        emit_noise(b, l);
    }
    if noise_c4 {
        // Toggle parity; advance the index only every second iteration.
        b.xor(Reg::R11, Reg::R11, 1);
        let skip = b.new_label();
        b.bnz(Reg::R11, skip);
        b.add(Reg::R10, Reg::R10, 1);
        b.bind(skip);
    } else {
        b.add(Reg::R10, Reg::R10, 1);
    }
    b.sub(Reg::R12, Reg::R12, 1);
    b.bnz(Reg::R12, top);
    probe_idxs
}

/// Standalone Flush+Reload phase-1 program (cross-core attacker).
pub fn flush_program(l: &AttackLayout) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("flush-phase1");
    emit_flush(&mut b, l);
    b.halt();
    b.build().expect("static program")
}

/// Standalone Evict+Reload phase-1 program (cross-core attacker).
pub fn evict_program(l: &AttackLayout) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("evict-phase1");
    emit_evict(&mut b, l);
    b.halt();
    b.build().expect("static program")
}

/// Standalone victim program (cross-core victim, paper Figure 4).
pub fn victim_program(l: &AttackLayout) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("victim");
    b.base_pc(0x4_0000); // victim code lives apart from attacker code
    emit_victim(&mut b, l);
    b.halt();
    b.build().expect("static program")
}

/// Standalone reload phase-3 program (cross-core attacker).
///
/// Phase-3 code lives at its own base PC so its load PCs never collide
/// with phase-1 loads in the shared trace.
pub fn reload_probe_program(l: &AttackLayout, n_probes: usize, noise_c3: bool) -> ProbeProgram {
    let mut b = ProgramBuilder::new();
    b.name("reload-phase3");
    b.base_pc(0x1_0000);
    let idx = emit_reload_probe(&mut b, l, n_probes, noise_c3);
    b.halt();
    let program = b.build().expect("static program");
    let pc = program.pc_of(idx);
    ProbeProgram { program, probe_pcs: vec![pc], n_probes }
}

/// Standalone Prime+Probe phase-1 (prime) program.
///
/// `cross_core` selects L2-granularity priming (17 ways × 128 KB stride)
/// instead of L1-granularity (2 ways × 32 KB).
pub fn prime_probe_program(l: &AttackLayout, cross_core: bool) -> Program {
    let (ways, stride, mask) = pp_geometry(cross_core);
    let mut b = ProgramBuilder::new();
    b.name("prime-phase1");
    emit_pp_loop(&mut b, l, ways, stride, mask, false, false);
    b.halt();
    b.build().expect("static program")
}

/// Standalone Prime+Probe phase-3 (probe) program.
///
/// Phase-3 code lives at its own base PC so its load PCs never collide
/// with the (identically shaped) phase-1 prime loads in the shared trace.
pub fn prime_probe_probe_program(
    l: &AttackLayout,
    cross_core: bool,
    noise_c3: bool,
    noise_c4: bool,
) -> ProbeProgram {
    let (ways, stride, mask) = pp_geometry(cross_core);
    let mut b = ProgramBuilder::new();
    b.name("probe-phase3");
    b.base_pc(0x1_0000);
    let idxs = emit_pp_loop(&mut b, l, ways, stride, mask, noise_c3, noise_c4);
    b.halt();
    let program = b.build().expect("static program");
    let probe_pcs = idxs.iter().map(|&i| program.pc_of(i)).collect();
    let n = if noise_c4 { 2 * l.n_indices } else { l.n_indices };
    ProbeProgram { program, probe_pcs, n_probes: n }
}

/// Prime+Probe geometry: `(ways, way_stride, set_mask)`.
///
/// Single-core attacks prime the 2-way L1D (hit/miss discrimination is
/// L1-vs-L2 latency); cross-core attacks prime the 16-way shared L2
/// (L2-vs-memory). In both cases exactly one line per way — priming more
/// would self-evict.
pub(crate) fn pp_geometry(cross_core: bool) -> (usize, u64, u64) {
    if cross_core {
        (16, 0x2_0000, 0x1_FFFF)
    } else {
        (2, 0x8000, 0x7FFF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_cpu::{CpuConfig, Machine};
    use prefender_sim::{Addr, HierarchyConfig};

    fn machine() -> Machine {
        // Attack analyses run without instruction-fetch modelling (see the
        // runner): code lines in an inclusive L2 would otherwise thrash
        // primed sets through back-invalidation refetch cycles.
        Machine::with_cpu_config(
            HierarchyConfig::paper_baseline(1).unwrap(),
            CpuConfig { model_fetch: false, ..CpuConfig::default() },
        )
    }

    #[test]
    fn flush_program_clears_the_eviction_set() {
        let l = AttackLayout::paper();
        let mut m = machine();
        // Warm two eviction lines first.
        for i in [50usize, 65] {
            m.mem_mut().prefetch(
                0,
                l.index_addr(i),
                prefender_sim::PrefetchSource::Other,
                prefender_sim::Cycle::ZERO,
            );
        }
        m.load_program(0, flush_program(&l));
        m.run();
        for i in l.indices() {
            assert!(!m.mem().probe_l1d(0, l.index_addr(i)));
            assert!(!m.mem().probe_l2(l.index_addr(i)));
        }
    }

    #[test]
    fn victim_program_touches_exactly_the_secret_line() {
        let l = AttackLayout::paper();
        let mut m = machine();
        m.write_data(l.secret_addr, l.secret as u64);
        m.trace_mut().set_enabled(true);
        m.load_program(0, victim_program(&l));
        m.run();
        let touched: Vec<Addr> = m
            .trace()
            .entries()
            .iter()
            .filter_map(|e| l.addr_index(e.addr).map(|_| e.addr))
            .collect();
        assert_eq!(touched, vec![l.index_addr(l.secret)]);
        assert!(m.mem().probe_l1d(0, l.index_addr(l.secret)));
    }

    #[test]
    fn evict_program_removes_array_lines_from_l2() {
        let l = AttackLayout::paper();
        let mut m = machine();
        // Load the whole window first so the lines are resident.
        for i in l.indices() {
            m.mem_mut().access(
                0,
                l.index_addr(i),
                prefender_sim::AccessKind::Read,
                prefender_sim::Cycle::ZERO,
            );
        }
        m.load_program(0, evict_program(&l));
        m.run();
        for i in l.indices() {
            assert!(!m.mem().probe_l2(l.index_addr(i)), "index {i} survived eviction");
            assert!(!m.mem().probe_l1d(0, l.index_addr(i)), "inclusion must clear L1 too");
        }
    }

    #[test]
    fn reload_probe_visits_order_table_targets() {
        let l = AttackLayout::paper();
        let mut m = machine();
        // Order: three eviction lines, reversed.
        let targets = [l.index_addr(52), l.index_addr(51), l.index_addr(50)];
        for (k, t) in targets.iter().enumerate() {
            m.write_data(l.order_table + 8 * k as u64, t.raw());
        }
        m.trace_mut().set_enabled(true);
        let probe = reload_probe_program(&l, targets.len(), false);
        m.load_program(0, probe.program.clone());
        m.run();
        let seen: Vec<u64> = m.trace().by_pc(probe.probe_pcs[0]).map(|e| e.addr.raw()).collect();
        assert_eq!(seen, targets.iter().map(|t| t.raw()).collect::<Vec<_>>());
    }

    #[test]
    fn noise_block_has_distinct_pcs() {
        let l = AttackLayout::paper();
        let probe = reload_probe_program(&l, 4, true);
        let loads = probe
            .program
            .instrs()
            .iter()
            .filter(|i| matches!(i, prefender_isa::Instr::Load { .. }))
            .count();
        // 2 loop loads + 40 noise loads.
        assert_eq!(loads, 2 + l.n_noise_loads);
    }

    #[test]
    fn prime_program_fills_target_l1_sets() {
        let l = AttackLayout::paper();
        let mut m = machine();
        m.load_program(0, prime_probe_program(&l, false));
        m.run();
        for i in l.indices() {
            for way in 0..2 {
                assert!(
                    m.mem().probe_l1d(0, l.prime_addr(i, way)),
                    "prime line for index {i} way {way} missing from L1D"
                );
            }
        }
    }

    #[test]
    fn cross_core_prime_fills_target_l2_sets() {
        let l = AttackLayout::paper();
        let mut m = machine();
        m.load_program(0, prime_probe_program(&l, true));
        m.run();
        for i in l.indices() {
            for way in 0..16 {
                assert!(
                    m.mem().probe_l2(l.prime_addr_l2(i, way)),
                    "prime line for index {i} way {way} missing from L2"
                );
            }
        }
    }

    #[test]
    fn pp_probe_touches_all_prime_lines() {
        let l = AttackLayout::paper();
        let mut m = machine();
        m.trace_mut().set_enabled(true);
        let probe = prime_probe_probe_program(&l, false, false, false);
        m.load_program(0, probe.program.clone());
        m.run();
        let probed: usize = probe.probe_pcs.iter().map(|&pc| m.trace().by_pc(pc).count()).sum();
        assert_eq!(probed, 2 * l.n_indices);
    }

    #[test]
    fn pp_probe_with_c4_interleaves_off_pattern_accesses() {
        let l = AttackLayout::paper();
        let mut m = machine();
        m.trace_mut().set_enabled(true);
        let probe = prime_probe_probe_program(&l, false, false, true);
        m.load_program(0, probe.program.clone());
        m.run();
        let addrs: Vec<u64> = m.trace().by_pc(probe.probe_pcs[0]).map(|e| e.addr.raw()).collect();
        assert_eq!(addrs.len(), 2 * l.n_indices);
        // Even positions on-set, odd positions in the C4 noise region,
        // cycling over its lines.
        assert_eq!(addrs[1], l.c4_noise_addr(0).raw());
        assert_eq!(addrs[3], l.c4_noise_addr(1).raw());
        assert_eq!(addrs[2 * l.n_c4_lines + 1], l.c4_noise_addr(0).raw());
    }

    #[test]
    fn pp_geometry_per_scope() {
        assert_eq!(pp_geometry(false), (2, 0x8000, 0x7FFF));
        assert_eq!(pp_geometry(true), (16, 0x2_0000, 0x1_FFFF));
    }
}
