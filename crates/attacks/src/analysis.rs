//! Attack outcome analysis: latency classification and secret inference.

use std::fmt;

/// One measured probe: the array index probed and the observed latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSample {
    /// Probed array index.
    pub index: usize,
    /// Measured load-to-use latency in cycles.
    pub latency: u64,
}

/// The attacker's view after phase 3, and whether the secret leaked.
///
/// Reload-style attacks leak through the single *hit* (low latency);
/// Prime+Probe leaks through the single *miss* (high latency). The attack
/// *leaks* when exactly one index is anomalous and it is the secret; any
/// other anomaly set means the attacker cannot identify the secret — the
/// paper's "misleading the attacker".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Per-index latencies, ascending by index (the Figure 8 series).
    pub samples: Vec<ProbeSample>,
    /// Indices the attacker classifies as anomalous.
    pub anomalies: Vec<usize>,
    /// `true` when the attacker recovers exactly the secret.
    pub leaked: bool,
    /// Ground-truth secret.
    pub secret: usize,
    /// The latency threshold used for classification.
    pub threshold: u64,
    /// `true` when an anomaly is a *hit* (reload-style); `false` when it
    /// is a *miss* (Prime+Probe).
    pub anomaly_is_hit: bool,
}

impl AttackOutcome {
    /// `true` when the attack was defeated (the inverse of `leaked`).
    pub fn defended(&self) -> bool {
        !self.leaked
    }

    /// The latency measured at `index`, if it was probed.
    pub fn latency_at(&self, index: usize) -> Option<u64> {
        self.samples.iter().find(|s| s.index == index).map(|s| s.latency)
    }
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} anomalies {:?} (secret {}): {}",
            if self.anomaly_is_hit { "hit" } else { "miss" },
            self.anomalies,
            self.secret,
            if self.leaked { "LEAKED" } else { "defended" }
        )
    }
}

/// Classifies per-index latencies into an [`AttackOutcome`].
///
/// `anomaly_is_hit` selects the attacker's inference rule: `true` counts
/// latencies *below* `threshold` as anomalies (Flush+Reload /
/// Evict+Reload), `false` counts latencies *above* it (Prime+Probe).
pub fn classify(
    mut samples: Vec<ProbeSample>,
    threshold: u64,
    anomaly_is_hit: bool,
    secret: usize,
) -> AttackOutcome {
    samples.sort_by_key(|s| s.index);
    let anomalies: Vec<usize> = samples
        .iter()
        .filter(|s| if anomaly_is_hit { s.latency < threshold } else { s.latency >= threshold })
        .map(|s| s.index)
        .collect();
    let leaked = anomalies.len() == 1 && anomalies[0] == secret;
    AttackOutcome { samples, anomalies, leaked, secret, threshold, anomaly_is_hit }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(pairs: &[(usize, u64)]) -> Vec<ProbeSample> {
        pairs.iter().map(|&(index, latency)| ProbeSample { index, latency }).collect()
    }

    #[test]
    fn single_hit_leaks() {
        let o = classify(series(&[(50, 200), (51, 4), (52, 200)]), 100, true, 51);
        assert!(o.leaked);
        assert_eq!(o.anomalies, vec![51]);
        assert!(!o.defended());
    }

    #[test]
    fn multiple_hits_defend() {
        let o = classify(series(&[(50, 4), (51, 4), (52, 200)]), 100, true, 51);
        assert!(!o.leaked);
        assert_eq!(o.anomalies, vec![50, 51]);
    }

    #[test]
    fn zero_anomalies_defend() {
        // Prime+Probe with AT: every probe hits — the attacker sees nothing.
        let o = classify(series(&[(50, 4), (51, 4)]), 10, false, 51);
        assert!(!o.leaked);
        assert!(o.anomalies.is_empty());
    }

    #[test]
    fn single_miss_leaks_prime_probe() {
        let o = classify(series(&[(50, 4), (51, 20), (52, 4)]), 10, false, 51);
        assert!(o.leaked);
    }

    #[test]
    fn wrong_single_anomaly_is_not_a_leak() {
        // One anomaly at a non-secret index: the attacker infers the wrong
        // secret — still a defense success.
        let o = classify(series(&[(50, 4), (51, 200)]), 100, true, 51);
        assert_eq!(o.anomalies, vec![50]);
        assert!(!o.leaked);
    }

    #[test]
    fn samples_sorted_and_queryable() {
        let o = classify(series(&[(52, 1), (50, 2), (51, 3)]), 100, true, 50);
        let idx: Vec<usize> = o.samples.iter().map(|s| s.index).collect();
        assert_eq!(idx, vec![50, 51, 52]);
        assert_eq!(o.latency_at(51), Some(3));
        assert_eq!(o.latency_at(99), None);
    }

    #[test]
    fn display_mentions_result() {
        let o = classify(series(&[(50, 4)]), 100, true, 50);
        assert!(o.to_string().contains("LEAKED"));
    }
}
