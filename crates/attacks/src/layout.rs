//! The attack's memory layout: where the victim array, secret, and the
//! attacker's working regions live.
//!
//! The regions are chosen so the attacks compose cleanly on the paper's
//! cache geometry (64 KB / 2-way L1D → 512 sets, 2 MB / 16-way L2 → 2048
//! sets, 64-byte lines):
//!
//! * the victim array is 32 KB-aligned, so index `i` maps to L1D set
//!   `(8·i) mod 512` — distinct for every index in a ≤ 64-wide window;
//! * the secret's own cacheline maps to set 4, never a multiple of 8, so
//!   fetching the secret cannot evict a primed line;
//! * C3 noise lines map to sets ≡ 4 (mod 8) for the same reason;
//! * the probe-order table occupies its own region and touches at most
//!   one line per set.

use prefender_sim::Addr;

/// Address map and probe window of one attack experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackLayout {
    /// Base of the victim's secret-indexed array (32 KB-aligned).
    pub array_base: u64,
    /// Byte distance between consecutive eviction cachelines
    /// (the paper's example scale, 0x200 = 512 B = 8 lines).
    pub probe_stride: u64,
    /// First probed array index (paper Figure 8: 50).
    pub first_index: usize,
    /// Number of probed indices (paper Figure 8: 50..=110 → 61).
    pub n_indices: usize,
    /// The victim's secret (paper: visible at index 65).
    pub secret: usize,
    /// Address holding the secret value.
    pub secret_addr: u64,
    /// Base of the attacker's probe-order pointer table.
    pub order_table: u64,
    /// Base of the C3 noise region.
    pub noise_region: u64,
    /// Number of distinct noisy load instructions for C3 (must exceed the
    /// access-buffer count to thrash it; paper baseline has 32 buffers).
    pub n_noise_loads: usize,
    /// Base of the C4 noisy-access region: a few adjacent lines the probe
    /// load also touches, shrinking DiffMin to one line (0x40) so the
    /// Access Tracker's candidates fall off the eviction pattern.
    pub c4_region: u64,
    /// Number of distinct C4 noise lines (their pairwise 0x40 differences
    /// dominate DiffMin).
    pub n_c4_lines: usize,
    /// Base of the Evict+Reload conflict region (128 KB-aligned).
    pub evict_region: u64,
    /// Base of the Prime+Probe priming region (32 KB-aligned).
    pub prime_region: u64,
    /// Latency threshold separating hits from misses for reload-style
    /// attacks and L2-granularity Prime+Probe.
    pub hit_threshold: u64,
    /// Latency threshold separating L1 hits from L1 misses for
    /// single-core (L1-granularity) Prime+Probe.
    pub l1_hit_threshold: u64,
}

impl AttackLayout {
    /// The paper's Figure 8 setup: indices 50–110, secret 65, 0x200 stride.
    pub fn paper() -> Self {
        AttackLayout {
            array_base: 0x0010_0000,
            probe_stride: 0x200,
            first_index: 50,
            n_indices: 61,
            secret: 65,
            secret_addr: 0x0002_0100, // L1D set 4 — never collides with primes
            order_table: 0x0100_0000,
            noise_region: 0x0200_0100, // lines at sets ≡ 4 (mod 8)
            n_noise_loads: 40,
            c4_region: 0x0300_0100, // lines at sets 4..8 — never prime sets
            n_c4_lines: 4,
            evict_region: 0x0400_0000,
            prime_region: 0x0800_0000,
            hit_threshold: 100,
            l1_hit_threshold: 10,
        }
    }

    /// Address of eviction cacheline `index`.
    pub fn index_addr(&self, index: usize) -> Addr {
        Addr::new(self.array_base + index as u64 * self.probe_stride)
    }

    /// The probed indices, in ascending order.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.first_index..self.first_index + self.n_indices
    }

    /// The array index an address corresponds to, if it is an eviction
    /// cacheline inside the probe window.
    pub fn addr_index(&self, addr: Addr) -> Option<usize> {
        let off = addr.raw().checked_sub(self.array_base)?;
        if off % self.probe_stride != 0 {
            return None;
        }
        let idx = (off / self.probe_stride) as usize;
        (idx >= self.first_index && idx < self.first_index + self.n_indices).then_some(idx)
    }

    /// The C3 noise line accessed by noisy load `j`.
    pub fn noise_addr(&self, j: usize) -> Addr {
        Addr::new(self.noise_region + j as u64 * 0x200)
    }

    /// The single-core Prime+Probe prime address for `index` and `way`
    /// (L1D granularity: way stride = 32 KB, one L1D way span).
    pub fn prime_addr(&self, index: usize, way: usize) -> Addr {
        // Index i's line maps to L1D set (8·i) mod 512; the prime line for
        // that set in `way` is prime_region + (addr mod 32 KB) + way·32 KB.
        let set_off = (self.index_addr(index).raw()) % 0x8000;
        Addr::new(self.prime_region + set_off + way as u64 * 0x8000)
    }

    /// The cross-core Prime+Probe prime address for `index` and `way`
    /// (L2 granularity: way stride = 128 KB, one L2 way span).
    pub fn prime_addr_l2(&self, index: usize, way: usize) -> Addr {
        let set_off = (self.index_addr(index).raw()) % 0x2_0000;
        Addr::new(self.prime_region + set_off + way as u64 * 0x2_0000)
    }

    /// The Evict+Reload conflict address `k` for `index`'s L2 set
    /// (L2 set span = 128 KB).
    pub fn evict_addr(&self, index: usize, k: usize) -> Addr {
        let set_off = self.index_addr(index).raw() % 0x2_0000;
        Addr::new(self.evict_region + set_off + k as u64 * 0x2_0000)
    }

    /// The `k`-th C4 noise line (cycling over [`Self::n_c4_lines`] adjacent
    /// lines). Never on the recorded scale pattern, and its `±DiffMin`
    /// neighbours never land on eviction cachelines either.
    pub fn c4_noise_addr(&self, k: usize) -> Addr {
        Addr::new(self.c4_region + (k % self.n_c4_lines) as u64 * 0x40)
    }
}

impl Default for AttackLayout {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_window() {
        let l = AttackLayout::paper();
        let idx: Vec<usize> = l.indices().collect();
        assert_eq!(idx.first(), Some(&50));
        assert_eq!(idx.last(), Some(&110));
        assert_eq!(idx.len(), 61);
        assert!(l.indices().any(|i| i == l.secret));
    }

    #[test]
    fn index_addr_round_trips() {
        let l = AttackLayout::paper();
        for i in l.indices() {
            assert_eq!(l.addr_index(l.index_addr(i)), Some(i));
        }
    }

    #[test]
    fn off_pattern_addresses_rejected() {
        let l = AttackLayout::paper();
        assert_eq!(l.addr_index(Addr::new(l.array_base + 0x100)), None);
        assert_eq!(l.addr_index(Addr::new(l.array_base - 0x200)), None);
        assert_eq!(l.addr_index(l.index_addr(49)), None, "outside the window");
        assert_eq!(l.addr_index(l.index_addr(111)), None);
    }

    #[test]
    fn array_alignment_gives_unique_l1_sets() {
        let l = AttackLayout::paper();
        assert_eq!(l.array_base % 0x8000, 0, "32 KB alignment");
        let sets: Vec<u64> = l.indices().map(|i| (l.index_addr(i).raw() / 64) % 512).collect();
        let mut dedup = sets.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sets.len(), "each index owns a distinct L1D set");
    }

    #[test]
    fn secret_line_avoids_prime_sets() {
        let l = AttackLayout::paper();
        // Prime sets are ≡ 0 (mod 8) in both the L1D (512 sets) and the
        // L2 (2048 sets); the secret's line must not touch them.
        assert_ne!((l.secret_addr / 64) % 512 % 8, 0);
        assert_ne!((l.secret_addr / 64) % 2048 % 8, 0);
    }

    #[test]
    fn noise_lines_avoid_prime_sets() {
        let l = AttackLayout::paper();
        for j in 0..l.n_noise_loads {
            assert_ne!((l.noise_addr(j).raw() / 64) % 512 % 8, 0, "L1 collision at {j}");
            assert_ne!((l.noise_addr(j).raw() / 64) % 2048 % 8, 0, "L2 collision at {j}");
        }
    }

    #[test]
    fn prime_addr_matches_target_l1_set() {
        let l = AttackLayout::paper();
        for i in l.indices() {
            let target_set = (l.index_addr(i).raw() / 64) % 512;
            for way in 0..2 {
                let set = (l.prime_addr(i, way).raw() / 64) % 512;
                assert_eq!(set, target_set);
            }
        }
    }

    #[test]
    fn prime_addr_l2_matches_target_l2_set() {
        let l = AttackLayout::paper();
        for i in l.indices() {
            let target_set = (l.index_addr(i).raw() / 64) % 2048;
            for way in 0..16 {
                let set = (l.prime_addr_l2(i, way).raw() / 64) % 2048;
                assert_eq!(set, target_set);
            }
        }
    }

    #[test]
    fn evict_addr_matches_l2_set() {
        let l = AttackLayout::paper();
        for i in [50, 65, 110] {
            let target_set = (l.index_addr(i).raw() / 64) % 2048;
            for k in 0..17 {
                let set = (l.evict_addr(i, k).raw() / 64) % 2048;
                assert_eq!(set, target_set);
            }
        }
    }

    #[test]
    fn c4_noise_is_off_pattern() {
        let l = AttackLayout::paper();
        for k in 0..l.n_c4_lines {
            assert_eq!(l.addr_index(l.c4_noise_addr(k)), None);
            // Off the recorded (sc=0x200, blk=secret line) pattern:
            let diff = l.c4_noise_addr(k).raw() as i128 - l.index_addr(65).raw() as i128;
            assert_ne!(diff.rem_euclid(0x200), 0, "noise line {k} hits the scale pattern");
        }
    }

    #[test]
    fn c4_noise_cycles_and_avoids_prime_sets() {
        let l = AttackLayout::paper();
        assert_eq!(l.c4_noise_addr(0), l.c4_noise_addr(l.n_c4_lines));
        for k in 0..l.n_c4_lines {
            let set = (l.c4_noise_addr(k).raw() / 64) % 512;
            assert_ne!(set % 8, 0, "C4 line {k} collides with a prime set");
        }
    }

    #[test]
    fn c4_diffmin_candidates_stay_off_pattern() {
        // The whole point of the redesigned C4 region: blk ± 0x40 from an
        // eviction line is never another eviction line.
        let l = AttackLayout::paper();
        for i in l.indices() {
            for delta in [0x40i64, -0x40] {
                let cand = l.index_addr(i).offset(delta).unwrap();
                assert_eq!(l.addr_index(cand), None);
            }
        }
    }
}
