//! Regression tests pinning the reusable [`Runner`] against one-shot
//! fresh-machine runs: machine reuse must be bit-exact, for every attack
//! × defense combination, or campaign artifacts would silently drift.

use prefender_attacks::{
    run_attack_full, AttackKind, AttackSpec, Basic, DefenseConfig, NoiseSpec, Runner,
};

const KINDS: [AttackKind; 3] =
    [AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe];

/// A trial sequence representative of a leakage campaign: varying secret
/// and seed against one machine configuration.
fn trials(base: &AttackSpec) -> Vec<AttackSpec> {
    (0..3u64)
        .map(|t| {
            base.clone()
                .with_seed(0xC0FFEE ^ t)
                .with_secret(base.layout.first_index + 7 * t as usize)
        })
        .collect()
}

#[test]
fn reused_machines_match_fresh_for_every_attack_and_defense() {
    for kind in KINDS {
        for defense in DefenseConfig::ALL {
            for cross_core in [false, true] {
                let base = AttackSpec::new(kind, defense).cross_core(cross_core);
                let mut runner = Runner::new(&base).expect("valid baseline");
                // Dirty the machine first so every compared run exercises
                // the reset path, never a fresh machine.
                runner.run(&base.clone().with_seed(0xD1DF)).expect("dirtying run");
                for spec in trials(&base) {
                    let fresh = run_attack_full(&spec).expect("fresh run");
                    let reused = runner.run_full(&spec).expect("reused run");
                    assert_eq!(
                        fresh, reused,
                        "fresh/reused divergence: {kind} x {defense} cross_core={cross_core}"
                    );
                }
            }
        }
    }
}

#[test]
fn reused_machines_match_fresh_under_noise_basic_and_jitter() {
    // The noisy corners: challenge noise, a chained basic prefetcher and
    // attacker timer jitter all flow through the same reset contract.
    let specs = [
        AttackSpec::new(AttackKind::PrimeProbe, DefenseConfig::Full).with_noise(NoiseSpec::C3C4),
        AttackSpec::new(AttackKind::FlushReload, DefenseConfig::StAt).with_basic(Basic::Stride),
        AttackSpec::new(AttackKind::EvictReload, DefenseConfig::Full)
            .with_noise(NoiseSpec::C4)
            .with_basic(Basic::Tagged),
        AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None).with_latency_jitter(25),
    ];
    for base in specs {
        let mut runner = Runner::new(&base).expect("valid baseline");
        runner.run(&base.clone().with_seed(0xD1DF)).expect("dirtying run");
        for spec in trials(&base) {
            let fresh = run_attack_full(&spec).expect("fresh run");
            let reused = runner.run_full(&spec).expect("reused run");
            assert_eq!(fresh, reused, "fresh/reused divergence on noisy spec");
        }
    }
}

#[test]
fn runner_rebuilds_on_configuration_change() {
    // One runner fed alternating configurations must transparently
    // rebuild and still match fresh runs each time.
    let a = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None);
    let b = AttackSpec::new(AttackKind::PrimeProbe, DefenseConfig::Full).cross_core(true);
    let mut runner = Runner::new(&a).expect("valid baseline");
    for round in 0..2u64 {
        for spec in [a.clone().with_seed(round), b.clone().with_seed(round)] {
            let fresh = run_attack_full(&spec).expect("fresh run");
            let reused = runner.run_full(&spec).expect("reused run");
            assert_eq!(fresh, reused, "divergence after config switch (round {round})");
        }
    }
}
