//! Full-system security tests reproducing the paper's Figure 8 matrix:
//! each (attack, challenge set, defense) combination must leak or defend
//! exactly as the paper reports.

use prefender_attacks::{run_attack, AttackKind, AttackSpec, DefenseConfig, NoiseSpec};

fn outcome(
    kind: AttackKind,
    defense: DefenseConfig,
    noise: NoiseSpec,
) -> prefender_attacks::AttackOutcome {
    run_attack(&AttackSpec::new(kind, defense).with_noise(noise)).expect("attack run")
}

// ---------- Figure 8 (a)-(c): C1 + C2 ----------

#[test]
fn fr_base_leaks() {
    let o = outcome(AttackKind::FlushReload, DefenseConfig::None, NoiseSpec::NONE);
    assert!(o.leaked, "{o}");
    assert_eq!(o.anomalies, vec![65]);
}

#[test]
fn fr_st_defends_with_neighbour_hits() {
    let o = outcome(AttackKind::FlushReload, DefenseConfig::St, NoiseSpec::NONE);
    assert!(!o.leaked, "{o}");
    // The paper: "the latency results of array indices 64-66 are the same".
    assert_eq!(o.anomalies, vec![64, 65, 66]);
}

#[test]
fn fr_at_defends() {
    let o = outcome(AttackKind::FlushReload, DefenseConfig::At, NoiseSpec::NONE);
    assert!(!o.leaked, "{o}");
    assert!(o.anomalies.len() > 3, "AT should flood the window with hits: {o}");
}

#[test]
fn fr_st_at_defends() {
    let o = outcome(AttackKind::FlushReload, DefenseConfig::StAt, NoiseSpec::NONE);
    assert!(!o.leaked, "{o}");
}

#[test]
fn er_base_leaks() {
    let o = outcome(AttackKind::EvictReload, DefenseConfig::None, NoiseSpec::NONE);
    assert!(o.leaked, "{o}");
    assert_eq!(o.anomalies, vec![65]);
}

#[test]
fn er_st_defends() {
    let o = outcome(AttackKind::EvictReload, DefenseConfig::St, NoiseSpec::NONE);
    assert!(!o.leaked, "{o}");
    assert_eq!(o.anomalies, vec![64, 65, 66]);
}

#[test]
fn er_at_defends() {
    let o = outcome(AttackKind::EvictReload, DefenseConfig::At, NoiseSpec::NONE);
    assert!(!o.leaked, "{o}");
}

#[test]
fn pp_base_leaks() {
    let o = outcome(AttackKind::PrimeProbe, DefenseConfig::None, NoiseSpec::NONE);
    assert!(o.leaked, "{o}");
    assert_eq!(o.anomalies, vec![65]);
}

#[test]
fn pp_st_defends_with_more_misses() {
    let o = outcome(AttackKind::PrimeProbe, DefenseConfig::St, NoiseSpec::NONE);
    assert!(!o.leaked, "{o}");
    assert!(o.anomalies.len() >= 2, "ST adds misses at the neighbours: {o}");
    assert!(o.anomalies.contains(&65));
}

#[test]
fn pp_at_defends() {
    let o = outcome(AttackKind::PrimeProbe, DefenseConfig::At, NoiseSpec::NONE);
    assert!(!o.leaked, "{o}");
}

// ---------- Figure 8 (d)-(f): + C3 (noisy instructions) ----------

#[test]
fn fr_c3_bypasses_at_alone() {
    let o = outcome(AttackKind::FlushReload, DefenseConfig::At, NoiseSpec::C3);
    assert!(o.leaked, "C3 must thrash the access buffers and re-enable the leak: {o}");
}

#[test]
fn fr_c3_at_rp_defends() {
    let o = outcome(AttackKind::FlushReload, DefenseConfig::AtRp, NoiseSpec::C3);
    assert!(!o.leaked, "AT+RP (paper panel d): {o}");
    let o = outcome(AttackKind::FlushReload, DefenseConfig::Full, NoiseSpec::C3);
    assert!(!o.leaked, "{o}");
}

#[test]
fn er_c3_bypasses_at_alone() {
    let o = outcome(AttackKind::EvictReload, DefenseConfig::At, NoiseSpec::C3);
    assert!(o.leaked, "{o}");
}

#[test]
fn er_c3_at_rp_defends() {
    let o = outcome(AttackKind::EvictReload, DefenseConfig::Full, NoiseSpec::C3);
    assert!(!o.leaked, "{o}");
}

#[test]
fn pp_c3_bypasses_at_alone() {
    let o = outcome(AttackKind::PrimeProbe, DefenseConfig::At, NoiseSpec::C3);
    assert!(o.leaked, "{o}");
}

#[test]
fn pp_c3_at_rp_defends() {
    let o = outcome(AttackKind::PrimeProbe, DefenseConfig::Full, NoiseSpec::C3);
    assert!(!o.leaked, "{o}");
}

// ---------- Figure 8 (g)-(i): + C4 (noisy accesses) ----------

#[test]
fn fr_c4_bypasses_at_alone() {
    let o = outcome(AttackKind::FlushReload, DefenseConfig::At, NoiseSpec::C4);
    assert!(o.leaked, "C4 must corrupt DiffMin and re-enable the leak: {o}");
}

#[test]
fn fr_c4_at_rp_defends() {
    let o = outcome(AttackKind::FlushReload, DefenseConfig::AtRp, NoiseSpec::C4);
    assert!(!o.leaked, "AT+RP (paper panel g): {o}");
    let o = outcome(AttackKind::FlushReload, DefenseConfig::Full, NoiseSpec::C4);
    assert!(!o.leaked, "{o}");
}

#[test]
fn er_c4_bypasses_at_alone() {
    let o = outcome(AttackKind::EvictReload, DefenseConfig::At, NoiseSpec::C4);
    assert!(o.leaked, "{o}");
}

#[test]
fn er_c4_at_rp_defends() {
    let o = outcome(AttackKind::EvictReload, DefenseConfig::Full, NoiseSpec::C4);
    assert!(!o.leaked, "{o}");
}

#[test]
fn pp_c4_bypasses_at_alone() {
    let o = outcome(AttackKind::PrimeProbe, DefenseConfig::At, NoiseSpec::C4);
    assert!(o.leaked, "{o}");
}

#[test]
fn pp_c4_at_rp_defends() {
    let o = outcome(AttackKind::PrimeProbe, DefenseConfig::Full, NoiseSpec::C4);
    assert!(!o.leaked, "{o}");
}

// ---------- Figure 8 (j)-(l): C1 + C2 + C3 + C4, full PREFENDER ----------

#[test]
fn fr_all_challenges_full_prefender_defends() {
    let o = outcome(AttackKind::FlushReload, DefenseConfig::Full, NoiseSpec::C3C4);
    assert!(!o.leaked, "{o}");
}

#[test]
fn er_all_challenges_full_prefender_defends() {
    let o = outcome(AttackKind::EvictReload, DefenseConfig::Full, NoiseSpec::C3C4);
    assert!(!o.leaked, "{o}");
}

#[test]
fn pp_all_challenges_full_prefender_defends() {
    let o = outcome(AttackKind::PrimeProbe, DefenseConfig::Full, NoiseSpec::C3C4);
    assert!(!o.leaked, "{o}");
}

#[test]
fn all_challenges_base_still_leaks() {
    for kind in [AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe] {
        let o = outcome(kind, DefenseConfig::None, NoiseSpec::C3C4);
        assert!(o.leaked, "{kind}: {o}");
    }
}

// ---------- Cross-core (paper Figure 4) ----------

#[test]
fn cross_core_fr_base_leaks() {
    let spec = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None).cross_core(true);
    let o = run_attack(&spec).unwrap();
    assert!(o.leaked, "{o}");
    assert_eq!(o.anomalies, vec![65]);
}

#[test]
fn cross_core_fr_st_defends() {
    let spec = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::St).cross_core(true);
    let o = run_attack(&spec).unwrap();
    assert!(!o.leaked, "{o}");
    assert_eq!(o.anomalies, vec![64, 65, 66]);
}

#[test]
fn cross_core_fr_at_defends() {
    let spec = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::At).cross_core(true);
    let o = run_attack(&spec).unwrap();
    assert!(!o.leaked, "{o}");
}

#[test]
fn cross_core_er_base_leaks_and_st_defends() {
    let base = AttackSpec::new(AttackKind::EvictReload, DefenseConfig::None).cross_core(true);
    assert!(run_attack(&base).unwrap().leaked);
    let st = AttackSpec::new(AttackKind::EvictReload, DefenseConfig::St).cross_core(true);
    assert!(!run_attack(&st).unwrap().leaked);
}

#[test]
fn cross_core_pp_base_leaks_and_at_defends() {
    let base = AttackSpec::new(AttackKind::PrimeProbe, DefenseConfig::None).cross_core(true);
    let o = run_attack(&base).unwrap();
    assert!(o.leaked, "{o}");
    let at = AttackSpec::new(AttackKind::PrimeProbe, DefenseConfig::At).cross_core(true);
    let o = run_attack(&at).unwrap();
    assert!(!o.leaked, "{o}");
}

// ---------- Determinism ----------

#[test]
fn runs_are_deterministic() {
    let spec =
        AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full).with_noise(NoiseSpec::C3C4);
    let a = run_attack(&spec).unwrap();
    let b = run_attack(&spec).unwrap();
    assert_eq!(a, b);
}
