//! The deterministic sharded executor.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::artifact::SweepReport;
use crate::grid::SweepGrid;
use crate::scenario::{run_scenario_with, ScenarioResult};

/// Campaign-level execution options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Campaign seed every per-scenario seed is derived from.
    pub campaign_seed: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions { threads: 0, campaign_seed: 0xC0FFEE }
    }
}

fn effective_threads(requested: usize, items: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    t.clamp(1, items.max(1))
}

/// Applies `f` to every item on a worker pool and returns the results in
/// item order.
///
/// Sharding is dynamic (an atomic cursor), but the output is **ordered by
/// item index**, so as long as `f` itself is a pure function of its item
/// the result vector is identical for every thread count — this is the
/// primitive both [`run_sweep`] and the bench ablations build on. Workers
/// share nothing mutable beyond the cursor and the result sink.
///
/// # Panics
///
/// Propagates the first worker panic after all workers stop.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let sink: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Each worker drains the cursor, keeping results local so
                // the sink lock is touched once per worker.
                let mut local = Vec::new();
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= items.len() {
                        break;
                    }
                    local.push((k, f(&items[k])));
                }
                sink.lock().expect("result sink").extend(local);
            });
        }
    });
    let mut pairs = sink.into_inner().expect("result sink");
    pairs.sort_by_key(|&(k, _)| k);
    assert_eq!(pairs.len(), items.len(), "every item produces exactly one result");
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Applies `f` to every `(row, col)` cell of a 2-D grid on the worker
/// pool and returns the results as one `Vec` per row.
///
/// This owns the flatten-and-reslice arithmetic so callers sweeping a
/// (workload × column)-shaped space never hand-roll stride indexing.
/// Same determinism contract as [`parallel_map`].
pub fn parallel_map_2d<R, F>(rows: usize, cols: usize, threads: usize, f: F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let cells: Vec<(usize, usize)> =
        (0..rows).flat_map(|r| (0..cols).map(move |c| (r, c))).collect();
    let mut flat = parallel_map(&cells, threads, |&(r, c)| f(r, c));
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let rest = flat.split_off(cols.min(flat.len()));
        out.push(std::mem::replace(&mut flat, rest));
    }
    out
}

/// Enumerates `grid` and runs every scenario on the worker pool.
///
/// The report's result order is scenario-index order and every scenario's
/// seed is derived from `opts.campaign_seed` + its index, so the same
/// grid and campaign seed produce **bit-identical artifacts at any thread
/// count**.
pub fn run_sweep(grid: &SweepGrid, opts: &SweepOptions) -> SweepReport {
    let scenarios = grid.enumerate();
    let resample = grid.resample();
    let results: Vec<ScenarioResult> = parallel_map(&scenarios, opts.threads, |s| {
        run_scenario_with(s, opts.campaign_seed, &resample)
    });
    SweepReport { campaign_seed: opts.campaign_seed, results }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 8, 64] {
            let out = parallel_map(&items, threads, |&x| x * x);
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_handles_more_threads_than_items() {
        let out = parallel_map(&[1u32, 2], 16, |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn parallel_map_2d_reshapes_by_row() {
        let grid = parallel_map_2d(3, 4, 2, |r, c| r * 10 + c);
        assert_eq!(grid.len(), 3);
        assert_eq!(grid[0], vec![0, 1, 2, 3]);
        assert_eq!(grid[2], vec![20, 21, 22, 23]);
        assert_eq!(parallel_map_2d(0, 4, 2, |r, c| r + c), Vec::<Vec<usize>>::new());
        assert_eq!(parallel_map_2d(2, 0, 2, |r, c| r + c), vec![vec![], vec![]]);
    }

    #[test]
    fn effective_thread_clamp() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(5, 0), 1);
    }
}
