//! The deterministic sharded executor.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use prefender_obs::{ObsCounters, TraceBuf, Value};

use crate::artifact::SweepReport;
use crate::grid::SweepGrid;
use crate::scenario::{run_scenario_with_obs, Scenario, ScenarioResult};

/// Campaign-level execution options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Campaign seed every per-scenario seed is derived from.
    pub campaign_seed: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions { threads: 0, campaign_seed: 0xC0FFEE }
    }
}

fn effective_threads(requested: usize, items: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    t.clamp(1, items.max(1))
}

/// The dynamic-sharding chunk size: small enough that stragglers cannot
/// idle the pool (at least eight claims per worker on balanced grids),
/// large enough that workers keep runs of *consecutive* items — which is
/// what lets a config-major-ordered work-list reuse per-worker machines —
/// and the cursor is touched once per chunk instead of once per item.
fn chunk_size(items: usize, threads: usize) -> usize {
    (items / (threads * 8)).clamp(1, 64)
}

/// Applies `f` to every item on a worker pool and returns the results in
/// item order.
///
/// Sharding is dynamic — an atomic cursor hands out *chunks* of
/// consecutive items (see [`chunk_size`]) — but the output is **ordered
/// by item index**, so as long as `f` itself is a pure function of its
/// item the result vector is identical for every thread count — this is
/// the primitive both [`run_sweep`] and the bench ablations build on.
/// Workers share nothing mutable beyond the cursor and the result sink;
/// each worker buffers whole chunks locally (capacity reserved up front)
/// and touches the sink lock once, and the final assembly places every
/// chunk by its start index in O(n) — no comparison sort.
///
/// # Panics
///
/// Propagates the first worker panic after all workers stop.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = chunk_size(items.len(), threads);
    let cursor = AtomicUsize::new(0);
    let sink: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(threads * 2));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Each worker drains the cursor chunk by chunk, keeping
                // results local so the sink lock is touched once per
                // worker at the very end.
                let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    let mut out = Vec::with_capacity(end - start);
                    out.extend(items[start..end].iter().map(&f));
                    local.push((start, out));
                }
                sink.lock().expect("result sink").extend(local);
            });
        }
    });
    let chunks = sink.into_inner().expect("result sink");
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (start, out) in chunks {
        for (off, r) in out.into_iter().enumerate() {
            debug_assert!(slots[start + off].is_none(), "chunk overlap at {}", start + off);
            slots[start + off] = Some(r);
        }
    }
    slots.into_iter().map(|s| s.expect("every item produces exactly one result")).collect()
}

/// Applies `f` to every `(row, col)` cell of a 2-D grid on the worker
/// pool and returns the results as one `Vec` per row.
///
/// This owns the flatten-and-reslice arithmetic so callers sweeping a
/// (workload × column)-shaped space never hand-roll stride indexing.
/// Same determinism contract as [`parallel_map`].
pub fn parallel_map_2d<R, F>(rows: usize, cols: usize, threads: usize, f: F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let cells: Vec<(usize, usize)> =
        (0..rows).flat_map(|r| (0..cols).map(move |c| (r, c))).collect();
    let mut flat = parallel_map(&cells, threads, |&(r, c)| f(r, c));
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let rest = flat.split_off(cols.min(flat.len()));
        out.push(std::mem::replace(&mut flat, rest));
    }
    out
}

/// Enumerates `grid` and runs every scenario on the worker pool.
///
/// Scenarios are **dispatched in config-major order** — stably grouped by
/// their machine-shaping axes ([`Scenario::machine_key`]: cross-core
/// scope, defense point, basic prefetcher, hierarchy) — so a worker's
/// consecutive claims overwhelmingly share one machine configuration and
/// its thread-local `Runner` resets in place instead of rebuilding the
/// hierarchy on nearly every item. This is purely a *scheduling* choice:
/// every scenario's seed is derived from `opts.campaign_seed` + its grid
/// index (never from execution order), each result carries that index,
/// and the report is restored to scenario-index order before returning —
/// so the same grid and campaign seed produce **bit-identical artifacts
/// at any thread count**, pinned against plain index-order execution by
/// `tests/scheduling_props.rs`.
pub fn run_sweep(grid: &SweepGrid, opts: &SweepOptions) -> SweepReport {
    run_sweep_observed(grid, opts, None).0
}

/// One chunk claim of the observed executor: which worker took which run
/// of consecutive work-list slots, and when (milliseconds since the sweep
/// started). Wall-clock — scheduling-dependent, `timing`-section data.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkEvent {
    /// Claiming worker (0-based).
    pub worker: usize,
    /// First work-list slot of the chunk (config-major order, not
    /// scenario index).
    pub start: usize,
    /// Scenarios in the chunk.
    pub len: usize,
    /// When the chunk was claimed, ms since the sweep started. The gap
    /// from the previous `done_ms` on the same worker is its claim
    /// latency (result-buffer bookkeeping between chunks).
    pub claim_ms: f64,
    /// When the chunk's last scenario finished, ms since the sweep start.
    pub done_ms: f64,
}

/// Per-worker utilization over one observed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStats {
    /// Worker id (0-based).
    pub worker: usize,
    /// Chunks claimed.
    pub chunks: usize,
    /// Scenarios executed.
    pub scenarios: usize,
    /// Time spent inside scenario execution, ms.
    pub busy_ms: f64,
    /// `busy_ms` over the sweep's wall-clock span (0..=1).
    pub utilization: f64,
}

/// Scheduling- and wall-clock-dependent telemetry of one observed sweep:
/// everything here may change between runs and thread counts, which is
/// why obs reports keep it in the explicitly-marked `timing` section.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTelemetry {
    /// Worker threads actually used.
    pub threads: usize,
    /// Chunk size the cursor handed out.
    pub chunk: usize,
    /// Wall-clock duration of the whole sweep, ms.
    pub elapsed_ms: f64,
    /// Scenarios per wall-clock second.
    pub scenarios_per_sec: f64,
    /// Runner runs served by the in-place reset path, summed over workers.
    pub resets: u64,
    /// Machine constructions, summed over workers.
    pub rebuilds: u64,
    /// Per-worker utilization, sorted by worker id.
    pub workers: Vec<WorkerStats>,
    /// Every chunk claim, sorted by `(worker, start)`.
    pub events: Vec<ChunkEvent>,
}

/// The observability output of one sweep: the deterministic counter
/// merge and the wall-clock telemetry, kept strictly apart.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepObs {
    /// Per-scenario counters merged in scenario-index order. A pure
    /// function of the grid and campaign seed: identical at every thread
    /// count (pinned by `tests/obs_props.rs`).
    pub counters: ObsCounters,
    /// Per-scenario flight-recorder traces, `(scenario id, trace)` in
    /// scenario-index order. Empty buffers when tracing was disarmed.
    /// Like `counters`, a pure function of the grid and campaign seed:
    /// the JSONL rendering is byte-identical at every thread count.
    pub traces: Vec<(String, TraceBuf)>,
    /// Scheduling/wall-clock telemetry — everything non-deterministic.
    pub telemetry: SweepTelemetry,
}

impl SweepObs {
    /// The `obs.json` document: a `counters` section (deterministic) and
    /// an explicitly-marked `timing` section (wall-clock, varies run to
    /// run). Chunk events are left to the JSONL stream (`--obs-out`).
    pub fn to_json(&self) -> String {
        let t = &self.telemetry;
        let workers = t
            .workers
            .iter()
            .map(|w| {
                Value::Obj(vec![
                    ("worker".into(), Value::U64(w.worker as u64)),
                    ("chunks".into(), Value::U64(w.chunks as u64)),
                    ("scenarios".into(), Value::U64(w.scenarios as u64)),
                    ("busy_ms".into(), Value::F64(w.busy_ms)),
                    ("utilization".into(), Value::F64(w.utilization)),
                ])
            })
            .collect();
        let doc = Value::Obj(vec![
            ("schema_version".into(), Value::U64(1)),
            ("counters".into(), self.counters.to_value()),
            (
                "timing".into(),
                Value::Obj(vec![
                    ("threads".into(), Value::U64(t.threads as u64)),
                    ("chunk".into(), Value::U64(t.chunk as u64)),
                    ("elapsed_ms".into(), Value::F64(t.elapsed_ms)),
                    ("scenarios_per_sec".into(), Value::F64(t.scenarios_per_sec)),
                    ("runner_resets".into(), Value::U64(t.resets)),
                    ("runner_rebuilds".into(), Value::U64(t.rebuilds)),
                    ("workers".into(), Value::Arr(workers)),
                ]),
            ),
        ]);
        doc.to_json(0)
    }

    /// The flight-recorder stream as JSONL: per scenario (in scenario
    ///-index order) one `{"scenario": …, "events": …, "dropped": …}`
    /// header line followed by one object per trace event — the
    /// `--trace-out` format. Deterministic: byte-identical at every
    /// thread count for a fixed grid and campaign seed.
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for (id, buf) in &self.traces {
            let header = Value::Obj(vec![
                ("scenario".into(), Value::Str(id.clone())),
                ("events".into(), Value::U64(buf.events.len() as u64)),
                ("dropped".into(), Value::U64(buf.dropped)),
            ]);
            out.push_str(&header.to_json_inline());
            out.push('\n');
            for e in &buf.events {
                out.push_str(&e.to_value().to_json_inline());
                out.push('\n');
            }
        }
        out
    }

    /// Total captured trace events across all scenarios.
    pub fn trace_events(&self) -> u64 {
        self.traces.iter().map(|(_, b)| b.events.len() as u64).sum()
    }

    /// Total trace events dropped to full ring buffers.
    pub fn trace_dropped(&self) -> u64 {
        self.traces.iter().map(|(_, b)| b.dropped).sum()
    }

    /// The chunk-event stream as JSONL: one `{"worker": …}` object per
    /// line, the `--obs-out` format.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.telemetry.events {
            let v = Value::Obj(vec![
                ("worker".into(), Value::U64(e.worker as u64)),
                ("start".into(), Value::U64(e.start as u64)),
                ("len".into(), Value::U64(e.len as u64)),
                ("claim_ms".into(), Value::F64(e.claim_ms)),
                ("done_ms".into(), Value::F64(e.done_ms)),
            ]);
            out.push_str(&v.to_json_inline());
            out.push('\n');
        }
        out
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// [`run_sweep`] plus observability: returns the report together with the
/// merged per-scenario counters and the run's scheduling telemetry, and
/// calls `progress(done, total)` after every completed chunk (from
/// whichever worker finished it — the callback must be `Sync`).
///
/// `run_sweep` *is* this function without the extras, so the artifact is
/// byte-identical whether or not observability is consumed; the counter
/// merge runs in scenario-index order, making `counters` a pure function
/// of the grid and campaign seed at any thread count. At `threads <= 1`
/// everything executes inline on the calling thread (no pool), which is
/// what lets `repro profile` read back its thread-local span profile.
pub fn run_sweep_observed(
    grid: &SweepGrid,
    opts: &SweepOptions,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> (SweepReport, SweepObs) {
    let scenarios = grid.enumerate();
    let resample = grid.resample();
    let mut order: Vec<&Scenario> = scenarios.iter().collect();
    order.sort_by_key(|s| s.machine_key());
    let n = order.len();
    let threads = effective_threads(opts.threads, n);
    let chunk = chunk_size(n.max(1), threads);
    let order = &order[..];
    let resample = &resample;

    let started = Instant::now();
    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    type Ran = (ScenarioResult, ObsCounters, (u64, u64), TraceBuf);
    let sink: Mutex<Vec<(usize, Vec<Ran>)>> = Mutex::new(Vec::with_capacity(threads * 2));
    let tsink: Mutex<Vec<(WorkerStats, Vec<ChunkEvent>)>> = Mutex::new(Vec::with_capacity(threads));
    let worker = |wid: usize| {
        let mut local: Vec<(usize, Vec<Ran>)> = Vec::new();
        let mut events: Vec<ChunkEvent> = Vec::new();
        let mut busy = Duration::ZERO;
        loop {
            let claim_ms = ms(started.elapsed());
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            let t0 = Instant::now();
            let mut out = Vec::with_capacity(end - start);
            out.extend(
                order[start..end]
                    .iter()
                    .map(|s| run_scenario_with_obs(s, opts.campaign_seed, resample)),
            );
            busy += t0.elapsed();
            events.push(ChunkEvent {
                worker: wid,
                start,
                len: end - start,
                claim_ms,
                done_ms: ms(started.elapsed()),
            });
            local.push((start, out));
            let total_done = done.fetch_add(end - start, Ordering::Relaxed) + (end - start);
            if let Some(p) = progress {
                p(total_done, n);
            }
        }
        let stats = WorkerStats {
            worker: wid,
            chunks: events.len(),
            scenarios: events.iter().map(|e| e.len).sum(),
            busy_ms: ms(busy),
            utilization: 0.0, // filled in once the sweep's span is known
        };
        sink.lock().expect("result sink").extend(local);
        tsink.lock().expect("telemetry sink").push((stats, events));
    };
    if threads <= 1 {
        worker(0);
    } else {
        std::thread::scope(|scope| {
            let worker = &worker;
            for wid in 0..threads {
                scope.spawn(move || worker(wid));
            }
        });
    }
    let elapsed_ms = ms(started.elapsed());

    // Reassemble to scenario-index order, then fold the counters in that
    // order — the merge is commutative anyway, but a fixed order makes
    // the determinism contract self-evident.
    let chunks = sink.into_inner().expect("result sink");
    let mut slots: Vec<Option<Ran>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (start, out) in chunks {
        for (off, r) in out.into_iter().enumerate() {
            debug_assert!(slots[start + off].is_none(), "chunk overlap at {}", start + off);
            slots[start + off] = Some(r);
        }
    }
    let mut by_index: Vec<Option<Ran>> = Vec::with_capacity(n);
    by_index.resize_with(n, || None);
    for r in slots {
        let r = r.expect("every work-list slot produces exactly one result");
        let index = r.0.index;
        by_index[index] = Some(r);
    }
    let mut counters = ObsCounters::new();
    let (mut resets, mut rebuilds) = (0u64, 0u64);
    let mut results = Vec::with_capacity(n);
    let mut traces = Vec::with_capacity(n);
    for r in by_index {
        let (result, obs, (rs, rb), trace) =
            r.expect("every scenario index produces exactly one result");
        counters.merge(&obs);
        resets += rs;
        rebuilds += rb;
        traces.push((result.id.clone(), trace));
        results.push(result);
    }

    let mut worker_data = tsink.into_inner().expect("telemetry sink");
    worker_data.sort_by_key(|(w, _)| w.worker);
    let mut workers = Vec::with_capacity(worker_data.len());
    let mut events = Vec::new();
    for (mut w, ev) in worker_data {
        w.utilization = if elapsed_ms > 0.0 { (w.busy_ms / elapsed_ms).min(1.0) } else { 0.0 };
        workers.push(w);
        events.extend(ev);
    }
    let telemetry = SweepTelemetry {
        threads,
        chunk,
        elapsed_ms,
        scenarios_per_sec: if elapsed_ms > 0.0 { n as f64 / (elapsed_ms / 1e3) } else { 0.0 },
        resets,
        rebuilds,
        workers,
        events,
    };
    let report = SweepReport { campaign_seed: opts.campaign_seed, results };
    (report, SweepObs { counters, traces, telemetry })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 8, 64] {
            let out = parallel_map(&items, threads, |&x| x * x);
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_handles_more_threads_than_items() {
        let out = parallel_map(&[1u32, 2], 16, |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn parallel_map_2d_reshapes_by_row() {
        let grid = parallel_map_2d(3, 4, 2, |r, c| r * 10 + c);
        assert_eq!(grid.len(), 3);
        assert_eq!(grid[0], vec![0, 1, 2, 3]);
        assert_eq!(grid[2], vec![20, 21, 22, 23]);
        assert_eq!(parallel_map_2d(0, 4, 2, |r, c| r + c), Vec::<Vec<usize>>::new());
        assert_eq!(parallel_map_2d(2, 0, 2, |r, c| r + c), vec![vec![], vec![]]);
    }

    #[test]
    fn effective_thread_clamp() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(5, 0), 1);
    }
}
