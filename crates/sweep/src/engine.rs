//! The deterministic sharded executor.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::artifact::SweepReport;
use crate::grid::SweepGrid;
use crate::scenario::{run_scenario_with, Scenario, ScenarioResult};

/// Campaign-level execution options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Campaign seed every per-scenario seed is derived from.
    pub campaign_seed: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions { threads: 0, campaign_seed: 0xC0FFEE }
    }
}

fn effective_threads(requested: usize, items: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    t.clamp(1, items.max(1))
}

/// The dynamic-sharding chunk size: small enough that stragglers cannot
/// idle the pool (at least eight claims per worker on balanced grids),
/// large enough that workers keep runs of *consecutive* items — which is
/// what lets a config-major-ordered work-list reuse per-worker machines —
/// and the cursor is touched once per chunk instead of once per item.
fn chunk_size(items: usize, threads: usize) -> usize {
    (items / (threads * 8)).clamp(1, 64)
}

/// Applies `f` to every item on a worker pool and returns the results in
/// item order.
///
/// Sharding is dynamic — an atomic cursor hands out *chunks* of
/// consecutive items (see [`chunk_size`]) — but the output is **ordered
/// by item index**, so as long as `f` itself is a pure function of its
/// item the result vector is identical for every thread count — this is
/// the primitive both [`run_sweep`] and the bench ablations build on.
/// Workers share nothing mutable beyond the cursor and the result sink;
/// each worker buffers whole chunks locally (capacity reserved up front)
/// and touches the sink lock once, and the final assembly places every
/// chunk by its start index in O(n) — no comparison sort.
///
/// # Panics
///
/// Propagates the first worker panic after all workers stop.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = chunk_size(items.len(), threads);
    let cursor = AtomicUsize::new(0);
    let sink: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(threads * 2));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Each worker drains the cursor chunk by chunk, keeping
                // results local so the sink lock is touched once per
                // worker at the very end.
                let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    let mut out = Vec::with_capacity(end - start);
                    out.extend(items[start..end].iter().map(&f));
                    local.push((start, out));
                }
                sink.lock().expect("result sink").extend(local);
            });
        }
    });
    let chunks = sink.into_inner().expect("result sink");
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (start, out) in chunks {
        for (off, r) in out.into_iter().enumerate() {
            debug_assert!(slots[start + off].is_none(), "chunk overlap at {}", start + off);
            slots[start + off] = Some(r);
        }
    }
    slots.into_iter().map(|s| s.expect("every item produces exactly one result")).collect()
}

/// Applies `f` to every `(row, col)` cell of a 2-D grid on the worker
/// pool and returns the results as one `Vec` per row.
///
/// This owns the flatten-and-reslice arithmetic so callers sweeping a
/// (workload × column)-shaped space never hand-roll stride indexing.
/// Same determinism contract as [`parallel_map`].
pub fn parallel_map_2d<R, F>(rows: usize, cols: usize, threads: usize, f: F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let cells: Vec<(usize, usize)> =
        (0..rows).flat_map(|r| (0..cols).map(move |c| (r, c))).collect();
    let mut flat = parallel_map(&cells, threads, |&(r, c)| f(r, c));
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let rest = flat.split_off(cols.min(flat.len()));
        out.push(std::mem::replace(&mut flat, rest));
    }
    out
}

/// Enumerates `grid` and runs every scenario on the worker pool.
///
/// Scenarios are **dispatched in config-major order** — stably grouped by
/// their machine-shaping axes ([`Scenario::machine_key`]: cross-core
/// scope, defense point, basic prefetcher, hierarchy) — so a worker's
/// consecutive claims overwhelmingly share one machine configuration and
/// its thread-local `Runner` resets in place instead of rebuilding the
/// hierarchy on nearly every item. This is purely a *scheduling* choice:
/// every scenario's seed is derived from `opts.campaign_seed` + its grid
/// index (never from execution order), each result carries that index,
/// and the report is restored to scenario-index order before returning —
/// so the same grid and campaign seed produce **bit-identical artifacts
/// at any thread count**, pinned against plain index-order execution by
/// `tests/scheduling_props.rs`.
pub fn run_sweep(grid: &SweepGrid, opts: &SweepOptions) -> SweepReport {
    let scenarios = grid.enumerate();
    let resample = grid.resample();
    let mut order: Vec<&Scenario> = scenarios.iter().collect();
    order.sort_by_key(|s| s.machine_key());
    let grouped: Vec<ScenarioResult> =
        parallel_map(&order, opts.threads, |s| run_scenario_with(s, opts.campaign_seed, &resample));
    let mut slots: Vec<Option<ScenarioResult>> = Vec::with_capacity(scenarios.len());
    slots.resize_with(scenarios.len(), || None);
    for r in grouped {
        let index = r.index;
        slots[index] = Some(r);
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("every scenario index produces exactly one result"))
        .collect();
    SweepReport { campaign_seed: opts.campaign_seed, results }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 8, 64] {
            let out = parallel_map(&items, threads, |&x| x * x);
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_handles_more_threads_than_items() {
        let out = parallel_map(&[1u32, 2], 16, |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn parallel_map_2d_reshapes_by_row() {
        let grid = parallel_map_2d(3, 4, 2, |r, c| r * 10 + c);
        assert_eq!(grid.len(), 3);
        assert_eq!(grid[0], vec![0, 1, 2, 3]);
        assert_eq!(grid[2], vec![20, 21, 22, 23]);
        assert_eq!(parallel_map_2d(0, 4, 2, |r, c| r + c), Vec::<Vec<usize>>::new());
        assert_eq!(parallel_map_2d(2, 0, 2, |r, c| r + c), vec![vec![], vec![]]);
    }

    #[test]
    fn effective_thread_clamp() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(5, 0), 1);
    }
}
