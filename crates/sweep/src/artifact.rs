//! Machine-readable sweep artifacts: `sweep.json` and `sweep.csv`.
//!
//! Both writers are hand-rolled (the build environment vendors no serde)
//! and emit fields in a fixed order with deterministic number formatting,
//! so byte-identity across runs reduces to value-identity of the results.

use std::fmt::Write as _;

use prefender_stats::Table;

use crate::scenario::ScenarioResult;

/// Bumped whenever the JSON/CSV field set changes. v3 added the
/// statistical-rigor columns: `mi_corrected`, `mi_p_value`,
/// `mi_null_q95`, `mi_ci_lo`, `mi_ci_hi`.
pub const REPORT_SCHEMA_VERSION: u32 = 3;

/// An executed campaign: the seed it ran under plus every scenario's
/// result, in scenario-index order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The campaign seed all per-scenario seeds were derived from.
    pub campaign_seed: u64,
    /// Per-scenario results, ordered by scenario index.
    pub results: Vec<ScenarioResult>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt_bool(v: Option<bool>) -> String {
    match v {
        Some(true) => "true".into(),
        Some(false) => "false".into(),
        None => "null".into(),
    }
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), json_f64)
}

fn hist_json(hist: &[(u64, u64)]) -> String {
    let entries: Vec<String> = hist.iter().map(|&(lat, n)| format!("[{lat},{n}]")).collect();
    format!("[{}]", entries.join(","))
}

fn hist_csv(hist: &[(u64, u64)]) -> String {
    hist.iter().map(|&(lat, n)| format!("{lat}:{n}")).collect::<Vec<_>>().join("|")
}

impl SweepReport {
    /// The result with the given scenario id.
    pub fn by_id(&self, id: &str) -> Option<&ScenarioResult> {
        self.results.iter().find(|r| r.id == id)
    }

    /// Results whose scenario id starts with `prefix` (e.g. `"atk:fr/"`).
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a ScenarioResult> {
        self.results.iter().filter(move |r| r.id.starts_with(prefix))
    }

    /// Serializes the whole campaign as JSON.
    ///
    /// Fields are emitted in a fixed order and floats through Rust's
    /// shortest-round-trip formatter, so equal campaigns serialize to
    /// identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.results.len() * 512);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {REPORT_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"campaign_seed\": {},", self.campaign_seed);
        let _ = writeln!(out, "  \"n_scenarios\": {},", self.results.len());
        out.push_str("  \"scenarios\": [\n");
        for (k, r) in self.results.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"index\": {}, \"id\": \"{}\", \"seed\": {}, \"leaked\": {}, \
                 \"anomalies\": {}, \"truncated\": {}, \"cycles\": {}, \"instructions\": {}, \
                 \"ipc\": {}, \"demand_accesses\": {}, \"demand_misses\": {}, \
                 \"demand_miss_latency\": {}, \"prefetch_issued\": {}, \"prefetch_fills\": {}, \
                 \"prefetch_useful\": {}, \"prefetch_accuracy\": {}, \"st_prefetches\": {}, \
                 \"at_prefetches\": {}, \"rp_prefetches\": {}, \"mi_bits\": {}, \
                 \"mi_corrected\": {}, \"capacity_bits\": {}, \"ml_accuracy\": {}, \
                 \"guessing_entropy\": {}, \"secrets\": {}, \"trials\": {}, \"mi_p_value\": {}, \
                 \"mi_null_q95\": {}, \"mi_ci_lo\": {}, \"mi_ci_hi\": {}, \"latency_hist\": {}}}",
                r.index,
                json_escape(&r.id),
                r.seed,
                json_opt_bool(r.leaked),
                json_opt_u64(r.anomalies),
                r.truncated,
                r.cycles,
                r.instructions,
                json_f64(r.ipc),
                r.demand_accesses,
                r.demand_misses,
                r.demand_miss_latency,
                r.prefetch_issued,
                r.prefetch_fills,
                r.prefetch_useful,
                json_opt_f64(r.prefetch_accuracy),
                r.st_prefetches,
                r.at_prefetches,
                r.rp_prefetches,
                json_opt_f64(r.mi_bits),
                json_opt_f64(r.mi_corrected),
                json_opt_f64(r.capacity_bits),
                json_opt_f64(r.ml_accuracy),
                json_opt_f64(r.guessing_entropy),
                json_opt_u64(r.secrets),
                json_opt_u64(r.trials),
                json_opt_f64(r.mi_p_value),
                json_opt_f64(r.mi_null_q95),
                json_opt_f64(r.mi_ci_lo),
                json_opt_f64(r.mi_ci_hi),
                hist_json(&r.latency_hist),
            );
            out.push_str(if k + 1 < self.results.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes the campaign as CSV (histogram packed as
    /// `latency:count|latency:count`).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(128 + self.results.len() * 256);
        out.push_str(
            "index,id,seed,leaked,anomalies,truncated,cycles,instructions,ipc,\
             demand_accesses,demand_misses,demand_miss_latency,prefetch_issued,\
             prefetch_fills,prefetch_useful,prefetch_accuracy,st_prefetches,\
             at_prefetches,rp_prefetches,mi_bits,mi_corrected,capacity_bits,ml_accuracy,\
             guessing_entropy,secrets,trials,mi_p_value,mi_null_q95,mi_ci_lo,mi_ci_hi,\
             latency_hist\n",
        );
        for r in &self.results {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                r.index,
                r.id,
                r.seed,
                r.leaked.map_or(String::new(), |b| b.to_string()),
                r.anomalies.map_or(String::new(), |a| a.to_string()),
                r.truncated,
                r.cycles,
                r.instructions,
                json_f64(r.ipc),
                r.demand_accesses,
                r.demand_misses,
                r.demand_miss_latency,
                r.prefetch_issued,
                r.prefetch_fills,
                r.prefetch_useful,
                r.prefetch_accuracy.map_or(String::new(), json_f64),
                r.st_prefetches,
                r.at_prefetches,
                r.rp_prefetches,
                r.mi_bits.map_or(String::new(), json_f64),
                r.mi_corrected.map_or(String::new(), json_f64),
                r.capacity_bits.map_or(String::new(), json_f64),
                r.ml_accuracy.map_or(String::new(), json_f64),
                r.guessing_entropy.map_or(String::new(), json_f64),
                r.secrets.map_or(String::new(), |s| s.to_string()),
                r.trials.map_or(String::new(), |t| t.to_string()),
                r.mi_p_value.map_or(String::new(), json_f64),
                r.mi_null_q95.map_or(String::new(), json_f64),
                r.mi_ci_lo.map_or(String::new(), json_f64),
                r.mi_ci_hi.map_or(String::new(), json_f64),
                hist_csv(&r.latency_hist),
            );
        }
        out
    }

    /// `true` when the campaign contains leakage scenarios (and so writes
    /// the dedicated leakage artifacts).
    pub fn has_leakage(&self) -> bool {
        self.results.iter().any(|r| r.is_leakage())
    }

    /// Serializes the leakage scenarios as `leakage.json` — the channel
    /// metrics of every campaign, in scenario-index order, with the same
    /// byte-identity guarantees as [`SweepReport::to_json`].
    pub fn leakage_json(&self) -> String {
        let rows: Vec<&ScenarioResult> = self.results.iter().filter(|r| r.is_leakage()).collect();
        let mut out = String::with_capacity(256 + rows.len() * 256);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {REPORT_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"campaign_seed\": {},", self.campaign_seed);
        let _ = writeln!(out, "  \"n_campaigns\": {},", rows.len());
        let sims: u64 = rows.iter().map(|r| r.secrets.unwrap_or(0) * r.trials.unwrap_or(0)).sum();
        let _ = writeln!(out, "  \"n_sims\": {sims},");
        out.push_str("  \"campaigns\": [\n");
        for (k, r) in rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"index\": {}, \"id\": \"{}\", \"seed\": {}, \"secrets\": {}, \
                 \"trials\": {}, \"mi_bits\": {}, \"mi_corrected\": {}, \"capacity_bits\": {}, \
                 \"ml_accuracy\": {}, \"guessing_entropy\": {}, \"mi_p_value\": {}, \
                 \"mi_null_q95\": {}, \"mi_ci_lo\": {}, \"mi_ci_hi\": {}, \"cycles\": {}}}",
                r.index,
                json_escape(&r.id),
                r.seed,
                json_opt_u64(r.secrets),
                json_opt_u64(r.trials),
                json_opt_f64(r.mi_bits),
                json_opt_f64(r.mi_corrected),
                json_opt_f64(r.capacity_bits),
                json_opt_f64(r.ml_accuracy),
                json_opt_f64(r.guessing_entropy),
                json_opt_f64(r.mi_p_value),
                json_opt_f64(r.mi_null_q95),
                json_opt_f64(r.mi_ci_lo),
                json_opt_f64(r.mi_ci_hi),
                r.cycles,
            );
            out.push_str(if k + 1 < rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes the leakage scenarios as `leakage.csv`.
    pub fn leakage_csv(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str(
            "index,id,seed,secrets,trials,mi_bits,mi_corrected,capacity_bits,ml_accuracy,\
             guessing_entropy,mi_p_value,mi_null_q95,mi_ci_lo,mi_ci_hi,cycles\n",
        );
        for r in self.results.iter().filter(|r| r.is_leakage()) {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                r.index,
                r.id,
                r.seed,
                r.secrets.unwrap_or(0),
                r.trials.unwrap_or(0),
                r.mi_bits.map_or(String::new(), json_f64),
                r.mi_corrected.map_or(String::new(), json_f64),
                r.capacity_bits.map_or(String::new(), json_f64),
                r.ml_accuracy.map_or(String::new(), json_f64),
                r.guessing_entropy.map_or(String::new(), json_f64),
                r.mi_p_value.map_or(String::new(), json_f64),
                r.mi_null_q95.map_or(String::new(), json_f64),
                r.mi_ci_lo.map_or(String::new(), json_f64),
                r.mi_ci_hi.map_or(String::new(), json_f64),
                r.cycles,
            );
        }
        out
    }

    /// Renders a human summary table via `prefender-stats`.
    pub fn render_table(&self) -> String {
        let mut t = Table::new(vec![
            "Scenario".into(),
            "Verdict".into(),
            "Anom".into(),
            "MI(b)".into(),
            "Cycles".into(),
            "IPC".into(),
            "Issued".into(),
            "Accuracy".into(),
        ]);
        for r in &self.results {
            t.row(vec![
                r.id.clone(),
                match r.leaked {
                    Some(true) => "LEAKED".into(),
                    Some(false) => "defended".into(),
                    None if r.is_leakage() => "channel".into(),
                    None => {
                        if r.truncated {
                            "truncated".into()
                        } else {
                            "ok".into()
                        }
                    }
                },
                r.anomalies.map_or(String::new(), |a| a.to_string()),
                // A starred MI rejects the zero-leakage null at p < 0.01.
                r.mi_bits.map_or_else(
                    || "-".into(),
                    |m| match r.mi_p_value {
                        Some(p) if p < 0.01 => format!("{m:.3}*"),
                        _ => format!("{m:.3}"),
                    },
                ),
                r.cycles.to_string(),
                format!("{:.3}", r.ipc),
                r.prefetch_issued.to_string(),
                r.prefetch_accuracy.map_or_else(|| "-".into(), |a| format!("{:.2}", a)),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioResult;

    fn result(index: usize, id: &str) -> ScenarioResult {
        ScenarioResult {
            index,
            id: id.into(),
            seed: 7,
            leaked: Some(index.is_multiple_of(2)),
            anomalies: Some(index as u64),
            latency_hist: vec![(4, 60), (200, 1)],
            truncated: false,
            cycles: 1000 + index as u64,
            instructions: 500,
            ipc: 0.5,
            demand_accesses: 61,
            demand_misses: 1,
            demand_miss_latency: 200,
            prefetch_issued: 3,
            prefetch_fills: 3,
            prefetch_useful: 2,
            prefetch_accuracy: Some(2.0 / 3.0),
            st_prefetches: 1,
            at_prefetches: 2,
            rp_prefetches: 0,
            mi_bits: None,
            mi_corrected: None,
            capacity_bits: None,
            ml_accuracy: None,
            guessing_entropy: None,
            secrets: None,
            trials: None,
            mi_p_value: None,
            mi_null_q95: None,
            mi_ci_lo: None,
            mi_ci_hi: None,
        }
    }

    fn leakage_result(index: usize, id: &str) -> ScenarioResult {
        ScenarioResult {
            leaked: None,
            anomalies: None,
            mi_bits: Some(2.5),
            mi_corrected: Some(2.25),
            capacity_bits: Some(2.75),
            ml_accuracy: Some(0.875),
            guessing_entropy: Some(1.25),
            secrets: Some(8),
            trials: Some(4),
            mi_p_value: Some(0.02),
            mi_null_q95: Some(0.5),
            mi_ci_lo: Some(2.0),
            mi_ci_hi: Some(2.5),
            ..result(index, id)
        }
    }

    fn report() -> SweepReport {
        SweepReport {
            campaign_seed: 42,
            results: vec![
                result(0, "atk:fr/base/none/paper/s0"),
                result(1, "wl:429.mcf/full32/none/paper/s0"),
                leakage_result(2, "leak:fr:8x4/base/none/paper/s0"),
            ],
        }
    }

    #[test]
    fn json_is_stable_and_contains_fields() {
        let r = report();
        assert_eq!(r.to_json(), r.clone().to_json());
        let j = r.to_json();
        assert!(j.contains("\"schema_version\": 3"));
        assert!(j.contains("\"campaign_seed\": 42"));
        assert!(j.contains("\"latency_hist\": [[4,60],[200,1]]"));
        assert!(j.contains("\"ipc\": 0.5"));
        assert!(j.contains("\"leaked\": true") && j.contains("\"leaked\": false"));
        assert!(j.contains("\"mi_bits\": 2.5") && j.contains("\"mi_bits\": null"));
        assert!(j.contains("\"capacity_bits\": 2.75") && j.contains("\"secrets\": 8"));
        assert!(j.contains("\"mi_corrected\": 2.25") && j.contains("\"mi_corrected\": null"));
        assert!(j.contains("\"mi_p_value\": 0.02") && j.contains("\"mi_p_value\": null"));
        assert!(j.contains("\"mi_null_q95\": 0.5"));
        assert!(j.contains("\"mi_ci_lo\": 2") && j.contains("\"mi_ci_hi\": 2.5"));
    }

    #[test]
    fn csv_has_header_and_one_row_per_scenario() {
        let c = report().to_csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("index,id,seed,leaked"));
        assert!(
            lines[0].contains("mi_bits,mi_corrected,capacity_bits,ml_accuracy,guessing_entropy")
        );
        assert!(lines[0].contains("trials,mi_p_value,mi_null_q95,mi_ci_lo,mi_ci_hi,latency_hist"));
        assert!(lines[1].contains("4:60|200:1"));
        assert!(lines[3].contains("2.5,2.25,2.75,0.875,1.25,8,4,0.02,0.5,2,2.5"));
    }

    #[test]
    fn leakage_artifacts_select_leakage_rows_only() {
        let r = report();
        assert!(r.has_leakage());
        let j = r.leakage_json();
        assert!(j.contains("\"n_campaigns\": 1"));
        assert!(j.contains("\"n_sims\": 32"));
        assert!(j.contains("leak:fr:8x4/base/none/paper/s0"));
        assert!(!j.contains("atk:fr"), "attack rows must not appear");
        assert_eq!(j, r.clone().leakage_json(), "stable bytes");
        let c = r.leakage_csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("index,id,seed,secrets,trials,mi_bits,mi_corrected"));
        assert!(lines[0].contains("guessing_entropy,mi_p_value,mi_null_q95,mi_ci_lo,mi_ci_hi"));
        assert!(lines[1].starts_with("2,leak:fr:8x4/base/none/paper/s0,7,8,4,2.5,2.25,2.75"));
        assert!(lines[1].contains("0.02,0.5,2,2.5"));
        let none = SweepReport { campaign_seed: 1, results: vec![result(0, "atk:x")] };
        assert!(!none.has_leakage());
        assert!(none.leakage_csv().lines().count() == 1, "header only");
    }

    #[test]
    fn lookup_helpers() {
        let r = report();
        assert!(r.by_id("atk:fr/base/none/paper/s0").is_some());
        assert!(r.by_id("nope").is_none());
        assert_eq!(r.with_prefix("wl:").count(), 1);
    }

    #[test]
    fn table_renders_verdicts() {
        let t = report().render_table();
        assert!(t.contains("LEAKED") && t.contains("defended"));
        assert!(t.contains("channel") && t.contains("2.500"));
    }

    #[test]
    fn escaping_and_nonfinite_floats() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.25), "1.25");
    }
}
