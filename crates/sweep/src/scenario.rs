//! Scenarios: one grid point, its execution, and its result record.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

use prefender_attacks::{machine_obs, AttackOutcome, AttackSpec, Basic, RunMetrics, Runner};
use prefender_cpu::Machine;
use prefender_leakage::{LeakageCampaign, ResampleOptions};
use prefender_obs::{take_thread_trace, ObsCounters, TraceBuf};
use prefender_stats::derive_seed;
use prefender_workloads::Workload;

use crate::grid::{AttackCase, DefensePoint, Hierarchy};

/// What a scenario runs: an attack experiment, a performance workload, or
/// a leakage campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A security scenario (leak verdict + probe-latency histogram).
    Attack(AttackCase),
    /// A performance scenario over a named catalog workload.
    Workload(String),
    /// A leakage campaign: the attack case run for every secret × trial,
    /// its channel estimated in bits (`prefender-leakage`).
    Leakage {
        /// The attack family under measurement.
        case: AttackCase,
        /// Secrets swept (evenly spaced across the probe window).
        n_secrets: u32,
        /// Trials per secret, each with its own derived seed.
        trials: u32,
        /// Attacker timer-noise amplitude, in cycles, applied per trial
        /// (see `AttackSpec::latency_jitter`); 0 = clean timer.
        jitter: u64,
    },
}

impl Payload {
    /// Stable id fragment.
    pub fn tag(&self) -> String {
        match self {
            Payload::Attack(a) => format!("atk:{}", a.tag()),
            Payload::Workload(w) => format!("wl:{w}"),
            Payload::Leakage { case, n_secrets, trials, jitter } => {
                let jitter = if *jitter > 0 { format!("j{jitter}") } else { String::new() };
                format!("leak:{}:{}x{}{}", case.tag(), n_secrets, trials, jitter)
            }
        }
    }

    /// Simulations this payload executes when run (leakage campaigns fan
    /// out into secrets × trials machine runs).
    pub fn sims(&self) -> u64 {
        match self {
            Payload::Attack(_) | Payload::Workload(_) => 1,
            Payload::Leakage { n_secrets, trials, .. } => {
                u64::from((*n_secrets).max(1)) * u64::from((*trials).max(1))
            }
        }
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Attack(a) => a.fmt(f),
            Payload::Workload(w) => w.fmt(f),
            Payload::Leakage { case, n_secrets, trials, jitter } => {
                write!(f, "{case} leakage ({n_secrets} secrets x {trials} trials")?;
                if *jitter > 0 {
                    write!(f, ", ±{jitter} jitter")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// One fully-resolved grid point of the work-list.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Position in the campaign work-list (stable for a given grid).
    pub index: usize,
    /// What to run.
    pub payload: Payload,
    /// Defense configuration.
    pub defense: DefensePoint,
    /// Basic prefetcher.
    pub basic: Basic,
    /// Cache hierarchy variant.
    pub hierarchy: Hierarchy,
    /// Seed repetition slot within the grid point (0-based).
    pub seed_slot: u32,
}

impl Scenario {
    /// `true` when the scenario's payload splits attacker and victim
    /// across two cores (workload payloads are always single-core).
    pub fn cross_core(&self) -> bool {
        match &self.payload {
            Payload::Attack(case) | Payload::Leakage { case, .. } => case.cross_core,
            Payload::Workload(_) => false,
        }
    }

    /// The machine-shaping axes of this scenario: two scenarios with
    /// equal keys run on identically constructed machines (same core
    /// count, defense stack, basic prefetcher and hierarchy), so a
    /// reusable `prefender_attacks::Runner` serves both through an
    /// in-place reset. `run_sweep` stably sorts its work-list by this key
    /// (config-major dispatch) before sharding; the key mirrors the
    /// runner's own `prefender_attacks::MachineKey`.
    pub fn machine_key(&self) -> (bool, DefensePoint, Basic, Hierarchy) {
        (self.cross_core(), self.defense, self.basic, self.hierarchy)
    }

    /// The stable scenario id, unique within a grid.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}/{}/s{}",
            self.payload.tag(),
            self.defense.tag(),
            basic_tag(self.basic),
            self.hierarchy.tag(),
            self.seed_slot
        )
    }

    /// The per-scenario probe seed: the campaign seed with the scenario
    /// index and seed slot folded in through a chained SplitMix64
    /// finalize per axis (`prefender_stats::derive_seed`). Depends only
    /// on grid shape — never on thread count or execution order.
    ///
    /// The earlier scheme XORed both axes' multiplied contributions into
    /// one accumulator before a single finalize, so distinct (index,
    /// slot) pairs could cancel to the same pre-mix value and collide;
    /// chaining the finalizer (a bijection) per axis removes that
    /// structural cancellation.
    pub fn derived_seed(&self, campaign_seed: u64) -> u64 {
        derive_seed(campaign_seed, &[self.index as u64, self.seed_slot as u64])
    }
}

/// The stable scenario-id fragment of a basic prefetcher.
pub fn basic_tag(b: Basic) -> &'static str {
    match b {
        Basic::None => "none",
        Basic::Tagged => "tagged",
        Basic::Stride => "stride",
    }
}

/// Parses a tag produced by [`basic_tag`].
pub fn basic_from_tag(tag: &str) -> Option<Basic> {
    Basic::ALL.into_iter().find(|&b| basic_tag(b) == tag)
}

/// The measurements of one executed scenario.
///
/// Attack scenarios fill the security fields (`leaked`, `anomalies`,
/// `latency_hist`); performance scenarios leave them `None`/empty;
/// leakage scenarios fill the channel fields (`mi_bits` …
/// `guessing_entropy`, `secrets`, `trials`) with machine-level fields
/// summed over the whole campaign. All fill the machine-level fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario index in the campaign work-list.
    pub index: usize,
    /// Stable scenario id.
    pub id: String,
    /// The probe seed the scenario actually ran with.
    pub seed: u64,
    /// Leak verdict (attack scenarios only).
    pub leaked: Option<bool>,
    /// Number of anomalous probe indices (attack scenarios only).
    pub anomalies: Option<u64>,
    /// Exact probe-latency histogram: `latency → count` (attack only).
    pub latency_hist: Vec<(u64, u64)>,
    /// `true` when the run hit the instruction cap before completing.
    pub truncated: bool,
    /// Wall-clock cycles.
    pub cycles: u64,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// L1D demand accesses, summed over cores.
    pub demand_accesses: u64,
    /// L1D demand misses, summed over cores.
    pub demand_misses: u64,
    /// Total L1D demand-miss latency in cycles (the Figure 10 quantity).
    pub demand_miss_latency: u64,
    /// Prefetches issued by every attached prefetcher.
    pub prefetch_issued: u64,
    /// Prefetched lines actually installed in the L1D.
    pub prefetch_fills: u64,
    /// Prefetched lines that served a later demand access.
    pub prefetch_useful: u64,
    /// Useful/installed prefetch ratio, when any fills happened.
    pub prefetch_accuracy: Option<f64>,
    /// Scale Tracker prefetches (PREFENDER configurations).
    pub st_prefetches: u64,
    /// Access Tracker prefetches.
    pub at_prefetches: u64,
    /// Record-Protector-guided prefetches.
    pub rp_prefetches: u64,
    /// Mutual information `I(secret; observation)` in bits (leakage only).
    pub mi_bits: Option<f64>,
    /// Miller–Madow bias-corrected MI in bits (leakage only).
    pub mi_corrected: Option<f64>,
    /// Blahut–Arimoto channel capacity in bits (leakage only).
    pub capacity_bits: Option<f64>,
    /// Max-likelihood attacker accuracy (leakage only).
    pub ml_accuracy: Option<f64>,
    /// Expected posterior rank of the true secret (leakage only).
    pub guessing_entropy: Option<f64>,
    /// Secrets swept (leakage only).
    pub secrets: Option<u64>,
    /// Trials per secret (leakage only).
    pub trials: Option<u64>,
    /// Permutation p-value of the MI against its label-shuffled null
    /// (leakage campaigns run with `--permutations`, else `None`).
    pub mi_p_value: Option<f64>,
    /// 95th percentile of the null MI distribution — the estimator's
    /// noise floor (leakage with `--permutations` only).
    pub mi_null_q95: Option<f64>,
    /// Bootstrap CI lower bound on the MI (leakage with `--bootstrap`).
    pub mi_ci_lo: Option<f64>,
    /// Bootstrap CI upper bound on the MI (leakage with `--bootstrap`).
    pub mi_ci_hi: Option<f64>,
}

impl ScenarioResult {
    /// `true` when this row is a leakage-campaign result.
    pub fn is_leakage(&self) -> bool {
        self.mi_bits.is_some()
    }
}

/// Runs one scenario to completion without any resampling analysis.
/// Equivalent to [`run_scenario_with`] at default (disabled)
/// [`ResampleOptions`].
///
/// # Panics
///
/// Panics if a workload payload names a workload missing from the
/// catalog, or if an attack run fails outright (invalid hierarchy); grid
/// builders validate both up front.
pub fn run_scenario(s: &Scenario, campaign_seed: u64) -> ScenarioResult {
    run_scenario_with(s, campaign_seed, &ResampleOptions::default())
}

/// Runs one scenario to completion. Pure: builds a private machine,
/// runs, measures — safe to call from any worker thread. Leakage
/// scenarios run `resample`'s permutation-null and bootstrap analyses
/// with seeds derived from the scenario seed, so the statistical columns
/// are as thread-count-independent as the raw metrics.
///
/// # Panics
///
/// Panics if a workload payload names a workload missing from the
/// catalog, or if an attack run fails outright (invalid hierarchy); grid
/// builders validate both up front.
pub fn run_scenario_with(
    s: &Scenario,
    campaign_seed: u64,
    resample: &ResampleOptions,
) -> ScenarioResult {
    let seed = s.derived_seed(campaign_seed);
    match &s.payload {
        Payload::Attack(case) => run_attack_scenario(s, case, seed),
        Payload::Workload(name) => run_workload_scenario(s, name, seed),
        Payload::Leakage { case, n_secrets, trials, jitter } => {
            run_leakage_scenario(s, case, *n_secrets, *trials, *jitter, seed, resample)
        }
    }
}

/// Like [`run_scenario_with`], but also harvesting the scenario's
/// observability counters, the `(resets, rebuilds)` runner-reuse
/// tallies, and — when the flight recorder is armed — the scenario's
/// trace. The counters and trace are pure functions of the scenario
/// (runner reuse is bit-exact), so per-scenario blocks — and any
/// order-independent merge of them — are identical at every thread
/// count. The reuse tallies are *not*: they depend on which scenarios a
/// worker ran before, so obs reports keep them in the
/// scheduling-dependent `timing` section.
///
/// # Panics
///
/// See [`run_scenario_with`].
pub fn run_scenario_with_obs(
    s: &Scenario,
    campaign_seed: u64,
    resample: &ResampleOptions,
) -> (ScenarioResult, ObsCounters, (u64, u64), TraceBuf) {
    if let Payload::Workload(name) = &s.payload {
        let seed = s.derived_seed(campaign_seed);
        // Workload payloads run on a private machine, not the cached
        // runner, so their trace lands directly in the thread buffer:
        // discard anything stale, run, then drain.
        let _ = take_thread_trace();
        let (result, obs) = run_workload_scenario_obs(s, name, seed);
        return (result, obs, (0, 1), take_thread_trace());
    }
    // Drop whatever this thread's cached runner accumulated for earlier
    // callers that never drained (plain `run_scenario` runs), so the
    // post-run drain below is exactly this scenario's contribution.
    drain_thread_runner();
    let _ = take_thread_trace();
    let result = run_scenario_with(s, campaign_seed, resample);
    let (obs, reuse, mut trace) = drain_thread_runner();
    // Events emitted outside the runner's per-run drains (machine
    // construction, spec setup) belong to this scenario too.
    trace.merge(take_thread_trace());
    (result, obs, reuse, trace)
}

/// Drains the calling thread's cached runner: its accumulated counters,
/// `(resets, rebuilds)` tallies, and trace buffer, all zeroed. All-empty
/// when the thread has no runner yet.
fn drain_thread_runner() -> (ObsCounters, (u64, u64), TraceBuf) {
    ATTACK_RUNNER.with(|cell| match cell.borrow_mut().as_mut() {
        Some(r) => (r.take_obs(), r.take_reuse_counts(), r.take_trace()),
        None => (ObsCounters::new(), (0, 0), TraceBuf::default()),
    })
}

/// The base attack spec of a scenario (seed applied by the caller).
fn attack_spec(s: &Scenario, case: &AttackCase, seed: u64) -> AttackSpec {
    let n_cores = if case.cross_core { 2 } else { 1 };
    let spec = AttackSpec::new(case.kind, s.defense.config)
        .with_noise(case.noise)
        .cross_core(case.cross_core)
        .with_seed(seed)
        .with_basic(s.basic)
        .with_hierarchy(s.hierarchy.config(n_cores));
    AttackSpec { buffers: s.defense.buffers, ..spec }
}

fn run_leakage_scenario(
    s: &Scenario,
    case: &AttackCase,
    n_secrets: u32,
    trials: u32,
    jitter: u64,
    seed: u64,
    resample: &ResampleOptions,
) -> ScenarioResult {
    let base = attack_spec(s, case, seed).with_latency_jitter(jitter);
    let campaign = LeakageCampaign::new(base, n_secrets.max(1) as usize, trials.max(1));
    // The resampling seed streams inside `run_with_runner` derive from
    // the scenario seed, so the null test and CIs — like every other
    // column — depend only on the campaign seed and grid shape, never
    // the thread count. The campaign batches its secrets × trials over
    // the calling worker's cached runner: under config-major dispatch,
    // consecutive leakage cells share one machine via in-place resets.
    let r = with_thread_runner(&campaign.base, |runner| {
        campaign.run_with_runner(seed, resample, runner)
    })
    .unwrap_or_else(|e| panic!("scenario {}: {e}", s.id()));
    ScenarioResult {
        index: s.index,
        id: s.id(),
        seed,
        leaked: None,
        anomalies: None,
        latency_hist: r.latency_hist.counts().collect(),
        truncated: false,
        cycles: r.metrics.cycles,
        instructions: r.metrics.instructions,
        ipc: r.metrics.ipc(),
        demand_accesses: r.metrics.l1d.demand_accesses,
        demand_misses: r.metrics.l1d.demand_misses,
        demand_miss_latency: r.metrics.l1d.demand_miss_latency,
        prefetch_issued: r.metrics.prefetch_issued,
        prefetch_fills: r.metrics.l1d.prefetch_fills,
        prefetch_useful: r.metrics.l1d.prefetch_useful + r.metrics.l1d.prefetch_late,
        prefetch_accuracy: r.metrics.l1d.prefetch_accuracy(),
        st_prefetches: r.metrics.prefender.st_prefetches,
        at_prefetches: r.metrics.prefender.at_prefetches,
        rp_prefetches: r.metrics.prefender.rp_prefetches,
        mi_bits: Some(r.mi_bits),
        mi_corrected: Some(r.mi_corrected),
        capacity_bits: Some(r.capacity_bits),
        ml_accuracy: Some(r.ml_accuracy),
        guessing_entropy: Some(r.guessing_entropy),
        secrets: Some(campaign.secrets.len() as u64),
        trials: Some(u64::from(campaign.trials)),
        mi_p_value: r.mi_null.as_ref().map(|n| n.p_value),
        mi_null_q95: r.mi_null.as_ref().map(|n| n.null_q95_bits),
        mi_ci_lo: r.mi_ci.map(|(lo, _)| lo),
        mi_ci_hi: r.mi_ci.map(|(_, hi)| hi),
    }
}

thread_local! {
    /// One cached [`Runner`] per worker thread: consecutive scenarios
    /// sharing machine-shaping axes reuse the machine via an in-place
    /// reset (the `Runner` itself rebuilds on a configuration change).
    /// Reuse is bit-exact, so results stay independent of which
    /// scenarios a thread happened to run before — the determinism
    /// contract (byte-identical artifacts at any thread count) holds.
    static ATTACK_RUNNER: RefCell<Option<Runner>> = const { RefCell::new(None) };
}

/// Hands the calling thread's cached [`Runner`] (created on first use,
/// shaped for `spec`) to `f`.
fn with_thread_runner<R>(
    spec: &AttackSpec,
    f: impl FnOnce(&mut Runner) -> Result<R, prefender_attacks::AttackError>,
) -> Result<R, prefender_attacks::AttackError> {
    ATTACK_RUNNER.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_none() {
            *slot = Some(Runner::new(spec)?);
        }
        f(slot.as_mut().expect("populated above"))
    })
}

/// Runs `spec` on the calling thread's cached [`Runner`].
fn run_attack_cached(
    spec: &AttackSpec,
) -> Result<(AttackOutcome, RunMetrics), prefender_attacks::AttackError> {
    with_thread_runner(spec, |runner| runner.run_full(spec))
}

fn run_attack_scenario(s: &Scenario, case: &AttackCase, seed: u64) -> ScenarioResult {
    let spec = attack_spec(s, case, seed);
    let (outcome, metrics) =
        run_attack_cached(&spec).unwrap_or_else(|e| panic!("scenario {}: {e}", s.id()));
    let mut hist: BTreeMap<u64, u64> = BTreeMap::new();
    for p in &outcome.samples {
        *hist.entry(p.latency).or_insert(0) += 1;
    }
    ScenarioResult {
        index: s.index,
        id: s.id(),
        seed,
        leaked: Some(outcome.leaked),
        anomalies: Some(outcome.anomalies.len() as u64),
        latency_hist: hist.into_iter().collect(),
        truncated: false,
        cycles: metrics.cycles,
        instructions: metrics.instructions,
        ipc: metrics.ipc(),
        demand_accesses: metrics.l1d.demand_accesses,
        demand_misses: metrics.l1d.demand_misses,
        demand_miss_latency: metrics.l1d.demand_miss_latency,
        prefetch_issued: metrics.prefetch_issued,
        prefetch_fills: metrics.l1d.prefetch_fills,
        prefetch_useful: metrics.l1d.prefetch_useful + metrics.l1d.prefetch_late,
        prefetch_accuracy: metrics.l1d.prefetch_accuracy(),
        st_prefetches: metrics.prefender.st_prefetches,
        at_prefetches: metrics.prefender.at_prefetches,
        rp_prefetches: metrics.prefender.rp_prefetches,
        mi_bits: None,
        mi_corrected: None,
        capacity_bits: None,
        ml_accuracy: None,
        guessing_entropy: None,
        secrets: None,
        trials: None,
        mi_p_value: None,
        mi_null_q95: None,
        mi_ci_lo: None,
        mi_ci_hi: None,
    }
}

/// Looks up a catalog workload by name.
pub(crate) fn catalog_workload(name: &str) -> Option<Workload> {
    prefender_workloads::all().into_iter().find(|w| w.name() == name)
}

fn run_workload_scenario(s: &Scenario, name: &str, seed: u64) -> ScenarioResult {
    run_workload_scenario_obs(s, name, seed).0
}

fn run_workload_scenario_obs(s: &Scenario, name: &str, seed: u64) -> (ScenarioResult, ObsCounters) {
    let w = catalog_workload(name)
        .unwrap_or_else(|| panic!("scenario {}: unknown workload `{name}`", s.id()));
    let mut m = Machine::new(s.hierarchy.config(1));
    if let Some(p) = s.defense.config.build_prefetcher(64, 4096, s.defense.buffers, s.basic) {
        m.set_prefetcher(0, p);
    }
    w.install(&mut m);
    let summary = m.run();
    let l1d = *m.mem().l1d(0).stats();
    let prefender = crate::perf::prefender_stats(&m, 0).unwrap_or_default();
    let result = ScenarioResult {
        index: s.index,
        id: s.id(),
        seed,
        leaked: None,
        anomalies: None,
        latency_hist: Vec::new(),
        truncated: summary.truncated,
        cycles: summary.cycles,
        instructions: summary.instructions,
        ipc: summary.ipc(),
        demand_accesses: l1d.demand_accesses,
        demand_misses: l1d.demand_misses,
        demand_miss_latency: l1d.demand_miss_latency,
        prefetch_issued: m.prefetcher(0).map_or(0, |p| p.issued()),
        prefetch_fills: l1d.prefetch_fills,
        prefetch_useful: l1d.prefetch_useful + l1d.prefetch_late,
        prefetch_accuracy: l1d.prefetch_accuracy(),
        st_prefetches: prefender.st_prefetches,
        at_prefetches: prefender.at_prefetches,
        rp_prefetches: prefender.rp_prefetches,
        mi_bits: None,
        mi_corrected: None,
        capacity_bits: None,
        ml_accuracy: None,
        guessing_entropy: None,
        secrets: None,
        trials: None,
        mi_p_value: None,
        mi_null_q95: None,
        mi_ci_lo: None,
        mi_ci_hi: None,
    };
    (result, machine_obs(&m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_attacks::{AttackKind, DefenseConfig, NoiseSpec};

    fn attack_scenario(defense: DefenseConfig) -> Scenario {
        Scenario {
            index: 0,
            payload: Payload::Attack(AttackCase {
                kind: AttackKind::FlushReload,
                noise: NoiseSpec::NONE,
                cross_core: false,
            }),
            defense: DefensePoint::new(defense),
            basic: Basic::None,
            hierarchy: Hierarchy::Paper,
            seed_slot: 0,
        }
    }

    #[test]
    fn derived_seed_depends_on_campaign_index_and_slot() {
        let a = attack_scenario(DefenseConfig::None);
        let mut b = a.clone();
        b.index = 1;
        let mut c = a.clone();
        c.seed_slot = 1;
        assert_ne!(a.derived_seed(1), a.derived_seed(2));
        assert_ne!(a.derived_seed(1), b.derived_seed(1));
        assert_ne!(a.derived_seed(1), c.derived_seed(1));
        assert_eq!(a.derived_seed(1), a.clone().derived_seed(1));
    }

    #[test]
    fn derived_seeds_never_collide_across_index_slot_grids() {
        // Regression: the old derivation XORed multiplied (index, slot)
        // contributions before one finalize, so distinct grid points
        // could cancel to the same seed. The chained derivation must
        // stay collision-free over a grid far larger than any campaign.
        let mut s = attack_scenario(DefenseConfig::None);
        let mut seen = std::collections::HashSet::with_capacity(4096 * 64); // lint: ordered — membership only
        for index in 0..4096usize {
            for slot in 0..64u32 {
                s.index = index;
                s.seed_slot = slot;
                assert!(
                    seen.insert(s.derived_seed(0xC0FFEE)),
                    "seed collision at index {index}, slot {slot}"
                );
            }
        }
    }

    #[test]
    fn attack_scenario_measures_leak_and_histogram() {
        let r = run_scenario(&attack_scenario(DefenseConfig::None), 0xC0FFEE);
        assert_eq!(r.leaked, Some(true));
        assert_eq!(r.anomalies, Some(1));
        let probes: u64 = r.latency_hist.iter().map(|&(_, n)| n).sum();
        assert_eq!(probes, 61, "one histogram count per probed index (Figure 8: 50..=110)");
        assert!(r.cycles > 0 && r.instructions > 0 && r.ipc > 0.0);
        let r = run_scenario(&attack_scenario(DefenseConfig::Full), 0xC0FFEE);
        assert_eq!(r.leaked, Some(false));
        assert!(r.st_prefetches + r.at_prefetches + r.rp_prefetches > 0);
    }

    #[test]
    fn workload_scenario_measures_performance() {
        let s = Scenario {
            index: 3,
            payload: Payload::Workload("462.libquantum".into()),
            defense: DefensePoint::new(DefenseConfig::None),
            basic: Basic::Tagged,
            hierarchy: Hierarchy::Paper,
            seed_slot: 0,
        };
        let r = run_scenario(&s, 1);
        assert!(r.leaked.is_none());
        assert!(!r.truncated);
        assert!(r.prefetch_issued > 0, "tagged must prefetch the stream");
        assert!(r.prefetch_accuracy.unwrap() > 0.5);
    }

    #[test]
    fn ids_are_unique_and_stable() {
        let s = attack_scenario(DefenseConfig::Full);
        assert_eq!(s.id(), "atk:fr/full32/none/paper/s0");
        let mut s = attack_scenario(DefenseConfig::Full);
        s.payload = Payload::Leakage {
            case: AttackCase {
                kind: AttackKind::FlushReload,
                noise: NoiseSpec::NONE,
                cross_core: false,
            },
            n_secrets: 8,
            trials: 4,
            jitter: 0,
        };
        assert_eq!(s.id(), "leak:fr:8x4/full32/none/paper/s0");
        assert_eq!(s.payload.sims(), 32);
        if let Payload::Leakage { jitter, .. } = &mut s.payload {
            *jitter = 50;
        }
        assert_eq!(s.id(), "leak:fr:8x4j50/full32/none/paper/s0", "jitter must mark the id");
    }

    #[test]
    fn leakage_scenario_measures_the_channel() {
        let case =
            AttackCase { kind: AttackKind::FlushReload, noise: NoiseSpec::NONE, cross_core: false };
        let mut s = attack_scenario(DefenseConfig::None);
        s.payload = Payload::Leakage { case, n_secrets: 4, trials: 2, jitter: 0 };
        let r = run_scenario(&s, 0xC0FFEE);
        assert!(r.is_leakage());
        assert_eq!(r.leaked, None);
        assert_eq!((r.secrets, r.trials), (Some(4), Some(2)));
        assert!((r.mi_bits.unwrap() - 2.0).abs() < 0.1, "undefended: ~2 bits, got {:?}", r.mi_bits);
        assert!((r.ml_accuracy.unwrap() - 1.0).abs() < 1e-9);
        assert!(r.capacity_bits.unwrap() >= r.mi_bits.unwrap() - 1e-6);
        assert!(r.cycles > 0 && !r.latency_hist.is_empty());
        let mut s = attack_scenario(DefenseConfig::Full);
        s.payload = Payload::Leakage { case, n_secrets: 4, trials: 2, jitter: 0 };
        let r = run_scenario(&s, 0xC0FFEE);
        assert!(r.mi_bits.unwrap() <= 0.2, "defended: ≈0 bits, got {:?}", r.mi_bits);
        assert!(r.guessing_entropy.unwrap() > 1.5, "defended secret must rank deep");
    }

    #[test]
    fn leakage_jitter_degrades_the_channel_deterministically() {
        let case =
            AttackCase { kind: AttackKind::FlushReload, noise: NoiseSpec::NONE, cross_core: false };
        let mut s = attack_scenario(DefenseConfig::None);
        // Jitter far above the hit threshold drowns most hits in timer
        // noise: the undefended channel must lose bits.
        s.payload = Payload::Leakage { case, n_secrets: 4, trials: 2, jitter: 400 };
        let noisy = run_scenario(&s, 0xC0FFEE);
        assert!(
            noisy.mi_bits.unwrap() < 2.0 - 0.5,
            "±400-cycle jitter must degrade the 2-bit channel, got {:?}",
            noisy.mi_bits
        );
        assert_eq!(noisy, run_scenario(&s, 0xC0FFEE), "jitter is seeded, runs are identical");
    }
}
