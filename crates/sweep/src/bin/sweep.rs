//! `sweep` — run a scenario grid in parallel and emit artifacts.
//!
//! ```text
//! sweep [options]
//!
//! grid selection:
//!   --attacks LIST      fr,er,pp | all | none            [default: all]
//!   --noise LIST        none,c3,c4,c3c4                  [default: all four]
//!   --cross-core MODE   single | cross | both            [default: single]
//!   --defenses LIST     base,st,at,stat,atrp,full | all  [default: all]
//!   --buffers LIST      access-buffer counts             [default: 32]
//!   --basics LIST       none,tagged,stride               [default: none]
//!   --hierarchies LIST  paper,bigl2,sml1d,fifo | all     [default: paper]
//!   --workloads LIST    names | spec2006 | spec2017 | all | none [default: none]
//!   --leakage LIST      fr,er,pp | all | none — leakage campaigns [default: none]
//!   --secrets N         secrets per leakage campaign     [default: 8]
//!   --trials N          trials per secret                [default: 4]
//!   --jitter N          attacker timer noise, cycles/probe [default: 0]
//!   --permutations N    label permutations for the MI null test
//!                       (p-value + null q95 per campaign) [default: 0]
//!   --bootstrap N       bootstrap resamples for the MI confidence
//!                       interval                         [default: 0]
//!   --alpha F           bootstrap CI level, in (0,1)     [default: 0.05]
//!   --seeds N           seed repetitions per grid point  [default: 1]
//!
//! execution / output:
//!   --threads N         worker threads (0 = all CPUs)    [default: 0]
//!   --seed HEX|DEC      campaign seed                    [default: 0xC0FFEE]
//!   --out DIR           write DIR/sweep.json + DIR/sweep.csv
//!                       (+ DIR/leakage.json + DIR/leakage.csv when the
//!                       grid has leakage campaigns)      [default: .]
//!   --shard-size N      crash-safe campaign: run the grid in shards of
//!                       at most N scenarios, committing each to
//!                       DIR/shards/ atomically with a checksummed
//!                       footer, under a DIR/campaign.manifest
//!   --resume DIR        continue the sharded campaign recorded in DIR:
//!                       complete shards are loaded, truncated/corrupt/
//!                       foreign ones quarantined and re-run; the final
//!                       artifacts are byte-identical to an
//!                       uninterrupted run. Conflicts with every
//!                       grid-shaping flag (the manifest fixes the grid)
//!   --bench-json PATH   also write a throughput record (BENCH_sweep.json)
//!   --list              print the enumerated scenario grid (ids + counts,
//!                       distinct machine configs, estimated sims) and
//!                       exit without running anything
//!   --quiet             no per-scenario table, summary only
//!
//! observability (all off by default; artifacts are byte-identical
//! either way):
//!   --progress          throttled stderr progress line (rate + ETA)
//!   --obs               write DIR/obs.json: deterministic counters plus
//!                       an explicitly-marked wall-clock `timing` section
//!   --obs-out PATH      write the chunk-claim event stream as JSONL
//!   --trace             arm the flight recorder; write the per-scenario
//!                       event trace as DIR/trace.jsonl (deterministic:
//!                       byte-identical at any --threads value, and the
//!                       other artifacts are byte-identical with or
//!                       without it)
//!   --trace-out PATH    trace JSONL destination (requires --trace)
//!
//! multi-process campaigns (EXPERIMENTS.md "Multi-process campaigns"):
//!   sweep work DIR [--threads N] [--lease-ttl-ms MS] [--sock PATH]
//!                  [--worker-id K] [--quiet]
//!                       one worker: claim-execute-commit over DIR's
//!                       manifest until every shard is committed. Safe
//!                       to run N at once — shards are guarded by
//!                       heartbeat leases under DIR/leases/, stale
//!                       leases are broken, and artifacts stay
//!                       byte-identical to a 1-process run
//!   sweep serve DIR --workers N [--worker-threads N] [--restart-budget N]
//!                  [--lease-ttl-ms MS] [--stall-timeout-ms MS]
//!                  [--worker-failpoints SPEC] [--quiet] [grid flags]
//!                       spawn and supervise N `sweep work` children
//!                       over a Unix socket: restarts dead workers
//!                       (within the budget, then degrades), kills
//!                       stalled fleets, heals leftovers in-process,
//!                       writes the final artifacts. Grid/--seed/
//!                       --shard-size flags initialize DIR when it has
//!                       no manifest yet; an existing manifest fixes
//!                       the grid and rejects them
//! ```
//!
//! Leakage campaigns (`--leakage`) share the noise / cross-core /
//! defense / basic / hierarchy axes with `--attacks`; each campaign runs
//! its attack for every secret × trial and reports the channel in bits
//! (see `prefender-leakage`). With `--permutations` each campaign also
//! reports the label-permutation null of its MI estimate (`mi_p_value`,
//! `mi_null_q95`) and with `--bootstrap` a `1 − alpha` confidence
//! interval (`mi_ci_lo`/`mi_ci_hi`) — both fully deterministic, so
//! artifacts stay byte-identical at any `--threads` value.

use std::process::ExitCode;
use std::time::Instant;

use prefender_obs::{write_atomic, HostInfo, ProgressReporter};
use prefender_sweep::{
    resume_sharded, run_sharded, run_sweep_observed, AttackCase, AttackKind, Basic, DefenseConfig,
    DefensePoint, Hierarchy, NoiseSpec, SweepGrid, SweepOptions, SweepReport,
};

#[derive(Debug)]
struct Args {
    grid: SweepGrid,
    threads: usize,
    campaign_seed: u64,
    out: std::path::PathBuf,
    bench_json: Option<std::path::PathBuf>,
    quiet: bool,
    list: bool,
    progress: bool,
    obs: bool,
    obs_out: Option<std::path::PathBuf>,
    trace: bool,
    trace_out: Option<std::path::PathBuf>,
    shard_size: Option<usize>,
    resume: Option<std::path::PathBuf>,
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("invalid number `{s}`"))
}

fn parse_list<'s, T>(
    s: &'s str,
    what: &str,
    one: impl Fn(&'s str) -> Option<T>,
) -> Result<Vec<T>, String> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| one(p.trim()).ok_or_else(|| format!("unknown {what} `{p}`")))
        .collect()
}

fn workload_names(spec: &str) -> Result<Vec<String>, String> {
    let names = |ws: Vec<prefender_workloads::Workload>| {
        ws.into_iter().map(|w| w.name().to_string()).collect::<Vec<_>>()
    };
    match spec {
        "none" => Ok(Vec::new()),
        "all" => Ok(names(prefender_workloads::all())),
        "spec2006" => Ok(names(prefender_workloads::spec2006())),
        "spec2017" => Ok(names(prefender_workloads::spec2017())),
        list => {
            let all = names(prefender_workloads::all());
            parse_list(list, "workload", |n| all.iter().any(|w| w == n).then(|| n.to_string()))
        }
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut attacks_sel = "all".to_string();
    let mut noise_sel = "none,c3,c4,c3c4".to_string();
    let mut cross_sel = "single".to_string();
    let mut defenses_sel = "all".to_string();
    let mut buffers_sel = "32".to_string();
    let mut basics_sel = "none".to_string();
    let mut hier_sel = "paper".to_string();
    let mut workloads_sel = "none".to_string();
    let mut leakage_sel = "none".to_string();
    let mut seeds = 1u32;
    let mut args = Args {
        grid: SweepGrid::empty(),
        threads: 0,
        campaign_seed: 0xC0FFEE,
        out: ".".into(),
        bench_json: None,
        quiet: false,
        list: false,
        progress: false,
        obs: false,
        obs_out: None,
        trace: false,
        trace_out: None,
        shard_size: None,
        resume: None,
    };

    // Every option the user named, for conflict checks: a resumed
    // campaign takes its shape from the manifest, not the command line.
    let mut seen: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        if a.starts_with("--") {
            seen.push(a.clone());
        }
        let mut val = |name: &str| {
            it.next().map(|s| s.to_string()).ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--attacks" => attacks_sel = val("--attacks")?,
            "--noise" => noise_sel = val("--noise")?,
            "--cross-core" => cross_sel = val("--cross-core")?,
            "--defenses" => defenses_sel = val("--defenses")?,
            "--buffers" => buffers_sel = val("--buffers")?,
            "--basics" => basics_sel = val("--basics")?,
            "--hierarchies" => hier_sel = val("--hierarchies")?,
            "--workloads" => workloads_sel = val("--workloads")?,
            "--leakage" => leakage_sel = val("--leakage")?,
            "--secrets" => {
                args.grid.leakage_secrets =
                    val("--secrets")?.parse().map_err(|_| "invalid --secrets".to_string())?
            }
            "--trials" => {
                args.grid.leakage_trials =
                    val("--trials")?.parse().map_err(|_| "invalid --trials".to_string())?
            }
            "--jitter" => {
                args.grid.leakage_jitter =
                    val("--jitter")?.parse().map_err(|_| "invalid --jitter".to_string())?
            }
            "--permutations" => {
                args.grid.leakage_permutations = val("--permutations")?
                    .parse()
                    .map_err(|_| "invalid --permutations".to_string())?
            }
            "--bootstrap" => {
                args.grid.leakage_bootstrap =
                    val("--bootstrap")?.parse().map_err(|_| "invalid --bootstrap".to_string())?
            }
            "--alpha" => {
                args.grid.leakage_alpha =
                    val("--alpha")?.parse().map_err(|_| "invalid --alpha".to_string())?
            }
            "--seeds" => {
                seeds = val("--seeds")?.parse().map_err(|_| "invalid --seeds".to_string())?
            }
            "--threads" => {
                args.threads =
                    val("--threads")?.parse().map_err(|_| "invalid --threads".to_string())?
            }
            "--seed" => args.campaign_seed = parse_u64(&val("--seed")?)?,
            "--out" => args.out = val("--out")?.into(),
            "--bench-json" => args.bench_json = Some(val("--bench-json")?.into()),
            "--list" => args.list = true,
            "--quiet" => args.quiet = true,
            "--progress" => args.progress = true,
            "--obs" => args.obs = true,
            "--obs-out" => args.obs_out = Some(val("--obs-out")?.into()),
            "--trace" => args.trace = true,
            "--trace-out" => args.trace_out = Some(val("--trace-out")?.into()),
            "--shard-size" => {
                args.shard_size = Some(
                    val("--shard-size")?.parse().map_err(|_| "invalid --shard-size".to_string())?,
                )
            }
            "--resume" => args.resume = Some(val("--resume")?.into()),
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }

    if args.resume.is_some() {
        // The manifest fixes the grid, seed and output location; the only
        // things a resume may vary are execution knobs that cannot change
        // the artifacts.
        const COMPATIBLE: [&str; 3] = ["--resume", "--threads", "--quiet"];
        if let Some(bad) = seen.iter().find(|f| !COMPATIBLE.contains(&f.as_str())) {
            return Err(format!(
                "{bad} conflicts with --resume: the campaign manifest fixes the grid, \
                 seed and output directory (only --threads/--quiet may vary)"
            ));
        }
    }
    if let Some(size) = args.shard_size {
        if size == 0 {
            return Err("--shard-size must be at least 1".to_string());
        }
        for bad in ["--obs", "--obs-out", "--trace", "--trace-out", "--progress", "--list"] {
            if seen.iter().any(|f| f == bad) {
                return Err(format!(
                    "{bad} is not available with --shard-size (sharded campaigns commit \
                     shard artifacts, not obs/trace streams)"
                ));
            }
        }
    }

    let parse_kinds = |sel: &str| -> Result<Vec<AttackKind>, String> {
        match sel {
            "none" => Ok(Vec::new()),
            "all" => {
                Ok(vec![AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe])
            }
            list => parse_list(list, "attack", |s| match s {
                "fr" => Some(AttackKind::FlushReload),
                "er" => Some(AttackKind::EvictReload),
                "pp" => Some(AttackKind::PrimeProbe),
                _ => None,
            }),
        }
    };
    let kinds = parse_kinds(&attacks_sel)?;
    let leak_kinds = parse_kinds(&leakage_sel)?;
    let noises: Vec<NoiseSpec> = parse_list(&noise_sel, "noise", |s| match s {
        "none" => Some(NoiseSpec::NONE),
        "c3" => Some(NoiseSpec::C3),
        "c4" => Some(NoiseSpec::C4),
        "c3c4" => Some(NoiseSpec::C3C4),
        _ => None,
    })?;
    let crosses: Vec<bool> = match cross_sel.as_str() {
        "single" => vec![false],
        "cross" => vec![true],
        "both" => vec![false, true],
        other => return Err(format!("unknown --cross-core mode `{other}`")),
    };
    args.grid.attacks.clear();
    for &kind in &kinds {
        for &noise in &noises {
            for &cross_core in &crosses {
                args.grid.attacks.push(AttackCase { kind, noise, cross_core });
            }
        }
    }
    for &kind in &leak_kinds {
        for &noise in &noises {
            for &cross_core in &crosses {
                args.grid.leakages.push(AttackCase { kind, noise, cross_core });
            }
        }
    }

    let configs: Vec<DefenseConfig> = match defenses_sel.as_str() {
        "all" => DefenseConfig::ALL.to_vec(),
        list => parse_list(list, "defense", |s| match s {
            "base" => Some(DefenseConfig::None),
            "st" => Some(DefenseConfig::St),
            "at" => Some(DefenseConfig::At),
            "stat" => Some(DefenseConfig::StAt),
            "atrp" => Some(DefenseConfig::AtRp),
            "full" => Some(DefenseConfig::Full),
            _ => None,
        })?,
    };
    let buffers: Vec<usize> = parse_list(&buffers_sel, "buffer count", |s| s.parse().ok())?;
    args.grid.defenses = configs
        .iter()
        .flat_map(|&config| buffers.iter().map(move |&buffers| DefensePoint { config, buffers }))
        .collect();

    args.grid.basics = parse_list(&basics_sel, "basic prefetcher", |s| match s {
        "none" => Some(Basic::None),
        "tagged" => Some(Basic::Tagged),
        "stride" => Some(Basic::Stride),
        _ => None,
    })?;
    args.grid.hierarchies = match hier_sel.as_str() {
        "all" => Hierarchy::ALL.to_vec(),
        list => parse_list(list, "hierarchy", |s| {
            Hierarchy::ALL.iter().copied().find(|h| h.tag() == s)
        })?,
    };
    args.grid.workloads = workload_names(&workloads_sel)?;
    args.grid.seeds = seeds.max(1);
    if !args.grid.leakages.is_empty() {
        // Secrets are placed at distinct indices of the paper probe
        // window; reject impossible campaign shapes up front.
        let window = prefender_attacks::AttackLayout::paper().n_indices as u32;
        if args.grid.leakage_secrets < 1 || args.grid.leakage_secrets > window {
            return Err(format!(
                "--secrets must be 1..={window} (the probe-window width), got {}",
                args.grid.leakage_secrets
            ));
        }
        if args.grid.leakage_trials < 1 {
            return Err("--trials must be at least 1".to_string());
        }
    }
    // Resampling knobs only make sense when a leakage campaign runs, and
    // alpha must be a usable significance level.
    args.grid.resample().validate().map_err(|e| format!("--alpha: {e}"))?;
    if args.grid.resample().is_enabled() && args.grid.leakages.is_empty() {
        return Err("--permutations/--bootstrap need at least one --leakage campaign".to_string());
    }
    if args.trace_out.is_some() && !args.trace {
        return Err("--trace-out requires --trace".to_string());
    }
    Ok(args)
}

/// Writes the final campaign artifacts (sweep + leakage when present)
/// atomically into `out`, returning the paths written. Every artifact
/// write in this binary goes through [`write_atomic`] — a crash leaves
/// either the old bytes or the new bytes, never a torn file.
fn write_report_artifacts(
    out: &std::path::Path,
    report: &SweepReport,
) -> Result<Vec<std::path::PathBuf>, String> {
    let mut pairs = vec![("sweep.json", report.to_json()), ("sweep.csv", report.to_csv())];
    if report.has_leakage() {
        pairs.push(("leakage.json", report.leakage_json()));
        pairs.push(("leakage.csv", report.leakage_csv()));
    }
    let mut wrote = Vec::with_capacity(pairs.len());
    for (name, body) in pairs {
        let path = out.join(name);
        write_atomic(&path, body).map_err(|e| format!("writing {}: {e}", path.display()))?;
        wrote.push(path);
    }
    Ok(wrote)
}

/// Validates the output directory *before* running anything: hours of
/// compute should not be lost to an unwritable `--out` discovered at
/// artifact time.
fn ensure_writable_dir(dir: &std::path::Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let probe = dir.join(format!(".sweep-writable.tmp.{}", std::process::id()));
    std::fs::write(&probe, b"probe")
        .map_err(|e| format!("{} is not writable: {e}", dir.display()))?;
    let _ = std::fs::remove_file(&probe);
    Ok(())
}

fn main() -> ExitCode {
    // Fault injection for the crash-resume harness: honor
    // PREFENDER_FAILPOINTS before anything touches the filesystem.
    if let Err(e) = prefender_obs::arm_failpoints_from_env() {
        eprintln!("sweep: {}: {e}", prefender_obs::FAILPOINTS_ENV);
        return ExitCode::FAILURE;
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("work") => return subcmd::run_work(&argv[1..]),
        Some("serve") => return subcmd::run_serve(&argv[1..]),
        _ => {}
    }
    let mut args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("sweep: {e}");
            }
            eprintln!("usage: sweep [--attacks L] [--noise L] [--cross-core M] [--defenses L]");
            eprintln!("             [--buffers L] [--basics L] [--hierarchies L] [--workloads L]");
            eprintln!(
                "             [--leakage L] [--secrets N] [--trials N] [--jitter N] [--seeds N]"
            );
            eprintln!("             [--permutations N] [--bootstrap N] [--alpha F]");
            eprintln!("             [--threads N] [--seed S] [--out DIR] [--bench-json PATH]");
            eprintln!("             [--shard-size N] [--resume DIR]");
            eprintln!("             [--list] [--quiet] [--progress] [--obs] [--obs-out PATH]");
            eprintln!("             [--trace] [--trace-out PATH]");
            eprintln!("       sweep work DIR [--threads N] [--lease-ttl-ms MS] [--sock PATH]");
            eprintln!("       sweep serve DIR --workers N [--worker-threads N] [grid flags]");
            return if e == "help" { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };
    if args.resume.is_none() && args.grid.is_empty() {
        eprintln!("sweep: the selected grid is empty (no attacks, workloads or leakage campaigns)");
        return ExitCode::FAILURE;
    }

    if args.list {
        let n = args.grid.len();
        let sims = args.grid.sims();
        // Dry run: print the enumerated work-list for campaign sizing.
        let scenarios = args.grid.enumerate();
        for s in &scenarios {
            println!("{:>6}  {}", s.index, s.id());
        }
        // Distinct machine-shaping keys = the machine-rebuild floor under
        // config-major scheduling (each worker rebuilds at most once per
        // distinct configuration; everything else is an in-place reset).
        let mut keys: Vec<_> = scenarios.iter().map(|s| s.machine_key()).collect();
        keys.sort();
        keys.dedup();
        println!(
            "{n} scenarios ({sims} estimated simulations, {} distinct machine configs), \
             not executed (--list)",
            keys.len()
        );
        if args.trace {
            // Coarse planning estimate: attack/leakage sims emit on the
            // order of ~25k flight-recorder events each (demand + MSHR +
            // prefetch traffic over a paper probe schedule).
            const EST_EVENTS_PER_SIM: u64 = 25_000;
            let cap = prefender_obs::DEFAULT_TRACE_CAPACITY;
            let event_size = std::mem::size_of::<prefender_obs::TraceEvent>();
            println!(
                "trace: ~{} events estimated ({sims} sims x ~{EST_EVENTS_PER_SIM}/sim); \
                 ring buffer {cap} events ({} KiB) per worker thread",
                sims as u64 * EST_EVENTS_PER_SIM,
                cap * event_size / 1024,
            );
        }
        return ExitCode::SUCCESS;
    }
    if args.resume.is_none() {
        let (n, sims) = (args.grid.len(), args.grid.sims());
        eprintln!(
            "sweep: {n} scenarios / {sims} sims ({} attack cases, {} workloads, {} leakage campaigns) x {} defenses x {} basics x {} hierarchies x {} seeds",
            args.grid.attacks.len(),
            args.grid.workloads.len(),
            args.grid.leakages.len(),
            args.grid.defenses.len(),
            args.grid.basics.len(),
            args.grid.hierarchies.len(),
            args.grid.seeds,
        );
        // Fail fast on an unusable --out, before any compute runs.
        if let Err(e) = ensure_writable_dir(&args.out) {
            eprintln!("sweep: {e}");
            return ExitCode::FAILURE;
        }
    }
    let opts = SweepOptions { threads: args.threads, campaign_seed: args.campaign_seed };
    if args.trace {
        prefender_obs::arm_trace(prefender_obs::DEFAULT_TRACE_CAPACITY);
    }
    let start = Instant::now();
    let (report, obs) = if let Some(dir) = args.resume.clone() {
        // The manifest carries the grid and seed; the command line only
        // chose the directory. Rebind args so reporting below sees the
        // campaign's real shape.
        match resume_sharded(&dir, args.threads) {
            Ok((report, manifest, stats)) => {
                eprintln!("sweep: resume: {}", stats.render());
                args.grid = manifest.grid;
                args.campaign_seed = manifest.campaign_seed;
                args.out = dir;
                (report, None)
            }
            Err(e) => {
                eprintln!("sweep: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(size) = args.shard_size {
        match run_sharded(&args.out, &args.grid, &opts, size) {
            Ok((report, stats)) => {
                eprintln!("sweep: shards: {}", stats.render());
                (report, None)
            }
            Err(e) => {
                eprintln!("sweep: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        // `run_sweep` is `run_sweep_observed` minus the extras, so running
        // observed unconditionally cannot change the artifacts — the obs
        // outputs are simply dropped unless a flag asks for them.
        let total = args.grid.len() as u64;
        let reporter =
            args.progress.then(|| std::sync::Mutex::new(ProgressReporter::new("sweep", total)));
        let on_chunk = |done: usize, _total: usize| {
            if let Some(r) = &reporter {
                r.lock().expect("progress reporter").update(done as u64);
            }
        };
        let progress: Option<&(dyn Fn(usize, usize) + Sync)> =
            if args.progress { Some(&on_chunk) } else { None };
        let (report, obs) = run_sweep_observed(&args.grid, &opts, progress);
        if let Some(r) = &reporter {
            r.lock().expect("progress reporter").finish(total);
        }
        (report, Some(obs))
    };
    if args.trace {
        prefender_obs::disarm_trace();
    }
    let n = args.grid.len();
    let sims = args.grid.sims();
    let elapsed = start.elapsed();
    let per_sec = n as f64 / elapsed.as_secs_f64().max(1e-9);

    let wrote = match write_report_artifacts(&args.out, &report) {
        Ok(wrote) => wrote,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::FAILURE;
        }
    };

    if !args.quiet {
        println!("{}", report.render_table());
    }
    let leaked = report.results.iter().filter(|r| r.leaked == Some(true)).count();
    let defended = report.results.iter().filter(|r| r.leaked == Some(false)).count();
    println!(
        "{n} scenarios / {sims} sims in {:.2?} ({per_sec:.1} scenarios/s, threads={}): {leaked} leaked, {defended} defended, {} campaigns, {} perf runs",
        elapsed,
        args.threads,
        report.results.iter().filter(|r| r.is_leakage()).count(),
        report.results.iter().filter(|r| r.leaked.is_none() && !r.is_leakage()).count(),
    );
    println!(
        "wrote {}",
        wrote.iter().map(|p| p.display().to_string()).collect::<Vec<_>>().join(", ")
    );

    // The obs/trace flags conflict with --shard-size/--resume at parse
    // time, so `obs` is always present on these paths.
    if args.obs {
        let obs = obs.as_ref().expect("--obs runs the in-memory path");
        let path = args.out.join("obs.json");
        if let Err(e) = write_atomic(&path, obs.to_json() + "\n") {
            eprintln!("sweep: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    if let Some(path) = &args.obs_out {
        let obs = obs.as_ref().expect("--obs-out runs the in-memory path");
        if let Err(e) = write_atomic(path, obs.events_jsonl()) {
            eprintln!("sweep: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    if args.trace {
        let obs = obs.as_ref().expect("--trace runs the in-memory path");
        let path = args.trace_out.clone().unwrap_or_else(|| args.out.join("trace.jsonl"));
        if let Err(e) = write_atomic(&path, obs.trace_jsonl()) {
            eprintln!("sweep: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} ({} events, {} dropped)",
            path.display(),
            obs.trace_events(),
            obs.trace_dropped()
        );
    }

    if let Some(path) = args.bench_json {
        let record = format!(
            "{{\"bench\": \"sweep\", \"scenarios\": {n}, \"sims\": {sims}, \"threads\": {}, \
             \"elapsed_secs\": {:.6}, \"scenarios_per_sec\": {:.3}, \"sims_per_sec\": {:.3}, \
             \"host\": {}}}\n",
            args.threads,
            elapsed.as_secs_f64(),
            per_sec,
            sims as f64 / elapsed.as_secs_f64().max(1e-9),
            HostInfo::capture().json_inline(),
        );
        if let Err(e) = write_atomic(&path, record) {
            eprintln!("sweep: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// The `work`/`serve` subcommands — the multi-process campaign modes.
/// Unix-only: worker telemetry rides a Unix domain socket.
#[cfg(unix)]
mod subcmd {
    use std::io::Write as _;
    use std::os::unix::net::UnixStream;
    use std::path::PathBuf;
    use std::process::ExitCode;
    use std::time::Duration;

    use prefender_sweep::{
        done_line, event_line, hello_line, init_campaign, load_manifest, serve_campaign,
        work_campaign, LeaseConfig, ServeOptions, SweepOptions, WorkEvent, WorkOptions,
        MANIFEST_NAME,
    };

    use super::{ensure_writable_dir, parse_args, write_report_artifacts};

    const WORK_USAGE: &str = "usage: sweep work DIR [--threads N] [--lease-ttl-ms MS] \
                              [--sock PATH] [--worker-id K] [--quiet]";
    const SERVE_USAGE: &str = "usage: sweep serve DIR --workers N [--worker-threads N] \
                               [--restart-budget N] [--lease-ttl-ms MS] [--stall-timeout-ms MS] \
                               [--worker-failpoints SPEC] [--quiet] [grid flags when creating]";

    pub(super) struct WorkArgs {
        pub(super) dir: PathBuf,
        pub(super) threads: usize,
        pub(super) ttl_ms: u64,
        pub(super) sock: Option<PathBuf>,
        pub(super) worker_id: usize,
        pub(super) quiet: bool,
    }

    pub(super) fn parse_work(argv: &[String]) -> Result<WorkArgs, String> {
        let mut it = argv.iter();
        let dir: PathBuf = match it.next() {
            Some(d) if !d.starts_with("--") => d.into(),
            _ => return Err("work needs a campaign DIR as its first argument".into()),
        };
        let mut args = WorkArgs {
            dir,
            threads: 1,
            ttl_ms: LeaseConfig::default().ttl_ms,
            sock: None,
            worker_id: 0,
            quiet: false,
        };
        while let Some(a) = it.next() {
            let mut val =
                |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
            match a.as_str() {
                "--threads" => {
                    args.threads =
                        val("--threads")?.parse().map_err(|_| "invalid --threads".to_string())?
                }
                "--lease-ttl-ms" => {
                    args.ttl_ms = val("--lease-ttl-ms")?
                        .parse()
                        .map_err(|_| "invalid --lease-ttl-ms".to_string())?
                }
                "--sock" => args.sock = Some(val("--sock")?.into()),
                "--worker-id" => {
                    args.worker_id = val("--worker-id")?
                        .parse()
                        .map_err(|_| "invalid --worker-id".to_string())?
                }
                "--quiet" => args.quiet = true,
                other => return Err(format!("unknown work option `{other}`")),
            }
        }
        Ok(args)
    }

    pub(super) fn run_work(argv: &[String]) -> ExitCode {
        let wargs = match parse_work(argv) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("sweep: {e}");
                eprintln!("{WORK_USAGE}");
                return ExitCode::FAILURE;
            }
        };
        // Telemetry is best-effort: a worker without (or outliving) its
        // supervisor still finishes the campaign.
        let mut sock = wargs.sock.as_ref().and_then(|p| match UnixStream::connect(p) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!(
                    "sweep: work: no supervisor at {}: {e} (continuing without telemetry)",
                    p.display()
                );
                None
            }
        });
        if let Some(s) = &mut sock {
            let _ = writeln!(s, "{}", hello_line(wargs.worker_id, std::process::id()));
        }
        let opts =
            WorkOptions { threads: wargs.threads, lease: LeaseConfig::with_ttl_ms(wargs.ttl_ms) };
        let quiet = wargs.quiet;
        let mut on_event = |e: &WorkEvent| {
            if let Some(s) = &mut sock {
                let _ = writeln!(s, "{}", event_line(e));
            }
            match e {
                WorkEvent::Broke { shard, holder_pid, age_ms } => eprintln!(
                    "sweep: work: broke stale lease on shard {shard} \
                     (holder pid {holder_pid}, heartbeat {age_ms}ms old)"
                ),
                WorkEvent::Quarantined { shard, why } => {
                    eprintln!("sweep: work: quarantined invalid shard {shard}: {why}")
                }
                WorkEvent::Committed { shard, done, total } if !quiet => {
                    eprintln!("sweep: work: committed shard {shard} ({done}/{total})")
                }
                _ => {}
            }
        };
        match work_campaign(&wargs.dir, &opts, &mut on_event) {
            Ok((report, _, summary)) => {
                if let Some(s) = &mut sock {
                    let _ = writeln!(s, "{}", done_line(&summary));
                }
                eprintln!("sweep: work: {}", summary.render());
                // Every worker reaching this point holds the complete
                // converged report; concurrent writers commit identical
                // bytes through the atomic-rename path.
                match write_report_artifacts(&wargs.dir, &report) {
                    Ok(wrote) => {
                        if !quiet {
                            println!(
                                "wrote {}",
                                wrote
                                    .iter()
                                    .map(|p| p.display().to_string())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            );
                        }
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("sweep: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("sweep: work: {e}");
                ExitCode::FAILURE
            }
        }
    }

    #[derive(Debug)]
    pub(super) struct ServeArgs {
        pub(super) dir: PathBuf,
        pub(super) workers: usize,
        pub(super) worker_threads: usize,
        pub(super) restart_budget: Option<usize>,
        pub(super) ttl_ms: u64,
        pub(super) stall_ms: u64,
        pub(super) worker_failpoints: Option<String>,
        pub(super) quiet: bool,
        /// Unrecognized flags, forwarded (with their values, in order)
        /// to the grid parser when the campaign is being created.
        pub(super) rest: Vec<String>,
    }

    pub(super) fn parse_serve(argv: &[String]) -> Result<ServeArgs, String> {
        let mut it = argv.iter();
        let dir: PathBuf = match it.next() {
            Some(d) if !d.starts_with("--") => d.into(),
            _ => return Err("serve needs a campaign DIR as its first argument".into()),
        };
        let mut args = ServeArgs {
            dir,
            workers: 0,
            worker_threads: 1,
            restart_budget: None,
            ttl_ms: LeaseConfig::default().ttl_ms,
            stall_ms: 60_000,
            worker_failpoints: None,
            quiet: false,
            rest: Vec::new(),
        };
        while let Some(a) = it.next() {
            let mut val =
                |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
            match a.as_str() {
                "--workers" => {
                    args.workers =
                        val("--workers")?.parse().map_err(|_| "invalid --workers".to_string())?
                }
                "--worker-threads" => {
                    args.worker_threads = val("--worker-threads")?
                        .parse()
                        .map_err(|_| "invalid --worker-threads".to_string())?
                }
                "--restart-budget" => {
                    args.restart_budget = Some(
                        val("--restart-budget")?
                            .parse()
                            .map_err(|_| "invalid --restart-budget".to_string())?,
                    )
                }
                "--lease-ttl-ms" => {
                    args.ttl_ms = val("--lease-ttl-ms")?
                        .parse()
                        .map_err(|_| "invalid --lease-ttl-ms".to_string())?
                }
                "--stall-timeout-ms" => {
                    args.stall_ms = val("--stall-timeout-ms")?
                        .parse()
                        .map_err(|_| "invalid --stall-timeout-ms".to_string())?
                }
                "--worker-failpoints" => args.worker_failpoints = Some(val("--worker-failpoints")?),
                "--quiet" => args.quiet = true,
                other => args.rest.push(other.to_string()),
            }
        }
        if args.workers == 0 {
            return Err("serve needs --workers N (at least 1)".into());
        }
        Ok(args)
    }

    pub(super) fn run_serve(argv: &[String]) -> ExitCode {
        let sargs = match parse_serve(argv) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("sweep: {e}");
                eprintln!("{SERVE_USAGE}");
                return ExitCode::FAILURE;
            }
        };
        if sargs.dir.join(MANIFEST_NAME).exists() {
            if !sargs.rest.is_empty() {
                eprintln!(
                    "sweep: serve: {} already holds a campaign; `{}` conflicts — \
                     the manifest fixes the grid, seed and shard size",
                    sargs.dir.display(),
                    sargs.rest.join(" ")
                );
                return ExitCode::FAILURE;
            }
            if let Err(e) = load_manifest(&sargs.dir) {
                eprintln!("sweep: {e}");
                return ExitCode::FAILURE;
            }
        } else {
            let gargs = match parse_args(&sargs.rest) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("sweep: serve: {e}");
                    eprintln!("{SERVE_USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            if gargs.resume.is_some()
                || gargs.list
                || gargs.obs
                || gargs.trace
                || gargs.progress
                || gargs.obs_out.is_some()
                || gargs.trace_out.is_some()
                || gargs.bench_json.is_some()
            {
                eprintln!(
                    "sweep: serve: only grid/--seed/--shard-size flags apply when \
                     creating a campaign"
                );
                return ExitCode::FAILURE;
            }
            if gargs.grid.is_empty() {
                eprintln!("sweep: the selected grid is empty");
                return ExitCode::FAILURE;
            }
            if let Err(e) = ensure_writable_dir(&sargs.dir) {
                eprintln!("sweep: {e}");
                return ExitCode::FAILURE;
            }
            let n = gargs.grid.len();
            // Default to ~8 shards per worker: fine-grained enough to
            // balance, coarse enough to amortize commit overhead.
            let shard_size =
                gargs.shard_size.unwrap_or_else(|| n.div_ceil(sargs.workers * 8)).max(1);
            let opts = SweepOptions { threads: 0, campaign_seed: gargs.campaign_seed };
            match init_campaign(&sargs.dir, &gargs.grid, &opts, shard_size) {
                Ok(m) => eprintln!(
                    "sweep: serve: initialized campaign ({n} scenarios, {} shards of <= \
                     {shard_size})",
                    m.plan().n_shards()
                ),
                Err(e) => {
                    eprintln!("sweep: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let exe = match std::env::current_exe() {
            Ok(exe) => exe,
            Err(e) => {
                eprintln!("sweep: cannot locate own binary to spawn workers: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut opts = ServeOptions::new(exe, sargs.workers);
        opts.worker_threads = sargs.worker_threads;
        if let Some(budget) = sargs.restart_budget {
            opts.restart_budget = budget;
        }
        opts.lease = LeaseConfig::with_ttl_ms(sargs.ttl_ms);
        opts.stall_timeout = Duration::from_millis(sargs.stall_ms);
        opts.worker_failpoints = sargs.worker_failpoints.clone();
        opts.quiet = sargs.quiet;
        match serve_campaign(&sargs.dir, &opts) {
            Ok((report, _, summary)) => {
                for w in &summary.per_worker {
                    eprintln!(
                        "sweep: serve: worker {}: {} shards (pids {})",
                        w.worker,
                        w.committed,
                        w.pids.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(",")
                    );
                }
                eprintln!("sweep: serve: {}", summary.render());
                match write_report_artifacts(&sargs.dir, &report) {
                    Ok(wrote) => {
                        println!(
                            "wrote {}",
                            wrote
                                .iter()
                                .map(|p| p.display().to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("sweep: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("sweep: serve: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::parse_args;

    fn parse(line: &str) -> Result<super::Args, String> {
        parse_args(&line.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn resume_conflicts_with_every_grid_shaping_flag() {
        for flags in [
            "--resume d --attacks fr",
            "--resume d --noise c3",
            "--resume d --defenses full",
            "--resume d --workloads all",
            "--resume d --leakage pp",
            "--resume d --secrets 4",
            "--resume d --trials 2",
            "--resume d --seeds 3",
            "--resume d --seed 7",
            "--resume d --alpha 0.1",
            "--resume d --out elsewhere",
            "--resume d --list",
            "--resume d --shard-size 4",
            "--resume d --obs",
            "--resume d --trace",
            "--resume d --progress",
            "--resume d --bench-json b.json",
        ] {
            let err = parse(flags).expect_err(flags);
            assert!(err.contains("conflicts with --resume"), "`{flags}` -> {err}");
        }
    }

    #[test]
    fn resume_allows_execution_knobs_only() {
        let args = parse("--resume some/dir --threads 8 --quiet").expect("compatible flags");
        assert_eq!(args.resume.as_deref(), Some(std::path::Path::new("some/dir")));
        assert_eq!(args.threads, 8);
        assert!(args.quiet);
    }

    #[test]
    fn shard_size_must_be_positive() {
        let err = parse("--shard-size 0").unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse("--shard-size nope").unwrap_err();
        assert!(err.contains("invalid --shard-size"), "{err}");
        assert_eq!(parse("--shard-size 16").expect("valid").shard_size, Some(16));
    }

    #[test]
    fn shard_size_conflicts_with_obs_and_trace_streams() {
        for flags in [
            "--shard-size 4 --obs",
            "--shard-size 4 --obs-out o.jsonl",
            "--shard-size 4 --trace",
            "--shard-size 4 --trace-out t.jsonl",
            "--shard-size 4 --progress",
            "--shard-size 4 --list",
        ] {
            let err = parse(flags).expect_err(flags);
            assert!(err.contains("not available with --shard-size"), "`{flags}` -> {err}");
        }
    }

    #[test]
    fn flags_that_need_values_say_so() {
        for flag in ["--resume", "--shard-size"] {
            let err = parse(flag).unwrap_err();
            assert!(err.contains("needs a value"), "`{flag}` -> {err}");
        }
    }

    #[cfg(unix)]
    mod subcmd {
        use crate::subcmd::{parse_serve, parse_work};

        fn argv(line: &str) -> Vec<String> {
            line.split_whitespace().map(String::from).collect()
        }

        #[test]
        fn work_parses_its_flags_and_requires_a_dir() {
            let args = parse_work(&argv(
                "camp --threads 2 --lease-ttl-ms 750 --sock camp/serve.sock --worker-id 3 --quiet",
            ))
            .expect("valid work line");
            assert_eq!(args.dir, std::path::Path::new("camp"));
            assert_eq!(args.threads, 2);
            assert_eq!(args.ttl_ms, 750);
            assert_eq!(args.sock.as_deref(), Some(std::path::Path::new("camp/serve.sock")));
            assert_eq!(args.worker_id, 3);
            assert!(args.quiet);
            for bad in ["", "--threads 2", "camp --bogus"] {
                assert!(parse_work(&argv(bad)).is_err(), "`{bad}` must be rejected");
            }
        }

        #[test]
        fn serve_requires_workers_and_forwards_grid_flags_in_order() {
            let args = parse_serve(&argv(
                "camp --workers 4 --leakage fr --restart-budget 9 --seed 0x2A \
                 --stall-timeout-ms 500 --shard-size 6",
            ))
            .expect("valid serve line");
            assert_eq!(args.dir, std::path::Path::new("camp"));
            assert_eq!(args.workers, 4);
            assert_eq!(args.restart_budget, Some(9));
            assert_eq!(args.stall_ms, 500);
            // Unrecognized flags pass through with their values, in
            // order, for the grid parser.
            assert_eq!(args.rest, argv("--leakage fr --seed 0x2A --shard-size 6"));
            let err = parse_serve(&argv("camp --leakage fr")).unwrap_err();
            assert!(err.contains("--workers"), "{err}");
            assert!(parse_serve(&argv("--workers 2")).is_err(), "DIR must come first");
        }
    }
}
