//! `sweep` — run a scenario grid in parallel and emit artifacts.
//!
//! ```text
//! sweep [options]
//!
//! grid selection:
//!   --attacks LIST      fr,er,pp | all | none            [default: all]
//!   --noise LIST        none,c3,c4,c3c4                  [default: all four]
//!   --cross-core MODE   single | cross | both            [default: single]
//!   --defenses LIST     base,st,at,stat,atrp,full | all  [default: all]
//!   --buffers LIST      access-buffer counts             [default: 32]
//!   --basics LIST       none,tagged,stride               [default: none]
//!   --hierarchies LIST  paper,bigl2,sml1d,fifo | all     [default: paper]
//!   --workloads LIST    names | spec2006 | spec2017 | all | none [default: none]
//!   --leakage LIST      fr,er,pp | all | none — leakage campaigns [default: none]
//!   --secrets N         secrets per leakage campaign     [default: 8]
//!   --trials N          trials per secret                [default: 4]
//!   --jitter N          attacker timer noise, cycles/probe [default: 0]
//!   --permutations N    label permutations for the MI null test
//!                       (p-value + null q95 per campaign) [default: 0]
//!   --bootstrap N       bootstrap resamples for the MI confidence
//!                       interval                         [default: 0]
//!   --alpha F           bootstrap CI level, in (0,1)     [default: 0.05]
//!   --seeds N           seed repetitions per grid point  [default: 1]
//!
//! execution / output:
//!   --threads N         worker threads (0 = all CPUs)    [default: 0]
//!   --seed HEX|DEC      campaign seed                    [default: 0xC0FFEE]
//!   --out DIR           write DIR/sweep.json + DIR/sweep.csv
//!                       (+ DIR/leakage.json + DIR/leakage.csv when the
//!                       grid has leakage campaigns)      [default: .]
//!   --shard-size N      crash-safe campaign: run the grid in shards of
//!                       at most N scenarios, committing each to
//!                       DIR/shards/ atomically with a checksummed
//!                       footer, under a DIR/campaign.manifest
//!   --resume DIR        continue the sharded campaign recorded in DIR:
//!                       complete shards are loaded, truncated/corrupt/
//!                       foreign ones quarantined and re-run; the final
//!                       artifacts are byte-identical to an
//!                       uninterrupted run. Conflicts with every
//!                       grid-shaping flag (the manifest fixes the grid)
//!   --bench-json PATH   also write a throughput record (BENCH_sweep.json)
//!   --list              print the enumerated scenario grid (ids + counts,
//!                       distinct machine configs, estimated sims) and
//!                       exit without running anything
//!   --quiet             no per-scenario table, summary only
//!
//! observability (all off by default; artifacts are byte-identical
//! either way):
//!   --progress          throttled stderr progress line (rate + ETA)
//!   --obs               write DIR/obs.json: deterministic counters plus
//!                       an explicitly-marked wall-clock `timing` section
//!   --obs-out PATH      write the chunk-claim event stream as JSONL
//!   --trace             arm the flight recorder; write the per-scenario
//!                       event trace as DIR/trace.jsonl (deterministic:
//!                       byte-identical at any --threads value, and the
//!                       other artifacts are byte-identical with or
//!                       without it)
//!   --trace-out PATH    trace JSONL destination (requires --trace)
//! ```
//!
//! Leakage campaigns (`--leakage`) share the noise / cross-core /
//! defense / basic / hierarchy axes with `--attacks`; each campaign runs
//! its attack for every secret × trial and reports the channel in bits
//! (see `prefender-leakage`). With `--permutations` each campaign also
//! reports the label-permutation null of its MI estimate (`mi_p_value`,
//! `mi_null_q95`) and with `--bootstrap` a `1 − alpha` confidence
//! interval (`mi_ci_lo`/`mi_ci_hi`) — both fully deterministic, so
//! artifacts stay byte-identical at any `--threads` value.

use std::process::ExitCode;
use std::time::Instant;

use prefender_obs::{write_atomic, HostInfo, ProgressReporter};
use prefender_sweep::{
    resume_sharded, run_sharded, run_sweep_observed, AttackCase, AttackKind, Basic, DefenseConfig,
    DefensePoint, Hierarchy, NoiseSpec, SweepGrid, SweepOptions, SweepReport,
};

#[derive(Debug)]
struct Args {
    grid: SweepGrid,
    threads: usize,
    campaign_seed: u64,
    out: std::path::PathBuf,
    bench_json: Option<std::path::PathBuf>,
    quiet: bool,
    list: bool,
    progress: bool,
    obs: bool,
    obs_out: Option<std::path::PathBuf>,
    trace: bool,
    trace_out: Option<std::path::PathBuf>,
    shard_size: Option<usize>,
    resume: Option<std::path::PathBuf>,
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("invalid number `{s}`"))
}

fn parse_list<'s, T>(
    s: &'s str,
    what: &str,
    one: impl Fn(&'s str) -> Option<T>,
) -> Result<Vec<T>, String> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| one(p.trim()).ok_or_else(|| format!("unknown {what} `{p}`")))
        .collect()
}

fn workload_names(spec: &str) -> Result<Vec<String>, String> {
    let names = |ws: Vec<prefender_workloads::Workload>| {
        ws.into_iter().map(|w| w.name().to_string()).collect::<Vec<_>>()
    };
    match spec {
        "none" => Ok(Vec::new()),
        "all" => Ok(names(prefender_workloads::all())),
        "spec2006" => Ok(names(prefender_workloads::spec2006())),
        "spec2017" => Ok(names(prefender_workloads::spec2017())),
        list => {
            let all = names(prefender_workloads::all());
            parse_list(list, "workload", |n| all.iter().any(|w| w == n).then(|| n.to_string()))
        }
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut attacks_sel = "all".to_string();
    let mut noise_sel = "none,c3,c4,c3c4".to_string();
    let mut cross_sel = "single".to_string();
    let mut defenses_sel = "all".to_string();
    let mut buffers_sel = "32".to_string();
    let mut basics_sel = "none".to_string();
    let mut hier_sel = "paper".to_string();
    let mut workloads_sel = "none".to_string();
    let mut leakage_sel = "none".to_string();
    let mut seeds = 1u32;
    let mut args = Args {
        grid: SweepGrid::empty(),
        threads: 0,
        campaign_seed: 0xC0FFEE,
        out: ".".into(),
        bench_json: None,
        quiet: false,
        list: false,
        progress: false,
        obs: false,
        obs_out: None,
        trace: false,
        trace_out: None,
        shard_size: None,
        resume: None,
    };

    // Every option the user named, for conflict checks: a resumed
    // campaign takes its shape from the manifest, not the command line.
    let mut seen: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        if a.starts_with("--") {
            seen.push(a.clone());
        }
        let mut val = |name: &str| {
            it.next().map(|s| s.to_string()).ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--attacks" => attacks_sel = val("--attacks")?,
            "--noise" => noise_sel = val("--noise")?,
            "--cross-core" => cross_sel = val("--cross-core")?,
            "--defenses" => defenses_sel = val("--defenses")?,
            "--buffers" => buffers_sel = val("--buffers")?,
            "--basics" => basics_sel = val("--basics")?,
            "--hierarchies" => hier_sel = val("--hierarchies")?,
            "--workloads" => workloads_sel = val("--workloads")?,
            "--leakage" => leakage_sel = val("--leakage")?,
            "--secrets" => {
                args.grid.leakage_secrets =
                    val("--secrets")?.parse().map_err(|_| "invalid --secrets".to_string())?
            }
            "--trials" => {
                args.grid.leakage_trials =
                    val("--trials")?.parse().map_err(|_| "invalid --trials".to_string())?
            }
            "--jitter" => {
                args.grid.leakage_jitter =
                    val("--jitter")?.parse().map_err(|_| "invalid --jitter".to_string())?
            }
            "--permutations" => {
                args.grid.leakage_permutations = val("--permutations")?
                    .parse()
                    .map_err(|_| "invalid --permutations".to_string())?
            }
            "--bootstrap" => {
                args.grid.leakage_bootstrap =
                    val("--bootstrap")?.parse().map_err(|_| "invalid --bootstrap".to_string())?
            }
            "--alpha" => {
                args.grid.leakage_alpha =
                    val("--alpha")?.parse().map_err(|_| "invalid --alpha".to_string())?
            }
            "--seeds" => {
                seeds = val("--seeds")?.parse().map_err(|_| "invalid --seeds".to_string())?
            }
            "--threads" => {
                args.threads =
                    val("--threads")?.parse().map_err(|_| "invalid --threads".to_string())?
            }
            "--seed" => args.campaign_seed = parse_u64(&val("--seed")?)?,
            "--out" => args.out = val("--out")?.into(),
            "--bench-json" => args.bench_json = Some(val("--bench-json")?.into()),
            "--list" => args.list = true,
            "--quiet" => args.quiet = true,
            "--progress" => args.progress = true,
            "--obs" => args.obs = true,
            "--obs-out" => args.obs_out = Some(val("--obs-out")?.into()),
            "--trace" => args.trace = true,
            "--trace-out" => args.trace_out = Some(val("--trace-out")?.into()),
            "--shard-size" => {
                args.shard_size = Some(
                    val("--shard-size")?.parse().map_err(|_| "invalid --shard-size".to_string())?,
                )
            }
            "--resume" => args.resume = Some(val("--resume")?.into()),
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }

    if args.resume.is_some() {
        // The manifest fixes the grid, seed and output location; the only
        // things a resume may vary are execution knobs that cannot change
        // the artifacts.
        const COMPATIBLE: [&str; 3] = ["--resume", "--threads", "--quiet"];
        if let Some(bad) = seen.iter().find(|f| !COMPATIBLE.contains(&f.as_str())) {
            return Err(format!(
                "{bad} conflicts with --resume: the campaign manifest fixes the grid, \
                 seed and output directory (only --threads/--quiet may vary)"
            ));
        }
    }
    if let Some(size) = args.shard_size {
        if size == 0 {
            return Err("--shard-size must be at least 1".to_string());
        }
        for bad in ["--obs", "--obs-out", "--trace", "--trace-out", "--progress", "--list"] {
            if seen.iter().any(|f| f == bad) {
                return Err(format!(
                    "{bad} is not available with --shard-size (sharded campaigns commit \
                     shard artifacts, not obs/trace streams)"
                ));
            }
        }
    }

    let parse_kinds = |sel: &str| -> Result<Vec<AttackKind>, String> {
        match sel {
            "none" => Ok(Vec::new()),
            "all" => {
                Ok(vec![AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe])
            }
            list => parse_list(list, "attack", |s| match s {
                "fr" => Some(AttackKind::FlushReload),
                "er" => Some(AttackKind::EvictReload),
                "pp" => Some(AttackKind::PrimeProbe),
                _ => None,
            }),
        }
    };
    let kinds = parse_kinds(&attacks_sel)?;
    let leak_kinds = parse_kinds(&leakage_sel)?;
    let noises: Vec<NoiseSpec> = parse_list(&noise_sel, "noise", |s| match s {
        "none" => Some(NoiseSpec::NONE),
        "c3" => Some(NoiseSpec::C3),
        "c4" => Some(NoiseSpec::C4),
        "c3c4" => Some(NoiseSpec::C3C4),
        _ => None,
    })?;
    let crosses: Vec<bool> = match cross_sel.as_str() {
        "single" => vec![false],
        "cross" => vec![true],
        "both" => vec![false, true],
        other => return Err(format!("unknown --cross-core mode `{other}`")),
    };
    args.grid.attacks.clear();
    for &kind in &kinds {
        for &noise in &noises {
            for &cross_core in &crosses {
                args.grid.attacks.push(AttackCase { kind, noise, cross_core });
            }
        }
    }
    for &kind in &leak_kinds {
        for &noise in &noises {
            for &cross_core in &crosses {
                args.grid.leakages.push(AttackCase { kind, noise, cross_core });
            }
        }
    }

    let configs: Vec<DefenseConfig> = match defenses_sel.as_str() {
        "all" => DefenseConfig::ALL.to_vec(),
        list => parse_list(list, "defense", |s| match s {
            "base" => Some(DefenseConfig::None),
            "st" => Some(DefenseConfig::St),
            "at" => Some(DefenseConfig::At),
            "stat" => Some(DefenseConfig::StAt),
            "atrp" => Some(DefenseConfig::AtRp),
            "full" => Some(DefenseConfig::Full),
            _ => None,
        })?,
    };
    let buffers: Vec<usize> = parse_list(&buffers_sel, "buffer count", |s| s.parse().ok())?;
    args.grid.defenses = configs
        .iter()
        .flat_map(|&config| buffers.iter().map(move |&buffers| DefensePoint { config, buffers }))
        .collect();

    args.grid.basics = parse_list(&basics_sel, "basic prefetcher", |s| match s {
        "none" => Some(Basic::None),
        "tagged" => Some(Basic::Tagged),
        "stride" => Some(Basic::Stride),
        _ => None,
    })?;
    args.grid.hierarchies = match hier_sel.as_str() {
        "all" => Hierarchy::ALL.to_vec(),
        list => parse_list(list, "hierarchy", |s| {
            Hierarchy::ALL.iter().copied().find(|h| h.tag() == s)
        })?,
    };
    args.grid.workloads = workload_names(&workloads_sel)?;
    args.grid.seeds = seeds.max(1);
    if !args.grid.leakages.is_empty() {
        // Secrets are placed at distinct indices of the paper probe
        // window; reject impossible campaign shapes up front.
        let window = prefender_attacks::AttackLayout::paper().n_indices as u32;
        if args.grid.leakage_secrets < 1 || args.grid.leakage_secrets > window {
            return Err(format!(
                "--secrets must be 1..={window} (the probe-window width), got {}",
                args.grid.leakage_secrets
            ));
        }
        if args.grid.leakage_trials < 1 {
            return Err("--trials must be at least 1".to_string());
        }
    }
    // Resampling knobs only make sense when a leakage campaign runs, and
    // alpha must be a usable significance level.
    args.grid.resample().validate().map_err(|e| format!("--alpha: {e}"))?;
    if args.grid.resample().is_enabled() && args.grid.leakages.is_empty() {
        return Err("--permutations/--bootstrap need at least one --leakage campaign".to_string());
    }
    if args.trace_out.is_some() && !args.trace {
        return Err("--trace-out requires --trace".to_string());
    }
    Ok(args)
}

/// Writes the final campaign artifacts (sweep + leakage when present)
/// atomically into `out`, returning the paths written. Every artifact
/// write in this binary goes through [`write_atomic`] — a crash leaves
/// either the old bytes or the new bytes, never a torn file.
fn write_report_artifacts(
    out: &std::path::Path,
    report: &SweepReport,
) -> Result<Vec<std::path::PathBuf>, String> {
    let mut pairs = vec![("sweep.json", report.to_json()), ("sweep.csv", report.to_csv())];
    if report.has_leakage() {
        pairs.push(("leakage.json", report.leakage_json()));
        pairs.push(("leakage.csv", report.leakage_csv()));
    }
    let mut wrote = Vec::with_capacity(pairs.len());
    for (name, body) in pairs {
        let path = out.join(name);
        write_atomic(&path, body).map_err(|e| format!("writing {}: {e}", path.display()))?;
        wrote.push(path);
    }
    Ok(wrote)
}

/// Validates the output directory *before* running anything: hours of
/// compute should not be lost to an unwritable `--out` discovered at
/// artifact time.
fn ensure_writable_dir(dir: &std::path::Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let probe = dir.join(format!(".sweep-writable.tmp.{}", std::process::id()));
    std::fs::write(&probe, b"probe")
        .map_err(|e| format!("{} is not writable: {e}", dir.display()))?;
    let _ = std::fs::remove_file(&probe);
    Ok(())
}

fn main() -> ExitCode {
    // Fault injection for the crash-resume harness: honor
    // PREFENDER_FAILPOINTS before anything touches the filesystem.
    if let Err(e) = prefender_obs::arm_failpoints_from_env() {
        eprintln!("sweep: {}: {e}", prefender_obs::FAILPOINTS_ENV);
        return ExitCode::FAILURE;
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("sweep: {e}");
            }
            eprintln!("usage: sweep [--attacks L] [--noise L] [--cross-core M] [--defenses L]");
            eprintln!("             [--buffers L] [--basics L] [--hierarchies L] [--workloads L]");
            eprintln!(
                "             [--leakage L] [--secrets N] [--trials N] [--jitter N] [--seeds N]"
            );
            eprintln!("             [--permutations N] [--bootstrap N] [--alpha F]");
            eprintln!("             [--threads N] [--seed S] [--out DIR] [--bench-json PATH]");
            eprintln!("             [--shard-size N] [--resume DIR]");
            eprintln!("             [--list] [--quiet] [--progress] [--obs] [--obs-out PATH]");
            eprintln!("             [--trace] [--trace-out PATH]");
            return if e == "help" { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };
    if args.resume.is_none() && args.grid.is_empty() {
        eprintln!("sweep: the selected grid is empty (no attacks, workloads or leakage campaigns)");
        return ExitCode::FAILURE;
    }

    if args.list {
        let n = args.grid.len();
        let sims = args.grid.sims();
        // Dry run: print the enumerated work-list for campaign sizing.
        let scenarios = args.grid.enumerate();
        for s in &scenarios {
            println!("{:>6}  {}", s.index, s.id());
        }
        // Distinct machine-shaping keys = the machine-rebuild floor under
        // config-major scheduling (each worker rebuilds at most once per
        // distinct configuration; everything else is an in-place reset).
        let mut keys: Vec<_> = scenarios.iter().map(|s| s.machine_key()).collect();
        keys.sort();
        keys.dedup();
        println!(
            "{n} scenarios ({sims} estimated simulations, {} distinct machine configs), \
             not executed (--list)",
            keys.len()
        );
        if args.trace {
            // Coarse planning estimate: attack/leakage sims emit on the
            // order of ~25k flight-recorder events each (demand + MSHR +
            // prefetch traffic over a paper probe schedule).
            const EST_EVENTS_PER_SIM: u64 = 25_000;
            let cap = prefender_obs::DEFAULT_TRACE_CAPACITY;
            let event_size = std::mem::size_of::<prefender_obs::TraceEvent>();
            println!(
                "trace: ~{} events estimated ({sims} sims x ~{EST_EVENTS_PER_SIM}/sim); \
                 ring buffer {cap} events ({} KiB) per worker thread",
                sims as u64 * EST_EVENTS_PER_SIM,
                cap * event_size / 1024,
            );
        }
        return ExitCode::SUCCESS;
    }
    if args.resume.is_none() {
        let (n, sims) = (args.grid.len(), args.grid.sims());
        eprintln!(
            "sweep: {n} scenarios / {sims} sims ({} attack cases, {} workloads, {} leakage campaigns) x {} defenses x {} basics x {} hierarchies x {} seeds",
            args.grid.attacks.len(),
            args.grid.workloads.len(),
            args.grid.leakages.len(),
            args.grid.defenses.len(),
            args.grid.basics.len(),
            args.grid.hierarchies.len(),
            args.grid.seeds,
        );
        // Fail fast on an unusable --out, before any compute runs.
        if let Err(e) = ensure_writable_dir(&args.out) {
            eprintln!("sweep: {e}");
            return ExitCode::FAILURE;
        }
    }
    let opts = SweepOptions { threads: args.threads, campaign_seed: args.campaign_seed };
    if args.trace {
        prefender_obs::arm_trace(prefender_obs::DEFAULT_TRACE_CAPACITY);
    }
    let start = Instant::now();
    let (report, obs) = if let Some(dir) = args.resume.clone() {
        // The manifest carries the grid and seed; the command line only
        // chose the directory. Rebind args so reporting below sees the
        // campaign's real shape.
        match resume_sharded(&dir, args.threads) {
            Ok((report, manifest, stats)) => {
                eprintln!("sweep: resume: {}", stats.render());
                args.grid = manifest.grid;
                args.campaign_seed = manifest.campaign_seed;
                args.out = dir;
                (report, None)
            }
            Err(e) => {
                eprintln!("sweep: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(size) = args.shard_size {
        match run_sharded(&args.out, &args.grid, &opts, size) {
            Ok((report, stats)) => {
                eprintln!("sweep: shards: {}", stats.render());
                (report, None)
            }
            Err(e) => {
                eprintln!("sweep: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        // `run_sweep` is `run_sweep_observed` minus the extras, so running
        // observed unconditionally cannot change the artifacts — the obs
        // outputs are simply dropped unless a flag asks for them.
        let total = args.grid.len() as u64;
        let reporter =
            args.progress.then(|| std::sync::Mutex::new(ProgressReporter::new("sweep", total)));
        let on_chunk = |done: usize, _total: usize| {
            if let Some(r) = &reporter {
                r.lock().expect("progress reporter").update(done as u64);
            }
        };
        let progress: Option<&(dyn Fn(usize, usize) + Sync)> =
            if args.progress { Some(&on_chunk) } else { None };
        let (report, obs) = run_sweep_observed(&args.grid, &opts, progress);
        if let Some(r) = &reporter {
            r.lock().expect("progress reporter").finish(total);
        }
        (report, Some(obs))
    };
    if args.trace {
        prefender_obs::disarm_trace();
    }
    let n = args.grid.len();
    let sims = args.grid.sims();
    let elapsed = start.elapsed();
    let per_sec = n as f64 / elapsed.as_secs_f64().max(1e-9);

    let wrote = match write_report_artifacts(&args.out, &report) {
        Ok(wrote) => wrote,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::FAILURE;
        }
    };

    if !args.quiet {
        println!("{}", report.render_table());
    }
    let leaked = report.results.iter().filter(|r| r.leaked == Some(true)).count();
    let defended = report.results.iter().filter(|r| r.leaked == Some(false)).count();
    println!(
        "{n} scenarios / {sims} sims in {:.2?} ({per_sec:.1} scenarios/s, threads={}): {leaked} leaked, {defended} defended, {} campaigns, {} perf runs",
        elapsed,
        args.threads,
        report.results.iter().filter(|r| r.is_leakage()).count(),
        report.results.iter().filter(|r| r.leaked.is_none() && !r.is_leakage()).count(),
    );
    println!(
        "wrote {}",
        wrote.iter().map(|p| p.display().to_string()).collect::<Vec<_>>().join(", ")
    );

    // The obs/trace flags conflict with --shard-size/--resume at parse
    // time, so `obs` is always present on these paths.
    if args.obs {
        let obs = obs.as_ref().expect("--obs runs the in-memory path");
        let path = args.out.join("obs.json");
        if let Err(e) = write_atomic(&path, obs.to_json() + "\n") {
            eprintln!("sweep: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    if let Some(path) = &args.obs_out {
        let obs = obs.as_ref().expect("--obs-out runs the in-memory path");
        if let Err(e) = write_atomic(path, obs.events_jsonl()) {
            eprintln!("sweep: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    if args.trace {
        let obs = obs.as_ref().expect("--trace runs the in-memory path");
        let path = args.trace_out.clone().unwrap_or_else(|| args.out.join("trace.jsonl"));
        if let Err(e) = write_atomic(&path, obs.trace_jsonl()) {
            eprintln!("sweep: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} ({} events, {} dropped)",
            path.display(),
            obs.trace_events(),
            obs.trace_dropped()
        );
    }

    if let Some(path) = args.bench_json {
        let record = format!(
            "{{\"bench\": \"sweep\", \"scenarios\": {n}, \"sims\": {sims}, \"threads\": {}, \
             \"elapsed_secs\": {:.6}, \"scenarios_per_sec\": {:.3}, \"sims_per_sec\": {:.3}, \
             \"host\": {}}}\n",
            args.threads,
            elapsed.as_secs_f64(),
            per_sec,
            sims as f64 / elapsed.as_secs_f64().max(1e-9),
            HostInfo::capture().json_inline(),
        );
        if let Err(e) = write_atomic(&path, record) {
            eprintln!("sweep: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::parse_args;

    fn parse(line: &str) -> Result<super::Args, String> {
        parse_args(&line.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn resume_conflicts_with_every_grid_shaping_flag() {
        for flags in [
            "--resume d --attacks fr",
            "--resume d --noise c3",
            "--resume d --defenses full",
            "--resume d --workloads all",
            "--resume d --leakage pp",
            "--resume d --secrets 4",
            "--resume d --trials 2",
            "--resume d --seeds 3",
            "--resume d --seed 7",
            "--resume d --alpha 0.1",
            "--resume d --out elsewhere",
            "--resume d --list",
            "--resume d --shard-size 4",
            "--resume d --obs",
            "--resume d --trace",
            "--resume d --progress",
            "--resume d --bench-json b.json",
        ] {
            let err = parse(flags).expect_err(flags);
            assert!(err.contains("conflicts with --resume"), "`{flags}` -> {err}");
        }
    }

    #[test]
    fn resume_allows_execution_knobs_only() {
        let args = parse("--resume some/dir --threads 8 --quiet").expect("compatible flags");
        assert_eq!(args.resume.as_deref(), Some(std::path::Path::new("some/dir")));
        assert_eq!(args.threads, 8);
        assert!(args.quiet);
    }

    #[test]
    fn shard_size_must_be_positive() {
        let err = parse("--shard-size 0").unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse("--shard-size nope").unwrap_err();
        assert!(err.contains("invalid --shard-size"), "{err}");
        assert_eq!(parse("--shard-size 16").expect("valid").shard_size, Some(16));
    }

    #[test]
    fn shard_size_conflicts_with_obs_and_trace_streams() {
        for flags in [
            "--shard-size 4 --obs",
            "--shard-size 4 --obs-out o.jsonl",
            "--shard-size 4 --trace",
            "--shard-size 4 --trace-out t.jsonl",
            "--shard-size 4 --progress",
            "--shard-size 4 --list",
        ] {
            let err = parse(flags).expect_err(flags);
            assert!(err.contains("not available with --shard-size"), "`{flags}` -> {err}");
        }
    }

    #[test]
    fn flags_that_need_values_say_so() {
        for flag in ["--resume", "--shard-size"] {
            let err = parse(flag).unwrap_err();
            assert!(err.contains("needs a value"), "`{flag}` -> {err}");
        }
    }
}
