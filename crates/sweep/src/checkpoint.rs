//! Checkpointed campaigns: the crash-safe execution loop over a shard
//! plan, and the manifest that makes a campaign directory self-describing.
//!
//! ## Layout of a campaign directory
//!
//! ```text
//! <dir>/campaign.manifest      identity: grid spec, seed, shard size
//! <dir>/shards/shard-*.psd     one checksummed artifact per shard
//! <dir>/quarantine/            shards that failed validation on resume
//! <dir>/sweep.json, sweep.csv  final artifacts (written by the CLI)
//! ```
//!
//! [`run_sharded`] writes the manifest first (atomically), then runs
//! shards **in shard order**, committing each through the
//! write-tmp → fsync → rename protocol — so at any kill point the
//! directory holds the manifest plus a prefix-closed set of complete,
//! checksummed shards. [`resume_sharded`] reloads the manifest,
//! validates every shard file against it (complete → loaded and
//! skipped; truncated/corrupt/foreign → moved to `quarantine/` and
//! re-run), executes what is missing, and merges everything in scenario
//! index order.
//!
//! ## Why resume-equality is exact
//!
//! Three properties compose: (1) each scenario's seed derives from
//! `(campaign_seed, index, seed_slot)` alone, so a re-run of any range
//! reproduces the original results bit for bit; (2) shard records
//! serialize floats by exact bits, so a *loaded* result equals the
//! *computed* one; (3) the final artifacts are pure functions of the
//! results in index order. An interrupted-and-resumed campaign
//! therefore emits byte-identical `sweep.json`/`sweep.csv`/leakage
//! artifacts to an uninterrupted single-process run — the invariant the
//! crash-resume tests and the CI smoke step enforce with `cmp`.

use std::fmt;
use std::fs;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};

use prefender_obs::{
    atomic_tmp_pid, failpoint, is_atomic_tmp, pid_alive, write_atomic, ObsCounters,
};

use prefender_leakage::ResampleOptions;

use crate::artifact::{SweepReport, REPORT_SCHEMA_VERSION};
use crate::engine::{parallel_map, SweepOptions};
use crate::grid::SweepGrid;
use crate::scenario::{run_scenario_with, Scenario, ScenarioResult};
use crate::shard::{decode_shard, encode_shard, fnv1a64, shard_file_name, ShardHeader, ShardPlan};

/// Manifest file name inside a campaign directory.
pub const MANIFEST_NAME: &str = "campaign.manifest";

/// Subdirectory holding committed shard artifacts.
pub const SHARD_DIR: &str = "shards";

/// Subdirectory where invalid shards are moved on resume.
pub const QUARANTINE_DIR: &str = "quarantine";

const MANIFEST_MAGIC: &str = "PREFENDER-CAMPAIGN v1";

/// What went wrong starting or resuming a campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// An I/O operation failed (includes injected failpoint errors).
    Io {
        /// The path being read/written.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The directory has no readable campaign manifest.
    NotACampaign(PathBuf),
    /// A fresh campaign was started into a directory that already holds
    /// one (resume it, or pick a new directory).
    AlreadyStarted(PathBuf),
    /// The manifest exists but is corrupt or incompatible.
    Manifest(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            CampaignError::NotACampaign(dir) => write!(
                f,
                "{} is not a campaign directory (no {MANIFEST_NAME}); \
                 point --resume at a directory a sharded sweep wrote",
                dir.display()
            ),
            CampaignError::AlreadyStarted(dir) => write!(
                f,
                "{} already holds a campaign ({MANIFEST_NAME} exists); \
                 use --resume {} to continue it, or choose a fresh --out",
                dir.display(),
                dir.display()
            ),
            CampaignError::Manifest(msg) => write!(f, "bad campaign manifest: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

pub(crate) fn io_err(path: &Path) -> impl FnOnce(io::Error) -> CampaignError + '_ {
    move |source| CampaignError::Io { path: path.to_path_buf(), source }
}

/// The identity of a sharded campaign, persisted as
/// `campaign.manifest` before any shard runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The campaign seed every scenario seed derives from.
    pub campaign_seed: u64,
    /// Maximum scenarios per shard.
    pub shard_size: usize,
    /// The full grid (reconstructed from its canonical spec on resume).
    pub grid: SweepGrid,
}

impl Manifest {
    /// The manifest's serialized form: line-oriented `key=value` with a
    /// trailing self-checksum, so a torn or hand-edited manifest is
    /// detected rather than trusted.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "{MANIFEST_MAGIC}\nschema={REPORT_SCHEMA_VERSION}\nseed={}\nscenarios={}\n\
             shard_size={}\ngrid={}\n",
            self.campaign_seed,
            self.grid.len(),
            self.shard_size,
            self.grid.to_spec(),
        );
        out.push_str(&format!("check={:016x}\n", fnv1a64(out.as_bytes())));
        out
    }

    /// Parses and validates [`Manifest::encode`]'s form.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first thing wrong: bad checksum,
    /// wrong magic, an incompatible schema version, an unparsable grid
    /// spec, or a scenario count that no longer matches the grid.
    pub fn decode(text: &str) -> Result<Manifest, String> {
        let body_len =
            text.rfind("\ncheck=").map(|p| p + 1).ok_or("no checksum line (truncated?)")?;
        let (body, check_line) = text.split_at(body_len);
        let declared = check_line
            .strip_prefix("check=")
            .and_then(|s| u64::from_str_radix(s.trim_end(), 16).ok())
            .ok_or("bad checksum line")?;
        let actual = fnv1a64(body.as_bytes());
        if actual != declared {
            return Err(format!("checksum mismatch ({actual:016x} != {declared:016x})"));
        }
        let mut lines = body.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err("bad magic".into());
        }
        let mut field = |key: &str| -> Result<String, String> {
            lines
                .next()
                .and_then(|l| l.strip_prefix(key))
                .and_then(|l| l.strip_prefix('='))
                .map(String::from)
                .ok_or_else(|| format!("missing `{key}` line"))
        };
        let schema: u32 = field("schema")?.parse().map_err(|_| "bad schema".to_string())?;
        if schema != REPORT_SCHEMA_VERSION {
            return Err(format!(
                "written at schema v{schema}, this build runs v{REPORT_SCHEMA_VERSION} — \
                 finish the campaign with the original binary"
            ));
        }
        let campaign_seed = field("seed")?.parse().map_err(|_| "bad seed".to_string())?;
        let scenarios: usize =
            field("scenarios")?.parse().map_err(|_| "bad scenarios".to_string())?;
        let shard_size: usize =
            field("shard_size")?.parse().map_err(|_| "bad shard_size".to_string())?;
        if shard_size == 0 {
            return Err("shard_size must be at least 1".into());
        }
        let grid = SweepGrid::from_spec(&field("grid")?)?;
        if grid.len() != scenarios {
            return Err(format!(
                "grid enumerates {} scenarios, manifest recorded {scenarios}",
                grid.len()
            ));
        }
        Ok(Manifest { campaign_seed, shard_size, grid })
    }

    /// The campaign fingerprint every shard header must carry: the
    /// checksum of the manifest body (grid spec + seed + schema), i.e.
    /// the same value as the manifest's own `check` line.
    pub fn fingerprint(&self) -> u64 {
        let encoded = self.encode();
        let body_len = encoded.rfind("\ncheck=").expect("encode always appends a check line") + 1;
        fnv1a64(&encoded.as_bytes()[..body_len])
    }

    /// The deterministic shard plan this manifest implies.
    pub fn plan(&self) -> ShardPlan {
        ShardPlan::new(self.grid.len(), self.shard_size)
    }
}

/// What a (possibly resumed) sharded campaign did per shard — the
/// resume telemetry the CLI prints and CI greps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResumeStats {
    /// Shards in the plan.
    pub shards: usize,
    /// Shards whose existing file validated — loaded, not re-run.
    pub skipped: usize,
    /// Shards whose existing file failed validation — moved to
    /// `quarantine/` and re-run. `(shard index, why)` per incident.
    pub quarantined: Vec<(usize, String)>,
    /// Shards executed this invocation.
    pub executed: usize,
    /// The campaign-layer event counters of this invocation
    /// (`shard_quarantines` here; the lease fields stay zero on the
    /// single-process paths — `work_campaign` is where they move).
    pub counters: ObsCounters,
}

impl ResumeStats {
    /// One telemetry line, e.g.
    /// `9 shards: 2 skipped (complete), 1 quarantined, 7 executed`.
    pub fn render(&self) -> String {
        format!(
            "{} shards: {} skipped (complete), {} quarantined, {} executed",
            self.shards,
            self.skipped,
            self.quarantined.len(),
            self.executed
        )
    }
}

/// Starts a sharded campaign in `dir`: writes `campaign.manifest`, runs
/// every shard (committing each atomically under `shards/`), and
/// returns the merged report. The directory must not already hold a
/// campaign — resuming an interrupted one is [`resume_sharded`]'s job.
///
/// # Errors
///
/// [`CampaignError::AlreadyStarted`] if a manifest exists, or any I/O
/// failure creating/writing the directory.
pub fn run_sharded(
    dir: &Path,
    grid: &SweepGrid,
    opts: &SweepOptions,
    shard_size: usize,
) -> Result<(SweepReport, ResumeStats), CampaignError> {
    let manifest = init_campaign(dir, grid, opts, shard_size)?;
    execute(dir, &manifest, opts.threads, false)
}

/// Creates a campaign directory without running anything: writes the
/// manifest (atomically) and the `shards/` subdirectory, so worker
/// processes ([`crate::work_campaign`], `sweep work`) can start
/// claiming shards. The directory must not already hold a campaign.
///
/// # Errors
///
/// [`CampaignError::AlreadyStarted`] if a manifest exists, or any I/O
/// failure creating/writing the directory.
pub fn init_campaign(
    dir: &Path,
    grid: &SweepGrid,
    opts: &SweepOptions,
    shard_size: usize,
) -> Result<Manifest, CampaignError> {
    if shard_size == 0 {
        return Err(CampaignError::Manifest("shard size must be at least 1".into()));
    }
    let manifest_path = dir.join(MANIFEST_NAME);
    if manifest_path.exists() {
        return Err(CampaignError::AlreadyStarted(dir.to_path_buf()));
    }
    fs::create_dir_all(dir.join(SHARD_DIR)).map_err(io_err(dir))?;
    let manifest = Manifest { campaign_seed: opts.campaign_seed, shard_size, grid: grid.clone() };
    write_atomic(&manifest_path, manifest.encode()).map_err(io_err(&manifest_path))?;
    Ok(manifest)
}

/// Loads and validates the manifest of the campaign recorded in `dir`.
///
/// # Errors
///
/// [`CampaignError::NotACampaign`] when `dir` has no manifest,
/// [`CampaignError::Manifest`] when it has a corrupt/incompatible one.
pub fn load_manifest(dir: &Path) -> Result<Manifest, CampaignError> {
    let manifest_path = dir.join(MANIFEST_NAME);
    let text = match fs::read_to_string(&manifest_path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(CampaignError::NotACampaign(dir.to_path_buf()))
        }
        Err(e) => return Err(io_err(&manifest_path)(e)),
    };
    Manifest::decode(&text)
        .map_err(|e| CampaignError::Manifest(format!("{}: {e}", manifest_path.display())))
}

/// Resumes the campaign recorded in `dir`: validates existing shards
/// (complete → loaded, invalid → quarantined), runs whatever is missing
/// and returns the merged report plus the reloaded manifest — exactly
/// the bytes-producing state a fresh uninterrupted run reaches.
/// Idempotent: resuming a complete campaign re-runs nothing.
///
/// # Errors
///
/// [`CampaignError::NotACampaign`] when `dir` has no manifest,
/// [`CampaignError::Manifest`] when it has a corrupt/incompatible one.
pub fn resume_sharded(
    dir: &Path,
    threads: usize,
) -> Result<(SweepReport, Manifest, ResumeStats), CampaignError> {
    let manifest = load_manifest(dir)?;
    fs::create_dir_all(dir.join(SHARD_DIR)).map_err(io_err(dir))?;
    let (report, stats) = execute(dir, &manifest, threads, true)?;
    Ok((report, manifest, stats))
}

/// The shared execution loop: walk the plan in shard order, reuse what
/// validates (resume mode), re-run the rest, merge in index order.
fn execute(
    dir: &Path,
    manifest: &Manifest,
    threads: usize,
    resume: bool,
) -> Result<(SweepReport, ResumeStats), CampaignError> {
    let shard_dir = dir.join(SHARD_DIR);
    sweep_stale_tmps(&shard_dir);
    let scenarios = manifest.grid.enumerate();
    let resample = manifest.grid.resample();
    let plan = manifest.plan();
    let fingerprint = manifest.fingerprint();
    let mut stats = ResumeStats { shards: plan.n_shards(), ..ResumeStats::default() };
    let mut results: Vec<ScenarioResult> = Vec::with_capacity(scenarios.len());

    for shard in 0..plan.n_shards() {
        let range = plan.range(shard);
        let header = ShardHeader {
            shard,
            start: range.start,
            end: range.end,
            campaign_seed: manifest.campaign_seed,
            fingerprint,
        };
        let path = shard_dir.join(shard_file_name(shard));
        if resume && path.exists() {
            match fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| decode_shard(&text, &header))
            {
                Ok(loaded) => {
                    results.extend(loaded);
                    stats.skipped += 1;
                    continue;
                }
                Err(why) => {
                    quarantine(dir, &path, shard).map_err(io_err(&path))?;
                    stats.counters.shard_quarantines += 1;
                    stats.quarantined.push((shard, why));
                }
            }
        }
        let shard_results =
            run_shard_range(&scenarios, range, manifest.campaign_seed, &resample, threads);
        failpoint("shard.write").map_err(io_err(&path))?;
        write_atomic(&path, encode_shard(&header, &shard_results)).map_err(io_err(&path))?;
        failpoint("shard.commit").map_err(io_err(&path))?;
        results.extend(shard_results);
        stats.executed += 1;
    }
    debug_assert!(results.iter().enumerate().all(|(k, r)| r.index == k));
    Ok((SweepReport { campaign_seed: manifest.campaign_seed, results }, stats))
}

/// Runs one shard's scenario range and returns its results in index
/// order — the **single** execution path every campaign mode shares
/// (in-process `run_sharded`/`resume_sharded` and the multi-process
/// worker loop in [`crate::lease`]), which is what makes a shard's
/// bytes identical no matter which process computed them.
///
/// Scheduling is config-major within the shard for runner reuse;
/// results are pure functions of each scenario, so the restored index
/// order erases the scheduling choice.
pub(crate) fn run_shard_range(
    scenarios: &[Scenario],
    range: Range<usize>,
    campaign_seed: u64,
    resample: &ResampleOptions,
    threads: usize,
) -> Vec<ScenarioResult> {
    let mut order: Vec<&Scenario> = scenarios[range].iter().collect();
    order.sort_by_key(|s| s.machine_key());
    let mut shard_results =
        parallel_map(&order, threads, |s| run_scenario_with(s, campaign_seed, resample));
    shard_results.sort_by_key(|r| r.index);
    shard_results
}

/// The identity header every process derives for a shard of this
/// manifest — what binds a shard file to its campaign.
pub(crate) fn shard_header(manifest: &Manifest, fingerprint: u64, shard: usize) -> ShardHeader {
    let range = manifest.plan().range(shard);
    ShardHeader {
        shard,
        start: range.start,
        end: range.end,
        campaign_seed: manifest.campaign_seed,
        fingerprint,
    }
}

/// Moves an invalid shard file into `quarantine/`, never overwriting an
/// earlier incident (a numeric suffix disambiguates repeats).
pub(crate) fn quarantine(dir: &Path, path: &Path, shard: usize) -> io::Result<()> {
    let qdir = dir.join(QUARANTINE_DIR);
    fs::create_dir_all(&qdir)?;
    let base = shard_file_name(shard);
    let mut target = qdir.join(&base);
    let mut n = 1;
    while target.exists() {
        n += 1;
        target = qdir.join(format!("{base}.{n}"));
    }
    fs::rename(path, target)
}

/// Deletes leftover `write_atomic` temporaries of **dead** writers —
/// they hold no committed data by construction. Temporaries whose
/// embedded PID is still alive are left alone: in a multi-process
/// campaign they belong to a concurrent worker mid-write, and deleting
/// one would fail that worker's rename. (Dead workers — including
/// foreign PIDs from other killed processes — are exactly what this
/// sweeps.)
pub(crate) fn sweep_stale_tmps(shard_dir: &Path) {
    let Ok(entries) = fs::read_dir(shard_dir) else { return };
    for entry in entries.filter_map(|e| e.ok()) {
        let p = entry.path();
        if is_atomic_tmp(&p) && !atomic_tmp_pid(&p).is_some_and(pid_alive) {
            let _ = fs::remove_file(&p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_sweep;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("prefender-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_grid() -> SweepGrid {
        let mut g = SweepGrid::security_quick();
        g.seeds = 3;
        g
    }

    #[test]
    fn manifest_round_trips_and_rejects_corruption() {
        let m = Manifest { campaign_seed: 0xC0FFEE, shard_size: 4, grid: small_grid() };
        let text = m.encode();
        assert_eq!(Manifest::decode(&text).unwrap(), m);
        // Fingerprint is stable and equals the encoded check value.
        assert!(text.contains(&format!("check={:016x}", m.fingerprint())));
        for bad in [
            text.replace("seed=12648430", "seed=12648431"),
            text[..text.len() - 8].to_string(),
            text.replace("schema=", "schema=9"),
            String::new(),
            "garbage\n".into(),
        ] {
            assert!(Manifest::decode(&bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn sharded_run_equals_in_memory_run_and_resume_is_idempotent() {
        let dir = scratch("equal");
        let grid = small_grid();
        let opts = SweepOptions { threads: 2, campaign_seed: 0xC0FFEE };
        let reference = run_sweep(&grid, &opts);
        let (report, stats) = run_sharded(&dir, &grid, &opts, 2).unwrap();
        assert_eq!(report, reference);
        assert_eq!(stats.shards, 3, "6 scenarios / shard size 2");
        assert_eq!(stats.executed, 3);
        assert_eq!(stats.skipped, 0);
        // Starting again into the same directory is refused...
        let again = run_sharded(&dir, &grid, &opts, 2).unwrap_err();
        assert!(matches!(again, CampaignError::AlreadyStarted(_)), "{again}");
        // ...but resume loads everything without re-running.
        let (resumed, manifest, stats) = resume_sharded(&dir, 1).unwrap();
        assert_eq!(resumed, reference);
        assert_eq!(manifest.grid, grid);
        assert_eq!(stats.skipped, 3);
        assert_eq!(stats.executed, 0);
        assert!(stats.quarantined.is_empty());
        assert_eq!(stats.render(), "3 shards: 3 skipped (complete), 0 quarantined, 0 executed");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rebuilds_missing_and_corrupt_shards() {
        let dir = scratch("rebuild");
        let grid = small_grid();
        let opts = SweepOptions { threads: 1, campaign_seed: 7 };
        let reference = run_sweep(&grid, &opts);
        run_sharded(&dir, &grid, &opts, 2).unwrap();
        // Delete one shard, truncate another's tail, and drop a stale
        // atomic tmp (from a dead foreign PID) into the directory.
        let shards = dir.join(SHARD_DIR);
        fs::remove_file(shards.join(shard_file_name(0))).unwrap();
        let victim = shards.join(shard_file_name(2));
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() - 7]).unwrap();
        fs::write(shards.join("shard-00001.psd.tmp.4000000000"), b"half-written").unwrap();
        let (resumed, _, stats) = resume_sharded(&dir, 8).unwrap();
        assert_eq!(resumed, reference, "resume must reproduce the uninterrupted bytes");
        assert_eq!(stats.skipped, 1);
        assert_eq!(stats.executed, 2);
        assert_eq!(stats.quarantined.len(), 1);
        assert_eq!(stats.quarantined[0].0, 2);
        assert_eq!(stats.counters.shard_quarantines, 1);
        // The bad shard is preserved for forensics, the tmp swept.
        assert!(dir.join(QUARANTINE_DIR).join(shard_file_name(2)).exists());
        assert!(!shards.join("shard-00001.psd.tmp.4000000000").exists());
        // A second incident at the same shard gets a fresh name.
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..10]).unwrap();
        let (_, _, stats) = resume_sharded(&dir, 1).unwrap();
        assert_eq!(stats.quarantined.len(), 1);
        assert!(dir.join(QUARANTINE_DIR).join("shard-00002.psd.2").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tmp_sweep_takes_dead_foreign_pids_and_spares_live_writers() {
        // Dead workers leave foreign-PID temporaries behind; the sweep
        // must take those regardless of whose PID they carry — but it
        // must never delete a temporary whose writer is still alive
        // (a concurrent worker mid-`write_atomic` would lose its
        // rename).
        let dir = scratch("tmps");
        let grid = small_grid();
        let opts = SweepOptions { threads: 1, campaign_seed: 9 };
        run_sharded(&dir, &grid, &opts, 2).unwrap();
        let shards = dir.join(SHARD_DIR);
        let dead_foreign = shards.join("shard-00000.psd.tmp.4000000000");
        let dead_other = shards.join("shard-00002.psd.tmp.3999999999");
        let live = shards.join(format!("shard-00001.psd.tmp.{}", std::process::id()));
        for p in [&dead_foreign, &dead_other, &live] {
            fs::write(p, b"in flight").unwrap();
        }
        let (resumed, _, _) = resume_sharded(&dir, 1).unwrap();
        assert_eq!(resumed, run_sweep(&grid, &opts));
        assert!(!dead_foreign.exists(), "dead foreign-pid tmp must be swept");
        assert!(!dead_other.exists(), "every dead pid is swept, not just one pattern");
        if prefender_obs::pid_alive(std::process::id()) {
            assert!(live.exists(), "a live writer's tmp must survive the sweep");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_missing_and_foreign_directories() {
        let dir = scratch("foreign");
        let err = resume_sharded(&dir, 1).unwrap_err();
        assert!(matches!(err, CampaignError::NotACampaign(_)), "{err}");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(MANIFEST_NAME), "not a manifest\n").unwrap();
        let err = resume_sharded(&dir, 1).unwrap_err();
        assert!(matches!(err, CampaignError::Manifest(_)), "{err}");
        assert!(err.to_string().contains("bad campaign manifest"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_campaign_shards_are_quarantined_not_merged() {
        // Two campaigns differing only in seed: shard files are the same
        // shape, but the fingerprint must keep them apart.
        let dir_a = scratch("fpa");
        let dir_b = scratch("fpb");
        let grid = small_grid();
        run_sharded(&dir_a, &grid, &SweepOptions { threads: 1, campaign_seed: 1 }, 3).unwrap();
        run_sharded(&dir_b, &grid, &SweepOptions { threads: 1, campaign_seed: 2 }, 3).unwrap();
        let stolen = fs::read(dir_b.join(SHARD_DIR).join(shard_file_name(0))).unwrap();
        fs::write(dir_a.join(SHARD_DIR).join(shard_file_name(0)), stolen).unwrap();
        let reference = run_sweep(&grid, &SweepOptions { threads: 1, campaign_seed: 1 });
        let (resumed, _, stats) = resume_sharded(&dir_a, 1).unwrap();
        assert_eq!(resumed, reference);
        assert_eq!(stats.quarantined.len(), 1);
        assert!(stats.quarantined[0].1.contains("does not match"), "{}", stats.quarantined[0].1);
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn injected_io_failure_surfaces_and_leaves_a_resumable_directory() {
        let _g = crate::testgate::FAILPOINT_GATE.lock().unwrap();
        let dir = scratch("inject");
        let grid = small_grid();
        let opts = SweepOptions { threads: 1, campaign_seed: 5 };
        prefender_obs::arm_failpoints("shard.write=err@2").unwrap();
        let err = run_sharded(&dir, &grid, &opts, 2).unwrap_err();
        prefender_obs::disarm_failpoints();
        assert!(matches!(err, CampaignError::Io { .. }), "{err}");
        assert!(err.to_string().contains("injected"), "{err}");
        // Shard 0 committed before the fault; resume finishes the rest
        // and the merged artifacts equal the uninterrupted run.
        let reference = run_sweep(&grid, &opts);
        let (resumed, _, stats) = resume_sharded(&dir, 1).unwrap();
        assert_eq!(resumed, reference);
        assert_eq!(stats.skipped, 1);
        assert_eq!(stats.executed, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_shard_size_is_rejected() {
        let dir = scratch("zero");
        let err = run_sharded(&dir, &small_grid(), &SweepOptions::default(), 0).unwrap_err();
        assert!(matches!(err, CampaignError::Manifest(_)), "{err}");
    }
}
