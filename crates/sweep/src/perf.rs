//! Performance-run machinery for Tables IV–VI and Figures 10–12.
//!
//! Lived in `prefender-bench` before the sweep engine existed; it now
//! sits beside the engine so both the bench harness and the `sweep`
//! binary drive workload runs through one implementation
//! (`prefender-bench` re-exports everything here).

use std::fmt;

use prefender_attacks::DefenseConfig;
use prefender_core::{Prefender, PrefenderStats};
use prefender_cpu::Machine;
use prefender_prefetch::Prefetcher;
use prefender_sim::{CacheStats, HierarchyConfig};
use prefender_workloads::Workload;

pub use prefender_attacks::Basic;

/// Which PREFENDER flavour a column uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefenderKind {
    /// Scale Tracker + Access Tracker (Table IV's rows).
    StAt {
        /// Access-buffer count (the 16/32/64 sweep).
        buffers: usize,
    },
    /// ST + AT + Record Protector (Table V's rows).
    Full {
        /// Access-buffer count.
        buffers: usize,
    },
}

/// One column of a performance table: an optional PREFENDER stacked on an
/// optional basic prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PerfColumn {
    /// The PREFENDER flavour, or `None` for baseline/basic-only columns.
    pub prefender: Option<PrefenderKind>,
    /// The basic prefetcher.
    pub basic: Basic,
}

impl PerfColumn {
    /// The no-prefetcher baseline all speedups are measured against.
    pub const BASELINE: PerfColumn = PerfColumn { prefender: None, basic: Basic::None };

    /// Builds the per-core prefetcher for this column, `None` for baseline.
    pub fn build(&self) -> Option<Box<dyn Prefetcher>> {
        let (buffers, config) = match self.prefender {
            None => (32, DefenseConfig::None),
            Some(PrefenderKind::StAt { buffers }) => (buffers, DefenseConfig::StAt),
            Some(PrefenderKind::Full { buffers }) => (buffers, DefenseConfig::Full),
        };
        config.build_prefetcher(64, 4096, buffers, self.basic)
    }

    /// Column label in the paper's style.
    pub fn label(&self) -> String {
        match (self.prefender, self.basic) {
            (None, Basic::None) => "Baseline".to_string(),
            (None, b) => b.to_string(),
            (Some(PrefenderKind::StAt { buffers }), Basic::None) => {
                format!("P-ST+AT/{buffers}")
            }
            (Some(PrefenderKind::Full { buffers }), Basic::None) => format!("Prefender/{buffers}"),
            (Some(PrefenderKind::StAt { buffers }), b) => format!("P-ST+AT/{buffers}({b})"),
            (Some(PrefenderKind::Full { buffers }), b) => format!("Prefender/{buffers}({b})"),
        }
    }
}

/// The measurements of one workload under one column.
#[derive(Debug, Clone)]
pub struct PerfResult {
    /// Total cycles to completion.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// L1D statistics (Figure 10 reads `demand_miss_latency`).
    pub l1d: CacheStats,
    /// PREFENDER per-unit prefetch counts, when a PREFENDER ran.
    pub prefender: Option<PrefenderStats>,
    /// Sampled `(cycle, protected-buffer-count)` series, when requested
    /// (Figure 12).
    pub protected_series: Vec<(u64, u64)>,
}

/// Runs `workload` under `column` on the paper-baseline single-core
/// machine. `sample_every` turns on the Figure 12 protected-buffer
/// sampling at the given cycle granularity.
pub fn run_perf(workload: &Workload, column: PerfColumn, sample_every: Option<u64>) -> PerfResult {
    let mut m = Machine::new(HierarchyConfig::paper_baseline(1).expect("valid baseline"));
    if let Some(p) = column.build() {
        m.set_prefetcher(0, p);
    }
    workload.install(&mut m);

    let mut protected_series = Vec::new();
    match sample_every {
        None => {
            let s = m.run();
            assert!(!s.truncated, "workload {} truncated", workload.name());
        }
        Some(bucket) => {
            let mut next = bucket;
            while m.step() {
                if m.now().raw() >= next {
                    protected_series.push((m.now().raw(), protected_count(&m)));
                    next += bucket;
                }
            }
            protected_series.push((m.now().raw(), protected_count(&m)));
        }
    }

    PerfResult {
        cycles: m.now().raw(),
        instructions: m.core(0).retired(),
        l1d: *m.mem().l1d(0).stats(),
        prefender: prefender_stats(&m, 0),
        protected_series,
    }
}

/// Reads PREFENDER per-unit stats from a machine core (downcast through
/// the `Prefetcher::as_any` hook).
pub fn prefender_stats(m: &Machine, core: usize) -> Option<PrefenderStats> {
    m.prefetcher(core)?.as_any()?.downcast_ref::<Prefender>().map(|p| p.stats())
}

fn protected_count(m: &Machine) -> u64 {
    m.prefetcher(0)
        .and_then(|p| p.as_any())
        .and_then(|a| a.downcast_ref::<Prefender>())
        .map_or(0, |p| p.protected_count() as u64)
}

impl fmt::Display for PerfColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_workloads::spec2006;

    #[test]
    fn column_labels() {
        assert_eq!(PerfColumn::BASELINE.label(), "Baseline");
        let c = PerfColumn { prefender: None, basic: Basic::Tagged };
        assert_eq!(c.label(), "Tagged");
        let c = PerfColumn {
            prefender: Some(PrefenderKind::StAt { buffers: 32 }),
            basic: Basic::Stride,
        };
        assert_eq!(c.label(), "P-ST+AT/32(Stride)");
        let c =
            PerfColumn { prefender: Some(PrefenderKind::Full { buffers: 16 }), basic: Basic::None };
        assert_eq!(c.label(), "Prefender/16");
    }

    #[test]
    fn baseline_builds_no_prefetcher() {
        assert!(PerfColumn::BASELINE.build().is_none());
    }

    #[test]
    fn streaming_workload_gains_from_tagged() {
        let w = spec2006().into_iter().find(|w| w.name() == "462.libquantum").unwrap();
        let base = run_perf(&w, PerfColumn::BASELINE, None);
        let tagged = run_perf(&w, PerfColumn { prefender: None, basic: Basic::Tagged }, None);
        assert!(
            tagged.cycles < base.cycles,
            "tagged must speed up streaming: {} vs {}",
            tagged.cycles,
            base.cycles
        );
    }

    #[test]
    fn gather_workload_gains_from_prefender() {
        let w = prefender_workloads::spec2017()
            .into_iter()
            .find(|w| w.name() == "510.parest_r")
            .unwrap();
        let base = run_perf(&w, PerfColumn::BASELINE, None);
        let p = run_perf(
            &w,
            PerfColumn { prefender: Some(PrefenderKind::StAt { buffers: 32 }), basic: Basic::None },
            None,
        );
        assert!(
            p.cycles < base.cycles,
            "PREFENDER must speed up scaled gathers: {} vs {}",
            p.cycles,
            base.cycles
        );
        assert!(p.prefender.unwrap().st_prefetches > 0, "the ST must have fired");
    }

    #[test]
    fn sampling_produces_series() {
        let w = spec2006().into_iter().find(|w| w.name() == "999.specrand").unwrap();
        let col =
            PerfColumn { prefender: Some(PrefenderKind::Full { buffers: 32 }), basic: Basic::None };
        let r = run_perf(&w, col, Some(5_000));
        assert!(!r.protected_series.is_empty());
        // specrand performs no loads: never any protected buffer.
        assert!(r.protected_series.iter().all(|&(_, p)| p == 0));
    }
}
