//! # prefender-sweep — the parallel scenario-sweep engine
//!
//! The paper's evaluation (Tables IV–VI, Figure 8) is a *grid* of
//! scenarios: attack kind × defense configuration × basic prefetcher ×
//! cache hierarchy × workload × seed. This crate turns that grid into a
//! first-class object:
//!
//! * [`SweepGrid`] — a declarative description of the scenario space,
//!   enumerated into a flat, stably-ordered work-list of [`Scenario`]s;
//! * [`run_sweep`] — shards the work-list across a worker-thread pool
//!   (each worker owns its own `Machine` + `MemorySystem`; no shared
//!   mutable state) and aggregates per-scenario [`ScenarioResult`]s.
//!   Results are **bit-identical regardless of thread count**: every
//!   scenario's probe seed is derived from the campaign seed and the
//!   scenario index, and the output is ordered by scenario index;
//! * [`SweepReport`] — machine-readable artifacts ([`SweepReport::to_json`],
//!   [`SweepReport::to_csv`]) plus a human table
//!   ([`SweepReport::render_table`]) via `prefender-stats`;
//! * [`parallel_map`] — the underlying deterministic sharded executor,
//!   reusable for any per-item campaign (the bench ablations run on it).
//!
//! The `sweep` binary exposes grid selection, `--threads`, `--seed` and
//! `--out` on the command line; see EXPERIMENTS.md.
//!
//! ```
//! use prefender_sweep::{run_sweep, SweepGrid, SweepOptions};
//!
//! let mut grid = SweepGrid::security_quick();
//! grid.seeds = 1;
//! let report = run_sweep(&grid, &SweepOptions { threads: 2, campaign_seed: 7 });
//! assert_eq!(report.results.len(), grid.len());
//! // The undefended Flush+Reload scenario leaks; the defended one does not.
//! assert!(report.results.iter().any(|r| r.leaked == Some(true)));
//! assert!(report.results.iter().any(|r| r.leaked == Some(false)));
//! ```

mod artifact;
mod checkpoint;
mod engine;
mod grid;
mod lease;
pub mod perf;
mod scenario;
#[cfg(unix)]
mod serve;
mod shard;

pub use artifact::{SweepReport, REPORT_SCHEMA_VERSION};
pub use checkpoint::{
    init_campaign, load_manifest, resume_sharded, run_sharded, CampaignError, Manifest,
    ResumeStats, MANIFEST_NAME, QUARANTINE_DIR, SHARD_DIR,
};
pub use engine::{
    parallel_map, parallel_map_2d, run_sweep, run_sweep_observed, ChunkEvent, SweepObs,
    SweepOptions, SweepTelemetry, WorkerStats,
};
pub use grid::{AttackCase, DefensePoint, Hierarchy, SweepGrid};
pub use lease::{
    claim_shard, lease_file_name, work_campaign, Claim, Heartbeat, Lease, LeaseConfig, LeaseInfo,
    WorkEvent, WorkOptions, WorkSummary, LEASE_DIR,
};
pub use scenario::{
    basic_tag, run_scenario, run_scenario_with, run_scenario_with_obs, Payload, Scenario,
    ScenarioResult,
};
#[cfg(unix)]
pub use serve::{
    done_line, event_line, hello_line, serve_campaign, ServeOptions, ServeSummary, WorkerReport,
    SERVE_SOCK,
};
pub use shard::{
    decode_shard, encode_shard, fnv1a64, shard_file_name, ShardHeader, ShardPlan, SHARD_MAGIC,
};

// The axes a grid is built from, re-exported so callers need only this
// crate.
pub use prefender_attacks::{AttackKind, Basic, DefenseConfig, NoiseSpec};
pub use prefender_leakage::{NullTest, ResampleOptions};

/// Failpoints are process-global; tests across this crate's modules
/// that arm them serialize on this gate.
#[cfg(test)]
pub(crate) mod testgate {
    pub static FAILPOINT_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
}
