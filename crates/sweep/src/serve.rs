//! `sweep serve`: spawn and supervise N `sweep work` child processes
//! over a Unix domain socket.
//!
//! The supervisor owns no shard state — coordination lives entirely in
//! the lease files ([`crate::lease`]), so the socket is *telemetry
//! only*: workers report claims, commits, breaks and quarantines as
//! line-oriented text; the supervisor renders progress, keeps
//! per-worker shard counts, restarts children that die (up to a
//! restart budget, after which it degrades to fewer workers), and
//! kills the fleet when no *progress* event arrives for a stall
//! timeout (a worker parked on a hung syscall heartbeats forever —
//! only the supervisor can tell that nothing is moving).
//!
//! Losing the socket, the supervisor, or every worker never loses
//! work: after the fleet drains, the supervisor runs one in-process
//! [`work_campaign`] *heal pass* as the final worker. That pass breaks
//! any leases the dead children left behind, re-executes their shards,
//! and returns the merged report — so `serve_campaign` converges even
//! if every child is killed instantly, and the artifacts it writes are
//! byte-identical to a 1-process run (the convergence argument in
//! [`crate::lease`]).

use std::fs;
use std::io::{BufRead, BufReader};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use prefender_obs::{ObsCounters, FAILPOINTS_ENV};

use crate::artifact::SweepReport;
use crate::checkpoint::{io_err, load_manifest, CampaignError, Manifest};
use crate::lease::{work_campaign, LeaseConfig, WorkEvent, WorkOptions, WorkSummary};

/// The supervisor's telemetry socket, inside the campaign directory.
/// (Unix socket paths are length-limited; keep campaign dirs short.)
pub const SERVE_SOCK: &str = "serve.sock";

/// Options for [`serve_campaign`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The `sweep` binary to spawn workers from (usually
    /// `std::env::current_exe()`).
    pub exe: PathBuf,
    /// Worker processes to run.
    pub workers: usize,
    /// `--threads` passed to each worker.
    pub worker_threads: usize,
    /// Dead-worker restarts allowed before degrading to fewer workers.
    pub restart_budget: usize,
    /// Lease policy passed to workers and used by the heal pass.
    pub lease: LeaseConfig,
    /// Kill the fleet when no progress event (claim/commit/break/
    /// quarantine/exit) arrives for this long — hung workers heartbeat
    /// forever; stalls are visible only here.
    pub stall_timeout: Duration,
    /// Failpoint spec injected into workers (children otherwise run
    /// with the supervisor's failpoint env *removed*, so faults aimed
    /// at workers are explicit and never hit the supervisor).
    pub worker_failpoints: Option<String>,
    /// Suppress per-event progress lines (lifecycle and break/
    /// quarantine lines always print).
    pub quiet: bool,
}

impl ServeOptions {
    /// Defaults: 1 thread per worker, restart budget `2 × workers`,
    /// default lease policy, 60 s stall timeout.
    pub fn new(exe: impl Into<PathBuf>, workers: usize) -> Self {
        ServeOptions {
            exe: exe.into(),
            workers,
            worker_threads: 1,
            restart_budget: workers.saturating_mul(2),
            lease: LeaseConfig::default(),
            stall_timeout: Duration::from_secs(60),
            worker_failpoints: None,
            quiet: false,
        }
    }
}

/// One worker slot's history across restarts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Slot index (0-based).
    pub worker: usize,
    /// Every pid that occupied this slot (restarts append).
    pub pids: Vec<u32>,
    /// Shards committed by this slot across all its incarnations.
    pub committed: u64,
}

/// What a [`serve_campaign`] run did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Worker slots requested.
    pub workers: usize,
    /// Processes spawned, including restarts.
    pub spawned: usize,
    /// Dead workers restarted.
    pub restarts: usize,
    /// Whether the restart budget ran out (finished with fewer workers).
    pub degraded: bool,
    /// Live workers killed by stall detection.
    pub stall_kills: usize,
    /// Per-slot pid/commit history.
    pub per_worker: Vec<WorkerReport>,
    /// Shards the supervisor's own heal pass had to execute.
    pub healed: u64,
    /// Lease/quarantine counters summed over worker `done` reports and
    /// the heal pass.
    pub counters: ObsCounters,
}

impl ServeSummary {
    /// One telemetry line, e.g. `4 workers (6 spawned, 2 restarts),
    /// 0 healed; leases: claims=16 renewals=3 breaks=2 reclaims=2
    /// quarantines=1`.
    pub fn render(&self) -> String {
        let c = &self.counters;
        format!(
            "{} workers ({} spawned, {} restarts{}), {} healed; leases: claims={} \
             renewals={} breaks={} reclaims={} quarantines={}",
            self.workers,
            self.spawned,
            self.restarts,
            if self.degraded { ", degraded" } else { "" },
            self.healed,
            c.lease_claims,
            c.lease_renewals,
            c.lease_breaks,
            c.lease_reclaims,
            c.shard_quarantines
        )
    }
}

/// The worker→supervisor hello: `hello <worker> <pid>`.
pub fn hello_line(worker: usize, pid: u32) -> String {
    format!("hello {worker} {pid}")
}

/// A [`WorkEvent`] as one telemetry protocol line.
pub fn event_line(event: &WorkEvent) -> String {
    match event {
        WorkEvent::Claimed { shard } => format!("claim {shard}"),
        WorkEvent::Committed { shard, done, total } => format!("commit {shard} {done} {total}"),
        WorkEvent::Broke { shard, holder_pid, age_ms } => {
            format!("break {shard} {holder_pid} {age_ms}")
        }
        WorkEvent::Quarantined { shard, .. } => format!("quarantine {shard}"),
        WorkEvent::Waiting { remaining } => format!("waiting {remaining}"),
    }
}

/// The worker's final report: `done <committed> <loaded> <claims>
/// <renewals> <breaks> <reclaims> <quarantines>`.
pub fn done_line(summary: &WorkSummary) -> String {
    let c = &summary.counters;
    format!(
        "done {} {} {} {} {} {} {}",
        summary.committed,
        summary.loaded,
        c.lease_claims,
        c.lease_renewals,
        c.lease_breaks,
        c.lease_reclaims,
        c.shard_quarantines
    )
}

/// A parsed worker telemetry line.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Msg {
    Hello { worker: usize, pid: u32 },
    Claim { shard: usize },
    Commit { shard: usize, done: usize, total: usize },
    Broke { shard: usize, holder_pid: u32, age_ms: u64 },
    Quarantine { shard: usize },
    Waiting { remaining: usize },
    Done { summary: Box<WorkSummary> },
}

impl Msg {
    fn parse(line: &str) -> Option<Msg> {
        let mut parts = line.split_whitespace();
        let kind = parts.next()?;
        let mut next = || parts.next().and_then(|p| p.parse::<u64>().ok());
        let msg = match kind {
            "hello" => Msg::Hello { worker: next()? as usize, pid: next()? as u32 },
            "claim" => Msg::Claim { shard: next()? as usize },
            "commit" => Msg::Commit {
                shard: next()? as usize,
                done: next()? as usize,
                total: next()? as usize,
            },
            "break" => {
                Msg::Broke { shard: next()? as usize, holder_pid: next()? as u32, age_ms: next()? }
            }
            "quarantine" => Msg::Quarantine { shard: next()? as usize },
            "waiting" => Msg::Waiting { remaining: next()? as usize },
            "done" => Msg::Done {
                summary: Box::new(WorkSummary {
                    shards: 0,
                    committed: next()? as usize,
                    loaded: next()? as usize,
                    counters: ObsCounters {
                        lease_claims: next()?,
                        lease_renewals: next()?,
                        lease_breaks: next()?,
                        lease_reclaims: next()?,
                        shard_quarantines: next()?,
                        ..ObsCounters::default()
                    },
                }),
            },
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(msg)
    }
}

/// State shared between the supervise loop and per-connection readers.
struct Shared {
    /// Bumped on every *progress* event (not `waiting`) — the stall
    /// detector's signal.
    progress: AtomicU64,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    /// `(important, text)` lines for the supervisor to print.
    lines: Vec<(bool, String)>,
    /// Commits per worker slot.
    committed: Vec<u64>,
    /// Counters accumulated from worker `done` reports.
    counters: ObsCounters,
}

/// One socket connection: attribute lines to the slot named by its
/// hello, render them, and fold `done` reports into the shared state.
fn read_connection(stream: UnixStream, shared: Arc<Shared>) {
    let _ = stream.set_nonblocking(false);
    let reader = BufReader::new(stream);
    let mut slot: Option<usize> = None;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let Some(msg) = Msg::parse(&line) else { continue };
        if !matches!(msg, Msg::Waiting { .. }) {
            shared.progress.fetch_add(1, Ordering::Relaxed);
        }
        let mut inner = shared.inner.lock().unwrap();
        let who = slot.map_or_else(|| "worker ?".into(), |s| format!("worker {s}"));
        match msg {
            Msg::Hello { worker, pid } => {
                slot = Some(worker);
                inner.lines.push((false, format!("worker {worker}: online (pid {pid})")));
            }
            Msg::Claim { shard } => {
                inner.lines.push((false, format!("{who}: claimed shard {shard}")));
            }
            Msg::Commit { shard, done, total } => {
                if let Some(s) = slot {
                    if s < inner.committed.len() {
                        inner.committed[s] += 1;
                    }
                }
                inner
                    .lines
                    .push((false, format!("{who}: committed shard {shard} ({done}/{total})")));
            }
            Msg::Broke { shard, holder_pid, age_ms } => {
                inner.lines.push((
                    true,
                    format!(
                        "{who}: broke stale lease on shard {shard} \
                         (holder pid {holder_pid}, heartbeat {age_ms}ms old)"
                    ),
                ));
            }
            Msg::Quarantine { shard } => {
                inner.lines.push((true, format!("{who}: quarantined invalid shard {shard}")));
            }
            Msg::Waiting { remaining } => {
                inner.lines.push((false, format!("{who}: waiting ({remaining} shards held)")));
            }
            Msg::Done { summary } => {
                inner.counters.merge(&summary.counters);
                inner.lines.push((false, format!("{who}: done ({})", summary.render())));
            }
        }
    }
}

struct Slot {
    child: Option<Child>,
    pids: Vec<u32>,
}

/// Runs a campaign with `opts.workers` supervised child processes and
/// returns the merged report — the same bytes as a 1-process run. The
/// campaign manifest must already exist ([`crate::init_campaign`]).
/// Progress renders to stderr.
///
/// # Errors
///
/// Manifest/socket/spawn failures, or the heal pass failing — but a
/// child dying is *not* an error: it is restarted (within the budget)
/// or its work reclaimed by the survivors and the heal pass.
pub fn serve_campaign(
    dir: &Path,
    opts: &ServeOptions,
) -> Result<(SweepReport, Manifest, ServeSummary), CampaignError> {
    if opts.workers == 0 {
        return Err(CampaignError::Manifest("serve needs at least one worker".into()));
    }
    load_manifest(dir)?; // fail early with the good error; workers reload it
    let sock_path = dir.join(SERVE_SOCK);
    let _ = fs::remove_file(&sock_path);
    let listener = UnixListener::bind(&sock_path).map_err(io_err(&sock_path))?;
    listener.set_nonblocking(true).map_err(io_err(&sock_path))?;
    let shared = Arc::new(Shared {
        progress: AtomicU64::new(0),
        inner: Mutex::new(Inner { committed: vec![0; opts.workers], ..Inner::default() }),
    });
    let mut summary = ServeSummary { workers: opts.workers, ..ServeSummary::default() };
    let log = |important: bool, line: &str| {
        if important || !opts.quiet {
            eprintln!("sweep: serve: {line}");
        }
    };

    let spawn_worker = |slot: usize| -> std::io::Result<Child> {
        let mut cmd = Command::new(&opts.exe);
        cmd.arg("work")
            .arg(dir)
            .args(["--threads", &opts.worker_threads.to_string()])
            .args(["--lease-ttl-ms", &opts.lease.ttl_ms.to_string()])
            .args(["--sock".as_ref(), sock_path.as_os_str()])
            .args(["--worker-id", &slot.to_string()])
            .stdout(Stdio::null());
        cmd.env_remove(FAILPOINTS_ENV);
        if let Some(spec) = &opts.worker_failpoints {
            cmd.env(FAILPOINTS_ENV, spec);
        }
        cmd.spawn()
    };

    let mut slots: Vec<Slot> = Vec::with_capacity(opts.workers);
    for k in 0..opts.workers {
        let child = spawn_worker(k).map_err(io_err(&opts.exe))?;
        summary.spawned += 1;
        let mut slot = Slot { child: Some(child), pids: Vec::new() };
        if let Some(c) = &slot.child {
            slot.pids.push(c.id());
            log(false, &format!("worker {k}: spawned (pid {})", c.id()));
        }
        slots.push(slot);
    }

    let mut last_progress = Instant::now();
    let mut seen_progress = 0u64;
    loop {
        while let Ok((stream, _)) = listener.accept() {
            let shared = shared.clone();
            thread::spawn(move || read_connection(stream, shared));
        }
        for (important, line) in shared.inner.lock().unwrap().lines.drain(..) {
            log(important, &line);
        }
        let mut live = 0usize;
        for (k, slot) in slots.iter_mut().enumerate() {
            let Some(child) = slot.child.as_mut() else { continue };
            match child.try_wait() {
                Ok(None) => live += 1,
                Ok(Some(status)) => {
                    let pid = child.id();
                    slot.child = None;
                    last_progress = Instant::now();
                    if status.success() {
                        log(false, &format!("worker {k}: finished (pid {pid})"));
                    } else if summary.restarts < opts.restart_budget {
                        summary.restarts += 1;
                        log(
                            true,
                            &format!(
                                "worker {k}: died (pid {pid}, {status}); restarting \
                                 ({}/{} restarts)",
                                summary.restarts, opts.restart_budget
                            ),
                        );
                        match spawn_worker(k) {
                            Ok(c) => {
                                summary.spawned += 1;
                                slot.pids.push(c.id());
                                slot.child = Some(c);
                                live += 1;
                            }
                            Err(e) => {
                                summary.degraded = true;
                                log(true, &format!("worker {k}: respawn failed ({e}); degrading"));
                            }
                        }
                    } else {
                        summary.degraded = true;
                        log(
                            true,
                            &format!(
                                "worker {k}: died (pid {pid}, {status}); restart budget \
                                 exhausted — degrading to fewer workers"
                            ),
                        );
                    }
                }
                Err(_) => {
                    slot.child = None;
                }
            }
        }
        if live == 0 {
            break;
        }
        let progress = shared.progress.load(Ordering::Relaxed);
        if progress != seen_progress {
            seen_progress = progress;
            last_progress = Instant::now();
        } else if last_progress.elapsed() > opts.stall_timeout {
            log(
                true,
                &format!(
                    "no progress for {:.1}s; killing {live} stalled worker(s)",
                    last_progress.elapsed().as_secs_f64()
                ),
            );
            for slot in &mut slots {
                if let Some(child) = slot.child.as_mut() {
                    let _ = child.kill();
                    summary.stall_kills += 1;
                }
            }
            last_progress = Instant::now();
        }
        thread::sleep(Duration::from_millis(25));
    }
    // Give lagging reader threads a beat, then drain the last lines.
    thread::sleep(Duration::from_millis(50));
    for (important, line) in shared.inner.lock().unwrap().lines.drain(..) {
        log(important, &line);
    }

    // Heal pass: the supervisor is the last worker. With a healthy
    // fleet this only validates and merges; with dead children it
    // breaks their leases and re-executes whatever is missing.
    let heal_opts = WorkOptions { threads: opts.worker_threads.max(1), lease: opts.lease };
    let mut heal_events = |event: &WorkEvent| match event {
        WorkEvent::Broke { shard, holder_pid, age_ms } => log(
            true,
            &format!(
                "heal: broke stale lease on shard {shard} \
                 (holder pid {holder_pid}, heartbeat {age_ms}ms old)"
            ),
        ),
        WorkEvent::Quarantined { shard, why } => {
            log(true, &format!("heal: quarantined invalid shard {shard}: {why}"));
        }
        WorkEvent::Committed { shard, done, total } => {
            log(false, &format!("heal: committed shard {shard} ({done}/{total})"));
        }
        _ => {}
    };
    let (report, manifest, healed) = work_campaign(dir, &heal_opts, &mut heal_events)?;
    summary.healed = healed.committed as u64;
    {
        let inner = shared.inner.lock().unwrap();
        summary.counters = inner.counters;
        summary.per_worker = (0..opts.workers)
            .map(|k| WorkerReport {
                worker: k,
                pids: slots[k].pids.clone(),
                committed: *inner.committed.get(k).unwrap_or(&0),
            })
            .collect();
    }
    summary.counters.merge(&healed.counters);
    drop(listener);
    let _ = fs::remove_file(&sock_path);
    Ok((report, manifest, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_lines_round_trip() {
        assert_eq!(Msg::parse(&hello_line(3, 999)), Some(Msg::Hello { worker: 3, pid: 999 }));
        let events = [
            (WorkEvent::Claimed { shard: 7 }, Msg::Claim { shard: 7 }),
            (
                WorkEvent::Committed { shard: 7, done: 8, total: 16 },
                Msg::Commit { shard: 7, done: 8, total: 16 },
            ),
            (
                WorkEvent::Broke { shard: 2, holder_pid: 41, age_ms: 777 },
                Msg::Broke { shard: 2, holder_pid: 41, age_ms: 777 },
            ),
            (
                WorkEvent::Quarantined { shard: 5, why: "torn footer".into() },
                Msg::Quarantine { shard: 5 },
            ),
            (WorkEvent::Waiting { remaining: 4 }, Msg::Waiting { remaining: 4 }),
        ];
        for (event, expected) in events {
            assert_eq!(Msg::parse(&event_line(&event)), Some(expected), "{event:?}");
        }
    }

    #[test]
    fn done_lines_carry_the_counters() {
        let summary = WorkSummary {
            shards: 16,
            committed: 9,
            loaded: 7,
            counters: ObsCounters {
                lease_claims: 10,
                lease_renewals: 3,
                lease_breaks: 2,
                lease_reclaims: 1,
                shard_quarantines: 1,
                ..ObsCounters::default()
            },
        };
        let Some(Msg::Done { summary: parsed }) = Msg::parse(&done_line(&summary)) else {
            panic!("done line must parse: {}", done_line(&summary));
        };
        assert_eq!(parsed.committed, 9);
        assert_eq!(parsed.loaded, 7);
        assert_eq!(parsed.counters.lease_claims, 10);
        assert_eq!(parsed.counters.lease_breaks, 2);
        assert_eq!(parsed.counters.shard_quarantines, 1);
        // The done line does not carry the shard count; slots learn it
        // from commit events instead.
        assert_eq!(parsed.shards, 0);
    }

    #[test]
    fn junk_lines_are_ignored_not_fatal() {
        for junk in ["", "bogus 1 2", "commit", "commit x y z", "hello 1 2 3 extra"] {
            assert_eq!(Msg::parse(junk), None, "{junk:?}");
        }
    }

    #[test]
    fn zero_workers_is_rejected() {
        let opts = ServeOptions::new("/bin/false", 0);
        let err = serve_campaign(Path::new("/nonexistent"), &opts).unwrap_err();
        assert!(matches!(err, CampaignError::Manifest(_)), "{err}");
    }
}
