//! Multi-process shard coordination: the claim/lease protocol and the
//! worker loop behind `sweep work` / `sweep serve`.
//!
//! ## The protocol
//!
//! N crash-prone worker processes share one campaign directory. Each
//! shard's work is guarded by a lease file under `<dir>/leases/`:
//!
//! ```text
//! <dir>/leases/shard-00007.lease            held: pid 4242 executing
//! <dir>/leases/shard-00007.lease.broken.1   forensics: a broken lease
//! ```
//!
//! * **Claim** — `O_EXCL` creation ([`claim_shard`]): exactly one
//!   process wins the `create_new`. The file carries the claimer's pid,
//!   a per-claim token, the campaign's manifest fingerprint, the shard
//!   index and a heartbeat timestamp, sealed with an FNV-1a checksum.
//! * **Renew** — while executing, a heartbeat thread ([`Lease::heartbeat`])
//!   rewrites the lease (atomically, token-checked) every
//!   [`LeaseConfig::renew_ms`] to keep the heartbeat fresh.
//! * **Break** — any worker may break a lease whose heartbeat is older
//!   than [`LeaseConfig::ttl_ms`]: the holder is presumed dead. The
//!   break is a rename to a unique `.broken.N` tombstone — rename is
//!   atomic, so racing breakers elect exactly one winner, and the
//!   tombstone preserves the dead holder's identity for forensics. An
//!   *undecodable* lease (a claimer killed between `O_EXCL` create and
//!   write) is breakable only once its mtime is older than the TTL,
//!   which closes the read-a-partial-write race.
//! * **Release** — on commit the holder deletes its lease (token-checked).
//!
//! ## Why exclusivity is never load-bearing
//!
//! A shard's bytes are a pure function of `(manifest, shard index)` —
//! see [`crate::checkpoint`]. If two processes ever execute the same
//! shard (a broken lease whose holder was merely slow, clock skew, any
//! race at all), both compute **identical bytes** and commit through
//! `write_atomic` with pid-distinct temporaries: last rename wins and
//! the file content is the same either way. Leases exist purely so N
//! workers don't waste CPU duplicating work; campaign *correctness*
//! rests on determinism + atomic commit + footer validation, each of
//! which holds with zero coordination. That is the convergence
//! argument: any interleaving of claims, kills, breaks and re-runs
//! terminates with every shard valid, and the merged artifacts are
//! byte-identical to a 1-process uninterrupted run.
//!
//! The lease path carries its own failpoints (`lease.claim`,
//! `lease.renew`, `lease.break`) with the same one-`Relaxed`-load-when-
//! disarmed discipline as every other site, so the out-of-process crash
//! tests can fault any step of the protocol.

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use prefender_obs::{failpoint, write_atomic, ObsCounters};

use crate::artifact::SweepReport;
use crate::checkpoint::{
    io_err, load_manifest, quarantine, run_shard_range, shard_header, sweep_stale_tmps,
    CampaignError, Manifest, SHARD_DIR,
};
use crate::scenario::ScenarioResult;
use crate::shard::{decode_shard, encode_shard, fnv1a64, shard_file_name, ShardHeader};

/// Subdirectory holding shard lease files and break tombstones.
pub const LEASE_DIR: &str = "leases";

const LEASE_MAGIC: &str = "PREFENDER-LEASE v1";

/// Heartbeat/staleness policy for shard leases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConfig {
    /// A lease whose heartbeat is older than this is stale: the holder
    /// is presumed dead and any worker may break it.
    pub ttl_ms: u64,
    /// How often a holder refreshes its heartbeat. Must be well under
    /// `ttl_ms` so a healthy holder is never mistaken for dead.
    pub renew_ms: u64,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig { ttl_ms: 5000, renew_ms: 1000 }
    }
}

impl LeaseConfig {
    /// A config with the given TTL and a renew period of TTL/4 — the
    /// 4× margin keeps scheduler hiccups from turning a live worker
    /// into a presumed-dead one.
    pub fn with_ttl_ms(ttl_ms: u64) -> Self {
        let ttl_ms = ttl_ms.max(20);
        LeaseConfig { ttl_ms, renew_ms: (ttl_ms / 4).max(5) }
    }
}

fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default().as_millis() as u64
}

/// The lease file name for a shard: `shard-00007.lease`.
pub fn lease_file_name(shard: usize) -> String {
    format!("shard-{shard:05}.lease")
}

/// The decoded contents of a lease file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseInfo {
    /// The claiming process.
    pub pid: u32,
    /// Per-claim ownership token: renew/release refuse to touch a lease
    /// whose token is not theirs (a breaker may have reassigned the
    /// shard while we slept).
    pub token: u64,
    /// The campaign fingerprint ([`Manifest::fingerprint`]) this claim
    /// belongs to; a mismatch marks a lease from a stale reused
    /// directory, breakable immediately.
    pub fingerprint: u64,
    /// The claimed shard index.
    pub shard: usize,
    /// Unix-epoch milliseconds of the last renewal.
    pub heartbeat_ms: u64,
}

impl LeaseInfo {
    /// Line-oriented `key=value` form with a trailing FNV-1a checksum,
    /// same shape as the campaign manifest — a torn lease is detected,
    /// not trusted.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "{LEASE_MAGIC}\npid={}\ntoken={:016x}\nfingerprint={:016x}\nshard={}\nheartbeat_ms={}\n",
            self.pid, self.token, self.fingerprint, self.shard, self.heartbeat_ms
        );
        out.push_str(&format!("check={:016x}\n", fnv1a64(out.as_bytes())));
        out
    }

    /// Parses and validates [`LeaseInfo::encode`]'s form.
    ///
    /// # Errors
    ///
    /// A message naming the first defect: missing/bad checksum, wrong
    /// magic, or an unparsable field.
    pub fn decode(text: &str) -> Result<LeaseInfo, String> {
        let body_len =
            text.rfind("\ncheck=").map(|p| p + 1).ok_or("no checksum line (truncated?)")?;
        let (body, check_line) = text.split_at(body_len);
        let declared = check_line
            .strip_prefix("check=")
            .and_then(|s| u64::from_str_radix(s.trim_end(), 16).ok())
            .ok_or("bad checksum line")?;
        let actual = fnv1a64(body.as_bytes());
        if actual != declared {
            return Err(format!("checksum mismatch ({actual:016x} != {declared:016x})"));
        }
        let mut lines = body.lines();
        if lines.next() != Some(LEASE_MAGIC) {
            return Err("bad magic".into());
        }
        let mut field = |key: &str| -> Result<String, String> {
            lines
                .next()
                .and_then(|l| l.strip_prefix(key))
                .and_then(|l| l.strip_prefix('='))
                .map(String::from)
                .ok_or_else(|| format!("missing `{key}` line"))
        };
        let pid = field("pid")?.parse().map_err(|_| "bad pid".to_string())?;
        let token = u64::from_str_radix(&field("token")?, 16).map_err(|_| "bad token")?;
        let fingerprint =
            u64::from_str_radix(&field("fingerprint")?, 16).map_err(|_| "bad fingerprint")?;
        let shard = field("shard")?.parse().map_err(|_| "bad shard".to_string())?;
        let heartbeat_ms =
            field("heartbeat_ms")?.parse().map_err(|_| "bad heartbeat_ms".to_string())?;
        Ok(LeaseInfo { pid, token, fingerprint, shard, heartbeat_ms })
    }
}

static TOKEN_SALT: AtomicU64 = AtomicU64::new(0);

/// A token unique across every claim a host makes: pid × monotonic
/// salt × clock nanos, mixed through FNV-1a. Never zero.
fn fresh_token(shard: usize) -> u64 {
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default().as_nanos();
    let salt = TOKEN_SALT.fetch_add(1, Ordering::Relaxed);
    fnv1a64(format!("{}:{shard}:{salt}:{nanos}", std::process::id()).as_bytes()) | 1
}

/// A held shard lease: the right (not the obligation — see the module
/// docs on exclusivity) to execute one shard without duplicating work.
#[derive(Debug)]
pub struct Lease {
    path: PathBuf,
    token: u64,
    shard: usize,
}

/// The outcome of [`claim_shard`].
#[derive(Debug)]
pub enum Claim {
    /// We hold the lease. `broke` reports whether a stale holder's
    /// lease was broken on the way in — the shard is a reclaim.
    Claimed {
        /// The held lease.
        lease: Lease,
        /// Whether a stale lease was broken to obtain this one.
        broke: bool,
    },
    /// Someone else holds a fresh lease; come back later.
    Held {
        /// The holder's pid (0 when the lease was unreadable).
        pid: u32,
        /// Milliseconds since the holder's last heartbeat.
        age_ms: u64,
    },
}

/// What [`inspect`] concluded about an existing lease file.
enum Inspect {
    Fresh { pid: u32, age_ms: u64 },
    Stale { pid: u32, age_ms: u64 },
    Vanished,
}

/// Reads an existing lease and ages it. A lease carrying a foreign
/// campaign fingerprint (stale reused directory) is immediately stale.
/// An undecodable lease (torn or mid-write) is aged by file mtime
/// instead of its heartbeat, so a claimer killed between create and
/// write is eventually collected but a claimer *currently* writing is
/// not broken out from under its pen.
fn inspect(path: &Path, fingerprint: u64, cfg: &LeaseConfig) -> Inspect {
    let decoded = match fs::read_to_string(path) {
        Ok(text) => LeaseInfo::decode(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Inspect::Vanished,
        Err(e) => Err(e.to_string()),
    };
    match decoded {
        Ok(info) => {
            let age_ms = now_ms().saturating_sub(info.heartbeat_ms);
            if age_ms > cfg.ttl_ms || info.fingerprint != fingerprint {
                Inspect::Stale { pid: info.pid, age_ms }
            } else {
                Inspect::Fresh { pid: info.pid, age_ms }
            }
        }
        Err(_) => {
            let age_ms = fs::metadata(path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| SystemTime::now().duration_since(t).ok())
                .map_or(0, |d| d.as_millis() as u64);
            if age_ms > cfg.ttl_ms {
                Inspect::Stale { pid: 0, age_ms }
            } else {
                Inspect::Fresh { pid: 0, age_ms }
            }
        }
    }
}

/// Breaks a lease by renaming it to a unique `.broken.N` tombstone.
/// Rename is atomic, so of any number of racing breakers exactly one
/// returns `Ok(true)`; the losers see the source vanish and return
/// `Ok(false)`. Carries the `lease.break` failpoint.
fn break_lease(lease_dir: &Path, path: &Path, shard: usize) -> io::Result<bool> {
    failpoint("lease.break")?;
    let base = lease_file_name(shard);
    let mut n = 0;
    loop {
        n += 1;
        let target = lease_dir.join(format!("{base}.broken.{n}"));
        if target.exists() {
            continue;
        }
        return match fs::rename(path, &target) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        };
    }
}

/// Tries to claim `shard`'s lease for this process: `O_EXCL` create,
/// breaking a stale (or foreign-fingerprint) holder first if there is
/// one. Returns [`Claim::Held`] when a live holder has it. Bumps
/// `lease_claims`/`lease_breaks` on `counters` and reports breaks
/// through `events`. Carries the `lease.claim` failpoint (and
/// `lease.break` via [`break_lease`]).
///
/// # Errors
///
/// Any I/O failure other than the expected `AlreadyExists`/`NotFound`
/// races, including injected failpoint errors.
pub fn claim_shard(
    dir: &Path,
    shard: usize,
    fingerprint: u64,
    cfg: &LeaseConfig,
    counters: &mut ObsCounters,
    events: &mut dyn FnMut(WorkEvent),
) -> io::Result<Claim> {
    let lease_dir = dir.join(LEASE_DIR);
    fs::create_dir_all(&lease_dir)?;
    let path = lease_dir.join(lease_file_name(shard));
    let mut broke = false;
    loop {
        failpoint("lease.claim")?;
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut file) => {
                let info = LeaseInfo {
                    pid: std::process::id(),
                    token: fresh_token(shard),
                    fingerprint,
                    shard,
                    heartbeat_ms: now_ms(),
                };
                file.write_all(info.encode().as_bytes())?;
                let _ = file.sync_all();
                counters.lease_claims += 1;
                return Ok(Claim::Claimed {
                    lease: Lease { path, token: info.token, shard },
                    broke,
                });
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                match inspect(&path, fingerprint, cfg) {
                    Inspect::Fresh { pid, age_ms } => return Ok(Claim::Held { pid, age_ms }),
                    Inspect::Stale { pid, age_ms } => {
                        if break_lease(&lease_dir, &path, shard)? {
                            counters.lease_breaks += 1;
                            broke = true;
                            events(WorkEvent::Broke { shard, holder_pid: pid, age_ms });
                        }
                        // Either way the path may be free now — retry the
                        // O_EXCL create; a racing claimer may still win.
                    }
                    Inspect::Vanished => {
                        // Holder released between our create and read.
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
}

impl Lease {
    /// The shard this lease covers.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Refreshes the heartbeat: `Ok(true)` renewed, `Ok(false)` the
    /// lease is no longer ours (broken and reassigned while we ran —
    /// keep executing; commit stays safe, see the module docs).
    /// Token-checked, written through `write_atomic`. Carries the
    /// `lease.renew` failpoint.
    ///
    /// # Errors
    ///
    /// I/O failure reading or rewriting the lease file (including
    /// injected failpoint errors). The holder should stop renewing and
    /// let the lease age out; its commit is unaffected.
    pub fn renew(&self) -> io::Result<bool> {
        failpoint("lease.renew")?;
        let text = match fs::read_to_string(&self.path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(e),
        };
        match LeaseInfo::decode(&text) {
            Ok(info) if info.token == self.token => {
                let fresh = LeaseInfo { heartbeat_ms: now_ms(), ..info };
                write_atomic(&self.path, fresh.encode())?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Deletes the lease if it is still ours (token-checked,
    /// best-effort — a leftover lease merely ages out).
    pub fn release(self) {
        if let Ok(text) = fs::read_to_string(&self.path) {
            if LeaseInfo::decode(&text).is_ok_and(|i| i.token == self.token) {
                let _ = fs::remove_file(&self.path);
            }
        }
    }

    /// Spawns the heartbeat thread: renews every `cfg.renew_ms` until
    /// stopped, renewal fails, or ownership is lost.
    pub fn heartbeat(&self, cfg: &LeaseConfig) -> Heartbeat {
        let renewer = Lease { path: self.path.clone(), token: self.token, shard: self.shard };
        let stop = Arc::new(AtomicBool::new(false));
        let renewals = Arc::new(AtomicU64::new(0));
        let lost = Arc::new(AtomicBool::new(false));
        let renew_ms = cfg.renew_ms.max(1);
        let handle = {
            let (stop, renewals, lost) = (stop.clone(), renewals.clone(), lost.clone());
            thread::spawn(move || {
                'beat: loop {
                    // Sleep in short slices so stop() returns promptly.
                    let mut slept = 0;
                    while slept < renew_ms {
                        if stop.load(Ordering::Relaxed) {
                            break 'beat;
                        }
                        let slice = (renew_ms - slept).min(10);
                        thread::sleep(Duration::from_millis(slice));
                        slept += slice;
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match renewer.renew() {
                        Ok(true) => {
                            renewals.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(false) => {
                            lost.store(true, Ordering::Relaxed);
                            break;
                        }
                        // Stop renewing; the lease ages out and the
                        // shard may be reclaimed — commit stays safe.
                        Err(_) => break,
                    }
                }
            })
        };
        Heartbeat { stop, renewals, lost, handle: Some(handle) }
    }
}

/// Handle on a running heartbeat thread. Dropping it signals stop
/// without joining; prefer [`Heartbeat::stop`], which joins, so no
/// renewal is in flight when the caller releases the lease.
#[derive(Debug)]
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    renewals: Arc<AtomicU64>,
    lost: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Heartbeat {
    /// Stops and joins the thread; returns `(renewals, ownership_lost)`.
    pub fn stop(mut self) -> (u64, bool) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        (self.renewals.load(Ordering::Relaxed), self.lost.load(Ordering::Relaxed))
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// Options for one worker's [`work_campaign`] loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkOptions {
    /// Threads used to execute a claimed shard.
    pub threads: usize,
    /// Lease heartbeat/staleness policy.
    pub lease: LeaseConfig,
}

impl Default for WorkOptions {
    fn default() -> Self {
        WorkOptions { threads: 1, lease: LeaseConfig::default() }
    }
}

/// A progress event from the worker loop, for telemetry (the `sweep
/// work` CLI forwards these over the supervisor socket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkEvent {
    /// Claimed a shard's lease.
    Claimed {
        /// The claimed shard.
        shard: usize,
    },
    /// Committed a shard this process executed.
    Committed {
        /// The committed shard.
        shard: usize,
        /// Shards complete (from any process) as seen by this worker.
        done: usize,
        /// Shards in the plan.
        total: usize,
    },
    /// Broke a stale lease (holder presumed dead).
    Broke {
        /// The shard whose lease was broken.
        shard: usize,
        /// The dead holder's pid (0 when the lease was unreadable).
        holder_pid: u32,
        /// Heartbeat age at break time, milliseconds.
        age_ms: u64,
    },
    /// Quarantined an invalid committed shard before re-executing it.
    Quarantined {
        /// The quarantined shard.
        shard: usize,
        /// What validation rejected.
        why: String,
    },
    /// Every unfinished shard is held by a live peer; polling.
    Waiting {
        /// Shards not yet complete.
        remaining: usize,
    },
}

/// What one worker invocation did — the `sweep work` telemetry line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkSummary {
    /// Shards in the plan.
    pub shards: usize,
    /// Shards this process executed and committed.
    pub committed: usize,
    /// Shards found already complete (its own earlier run or a peer's).
    pub loaded: usize,
    /// Lease/quarantine event counters of this invocation.
    pub counters: ObsCounters,
}

impl WorkSummary {
    /// One telemetry line, e.g. `16 shards: 9 committed here, 7 loaded;
    /// leases: claims=9 renewals=3 breaks=1 reclaims=1 quarantines=0`.
    pub fn render(&self) -> String {
        let c = &self.counters;
        format!(
            "{} shards: {} committed here, {} loaded; leases: claims={} renewals={} \
             breaks={} reclaims={} quarantines={}",
            self.shards,
            self.committed,
            self.loaded,
            c.lease_claims,
            c.lease_renewals,
            c.lease_breaks,
            c.lease_reclaims,
            c.shard_quarantines
        )
    }
}

fn load_shard(path: &Path, header: &ShardHeader) -> Result<Vec<ScenarioResult>, String> {
    fs::read_to_string(path).map_err(|e| e.to_string()).and_then(|t| decode_shard(&t, header))
}

/// The claim-execute-commit loop: one worker process's share of a
/// campaign. Runs until **every** shard of the manifest validates —
/// claiming free shards, executing them with `opts.threads`, committing
/// atomically, breaking stale leases, quarantining invalid committed
/// shards, and polling while live peers hold the rest — then merges all
/// shards and returns the same `(report, manifest, stats)` a
/// single-process [`crate::resume_sharded`] would. Every cooperating
/// worker returns the identical report; artifacts written from it are
/// byte-identical across any worker count and kill schedule.
///
/// # Errors
///
/// [`CampaignError::NotACampaign`]/[`CampaignError::Manifest`] when
/// `dir` holds no valid manifest (create one with
/// [`crate::init_campaign`]), or any I/O failure (including injected
/// faults) claiming, executing or committing.
pub fn work_campaign(
    dir: &Path,
    opts: &WorkOptions,
    on_event: &mut dyn FnMut(&WorkEvent),
) -> Result<(SweepReport, Manifest, WorkSummary), CampaignError> {
    let manifest = load_manifest(dir)?;
    let shard_dir = dir.join(SHARD_DIR);
    fs::create_dir_all(&shard_dir).map_err(io_err(dir))?;
    fs::create_dir_all(dir.join(LEASE_DIR)).map_err(io_err(dir))?;
    sweep_stale_tmps(&shard_dir);
    let scenarios = manifest.grid.enumerate();
    let resample = manifest.grid.resample();
    let fingerprint = manifest.fingerprint();
    let n = manifest.plan().n_shards();
    let mut summary = WorkSummary { shards: n, ..WorkSummary::default() };
    let mut done = vec![false; n];
    let mut done_count = 0usize;
    let poll = Duration::from_millis(opts.lease.renew_ms.clamp(10, 250));

    'campaign: loop {
        loop {
            let mut progressed = false;
            let mut remaining = 0usize;
            for (shard, done_flag) in done.iter_mut().enumerate() {
                if *done_flag {
                    continue;
                }
                let header = shard_header(&manifest, fingerprint, shard);
                let path = shard_dir.join(shard_file_name(shard));
                if load_shard(&path, &header).is_ok() {
                    *done_flag = true;
                    done_count += 1;
                    summary.loaded += 1;
                    progressed = true;
                    continue;
                }
                let claim = claim_shard(
                    dir,
                    shard,
                    fingerprint,
                    &opts.lease,
                    &mut summary.counters,
                    &mut |e| on_event(&e),
                )
                .map_err(io_err(&path))?;
                let (lease, broke) = match claim {
                    Claim::Held { .. } => {
                        remaining += 1;
                        continue;
                    }
                    Claim::Claimed { lease, broke } => (lease, broke),
                };
                on_event(&WorkEvent::Claimed { shard });
                // Revalidate under the lease: the shard may have been
                // committed between our check and the claim, and a
                // claimed-but-dead holder may have left torn bytes —
                // quarantined and re-executed, never trusted.
                let mut reclaimed = broke;
                match load_shard(&path, &header) {
                    Ok(_) => {
                        lease.release();
                        *done_flag = true;
                        done_count += 1;
                        summary.loaded += 1;
                        progressed = true;
                        continue;
                    }
                    Err(why) if path.exists() => {
                        quarantine(dir, &path, shard).map_err(io_err(&path))?;
                        summary.counters.shard_quarantines += 1;
                        reclaimed = true;
                        on_event(&WorkEvent::Quarantined { shard, why });
                    }
                    Err(_) => {}
                }
                let hb = lease.heartbeat(&opts.lease);
                let committed = (|| -> Result<(), CampaignError> {
                    let shard_results = run_shard_range(
                        &scenarios,
                        header.start..header.end,
                        manifest.campaign_seed,
                        &resample,
                        opts.threads,
                    );
                    failpoint("shard.write").map_err(io_err(&path))?;
                    write_atomic(&path, encode_shard(&header, &shard_results))
                        .map_err(io_err(&path))?;
                    failpoint("shard.commit").map_err(io_err(&path))?;
                    Ok(())
                })();
                let (renewals, _lost) = hb.stop();
                summary.counters.lease_renewals += renewals;
                lease.release();
                committed?;
                if reclaimed {
                    summary.counters.lease_reclaims += 1;
                }
                *done_flag = true;
                done_count += 1;
                summary.committed += 1;
                progressed = true;
                on_event(&WorkEvent::Committed { shard, done: done_count, total: n });
            }
            if remaining == 0 {
                break;
            }
            if !progressed {
                on_event(&WorkEvent::Waiting { remaining });
                thread::sleep(poll);
            }
        }
        // Merge every shard in order. A shard that stopped validating
        // after we marked it done (corrupted behind our back) re-enters
        // the claim loop rather than poisoning the report.
        let mut results: Vec<ScenarioResult> = Vec::with_capacity(scenarios.len());
        for (shard, done_flag) in done.iter_mut().enumerate() {
            let header = shard_header(&manifest, fingerprint, shard);
            let path = shard_dir.join(shard_file_name(shard));
            match load_shard(&path, &header) {
                Ok(loaded) => results.extend(loaded),
                Err(_) => {
                    *done_flag = false;
                    done_count -= 1;
                    continue 'campaign;
                }
            }
        }
        debug_assert!(results.iter().enumerate().all(|(k, r)| r.index == k));
        let report = SweepReport { campaign_seed: manifest.campaign_seed, results };
        return Ok((report, manifest, summary));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::init_campaign;
    use crate::engine::{run_sweep, SweepOptions};
    use crate::grid::SweepGrid;
    use crate::testgate::FAILPOINT_GATE;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("prefender-lease-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_grid() -> SweepGrid {
        let mut g = SweepGrid::security_quick();
        g.seeds = 3;
        g
    }

    fn sample_info(heartbeat_ms: u64) -> LeaseInfo {
        LeaseInfo { pid: 4242, token: 0xDEAD_BEEF, fingerprint: 0xF00D, shard: 7, heartbeat_ms }
    }

    #[test]
    fn lease_info_round_trips_and_rejects_corruption() {
        let info = sample_info(123_456);
        let text = info.encode();
        assert_eq!(LeaseInfo::decode(&text).unwrap(), info);
        for bad in [
            text.replace("pid=4242", "pid=4243"),
            text[..text.len() - 5].to_string(),
            String::new(),
            "garbage\n".into(),
        ] {
            assert!(LeaseInfo::decode(&bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn claim_is_exclusive_until_released() {
        let dir = scratch("exclusive");
        fs::create_dir_all(&dir).unwrap();
        let cfg = LeaseConfig::default();
        let mut counters = ObsCounters::new();
        let mut sink = |_: WorkEvent| {};
        let claim = claim_shard(&dir, 3, 0xF00D, &cfg, &mut counters, &mut sink).unwrap();
        let Claim::Claimed { lease, broke } = claim else { panic!("first claim must win") };
        assert!(!broke);
        assert_eq!(lease.shard(), 3);
        assert_eq!(counters.lease_claims, 1);
        // Second claimer sees a fresh holder.
        match claim_shard(&dir, 3, 0xF00D, &cfg, &mut counters, &mut sink).unwrap() {
            Claim::Held { pid, .. } => assert_eq!(pid, std::process::id()),
            other => panic!("fresh lease must not be claimable: {other:?}"),
        }
        // A different shard is free.
        assert!(matches!(
            claim_shard(&dir, 4, 0xF00D, &cfg, &mut counters, &mut sink).unwrap(),
            Claim::Claimed { .. }
        ));
        // Release frees the shard for the next claimer.
        lease.release();
        assert!(matches!(
            claim_shard(&dir, 3, 0xF00D, &cfg, &mut counters, &mut sink).unwrap(),
            Claim::Claimed { broke: false, .. }
        ));
        assert_eq!(counters.lease_breaks, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_heartbeats_are_broken_and_tombstoned() {
        let dir = scratch("stale");
        let lease_dir = dir.join(LEASE_DIR);
        fs::create_dir_all(&lease_dir).unwrap();
        let cfg = LeaseConfig::with_ttl_ms(100);
        // A holder that last renewed far beyond the TTL: presumed dead.
        let dead = LeaseInfo {
            pid: 4_000_000_000,
            token: 0x1,
            fingerprint: 0xF00D,
            shard: 0,
            heartbeat_ms: now_ms().saturating_sub(10_000),
        };
        fs::write(lease_dir.join(lease_file_name(0)), dead.encode()).unwrap();
        let mut counters = ObsCounters::new();
        let mut events = Vec::new();
        let claim =
            claim_shard(&dir, 0, 0xF00D, &cfg, &mut counters, &mut |e| events.push(e)).unwrap();
        assert!(matches!(claim, Claim::Claimed { broke: true, .. }), "{claim:?}");
        assert_eq!(counters.lease_breaks, 1);
        assert!(
            matches!(events[..], [WorkEvent::Broke { shard: 0, holder_pid: 4_000_000_000, .. }]),
            "{events:?}"
        );
        // The dead holder's lease survives as a forensics tombstone.
        let tombstone = lease_dir.join("shard-00000.lease.broken.1");
        assert_eq!(LeaseInfo::decode(&fs::read_to_string(tombstone).unwrap()).unwrap(), dead);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_leases_break_only_after_the_ttl() {
        let dir = scratch("torn");
        let lease_dir = dir.join(LEASE_DIR);
        fs::create_dir_all(&lease_dir).unwrap();
        let path = lease_dir.join(lease_file_name(2));
        // An undecodable lease with a *fresh* mtime models a claimer
        // caught between O_EXCL create and write — not breakable yet.
        fs::write(&path, "PREFENDER-LEASE v1\npid=").unwrap();
        let mut counters = ObsCounters::new();
        let mut sink = |_: WorkEvent| {};
        let young = LeaseConfig::with_ttl_ms(60_000);
        assert!(matches!(
            claim_shard(&dir, 2, 0xF00D, &young, &mut counters, &mut sink).unwrap(),
            Claim::Held { pid: 0, .. }
        ));
        assert!(path.exists(), "young torn lease must not be broken");
        // Once the mtime is older than the TTL the torn lease is litter.
        let old = LeaseConfig::with_ttl_ms(20);
        std::thread::sleep(Duration::from_millis(50));
        assert!(matches!(
            claim_shard(&dir, 2, 0xF00D, &old, &mut counters, &mut sink).unwrap(),
            Claim::Claimed { broke: true, .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn renew_refreshes_heartbeats_and_detects_ownership_loss() {
        let dir = scratch("renew");
        fs::create_dir_all(&dir).unwrap();
        let cfg = LeaseConfig::default();
        let mut counters = ObsCounters::new();
        let mut sink = |_: WorkEvent| {};
        let Claim::Claimed { lease, .. } =
            claim_shard(&dir, 1, 0xF00D, &cfg, &mut counters, &mut sink).unwrap()
        else {
            panic!("claim must win")
        };
        let path = dir.join(LEASE_DIR).join(lease_file_name(1));
        let before = LeaseInfo::decode(&fs::read_to_string(&path).unwrap()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert!(lease.renew().unwrap(), "own lease renews");
        let after = LeaseInfo::decode(&fs::read_to_string(&path).unwrap()).unwrap();
        assert!(after.heartbeat_ms > before.heartbeat_ms, "{after:?} vs {before:?}");
        assert_eq!(after.token, before.token);
        // A breaker reassigns the shard: our renew must refuse.
        let usurper = LeaseInfo { token: before.token ^ 1, ..before };
        fs::write(&path, usurper.encode()).unwrap();
        assert!(!lease.renew().unwrap(), "foreign token must not renew");
        let unchanged = LeaseInfo::decode(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(unchanged, usurper, "a refused renew must not touch the file");
        // Release is token-checked too: the usurper's lease survives.
        lease.release();
        assert!(path.exists(), "release must not delete a foreign lease");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn heartbeat_thread_renews_until_stopped() {
        let dir = scratch("heartbeat");
        fs::create_dir_all(&dir).unwrap();
        let cfg = LeaseConfig { ttl_ms: 1000, renew_ms: 10 };
        let mut counters = ObsCounters::new();
        let mut sink = |_: WorkEvent| {};
        let Claim::Claimed { lease, .. } =
            claim_shard(&dir, 0, 0xF00D, &cfg, &mut counters, &mut sink).unwrap()
        else {
            panic!("claim must win")
        };
        let hb = lease.heartbeat(&cfg);
        std::thread::sleep(Duration::from_millis(120));
        let (renewals, lost) = hb.stop();
        assert!(renewals >= 2, "expected several renewals, got {renewals}");
        assert!(!lost);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lease_failpoints_inject_errors() {
        let _g = FAILPOINT_GATE.lock().unwrap();
        let dir = scratch("failpoints");
        fs::create_dir_all(&dir).unwrap();
        let cfg = LeaseConfig::with_ttl_ms(20);
        let mut counters = ObsCounters::new();
        let mut sink = |_: WorkEvent| {};
        prefender_obs::arm_failpoints("lease.claim=err").unwrap();
        let err = claim_shard(&dir, 0, 0xF00D, &cfg, &mut counters, &mut sink).unwrap_err();
        assert!(err.to_string().contains("lease.claim"), "{err}");
        prefender_obs::arm_failpoints("lease.renew=err").unwrap();
        let Claim::Claimed { lease, .. } =
            claim_shard(&dir, 0, 0xF00D, &cfg, &mut counters, &mut sink).unwrap()
        else {
            panic!("claim must win")
        };
        let err = lease.renew().unwrap_err();
        assert!(err.to_string().contains("lease.renew"), "{err}");
        // A stale lease whose break faults surfaces the break error.
        let stale = LeaseInfo {
            pid: 1,
            token: 0x2,
            fingerprint: 0xF00D,
            shard: 5,
            heartbeat_ms: now_ms().saturating_sub(10_000),
        };
        fs::write(dir.join(LEASE_DIR).join(lease_file_name(5)), stale.encode()).unwrap();
        prefender_obs::arm_failpoints("lease.break=err").unwrap();
        let err = claim_shard(&dir, 5, 0xF00D, &cfg, &mut counters, &mut sink).unwrap_err();
        assert!(err.to_string().contains("lease.break"), "{err}");
        prefender_obs::disarm_failpoints();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn work_campaign_converges_and_matches_the_reference() {
        let dir = scratch("work");
        let grid = small_grid();
        let opts = SweepOptions { threads: 1, campaign_seed: 0xC0FFEE };
        init_campaign(&dir, &grid, &opts, 2).unwrap();
        let reference = run_sweep(&grid, &opts);
        let work = WorkOptions { threads: 1, lease: LeaseConfig::with_ttl_ms(2000) };
        let (report, manifest, summary) = work_campaign(&dir, &work, &mut |_| {}).unwrap();
        assert_eq!(report, reference);
        assert_eq!(manifest.grid, grid);
        assert_eq!(summary.shards, 3);
        assert_eq!(summary.committed, 3);
        assert_eq!(summary.loaded, 0);
        assert_eq!(summary.counters.lease_claims, 3);
        assert_eq!(summary.counters.lease_breaks, 0);
        // Leases are released on commit; the lease dir holds no holders.
        let live: Vec<_> = fs::read_dir(dir.join(LEASE_DIR))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "lease"))
            .collect();
        assert!(live.is_empty(), "{live:?}");
        // A second worker over the complete campaign loads everything.
        let (again, _, summary) = work_campaign(&dir, &work, &mut |_| {}).unwrap();
        assert_eq!(again, reference);
        assert_eq!(summary.committed, 0);
        assert_eq!(summary.loaded, 3);
        assert_eq!(summary.counters.lease_claims, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_workers_partition_the_shards_and_agree() {
        let dir = scratch("concurrent");
        let grid = small_grid();
        let opts = SweepOptions { threads: 1, campaign_seed: 0xFACE };
        init_campaign(&dir, &grid, &opts, 1).unwrap(); // 6 shards
        let reference = run_sweep(&grid, &opts);
        let work = WorkOptions { threads: 1, lease: LeaseConfig::with_ttl_ms(5000) };
        let reports: Vec<(SweepReport, WorkSummary)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    scope.spawn(|| {
                        let (report, _, summary) = work_campaign(&dir, &work, &mut |_| {}).unwrap();
                        (report, summary)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total: usize = reports.iter().map(|(_, s)| s.committed).sum();
        assert_eq!(total, 6, "every shard committed exactly once across workers");
        for (report, summary) in &reports {
            assert_eq!(report, &reference, "every worker returns the converged report");
            assert_eq!(summary.committed + summary.loaded, 6);
            assert_eq!(summary.counters.lease_breaks, 0, "live peers are never broken");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn work_campaign_quarantines_corrupt_shards_and_reclaims_stale_claims() {
        let dir = scratch("reclaim");
        let grid = small_grid();
        let opts = SweepOptions { threads: 1, campaign_seed: 0xBEEF };
        init_campaign(&dir, &grid, &opts, 2).unwrap();
        let reference = run_sweep(&grid, &opts);
        let work = WorkOptions { threads: 1, lease: LeaseConfig::with_ttl_ms(100) };
        let (first, _, _) = work_campaign(&dir, &work, &mut |_| {}).unwrap();
        assert_eq!(first, reference);
        // Corrupt a committed shard and park a dead worker's stale
        // lease on another: the next worker must quarantine the first
        // and reclaim the second.
        let victim = dir.join(SHARD_DIR).join(shard_file_name(1));
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() - 9]).unwrap();
        let stale = LeaseInfo {
            pid: 4_000_000_000,
            token: 0x3,
            fingerprint: load_manifest(&dir).unwrap().fingerprint(),
            shard: 1,
            heartbeat_ms: now_ms().saturating_sub(60_000),
        };
        fs::write(dir.join(LEASE_DIR).join(lease_file_name(1)), stale.encode()).unwrap();
        let mut events = Vec::new();
        let (report, _, summary) =
            work_campaign(&dir, &work, &mut |e| events.push(e.clone())).unwrap();
        assert_eq!(report, reference, "reclaimed campaign reproduces the reference bytes");
        assert_eq!(summary.committed, 1);
        assert_eq!(summary.loaded, 2);
        assert_eq!(summary.counters.lease_breaks, 1);
        assert_eq!(summary.counters.lease_reclaims, 1);
        assert_eq!(summary.counters.shard_quarantines, 1);
        assert!(
            events.iter().any(|e| matches!(e, WorkEvent::Broke { shard: 1, .. })),
            "{events:?}"
        );
        assert!(
            events.iter().any(|e| matches!(e, WorkEvent::Quarantined { shard: 1, .. })),
            "{events:?}"
        );
        assert!(dir.join(crate::QUARANTINE_DIR).join(shard_file_name(1)).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn work_campaign_rejects_foreign_directories() {
        let dir = scratch("foreign");
        let err = work_campaign(&dir, &WorkOptions::default(), &mut |_| {}).unwrap_err();
        assert!(matches!(err, CampaignError::NotACampaign(_)), "{err}");
    }
}
