//! Declarative scenario grids and their enumeration.

use std::fmt;

use prefender_attacks::{AttackKind, Basic, DefenseConfig, NoiseSpec};
use prefender_leakage::ResampleOptions;
use prefender_sim::{CacheConfig, HierarchyConfig, ReplacementPolicy};

use crate::scenario::{Payload, Scenario};

/// One attack family point: kind + challenge noise + core scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackCase {
    /// Which attack.
    pub kind: AttackKind,
    /// Which challenge noise is active.
    pub noise: NoiseSpec,
    /// Attacker and victim on different cores.
    pub cross_core: bool,
}

impl AttackCase {
    /// Stable short tag used in scenario ids (e.g. `fr+c3x`).
    pub fn tag(&self) -> String {
        let kind = match self.kind {
            AttackKind::FlushReload => "fr",
            AttackKind::EvictReload => "er",
            AttackKind::PrimeProbe => "pp",
        };
        let noise = match (self.noise.c3, self.noise.c4) {
            (false, false) => "",
            (true, false) => "+c3",
            (false, true) => "+c4",
            (true, true) => "+c3c4",
        };
        format!("{kind}{noise}{}", if self.cross_core { "x" } else { "" })
    }

    /// Parses a tag produced by [`AttackCase::tag`] (`fr`, `er+c3`,
    /// `pp+c3c4x`, …). Total inverse: returns `None` on anything
    /// `tag` cannot emit.
    pub fn from_tag(tag: &str) -> Option<AttackCase> {
        let (body, cross_core) = match tag.strip_suffix('x') {
            Some(body) => (body, true),
            None => (tag, false),
        };
        let (kind, noise) = match body.split_once('+') {
            Some((kind, noise)) => (kind, Some(noise)),
            None => (body, None),
        };
        let kind = match kind {
            "fr" => AttackKind::FlushReload,
            "er" => AttackKind::EvictReload,
            "pp" => AttackKind::PrimeProbe,
            _ => return None,
        };
        let noise = match noise {
            None => NoiseSpec::NONE,
            Some("c3") => NoiseSpec::C3,
            Some("c4") => NoiseSpec::C4,
            Some("c3c4") => NoiseSpec::C3C4,
            Some(_) => return None,
        };
        Some(AttackCase { kind, noise, cross_core })
    }

    /// The paper's twelve Figure 8 panels (single-core).
    pub fn figure8_panels() -> Vec<AttackCase> {
        let kinds = [AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe];
        let noises = [NoiseSpec::NONE, NoiseSpec::C3, NoiseSpec::C4, NoiseSpec::C3C4];
        noises
            .iter()
            .flat_map(|&noise| {
                kinds.iter().map(move |&kind| AttackCase { kind, noise, cross_core: false })
            })
            .collect()
    }

    /// Every attack case: the Figure 8 panels plus the cross-core
    /// variants of each attack (paper Figure 4).
    pub fn all() -> Vec<AttackCase> {
        let mut v = Self::figure8_panels();
        for kind in [AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe] {
            for noise in [NoiseSpec::NONE, NoiseSpec::C3, NoiseSpec::C4, NoiseSpec::C3C4] {
                v.push(AttackCase { kind, noise, cross_core: true });
            }
        }
        v
    }
}

impl fmt::Display for AttackCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            self.kind,
            match (self.noise.c3, self.noise.c4) {
                (false, false) => "",
                (true, false) => " (C3)",
                (false, true) => " (C4)",
                (true, true) => " (C3+C4)",
            },
            if self.cross_core { " cross-core" } else { "" }
        )
    }
}

/// One defense point: configuration plus access-buffer count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DefensePoint {
    /// Which PREFENDER units defend.
    pub config: DefenseConfig,
    /// Access-buffer count (ignored by [`DefenseConfig::None`] /
    /// [`DefenseConfig::St`]).
    pub buffers: usize,
}

impl DefensePoint {
    /// The paper's default: 32 access buffers.
    pub fn new(config: DefenseConfig) -> Self {
        DefensePoint { config, buffers: 32 }
    }

    /// All six defense configurations at 32 buffers (Figure 8's legend).
    pub fn figure8_legend() -> Vec<DefensePoint> {
        DefenseConfig::ALL.iter().map(|&config| DefensePoint::new(config)).collect()
    }

    /// Stable short tag used in scenario ids (e.g. `full32`).
    pub fn tag(&self) -> String {
        let c = match self.config {
            DefenseConfig::None => return "base".to_string(),
            DefenseConfig::St => return "st".to_string(),
            DefenseConfig::At => "at",
            DefenseConfig::StAt => "stat",
            DefenseConfig::AtRp => "atrp",
            DefenseConfig::Full => "full",
        };
        format!("{c}{}", self.buffers)
    }

    /// Lossless `config:buffers` form for campaign manifests. Unlike
    /// [`DefensePoint::tag`] (which drops the buffer count for
    /// buffer-less configs), this round-trips every point exactly.
    pub fn spec(&self) -> String {
        let c = match self.config {
            DefenseConfig::None => "none",
            DefenseConfig::St => "st",
            DefenseConfig::At => "at",
            DefenseConfig::StAt => "stat",
            DefenseConfig::AtRp => "atrp",
            DefenseConfig::Full => "full",
        };
        format!("{c}:{}", self.buffers)
    }

    /// Parses the [`DefensePoint::spec`] form.
    pub fn from_spec(spec: &str) -> Option<DefensePoint> {
        let (config, buffers) = spec.split_once(':')?;
        let config = match config {
            "none" => DefenseConfig::None,
            "st" => DefenseConfig::St,
            "at" => DefenseConfig::At,
            "stat" => DefenseConfig::StAt,
            "atrp" => DefenseConfig::AtRp,
            "full" => DefenseConfig::Full,
            _ => return None,
        };
        Some(DefensePoint { config, buffers: buffers.parse().ok()? })
    }
}

/// A cache-hierarchy variant of the grid.
///
/// All variants keep the paper's 64-byte lines and 4 KB pages so attack
/// layouts stay meaningful; they move the sizes, latencies and policies
/// the paper holds fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Hierarchy {
    /// The paper's gem5 baseline (Section V-A).
    Paper,
    /// Double-size (4 MB) shared L2.
    BigL2,
    /// Half-size (32 KB) L1D.
    SmallL1d,
    /// Paper geometry under FIFO replacement at both levels.
    Fifo,
}

impl Hierarchy {
    /// Every variant, baseline first.
    pub const ALL: [Hierarchy; 4] =
        [Hierarchy::Paper, Hierarchy::BigL2, Hierarchy::SmallL1d, Hierarchy::Fifo];

    /// Stable short tag used in scenario ids.
    pub fn tag(&self) -> &'static str {
        match self {
            Hierarchy::Paper => "paper",
            Hierarchy::BigL2 => "bigl2",
            Hierarchy::SmallL1d => "sml1d",
            Hierarchy::Fifo => "fifo",
        }
    }

    /// Parses a tag produced by [`Hierarchy::tag`].
    pub fn from_tag(tag: &str) -> Option<Hierarchy> {
        Hierarchy::ALL.into_iter().find(|h| h.tag() == tag)
    }

    /// Builds the concrete configuration for `n_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero (grid enumeration never does this).
    pub fn config(&self, n_cores: usize) -> HierarchyConfig {
        let mut h = HierarchyConfig::paper_baseline(n_cores).expect("nonzero core count");
        match self {
            Hierarchy::Paper => {}
            Hierarchy::BigL2 => {
                h.l2 = CacheConfig::new("L2", 4 * 1024 * 1024, 16, 64, 20).expect("valid L2");
            }
            Hierarchy::SmallL1d => {
                h.l1d = CacheConfig::new("L1D", 32 * 1024, 2, 64, 4).expect("valid L1D");
            }
            Hierarchy::Fifo => {
                h.l1d = CacheConfig::new("L1D", 64 * 1024, 2, 64, 4)
                    .expect("valid L1D")
                    .with_replacement(ReplacementPolicy::Fifo);
                h.l2 = CacheConfig::new("L2", 2 * 1024 * 1024, 16, 64, 20)
                    .expect("valid L2")
                    .with_replacement(ReplacementPolicy::Fifo);
            }
        }
        h
    }
}

impl fmt::Display for Hierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Hierarchy::Paper => "paper baseline",
            Hierarchy::BigL2 => "4MB L2",
            Hierarchy::SmallL1d => "32KB L1D",
            Hierarchy::Fifo => "FIFO replacement",
        })
    }
}

/// A declarative scenario grid.
///
/// The work-list is the union of three cartesian products sharing the
/// defense / basic / hierarchy / seed axes:
///
/// * `attacks × defenses × basics × hierarchies × seeds` — security
///   scenarios (leak verdicts, probe-latency histograms);
/// * `workloads × defenses × basics × hierarchies × seeds` — performance
///   scenarios (cycles, IPC, prefetch accuracy);
/// * `leakages × defenses × basics × hierarchies × seeds` — leakage
///   campaigns, each fanning out into `leakage_secrets ×
///   leakage_trials` attack simulations and estimating the
///   secret → observation channel in bits.
///
/// Enumeration order is fixed (payloads outermost, seeds innermost), so a
/// scenario's index — and therefore its derived seed — depends only on
/// the grid shape, never on thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Attack payloads.
    pub attacks: Vec<AttackCase>,
    /// Workload payloads (names from the `prefender-workloads` catalog).
    pub workloads: Vec<String>,
    /// Leakage-campaign payloads (attack cases measured as channels).
    pub leakages: Vec<AttackCase>,
    /// Secrets swept per leakage campaign (evenly spaced across the probe
    /// window; the secret alphabet carries `log2` of this many bits).
    pub leakage_secrets: u32,
    /// Trials per secret in a leakage campaign.
    pub leakage_trials: u32,
    /// Attacker timer-noise amplitude for leakage campaigns, in cycles
    /// per probe (0 = the paper's clean timer).
    pub leakage_jitter: u64,
    /// Label permutations per leakage campaign for the MI null test
    /// (0 = no permutation test; see `prefender_leakage::NullTest`).
    pub leakage_permutations: u32,
    /// Multinomial bootstrap resamples per leakage campaign for the
    /// MI / accuracy confidence intervals (0 = no CIs).
    pub leakage_bootstrap: u32,
    /// Bootstrap CI level for the leakage resampling analyses (the
    /// intervals cover `1 − alpha`).
    pub leakage_alpha: f64,
    /// Defense axis.
    pub defenses: Vec<DefensePoint>,
    /// Basic-prefetcher axis.
    pub basics: Vec<Basic>,
    /// Hierarchy axis.
    pub hierarchies: Vec<Hierarchy>,
    /// Seed repetitions per scenario point (≥ 1).
    pub seeds: u32,
}

impl SweepGrid {
    /// An empty grid (no payloads) with paper-default shared axes and
    /// leakage shape (8 secrets × 4 trials = 3 bits of secret entropy).
    pub fn empty() -> Self {
        SweepGrid {
            attacks: Vec::new(),
            workloads: Vec::new(),
            leakages: Vec::new(),
            leakage_secrets: 8,
            leakage_trials: 4,
            leakage_jitter: 0,
            leakage_permutations: 0,
            leakage_bootstrap: 0,
            leakage_alpha: 0.05,
            defenses: vec![DefensePoint::new(DefenseConfig::Full)],
            basics: vec![Basic::None],
            hierarchies: vec![Hierarchy::Paper],
            seeds: 1,
        }
    }

    /// The full Figure 8 security grid: twelve panels × six defenses.
    pub fn security_full() -> Self {
        SweepGrid {
            attacks: AttackCase::figure8_panels(),
            defenses: DefensePoint::figure8_legend(),
            ..Self::empty()
        }
    }

    /// A two-scenario smoke grid: undefended vs. fully-defended
    /// Flush+Reload.
    pub fn security_quick() -> Self {
        SweepGrid {
            attacks: vec![AttackCase {
                kind: AttackKind::FlushReload,
                noise: NoiseSpec::NONE,
                cross_core: false,
            }],
            defenses: vec![
                DefensePoint::new(DefenseConfig::None),
                DefensePoint::new(DefenseConfig::Full),
            ],
            ..Self::empty()
        }
    }

    /// The full Figure 8 security grid measured as channels instead of
    /// booleans: twelve leakage campaigns × six defenses.
    pub fn leakage_full() -> Self {
        SweepGrid {
            leakages: AttackCase::figure8_panels(),
            defenses: DefensePoint::figure8_legend(),
            ..Self::empty()
        }
    }

    /// A two-campaign leakage smoke grid: undefended vs. fully-defended
    /// Flush+Reload.
    pub fn leakage_quick() -> Self {
        let mut g = Self::security_quick();
        g.leakages = std::mem::take(&mut g.attacks);
        g
    }

    /// The audit cross-validation grid: the three noise-free single-core
    /// attack kinds as leakage campaigns, undefended vs. fully defended,
    /// with a permutation null per cell. `repro audit` joins these
    /// measured cells against the static analyzer's verdicts (the
    /// zero-false-negative gate), so the grid stays compact and fully
    /// deterministic.
    pub fn audit_quick() -> Self {
        let kinds = [AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe];
        SweepGrid {
            leakages: kinds
                .into_iter()
                .map(|kind| AttackCase { kind, noise: NoiseSpec::NONE, cross_core: false })
                .collect(),
            defenses: vec![
                DefensePoint::new(DefenseConfig::None),
                DefensePoint::new(DefenseConfig::Full),
            ],
            leakage_trials: 2,
            leakage_permutations: 199,
            ..Self::empty()
        }
    }

    /// Number of scenarios the grid enumerates to.
    pub fn len(&self) -> usize {
        (self.attacks.len() + self.workloads.len() + self.leakages.len())
            * self.defenses.len()
            * self.basics.len()
            * self.hierarchies.len()
            * self.seeds.max(1) as usize
    }

    /// Total machine simulations the grid executes — each leakage
    /// scenario fans out into `leakage_secrets × leakage_trials` runs.
    pub fn sims(&self) -> u64 {
        self.enumerate().iter().map(|s| s.payload.sims()).sum()
    }

    /// `true` when the grid has no payloads.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The leakage-campaign resampling configuration this grid runs
    /// with (permutation null + bootstrap CIs).
    pub fn resample(&self) -> ResampleOptions {
        ResampleOptions {
            permutations: self.leakage_permutations,
            bootstrap: self.leakage_bootstrap,
            alpha: self.leakage_alpha,
        }
    }

    /// Serializes the complete grid shape as one canonical line for the
    /// campaign manifest: `;`-separated `key=value` sections, list axes
    /// `,`-joined, `alpha` as the exact bits of the `f64` (hex) so the
    /// round trip is bit-exact. [`SweepGrid::from_spec`] inverts it.
    pub fn to_spec(&self) -> String {
        let join = |tags: Vec<String>| tags.join(",");
        format!(
            "attacks={};workloads={};leakages={};secrets={};trials={};jitter={};\
             permutations={};bootstrap={};alpha={:016x};defenses={};basics={};\
             hierarchies={};seeds={}",
            join(self.attacks.iter().map(AttackCase::tag).collect()),
            self.workloads.join(","),
            join(self.leakages.iter().map(AttackCase::tag).collect()),
            self.leakage_secrets,
            self.leakage_trials,
            self.leakage_jitter,
            self.leakage_permutations,
            self.leakage_bootstrap,
            self.leakage_alpha.to_bits(),
            join(self.defenses.iter().map(DefensePoint::spec).collect()),
            join(self.basics.iter().map(|&b| crate::scenario::basic_tag(b).to_string()).collect()),
            join(self.hierarchies.iter().map(|h| h.tag().to_string()).collect()),
            self.seeds,
        )
    }

    /// Parses a [`SweepGrid::to_spec`] line back into the identical grid
    /// (workload names are validated against the catalog, so a manifest
    /// from a foreign or newer repo fails here rather than panicking
    /// mid-campaign).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending section.
    pub fn from_spec(spec: &str) -> Result<SweepGrid, String> {
        let mut sections: Vec<(&str, &str)> = Vec::new();
        for part in spec.split(';') {
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("bad grid section `{part}`"))?;
            if sections.iter().any(|&(k, _)| k == key) {
                return Err(format!("duplicate grid section `{key}`"));
            }
            sections.push((key, value));
        }
        let get = |key: &str| -> Result<&str, String> {
            sections
                .iter()
                .find(|&&(k, _)| k == key)
                .map(|&(_, v)| v)
                .ok_or_else(|| format!("grid spec missing section `{key}`"))
        };
        let list = |key: &str| -> Result<Vec<&str>, String> {
            Ok(get(key)?.split(',').filter(|t| !t.is_empty()).collect())
        };
        let cases = |key: &str| -> Result<Vec<AttackCase>, String> {
            list(key)?
                .into_iter()
                .map(|t| AttackCase::from_tag(t).ok_or_else(|| format!("unknown {key} tag `{t}`")))
                .collect()
        };
        let num = |key: &str| -> Result<u64, String> {
            get(key)?.parse::<u64>().map_err(|_| format!("bad {key} value `{}`", get(key).unwrap()))
        };
        let workloads: Vec<String> = list("workloads")?.into_iter().map(String::from).collect();
        for w in &workloads {
            if crate::scenario::catalog_workload(w).is_none() {
                return Err(format!("unknown workload `{w}`"));
            }
        }
        let alpha_bits = u64::from_str_radix(get("alpha")?, 16)
            .map_err(|_| format!("bad alpha bits `{}`", get("alpha").unwrap()))?;
        let grid = SweepGrid {
            attacks: cases("attacks")?,
            workloads,
            leakages: cases("leakages")?,
            leakage_secrets: num("secrets")? as u32,
            leakage_trials: num("trials")? as u32,
            leakage_jitter: num("jitter")?,
            leakage_permutations: num("permutations")? as u32,
            leakage_bootstrap: num("bootstrap")? as u32,
            leakage_alpha: f64::from_bits(alpha_bits),
            defenses: list("defenses")?
                .into_iter()
                .map(|t| DefensePoint::from_spec(t).ok_or_else(|| format!("unknown defense `{t}`")))
                .collect::<Result<_, _>>()?,
            basics: list("basics")?
                .into_iter()
                .map(|t| {
                    crate::scenario::basic_from_tag(t)
                        .ok_or_else(|| format!("unknown basic prefetcher `{t}`"))
                })
                .collect::<Result<_, _>>()?,
            hierarchies: list("hierarchies")?
                .into_iter()
                .map(|t| Hierarchy::from_tag(t).ok_or_else(|| format!("unknown hierarchy `{t}`")))
                .collect::<Result<_, _>>()?,
            seeds: num("seeds")? as u32,
        };
        Ok(grid)
    }

    /// Enumerates the flat, stably-ordered work-list.
    pub fn enumerate(&self) -> Vec<Scenario> {
        let payloads: Vec<Payload> = self
            .attacks
            .iter()
            .map(|&a| Payload::Attack(a))
            .chain(self.workloads.iter().map(|w| Payload::Workload(w.clone())))
            .chain(self.leakages.iter().map(|&case| Payload::Leakage {
                case,
                n_secrets: self.leakage_secrets.max(1),
                trials: self.leakage_trials.max(1),
                jitter: self.leakage_jitter,
            }))
            .collect();
        let mut out = Vec::with_capacity(self.len());
        for payload in &payloads {
            for &defense in &self.defenses {
                for &basic in &self.basics {
                    for &hierarchy in &self.hierarchies {
                        for seed_slot in 0..self.seeds.max(1) {
                            out.push(Scenario {
                                index: out.len(),
                                payload: payload.clone(),
                                defense,
                                basic,
                                hierarchy,
                                seed_slot,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_panel_count() {
        assert_eq!(AttackCase::figure8_panels().len(), 12);
        assert_eq!(AttackCase::all().len(), 24);
    }

    #[test]
    fn tags_are_stable() {
        let c =
            AttackCase { kind: AttackKind::FlushReload, noise: NoiseSpec::C3, cross_core: true };
        assert_eq!(c.tag(), "fr+c3x");
        assert_eq!(DefensePoint::new(DefenseConfig::Full).tag(), "full32");
        assert_eq!(DefensePoint::new(DefenseConfig::None).tag(), "base");
        assert_eq!(Hierarchy::BigL2.tag(), "bigl2");
    }

    #[test]
    fn hierarchy_variants_validate() {
        for h in Hierarchy::ALL {
            for cores in [1, 2] {
                let cfg = h.config(cores);
                assert!(cfg.validate().is_ok(), "{h} invalid at {cores} cores");
                assert_eq!(cfg.line_size(), 64, "{h} must keep 64-byte lines");
                assert_eq!(cfg.page_size, 4096, "{h} must keep 4 KB pages");
            }
        }
    }

    #[test]
    fn enumeration_matches_len_and_indexes_sequentially() {
        let mut g = SweepGrid::security_full();
        g.seeds = 3;
        g.hierarchies = vec![Hierarchy::Paper, Hierarchy::Fifo];
        let scenarios = g.enumerate();
        assert_eq!(scenarios.len(), g.len());
        assert_eq!(scenarios.len(), 12 * 6 * 2 * 3);
        for (k, s) in scenarios.iter().enumerate() {
            assert_eq!(s.index, k);
        }
    }

    #[test]
    fn leakage_axis_enumerates_and_counts_sims() {
        let mut g = SweepGrid::leakage_quick();
        assert_eq!(g.len(), 2);
        g.leakage_secrets = 8;
        g.leakage_trials = 4;
        assert_eq!(g.sims(), 2 * 8 * 4);
        let scenarios = g.enumerate();
        assert!(scenarios
            .iter()
            .all(|s| matches!(s.payload, Payload::Leakage { n_secrets: 8, trials: 4, .. })));
        // Mixed grids put leakage payloads after attacks and workloads.
        let mut g = SweepGrid::security_quick();
        g.leakages = vec![AttackCase {
            kind: AttackKind::PrimeProbe,
            noise: NoiseSpec::NONE,
            cross_core: false,
        }];
        let ids: Vec<String> = g.enumerate().iter().map(|s| s.id()).collect();
        // Two defenses × (one attack sim + one 8×4 campaign).
        assert_eq!(g.sims(), 2 * (1 + 8 * 4));
        assert!(ids[0].starts_with("atk:") && ids[2].starts_with("leak:pp:8x4/"), "{ids:?}");
    }

    #[test]
    fn attack_tags_round_trip() {
        for case in AttackCase::all() {
            assert_eq!(AttackCase::from_tag(&case.tag()), Some(case), "tag {}", case.tag());
        }
        for bad in ["", "xx", "fr+c5", "frpp", "x", "fr+"] {
            assert_eq!(AttackCase::from_tag(bad), None, "`{bad}` must not parse");
        }
    }

    #[test]
    fn defense_specs_round_trip_and_keep_buffers() {
        for config in DefenseConfig::ALL {
            for buffers in [1, 8, 32, 64] {
                let p = DefensePoint { config, buffers };
                assert_eq!(DefensePoint::from_spec(&p.spec()), Some(p));
            }
        }
        // The display tag is lossy for buffer-less configs; the spec
        // form must not be.
        let a = DefensePoint { config: DefenseConfig::None, buffers: 8 };
        let b = DefensePoint { config: DefenseConfig::None, buffers: 32 };
        assert_eq!(a.tag(), b.tag());
        assert_ne!(a.spec(), b.spec());
        assert_eq!(DefensePoint::from_spec("full"), None);
        assert_eq!(DefensePoint::from_spec("mega:32"), None);
        assert_eq!(DefensePoint::from_spec("full:x"), None);
    }

    #[test]
    fn grid_spec_round_trips_exactly() {
        let mut g = SweepGrid::security_full();
        g.workloads = vec!["429.mcf".into(), "401.bzip2".into()];
        g.leakages = AttackCase::all();
        g.leakage_secrets = 16;
        g.leakage_trials = 3;
        g.leakage_jitter = 2;
        g.leakage_permutations = 99;
        g.leakage_bootstrap = 50;
        g.leakage_alpha = 0.01;
        g.basics = Basic::ALL.to_vec();
        g.hierarchies = Hierarchy::ALL.to_vec();
        g.seeds = 5;
        let round = SweepGrid::from_spec(&g.to_spec()).expect("spec parses");
        assert_eq!(round, g);
        assert_eq!(round.to_spec(), g.to_spec());
        // Empty axes survive too.
        let empty = SweepGrid::empty();
        assert_eq!(SweepGrid::from_spec(&empty.to_spec()).unwrap(), empty);
    }

    #[test]
    fn grid_spec_rejects_corruption() {
        let spec = SweepGrid::security_quick().to_spec();
        for bad in [
            spec.replace("attacks=fr", "attacks=zz"),
            spec.replace("defenses=", "defenses=mega:1,"),
            spec.replace("seeds=", "seeds=x"),
            spec.replace("alpha=", "alpha=zz"),
            spec.replace("hierarchies=paper", "hierarchies=tower"),
            spec.replace("attacks=", "attacks=fr;attacks="),
            spec.replace("workloads=", "workloads=not-a-workload,"),
            spec.replace("basics=", ""),
            "garbage".to_string(),
        ] {
            assert!(SweepGrid::from_spec(&bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn leakage_full_covers_all_panels() {
        let g = SweepGrid::leakage_full();
        assert_eq!(g.len(), 12 * 6);
        assert_eq!(g.sims(), 12 * 6 * 8 * 4);
    }
}
