//! Campaign shards: deterministic scenario-range partitions and their
//! checksummed on-disk artifact records.
//!
//! A sharded campaign splits the grid's scenario index space `0..n`
//! into consecutive ranges of at most `shard_size` scenarios
//! ([`ShardPlan`]) and commits each completed range to its own file.
//! Because every scenario's seed derives from `(campaign_seed, index,
//! seed_slot)` alone, any range is independently computable — a crashed
//! campaign resumes by re-running exactly the ranges whose files are
//! missing or fail validation, and the merged results equal an
//! uninterrupted run bit for bit.
//!
//! ## Shard file format
//!
//! Text, newline-terminated lines:
//!
//! ```text
//! PSHARD v1
//! shard=3 start=96 end=128 seed=12648430 fingerprint=0123456789abcdef schema=3
//! <one record per scenario, in index order>
//! FOOTER records=32 body=8841 fnv1a=89abcdef01234567
//! ```
//!
//! The footer seals the file: `body` is the byte length of everything
//! before the footer line and `fnv1a` its FNV-1a 64 checksum, so
//! truncation, tail corruption and appended garbage are all detected.
//! The header binds the shard to its campaign: `fingerprint` is the
//! manifest checksum (grid shape + campaign seed + schema), so a shard
//! from a different campaign — or the right campaign at a different
//! grid — never validates.
//!
//! Records serialize every [`ScenarioResult`] field in declaration
//! order, comma-separated, with floats as the exact bits of the `f64`
//! (hex) — the round trip is bit-exact, which is what lets a resumed
//! campaign re-emit `sweep.json` byte-identically.

use std::ops::Range;

use crate::scenario::ScenarioResult;

/// Magic first line of every shard file; the version bumps if the
/// record field set changes.
pub const SHARD_MAGIC: &str = "PSHARD v1";

/// FNV-1a 64-bit: the workspace-standard integrity checksum (tiny,
/// dependency-free, good avalanche for corruption detection — not a
/// cryptographic MAC).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The deterministic shard → scenario-range mapping of one campaign:
/// consecutive ranges of `shard_size` scenarios, the last possibly
/// short. Pure arithmetic on `(n_scenarios, shard_size)`, so every
/// process of a multi-process campaign derives the identical plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Scenarios in the campaign (the grid's `len()`).
    pub n_scenarios: usize,
    /// Maximum scenarios per shard (≥ 1).
    pub shard_size: usize,
}

impl ShardPlan {
    /// A plan over `n_scenarios` in shards of at most `shard_size`.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size` is zero (callers validate at the CLI).
    pub fn new(n_scenarios: usize, shard_size: usize) -> Self {
        assert!(shard_size >= 1, "shard size must be at least 1");
        ShardPlan { n_scenarios, shard_size }
    }

    /// Number of shards (`⌈n/size⌉`; zero for an empty campaign).
    pub fn n_shards(&self) -> usize {
        self.n_scenarios.div_ceil(self.shard_size)
    }

    /// The scenario-index range of shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= n_shards()`.
    pub fn range(&self, shard: usize) -> Range<usize> {
        assert!(shard < self.n_shards(), "shard {shard} out of range");
        let start = shard * self.shard_size;
        start..(start + self.shard_size).min(self.n_scenarios)
    }

    /// All shard ranges in shard order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.n_shards()).map(|s| self.range(s))
    }
}

/// The canonical shard file name (`shard-00042.psd`).
pub fn shard_file_name(shard: usize) -> String {
    format!("shard-{shard:05}.psd")
}

/// The identity a shard file must prove: its position in the plan and
/// the campaign it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHeader {
    /// Shard index within the plan.
    pub shard: usize,
    /// First scenario index (inclusive).
    pub start: usize,
    /// One past the last scenario index.
    pub end: usize,
    /// The campaign seed.
    pub campaign_seed: u64,
    /// The campaign manifest's checksum (binds grid shape + schema).
    pub fingerprint: u64,
}

/// Serializes one completed shard (results must be the header's range
/// in scenario-index order).
///
/// # Panics
///
/// Panics if the results don't match the header's range — the caller
/// (the checkpoint executor) constructs both, so a mismatch is a bug,
/// not an input error.
pub fn encode_shard(header: &ShardHeader, results: &[ScenarioResult]) -> String {
    assert_eq!(results.len(), header.end - header.start, "results must fill the shard range");
    let mut out = String::with_capacity(256 + results.len() * 256);
    out.push_str(SHARD_MAGIC);
    out.push('\n');
    out.push_str(&format!(
        "shard={} start={} end={} seed={} fingerprint={:016x} schema={}\n",
        header.shard,
        header.start,
        header.end,
        header.campaign_seed,
        header.fingerprint,
        crate::artifact::REPORT_SCHEMA_VERSION,
    ));
    for (k, r) in results.iter().enumerate() {
        assert_eq!(r.index, header.start + k, "results must be in scenario-index order");
        out.push_str(&encode_record(r));
        out.push('\n');
    }
    out.push_str(&format!(
        "FOOTER records={} body={} fnv1a={:016x}\n",
        results.len(),
        out.len(),
        fnv1a64(out.as_bytes())
    ));
    out
}

/// Validates and parses a shard file against the identity the campaign
/// expects. Any discrepancy — truncation, flipped bytes, appended
/// garbage, a foreign campaign's shard, a record out of range — returns
/// a description of what failed; the checkpoint layer quarantines the
/// file and re-runs the range.
pub fn decode_shard(text: &str, expect: &ShardHeader) -> Result<Vec<ScenarioResult>, String> {
    // Locate the footer: the last line, starting exactly with "FOOTER ".
    let body_len = text.rfind("\nFOOTER ").map(|p| p + 1).ok_or("no footer (truncated?)")?;
    let (body, footer) = text.split_at(body_len);
    let footer = footer.strip_suffix('\n').ok_or("footer line not newline-terminated")?;
    if footer.contains('\n') {
        return Err("garbage after the footer line".into());
    }
    let footer_kv = parse_kv(footer.strip_prefix("FOOTER ").expect("rfind matched"))?;
    let records: usize = lookup(&footer_kv, "records")?;
    let declared_len: usize = lookup(&footer_kv, "body")?;
    if declared_len != body.len() {
        return Err(format!("body length {} != declared {declared_len}", body.len()));
    }
    let declared_sum = u64::from_str_radix(lookup_str(&footer_kv, "fnv1a")?, 16)
        .map_err(|_| "bad footer checksum field".to_string())?;
    let actual = fnv1a64(body.as_bytes());
    if actual != declared_sum {
        return Err(format!("checksum mismatch ({actual:016x} != {declared_sum:016x})"));
    }

    // The body is now integrity-checked; parse and verify identity.
    let mut lines = body.lines();
    if lines.next() != Some(SHARD_MAGIC) {
        return Err("bad magic".into());
    }
    let header_kv = parse_kv(lines.next().ok_or("missing header line")?)?;
    let schema: u32 = lookup(&header_kv, "schema")?;
    if schema != crate::artifact::REPORT_SCHEMA_VERSION {
        return Err(format!(
            "schema v{schema} != v{} this build writes",
            crate::artifact::REPORT_SCHEMA_VERSION
        ));
    }
    let got = ShardHeader {
        shard: lookup(&header_kv, "shard")?,
        start: lookup(&header_kv, "start")?,
        end: lookup(&header_kv, "end")?,
        campaign_seed: lookup(&header_kv, "seed")?,
        fingerprint: u64::from_str_radix(lookup_str(&header_kv, "fingerprint")?, 16)
            .map_err(|_| "bad fingerprint field".to_string())?,
    };
    if got != *expect {
        return Err(format!("header {got:?} does not match the campaign's {expect:?}"));
    }
    if records != expect.end - expect.start {
        return Err(format!(
            "footer declares {records} records, the range holds {}",
            expect.end - expect.start
        ));
    }
    let mut out = Vec::with_capacity(records);
    for (k, line) in lines.enumerate() {
        let r = decode_record(line).map_err(|e| format!("record {k}: {e}"))?;
        if r.index != expect.start + k {
            return Err(format!("record {k} has index {}, expected {}", r.index, expect.start + k));
        }
        out.push(r);
    }
    if out.len() != records {
        return Err(format!("{} records present, footer declares {records}", out.len()));
    }
    Ok(out)
}

fn parse_kv(line: &str) -> Result<Vec<(&str, &str)>, String> {
    line.split_ascii_whitespace()
        .map(|tok| tok.split_once('=').ok_or_else(|| format!("bad token `{tok}`")))
        .collect()
}

fn lookup_str<'a>(kv: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, String> {
    kv.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v).ok_or_else(|| format!("missing `{key}`"))
}

fn lookup<T: std::str::FromStr>(kv: &[(&str, &str)], key: &str) -> Result<T, String> {
    lookup_str(kv, key)?.parse().map_err(|_| format!("bad `{key}` field"))
}

// --- Record codec -------------------------------------------------------
//
// One comma-separated line per scenario, every `ScenarioResult` field in
// declaration order. Floats are the exact `to_bits()` hex (16 digits) —
// `sweep.json`'s shortest-round-trip formatting then reproduces the
// fresh run's bytes because the values themselves are bit-equal. Options
// encode `None` as the empty field; the latency histogram nests its
// pairs with `:` and `;` (never `,`).

fn push_f64(out: &mut String, v: f64) {
    out.push_str(&format!("{:016x}", v.to_bits()));
}

fn encode_record(r: &ScenarioResult) -> String {
    assert!(!r.id.contains([',', '\n']), "scenario id `{}` would corrupt the record framing", r.id);
    let mut f = String::with_capacity(256);
    let sep = |f: &mut String| f.push(',');
    f.push_str(&r.index.to_string());
    sep(&mut f);
    f.push_str(&r.id);
    sep(&mut f);
    f.push_str(&r.seed.to_string());
    sep(&mut f);
    if let Some(b) = r.leaked {
        f.push(if b { '1' } else { '0' });
    }
    sep(&mut f);
    if let Some(a) = r.anomalies {
        f.push_str(&a.to_string());
    }
    sep(&mut f);
    for (k, &(lat, count)) in r.latency_hist.iter().enumerate() {
        if k > 0 {
            f.push(';');
        }
        f.push_str(&format!("{lat}:{count}"));
    }
    sep(&mut f);
    f.push(if r.truncated { '1' } else { '0' });
    for v in [
        r.cycles,
        r.instructions,
        r.demand_accesses,
        r.demand_misses,
        r.demand_miss_latency,
        r.prefetch_issued,
        r.prefetch_fills,
        r.prefetch_useful,
        r.st_prefetches,
        r.at_prefetches,
        r.rp_prefetches,
    ] {
        sep(&mut f);
        f.push_str(&v.to_string());
    }
    sep(&mut f);
    push_f64(&mut f, r.ipc);
    for v in [
        r.prefetch_accuracy,
        r.mi_bits,
        r.mi_corrected,
        r.capacity_bits,
        r.ml_accuracy,
        r.guessing_entropy,
        r.mi_p_value,
        r.mi_null_q95,
        r.mi_ci_lo,
        r.mi_ci_hi,
    ] {
        sep(&mut f);
        if let Some(v) = v {
            push_f64(&mut f, v);
        }
    }
    for v in [r.secrets, r.trials] {
        sep(&mut f);
        if let Some(v) = v {
            f.push_str(&v.to_string());
        }
    }
    f
}

fn decode_record(line: &str) -> Result<ScenarioResult, String> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 31 {
        return Err(format!("{} fields, expected 31", fields.len()));
    }
    let mut i = 0usize;
    let mut next = || {
        let f = fields[i];
        i += 1;
        f
    };
    fn num<T: std::str::FromStr>(f: &str, what: &str) -> Result<T, String> {
        f.parse().map_err(|_| format!("bad {what} `{f}`"))
    }
    fn opt_num<T: std::str::FromStr>(f: &str, what: &str) -> Result<Option<T>, String> {
        if f.is_empty() {
            Ok(None)
        } else {
            num(f, what).map(Some)
        }
    }
    fn bits(f: &str, what: &str) -> Result<f64, String> {
        u64::from_str_radix(f, 16).map(f64::from_bits).map_err(|_| format!("bad {what} bits `{f}`"))
    }
    fn opt_bits(f: &str, what: &str) -> Result<Option<f64>, String> {
        if f.is_empty() {
            Ok(None)
        } else {
            bits(f, what).map(Some)
        }
    }
    let index = num(next(), "index")?;
    let id = next().to_string();
    let seed = num(next(), "seed")?;
    let leaked = match next() {
        "" => None,
        "0" => Some(false),
        "1" => Some(true),
        other => return Err(format!("bad leaked flag `{other}`")),
    };
    let anomalies = opt_num(next(), "anomalies")?;
    let hist_field = next();
    let mut latency_hist = Vec::new();
    if !hist_field.is_empty() {
        for pair in hist_field.split(';') {
            let (lat, count) = pair.split_once(':').ok_or_else(|| format!("bad hist `{pair}`"))?;
            latency_hist.push((num(lat, "hist latency")?, num(count, "hist count")?));
        }
    }
    let truncated = match next() {
        "0" => false,
        "1" => true,
        other => return Err(format!("bad truncated flag `{other}`")),
    };
    let cycles = num(next(), "cycles")?;
    let instructions = num(next(), "instructions")?;
    let demand_accesses = num(next(), "demand_accesses")?;
    let demand_misses = num(next(), "demand_misses")?;
    let demand_miss_latency = num(next(), "demand_miss_latency")?;
    let prefetch_issued = num(next(), "prefetch_issued")?;
    let prefetch_fills = num(next(), "prefetch_fills")?;
    let prefetch_useful = num(next(), "prefetch_useful")?;
    let st_prefetches = num(next(), "st_prefetches")?;
    let at_prefetches = num(next(), "at_prefetches")?;
    let rp_prefetches = num(next(), "rp_prefetches")?;
    let ipc = bits(next(), "ipc")?;
    let prefetch_accuracy = opt_bits(next(), "prefetch_accuracy")?;
    let mi_bits = opt_bits(next(), "mi_bits")?;
    let mi_corrected = opt_bits(next(), "mi_corrected")?;
    let capacity_bits = opt_bits(next(), "capacity_bits")?;
    let ml_accuracy = opt_bits(next(), "ml_accuracy")?;
    let guessing_entropy = opt_bits(next(), "guessing_entropy")?;
    let mi_p_value = opt_bits(next(), "mi_p_value")?;
    let mi_null_q95 = opt_bits(next(), "mi_null_q95")?;
    let mi_ci_lo = opt_bits(next(), "mi_ci_lo")?;
    let mi_ci_hi = opt_bits(next(), "mi_ci_hi")?;
    let secrets = opt_num(next(), "secrets")?;
    let trials = opt_num(next(), "trials")?;
    debug_assert_eq!(i, 31);
    Ok(ScenarioResult {
        index,
        id,
        seed,
        leaked,
        anomalies,
        latency_hist,
        truncated,
        cycles,
        instructions,
        ipc,
        demand_accesses,
        demand_misses,
        demand_miss_latency,
        prefetch_issued,
        prefetch_fills,
        prefetch_useful,
        prefetch_accuracy,
        st_prefetches,
        at_prefetches,
        rp_prefetches,
        mi_bits,
        mi_corrected,
        capacity_bits,
        ml_accuracy,
        guessing_entropy,
        secrets,
        trials,
        mi_p_value,
        mi_null_q95,
        mi_ci_lo,
        mi_ci_hi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result(index: usize) -> ScenarioResult {
        ScenarioResult {
            index,
            id: format!("atk:fr/full32/none/paper/s{index}"),
            seed: 0xDEAD_BEEF ^ index as u64,
            leaked: Some(index.is_multiple_of(2)),
            anomalies: Some(3),
            latency_hist: vec![(4, 60), (200, 4)],
            truncated: false,
            cycles: 123_456,
            instructions: 98_765,
            ipc: 0.1234567890123,
            demand_accesses: 400,
            demand_misses: 31,
            demand_miss_latency: 6200,
            prefetch_issued: 17,
            prefetch_fills: 15,
            prefetch_useful: 9,
            prefetch_accuracy: Some(0.6),
            st_prefetches: 5,
            at_prefetches: 7,
            rp_prefetches: 5,
            mi_bits: None,
            mi_corrected: None,
            capacity_bits: None,
            ml_accuracy: None,
            guessing_entropy: None,
            secrets: None,
            trials: None,
            mi_p_value: None,
            mi_null_q95: None,
            mi_ci_lo: None,
            mi_ci_hi: None,
        }
    }

    fn leakage_result(index: usize) -> ScenarioResult {
        ScenarioResult {
            leaked: None,
            anomalies: None,
            latency_hist: Vec::new(),
            mi_bits: Some(2.9999999999999996),
            mi_corrected: Some(0.0),
            capacity_bits: Some(f64::NAN),
            ml_accuracy: Some(1.0),
            guessing_entropy: Some(f64::INFINITY),
            secrets: Some(8),
            trials: Some(4),
            mi_p_value: Some(0.004999999999999),
            mi_null_q95: Some(1e-300),
            mi_ci_lo: Some(-0.0),
            mi_ci_hi: Some(3.0),
            ..sample_result(index)
        }
    }

    #[test]
    fn plan_partitions_exactly() {
        let plan = ShardPlan::new(13, 4);
        assert_eq!(plan.n_shards(), 4);
        let ranges: Vec<_> = plan.ranges().collect();
        assert_eq!(ranges, vec![0..4, 4..8, 8..12, 12..13]);
        assert_eq!(ShardPlan::new(0, 4).n_shards(), 0);
        assert_eq!(ShardPlan::new(4, 4).n_shards(), 1);
        assert_eq!(ShardPlan::new(4, 100).range(0), 0..4);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_shard_size_panics() {
        ShardPlan::new(10, 0);
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        for r in [sample_result(0), sample_result(7), leakage_result(3)] {
            let line = encode_record(&r);
            let back = decode_record(&line).expect("decodes");
            // PartialEq fails on NaN fields; compare through the exact
            // bit patterns instead.
            assert_eq!(encode_record(&back), line);
            assert_eq!(back.index, r.index);
            assert_eq!(back.id, r.id);
            assert_eq!(
                back.capacity_bits.map(f64::to_bits),
                r.capacity_bits.map(f64::to_bits),
                "NaN/inf survive exactly"
            );
        }
    }

    #[test]
    fn shards_round_trip() {
        let header =
            ShardHeader { shard: 2, start: 8, end: 11, campaign_seed: 42, fingerprint: 0xABCD };
        let results: Vec<_> = (8..11).map(sample_result).collect();
        let text = encode_shard(&header, &results);
        let back = decode_shard(&text, &header).expect("valid shard");
        assert_eq!(back, results);
    }

    #[test]
    fn corruption_is_always_detected() {
        let header =
            ShardHeader { shard: 0, start: 0, end: 3, campaign_seed: 7, fingerprint: 0x1234 };
        let results: Vec<_> = (0..3).map(leakage_result).collect();
        let good = encode_shard(&header, &results);
        assert!(decode_shard(&good, &header).is_ok());

        // Truncation at every byte boundary must fail.
        for cut in 0..good.len() {
            assert!(
                decode_shard(&good[..cut], &header).is_err(),
                "truncation at {cut} must not validate"
            );
        }
        // A flipped byte anywhere must fail (checksum or framing).
        let mut bytes = good.clone().into_bytes();
        for pos in [0, 10, good.len() / 2, good.len() - 2] {
            let orig = bytes[pos];
            bytes[pos] = orig.wrapping_add(1);
            let corrupt = String::from_utf8_lossy(&bytes).into_owned();
            assert!(decode_shard(&corrupt, &header).is_err(), "flip at {pos} must not validate");
            bytes[pos] = orig;
        }
        // Appended garbage must fail.
        assert!(decode_shard(&format!("{good}junk\n"), &header).is_err());
        assert!(decode_shard(&format!("{good}\n"), &header).is_err());
        assert!(decode_shard("", &header).is_err());
    }

    #[test]
    fn foreign_shards_are_rejected() {
        let header =
            ShardHeader { shard: 1, start: 4, end: 6, campaign_seed: 9, fingerprint: 0xFEED };
        let text = encode_shard(&header, &(4..6).map(sample_result).collect::<Vec<_>>());
        for wrong in [
            ShardHeader { shard: 2, ..header },
            ShardHeader { start: 0, end: 2, ..header },
            ShardHeader { campaign_seed: 10, ..header },
            ShardHeader { fingerprint: 0xBEEF, ..header },
        ] {
            let err = decode_shard(&text, &wrong).unwrap_err();
            assert!(err.contains("does not match"), "{err}");
        }
    }

    #[test]
    fn file_names_are_stable() {
        assert_eq!(shard_file_name(0), "shard-00000.psd");
        assert_eq!(shard_file_name(42), "shard-00042.psd");
        assert_eq!(shard_file_name(123_456), "shard-123456.psd");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
