//! Engine-level guarantees: deterministic sharding and sound grid
//! enumeration.

use prefender_sweep::{
    run_sweep, AttackCase, AttackKind, Basic, DefenseConfig, DefensePoint, Hierarchy, NoiseSpec,
    SweepGrid, SweepOptions,
};

/// A small mixed grid touching every axis: two attack cases, a workload
/// and a leakage campaign, two defenses, two basics, two hierarchies,
/// two seeds.
fn mixed_grid() -> SweepGrid {
    SweepGrid {
        attacks: vec![
            AttackCase { kind: AttackKind::FlushReload, noise: NoiseSpec::NONE, cross_core: false },
            AttackCase { kind: AttackKind::PrimeProbe, noise: NoiseSpec::C3, cross_core: true },
        ],
        workloads: vec!["999.specrand".into(), "462.libquantum".into()],
        leakages: vec![AttackCase {
            kind: AttackKind::FlushReload,
            noise: NoiseSpec::NONE,
            cross_core: false,
        }],
        leakage_secrets: 4,
        leakage_trials: 2,
        leakage_jitter: 0,
        leakage_permutations: 0,
        leakage_bootstrap: 0,
        leakage_alpha: 0.05,
        defenses: vec![
            DefensePoint::new(DefenseConfig::None),
            DefensePoint { config: DefenseConfig::Full, buffers: 16 },
        ],
        basics: vec![Basic::None, Basic::Tagged],
        hierarchies: vec![Hierarchy::Paper, Hierarchy::BigL2],
        seeds: 2,
    }
}

/// The acceptance-criterion determinism claim: the same campaign seed
/// produces byte-identical `sweep.json` / `sweep.csv` / `leakage.json` /
/// `leakage.csv` at `--threads 1` and `--threads 8`.
#[test]
fn artifacts_are_byte_identical_across_thread_counts() {
    let grid = mixed_grid();
    let one = run_sweep(&grid, &SweepOptions { threads: 1, campaign_seed: 0xC0FFEE });
    let eight = run_sweep(&grid, &SweepOptions { threads: 8, campaign_seed: 0xC0FFEE });
    assert_eq!(one.to_json(), eight.to_json());
    assert_eq!(one.to_csv(), eight.to_csv());
    assert!(one.has_leakage());
    assert_eq!(one.leakage_json(), eight.leakage_json());
    assert_eq!(one.leakage_csv(), eight.leakage_csv());
    // And a different campaign seed reseeds the attack scenarios.
    let other = run_sweep(&grid, &SweepOptions { threads: 8, campaign_seed: 1 });
    assert_ne!(
        one.results[0].seed, other.results[0].seed,
        "campaign seed must flow into per-scenario seeds"
    );
}

/// The schema-v3 statistical columns obey the same determinism contract:
/// with the permutation null and bootstrap CIs enabled, `leakage.json` /
/// `leakage.csv` stay byte-identical at `--threads 1` and `--threads 8`
/// (per-scenario resampling seeds derive from the campaign seed, never
/// from execution order).
#[test]
fn resampled_artifacts_are_byte_identical_across_thread_counts() {
    let mut grid = SweepGrid::leakage_quick();
    grid.leakage_secrets = 4;
    grid.leakage_trials = 2;
    grid.leakage_permutations = 50;
    grid.leakage_bootstrap = 30;
    let one = run_sweep(&grid, &SweepOptions { threads: 1, campaign_seed: 0xC0FFEE });
    let eight = run_sweep(&grid, &SweepOptions { threads: 8, campaign_seed: 0xC0FFEE });
    assert_eq!(one.leakage_json(), eight.leakage_json());
    assert_eq!(one.leakage_csv(), eight.leakage_csv());
    assert_eq!(one.to_json(), eight.to_json());
    for r in &one.results {
        let mi = r.mi_bits.unwrap();
        assert!(r.mi_p_value.is_some() && r.mi_null_q95.is_some(), "{}", r.id);
        assert!(r.mi_corrected.unwrap() <= mi + 1e-12, "{}", r.id);
        let (lo, hi) = (r.mi_ci_lo.unwrap(), r.mi_ci_hi.unwrap());
        assert!(lo <= mi && mi <= hi, "{}: CI [{lo}, {hi}] must bracket MI {mi}", r.id);
    }
    // The undefended campaign rejects the zero-leakage null; the sealed
    // one accepts it.
    let open = one.by_id("leak:fr:4x2/base/none/paper/s0").unwrap();
    assert!(open.mi_p_value.unwrap() < 0.05, "open p = {:?}", open.mi_p_value);
    let sealed = one.by_id("leak:fr:4x2/full32/none/paper/s0").unwrap();
    assert!(sealed.mi_p_value.unwrap() >= 0.05, "sealed p = {:?}", sealed.mi_p_value);
}

/// Grid enumeration: the count matches the axis product and every
/// scenario id is unique.
#[test]
fn enumeration_counts_and_ids() {
    let grid = mixed_grid();
    let scenarios = grid.enumerate();
    assert_eq!(grid.len(), (2 + 2 + 1) * 2 * 2 * 2 * 2);
    assert_eq!(grid.sims(), (2 + 2 + 4 * 2) as u64 * 16, "campaigns fan out 4 secrets x 2 trials");
    assert_eq!(scenarios.len(), grid.len());
    let mut ids: Vec<String> = scenarios.iter().map(|s| s.id()).collect();
    for (k, s) in scenarios.iter().enumerate() {
        assert_eq!(s.index, k, "indices must be sequential");
    }
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), scenarios.len(), "duplicate scenario ids");
}

/// Every payload family fills its side of the result record.
#[test]
fn results_carry_security_and_perf_fields() {
    let grid = mixed_grid();
    let report = run_sweep(&grid, &SweepOptions { threads: 4, campaign_seed: 0xC0FFEE });
    assert_eq!(report.results.len(), grid.len());
    let attacks: Vec<_> = report.with_prefix("atk:").collect();
    let perfs: Vec<_> = report.with_prefix("wl:").collect();
    let leakages: Vec<_> = report.with_prefix("leak:").collect();
    assert_eq!(attacks.len(), 2 * 2 * 2 * 2 * 2);
    assert_eq!(perfs.len(), 2 * 2 * 2 * 2 * 2);
    assert_eq!(leakages.len(), 2 * 2 * 2 * 2);
    for r in &attacks {
        assert!(r.leaked.is_some() && r.anomalies.is_some(), "{}", r.id);
        assert!(!r.is_leakage(), "{}", r.id);
        assert!(!r.latency_hist.is_empty(), "{}", r.id);
        assert!(r.cycles > 0 && r.instructions > 0, "{}", r.id);
    }
    for r in &perfs {
        assert!(r.leaked.is_none() && r.latency_hist.is_empty(), "{}", r.id);
        assert!(!r.is_leakage(), "{}", r.id);
        assert!(!r.truncated && r.cycles > 0, "{}", r.id);
    }
    for r in &leakages {
        assert!(r.is_leakage() && r.leaked.is_none(), "{}", r.id);
        assert_eq!((r.secrets, r.trials), (Some(4), Some(2)), "{}", r.id);
        let mi = r.mi_bits.unwrap();
        assert!((0.0..=2.0 + 1e-9).contains(&mi), "{}: MI {mi} out of range", r.id);
        assert!(r.capacity_bits.unwrap() >= mi - 1e-6, "{}", r.id);
        assert!(r.cycles > 0 && !r.latency_hist.is_empty(), "{}", r.id);
    }
    // The channel verdicts sharpen the booleans: an undefended paper-
    // hierarchy Flush+Reload campaign carries the full 2 bits, the fully
    // defended one nothing.
    let open = report.by_id("leak:fr:4x2/base/none/paper/s0").unwrap();
    assert!((open.mi_bits.unwrap() - 2.0).abs() < 0.1, "base MI {:?}", open.mi_bits);
    let sealed = report.by_id("leak:fr:4x2/full16/none/paper/s0").unwrap();
    assert!(sealed.mi_bits.unwrap() <= 0.2, "full MI {:?}", sealed.mi_bits);
    // The undefended single-core Flush+Reload on the paper hierarchy
    // leaks; the fully-defended one does not — for both derived seeds.
    for slot in 0..2 {
        let leak = report.by_id(&format!("atk:fr/base/none/paper/s{slot}")).unwrap();
        assert_eq!(leak.leaked, Some(true));
        let safe = report.by_id(&format!("atk:fr/full16/none/paper/s{slot}")).unwrap();
        assert_eq!(safe.leaked, Some(false));
    }
}

/// Workload scenarios respond to the prefetcher axis: Tagged beats the
/// no-prefetcher baseline on streaming, on every hierarchy variant.
#[test]
fn perf_scenarios_reflect_prefetcher_quality() {
    let report = run_sweep(&mixed_grid(), &SweepOptions { threads: 4, campaign_seed: 0xC0FFEE });
    for hier in ["paper", "bigl2"] {
        let base = report.by_id(&format!("wl:462.libquantum/base/none/{hier}/s0")).unwrap().cycles;
        let tagged =
            report.by_id(&format!("wl:462.libquantum/base/tagged/{hier}/s0")).unwrap().cycles;
        assert!(tagged < base, "{hier}: tagged {tagged} must beat baseline {base}");
    }
}
