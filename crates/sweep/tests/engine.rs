//! Engine-level guarantees: deterministic sharding and sound grid
//! enumeration.

use prefender_sweep::{
    run_sweep, AttackCase, AttackKind, Basic, DefenseConfig, DefensePoint, Hierarchy, NoiseSpec,
    SweepGrid, SweepOptions,
};

/// A small mixed grid touching every axis: two attack cases and a
/// workload, two defenses, two basics, two hierarchies, two seeds.
fn mixed_grid() -> SweepGrid {
    SweepGrid {
        attacks: vec![
            AttackCase { kind: AttackKind::FlushReload, noise: NoiseSpec::NONE, cross_core: false },
            AttackCase { kind: AttackKind::PrimeProbe, noise: NoiseSpec::C3, cross_core: true },
        ],
        workloads: vec!["999.specrand".into(), "462.libquantum".into()],
        defenses: vec![
            DefensePoint::new(DefenseConfig::None),
            DefensePoint { config: DefenseConfig::Full, buffers: 16 },
        ],
        basics: vec![Basic::None, Basic::Tagged],
        hierarchies: vec![Hierarchy::Paper, Hierarchy::BigL2],
        seeds: 2,
    }
}

/// The acceptance-criterion determinism claim: the same campaign seed
/// produces a byte-identical `sweep.json` (and CSV) at `--threads 1` and
/// `--threads 8`.
#[test]
fn artifacts_are_byte_identical_across_thread_counts() {
    let grid = mixed_grid();
    let one = run_sweep(&grid, &SweepOptions { threads: 1, campaign_seed: 0xC0FFEE });
    let eight = run_sweep(&grid, &SweepOptions { threads: 8, campaign_seed: 0xC0FFEE });
    assert_eq!(one.to_json(), eight.to_json());
    assert_eq!(one.to_csv(), eight.to_csv());
    // And a different campaign seed reseeds the attack scenarios.
    let other = run_sweep(&grid, &SweepOptions { threads: 8, campaign_seed: 1 });
    assert_ne!(
        one.results[0].seed, other.results[0].seed,
        "campaign seed must flow into per-scenario seeds"
    );
}

/// Grid enumeration: the count matches the axis product and every
/// scenario id is unique.
#[test]
fn enumeration_counts_and_ids() {
    let grid = mixed_grid();
    let scenarios = grid.enumerate();
    assert_eq!(grid.len(), (2 + 2) * 2 * 2 * 2 * 2);
    assert_eq!(scenarios.len(), grid.len());
    let mut ids: Vec<String> = scenarios.iter().map(|s| s.id()).collect();
    for (k, s) in scenarios.iter().enumerate() {
        assert_eq!(s.index, k, "indices must be sequential");
    }
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), scenarios.len(), "duplicate scenario ids");
}

/// Every payload family fills its side of the result record.
#[test]
fn results_carry_security_and_perf_fields() {
    let grid = mixed_grid();
    let report = run_sweep(&grid, &SweepOptions { threads: 4, campaign_seed: 0xC0FFEE });
    assert_eq!(report.results.len(), grid.len());
    let attacks: Vec<_> = report.with_prefix("atk:").collect();
    let perfs: Vec<_> = report.with_prefix("wl:").collect();
    assert_eq!(attacks.len(), 2 * 2 * 2 * 2 * 2);
    assert_eq!(perfs.len(), 2 * 2 * 2 * 2 * 2);
    for r in &attacks {
        assert!(r.leaked.is_some() && r.anomalies.is_some(), "{}", r.id);
        assert!(!r.latency_hist.is_empty(), "{}", r.id);
        assert!(r.cycles > 0 && r.instructions > 0, "{}", r.id);
    }
    for r in &perfs {
        assert!(r.leaked.is_none() && r.latency_hist.is_empty(), "{}", r.id);
        assert!(!r.truncated && r.cycles > 0, "{}", r.id);
    }
    // The undefended single-core Flush+Reload on the paper hierarchy
    // leaks; the fully-defended one does not — for both derived seeds.
    for slot in 0..2 {
        let leak = report.by_id(&format!("atk:fr/base/none/paper/s{slot}")).unwrap();
        assert_eq!(leak.leaked, Some(true));
        let safe = report.by_id(&format!("atk:fr/full16/none/paper/s{slot}")).unwrap();
        assert_eq!(safe.leaked, Some(false));
    }
}

/// Workload scenarios respond to the prefetcher axis: Tagged beats the
/// no-prefetcher baseline on streaming, on every hierarchy variant.
#[test]
fn perf_scenarios_reflect_prefetcher_quality() {
    let report = run_sweep(&mixed_grid(), &SweepOptions { threads: 4, campaign_seed: 0xC0FFEE });
    for hier in ["paper", "bigl2"] {
        let base = report.by_id(&format!("wl:462.libquantum/base/none/{hier}/s0")).unwrap().cycles;
        let tagged =
            report.by_id(&format!("wl:462.libquantum/base/tagged/{hier}/s0")).unwrap().cycles;
        assert!(tagged < base, "{hier}: tagged {tagged} must beat baseline {base}");
    }
}
