//! The observability contract, pinned from outside the engine:
//!
//! * harvesting obs never changes an artifact byte — `run_sweep_observed`
//!   returns the same report as `run_sweep`, spans armed or not;
//! * the merged counter block is a pure function of the grid and
//!   campaign seed — identical at every thread count;
//! * the flight-recorder trace serializes to the same bytes at 1, 2 and
//!   8 threads, with spans armed or disarmed, and arming the recorder
//!   never changes an artifact byte.

use proptest::prelude::*;

use prefender_obs::{arm_trace, disarm_trace, enable_spans, DEFAULT_TRACE_CAPACITY};
use prefender_sweep::{
    run_sweep, run_sweep_observed, AttackCase, AttackKind, Basic, DefenseConfig, DefensePoint,
    Hierarchy, NoiseSpec, SweepGrid, SweepOptions,
};

/// A deterministic picker over a seed (SplitMix64 stream) so a single
/// `u64` strategy drives every grid-shaping choice.
struct Picker(u64);

impl Picker {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.below(options.len() as u64) as usize]
    }
}

/// A small random grid touching every payload kind (attacks, an optional
/// workload, an optional leakage campaign) and every machine-shaping
/// axis, kept small enough to run at three thread counts per case.
fn random_grid(seed: u64) -> SweepGrid {
    let mut p = Picker(seed);
    let kinds = [AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe];
    let noises = [NoiseSpec::NONE, NoiseSpec::C3, NoiseSpec::C4, NoiseSpec::C3C4];
    let mut g = SweepGrid::empty();
    g.attacks = (0..1 + p.below(2))
        .map(|_| AttackCase {
            kind: p.pick(&kinds),
            noise: p.pick(&noises),
            cross_core: p.below(2) == 0,
        })
        .collect();
    if p.below(2) == 0 {
        g.workloads = vec!["999.specrand".to_string()];
    }
    if p.below(2) == 0 {
        g.leakages = vec![AttackCase {
            kind: p.pick(&kinds),
            noise: NoiseSpec::NONE,
            cross_core: p.below(2) == 0,
        }];
        g.leakage_secrets = 2;
        g.leakage_trials = 1;
    }
    let configs = [
        DefenseConfig::None,
        DefenseConfig::St,
        DefenseConfig::At,
        DefenseConfig::StAt,
        DefenseConfig::AtRp,
        DefenseConfig::Full,
    ];
    g.defenses = (0..1 + p.below(2))
        .map(|_| DefensePoint { config: p.pick(&configs), buffers: p.pick(&[16usize, 32]) })
        .collect();
    g.basics = match p.below(3) {
        0 => vec![Basic::None],
        1 => vec![Basic::Tagged],
        _ => vec![Basic::None, Basic::Stride],
    };
    g.hierarchies = match p.below(3) {
        0 => vec![Hierarchy::Paper],
        1 => vec![Hierarchy::Fifo],
        _ => vec![Hierarchy::Paper, Hierarchy::BigL2],
    };
    g.seeds = 1 + p.below(2) as u32;
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Counter totals are a pure function of the grid: 1, 2 and 8
    /// worker threads merge to the same block, and the artifacts the
    /// observed run returns match plain `run_sweep` byte for byte.
    #[test]
    fn counter_totals_are_thread_count_invariant(seed in 0u64..1 << 48) {
        let grid = random_grid(seed);
        prop_assert!(!grid.is_empty());
        let opts1 = SweepOptions { threads: 1, campaign_seed: 0xC0FFEE ^ seed };
        let plain = run_sweep(&grid, &opts1);
        let (report1, obs1) = run_sweep_observed(&grid, &opts1, None);
        prop_assert_eq!(&report1.to_json(), &plain.to_json());
        prop_assert_eq!(&report1.to_csv(), &plain.to_csv());
        for threads in [2usize, 8] {
            let opts = SweepOptions { threads, campaign_seed: 0xC0FFEE ^ seed };
            let (report, obs) = run_sweep_observed(&grid, &opts, None);
            prop_assert_eq!(&report.to_json(), &plain.to_json(), "threads={}", threads);
            prop_assert_eq!(obs.counters, obs1.counters, "threads={}", threads);
            // The deterministic section of the obs report serializes to
            // the same bytes too (the timing section is the only part
            // allowed to differ).
            prop_assert_eq!(
                obs.counters.to_value().to_json(0),
                obs1.counters.to_value().to_json(0),
                "threads={}",
                threads
            );
            // Every machine run is accounted for exactly once, however
            // chunks landed: attack and leakage runs go through a
            // runner `prepare` (one reset or rebuild each), workload
            // scenarios are one private build each, and on top of that
            // every worker that touched the runner paid one
            // construction rebuild — at most `threads` of those.
            let total = obs.telemetry.resets + obs.telemetry.rebuilds;
            prop_assert!(
                (grid.sims()..=grid.sims() + threads as u64).contains(&total),
                "threads={threads}: resets+rebuilds {total} outside [{}, {}]",
                grid.sims(),
                grid.sims() + threads as u64
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The flight recorder obeys the same determinism contract as the
    /// counters: trace bytes are a pure function of the grid and
    /// campaign seed — identical at 1, 2 and 8 worker threads, and
    /// identical whether the span collector (the other obs surface) is
    /// armed or not. Arming the recorder changes no artifact byte.
    #[test]
    fn trace_bytes_are_thread_count_and_span_invariant(seed in 0u64..1 << 48) {
        let grid = random_grid(seed);
        let opts1 = SweepOptions { threads: 1, campaign_seed: 0xC0FFEE ^ seed };
        let plain = run_sweep(&grid, &opts1);
        let traced = |threads: usize, spans: bool| {
            let opts = SweepOptions { threads, campaign_seed: 0xC0FFEE ^ seed };
            enable_spans(spans);
            arm_trace(DEFAULT_TRACE_CAPACITY);
            let out = run_sweep_observed(&grid, &opts, None);
            disarm_trace();
            enable_spans(false);
            out
        };
        let (report1, obs1) = traced(1, false);
        let base = obs1.trace_jsonl();
        prop_assert!(obs1.trace_events() > 0, "an attack grid must trace events");
        prop_assert_eq!(obs1.trace_dropped(), 0, "CI-sized grids fit the ring");
        prop_assert_eq!(&report1.to_json(), &plain.to_json());
        prop_assert_eq!(&report1.to_csv(), &plain.to_csv());
        for (threads, spans) in [(2usize, false), (8, false), (1, true)] {
            let (report, obs) = traced(threads, spans);
            prop_assert_eq!(
                &obs.trace_jsonl(), &base,
                "threads={} spans={}", threads, spans
            );
            prop_assert_eq!(&report.to_json(), &plain.to_json(), "threads={}", threads);
        }
    }
}

/// Arming the span collector changes no artifact byte and no counter:
/// spans only feed thread-local profiles, never results.
#[test]
fn spans_enabled_leaves_artifacts_and_counters_identical() {
    let grid = random_grid(0x0B5);
    let opts = SweepOptions { threads: 2, campaign_seed: 0xC0FFEE };
    let (report_off, obs_off) = run_sweep_observed(&grid, &opts, None);
    enable_spans(true);
    let (report_on, obs_on) = run_sweep_observed(&grid, &opts, None);
    enable_spans(false);
    assert_eq!(report_on.to_json(), report_off.to_json());
    assert_eq!(report_on.to_csv(), report_off.to_csv());
    if report_off.has_leakage() {
        assert_eq!(report_on.leakage_json(), report_off.leakage_json());
        assert_eq!(report_on.leakage_csv(), report_off.leakage_csv());
    }
    assert_eq!(obs_on.counters, obs_off.counters);
}
