//! Config-major scheduling is a pure scheduling choice: `run_sweep`'s
//! output is pinned bit-for-bit against plain index-order sequential
//! execution, across random grids and thread counts.

use proptest::prelude::*;

use prefender_sweep::{
    run_sweep, AttackCase, AttackKind, Basic, DefenseConfig, DefensePoint, Hierarchy, NoiseSpec,
    Payload, Scenario, SweepGrid, SweepOptions, SweepReport,
};

/// A deterministic picker over a seed (SplitMix64 stream) so a single
/// `u64` strategy drives every grid-shaping choice.
struct Picker(u64);

impl Picker {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.below(options.len() as u64) as usize]
    }
}

/// A small random grid touching every axis kind: 1–2 attack cases, an
/// optional workload, an optional leakage campaign, 1–2 defenses, 1–2
/// basics, 1–2 hierarchies, 1–2 seed slots. Kept small so the proptest
/// runs the grid five times per case (reference + four thread counts)
/// in reasonable time.
fn random_grid(seed: u64) -> SweepGrid {
    let mut p = Picker(seed);
    let kinds = [AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe];
    let noises = [NoiseSpec::NONE, NoiseSpec::C3, NoiseSpec::C4, NoiseSpec::C3C4];
    let mut g = SweepGrid::empty();
    g.attacks = (0..1 + p.below(2))
        .map(|_| AttackCase {
            kind: p.pick(&kinds),
            noise: p.pick(&noises),
            cross_core: p.below(2) == 0,
        })
        .collect();
    if p.below(2) == 0 {
        g.workloads = vec!["999.specrand".to_string()];
    }
    if p.below(2) == 0 {
        g.leakages = vec![AttackCase {
            kind: p.pick(&kinds),
            noise: NoiseSpec::NONE,
            cross_core: p.below(2) == 0,
        }];
        g.leakage_secrets = 2;
        g.leakage_trials = 1;
    }
    let configs = [
        DefenseConfig::None,
        DefenseConfig::St,
        DefenseConfig::At,
        DefenseConfig::StAt,
        DefenseConfig::AtRp,
        DefenseConfig::Full,
    ];
    g.defenses = (0..1 + p.below(2))
        .map(|_| DefensePoint { config: p.pick(&configs), buffers: p.pick(&[16usize, 32]) })
        .collect();
    g.basics = match p.below(3) {
        0 => vec![Basic::None],
        1 => vec![Basic::Tagged],
        _ => vec![Basic::None, Basic::Stride],
    };
    g.hierarchies = match p.below(3) {
        0 => vec![Hierarchy::Paper],
        1 => vec![Hierarchy::Fifo],
        _ => vec![Hierarchy::Paper, Hierarchy::BigL2],
    };
    g.seeds = 1 + p.below(2) as u32;
    g
}

/// Plain index-order sequential execution — the reference the scheduled
/// engine must reproduce bit-for-bit.
fn reference_report(grid: &SweepGrid, campaign_seed: u64) -> SweepReport {
    let resample = grid.resample();
    let results = grid
        .enumerate()
        .iter()
        .map(|s| prefender_sweep::run_scenario_with(s, campaign_seed, &resample))
        .collect();
    SweepReport { campaign_seed, results }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole determinism claim: config-major-scheduled `run_sweep`
    /// equals index-order execution, byte for byte, at every thread count.
    #[test]
    fn config_major_schedule_matches_index_order(seed in 0u64..1 << 48) {
        let grid = random_grid(seed);
        prop_assert!(!grid.is_empty());
        let reference = reference_report(&grid, 0xC0FFEE ^ seed);
        let ref_json = reference.to_json();
        let ref_csv = reference.to_csv();
        for threads in [1usize, 2, 3, 8] {
            let opts = SweepOptions { threads, campaign_seed: 0xC0FFEE ^ seed };
            let scheduled = run_sweep(&grid, &opts);
            prop_assert_eq!(&scheduled.to_json(), &ref_json, "threads={}", threads);
            prop_assert_eq!(&scheduled.to_csv(), &ref_csv, "threads={}", threads);
            if reference.has_leakage() {
                prop_assert_eq!(
                    &scheduled.leakage_json(),
                    &reference.leakage_json(),
                    "threads={}",
                    threads
                );
            }
        }
    }
}

/// The grouped dispatch order is a permutation of the work-list, grouped
/// by machine key, stable (index order) within groups — and every result
/// still lands at its own index.
#[test]
fn machine_key_grouping_is_stable_and_index_preserving() {
    let grid = random_grid(0x5EED);
    let scenarios = grid.enumerate();
    let mut order: Vec<&Scenario> = scenarios.iter().collect();
    order.sort_by_key(|s| s.machine_key());
    // A stable sort keeps index order inside every equal-key run.
    for w in order.windows(2) {
        if w[0].machine_key() == w[1].machine_key() {
            assert!(w[0].index < w[1].index, "stable within group");
        }
    }
    // And it is a permutation: every index appears exactly once.
    let mut seen: Vec<usize> = order.iter().map(|s| s.index).collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..scenarios.len()).collect::<Vec<_>>());
    // The machine key reflects the payload's core scope.
    for s in &scenarios {
        match &s.payload {
            Payload::Attack(c) | Payload::Leakage { case: c, .. } => {
                assert_eq!(s.machine_key().0, c.cross_core, "{}", s.id());
            }
            Payload::Workload(_) => assert!(!s.machine_key().0, "{}", s.id()),
        }
    }
}
