//! Out-of-process crash-resume: a real `sweep` child process is killed
//! mid-campaign (via the failpoint harness), one committed shard is
//! corrupted on top, and `sweep --resume` must still produce artifacts
//! that `cmp`-equal an uninterrupted single-process run — at 1 thread
//! and at 8.
//!
//! Two kill mechanisms are exercised:
//! * `shard.commit=kill@N` aborts the process from inside (SIGABRT at a
//!   deterministic point);
//! * `shard.commit=hang@N` parks the process so the test can deliver a
//!   genuine `kill -9` (SIGKILL) from outside — nothing in the child
//!   gets to clean up.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use prefender_sweep::{MANIFEST_NAME, SHARD_DIR};

const SWEEP: &str = env!("CARGO_BIN_EXE_sweep");

/// The grid every run in this file uses: 16 scenarios (1 attack kind ×
/// 4 noise mixes × 2 defenses × 2 seeds), small enough for debug builds.
const GRID: &[&str] = &["--attacks", "fr", "--defenses", "base,full", "--seeds", "2"];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prefender-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sweep_cmd(extra: &[&str]) -> Command {
    let mut cmd = Command::new(SWEEP);
    cmd.args(GRID).args(extra).arg("--quiet");
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    cmd
}

/// Runs an uninterrupted, unsharded reference sweep and returns its
/// artifact bytes.
fn reference(dir: &Path, threads: &str) -> (Vec<u8>, Vec<u8>) {
    let status = sweep_cmd(&["--threads", threads, "--out", dir.to_str().unwrap()])
        .status()
        .expect("spawn reference sweep");
    assert!(status.success(), "reference sweep failed: {status}");
    (
        fs::read(dir.join("sweep.json")).expect("reference json"),
        fs::read(dir.join("sweep.csv")).expect("reference csv"),
    )
}

fn shard_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir.join(SHARD_DIR))
        .map(|rd| rd.filter_map(|e| e.ok()).map(|e| e.path()).collect())
        .unwrap_or_default();
    files.sort();
    files
}

/// Truncates the tail of a committed shard — the torn-write shape a
/// power cut leaves behind.
fn corrupt_tail(path: &Path) {
    let bytes = fs::read(path).expect("read shard");
    assert!(bytes.len() > 9, "shard too small to corrupt");
    fs::write(path, &bytes[..bytes.len() - 9]).expect("truncate shard");
}

/// Resumes the campaign and returns the resume telemetry line.
fn resume(dir: &Path, threads: &str) -> String {
    let out = Command::new(SWEEP)
        .args(["--resume", dir.to_str().unwrap(), "--threads", threads, "--quiet"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn resume");
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(out.status.success(), "resume failed: {}\n{stderr}", out.status);
    stderr
        .lines()
        .find(|l| l.contains("resume:"))
        .unwrap_or_else(|| panic!("no resume telemetry in:\n{stderr}"))
        .to_string()
}

fn assert_artifacts_equal(dir: &Path, json: &[u8], csv: &[u8], what: &str) {
    assert_eq!(
        fs::read(dir.join("sweep.json")).expect("resumed json"),
        json,
        "{what}: sweep.json differs from the uninterrupted run"
    );
    assert_eq!(
        fs::read(dir.join("sweep.csv")).expect("resumed csv"),
        csv,
        "{what}: sweep.csv differs from the uninterrupted run"
    );
}

#[test]
fn double_resume_of_a_complete_campaign_is_a_byte_identical_noop() {
    // Resuming a campaign whose every shard is already committed must
    // be a no-op that still regenerates ALL artifacts byte-identically
    // — including the leakage pair — at 1 and at 8 threads. This is
    // the idempotence contract multi-process workers lean on: any
    // number of late resumes/workers converge on the same bytes.
    let clean = scratch("noop-clean");
    let camp = scratch("noop-camp");
    const LEAK_GRID: &[&str] = &[
        "--attacks",
        "fr",
        "--defenses",
        "base,full",
        "--leakage",
        "fr",
        "--secrets",
        "4",
        "--trials",
        "2",
        "--seeds",
        "1",
    ];
    const ARTIFACTS: [&str; 4] = ["sweep.json", "sweep.csv", "leakage.json", "leakage.csv"];
    let run = |extra: &[&str]| {
        let status = Command::new(SWEEP)
            .args(LEAK_GRID)
            .args(extra)
            .arg("--quiet")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("spawn sweep");
        assert!(status.success(), "sweep failed: {status}");
    };
    let read_artifacts = |dir: &Path| -> Vec<Vec<u8>> {
        ARTIFACTS
            .iter()
            .map(|n| fs::read(dir.join(n)).unwrap_or_else(|e| panic!("missing {n}: {e}")))
            .collect()
    };
    run(&["--threads", "1", "--out", clean.to_str().unwrap()]);
    let want = read_artifacts(&clean);
    // A complete sharded campaign (16 scenarios / shard size 3 = 6
    // shards), with the final artifacts deleted so each resume must
    // regenerate them from the shards rather than inherit stale files.
    run(&["--threads", "2", "--shard-size", "3", "--out", camp.to_str().unwrap()]);
    for (threads, tag) in [("1", "first resume, 1 thread"), ("8", "second resume, 8 threads")] {
        for name in ARTIFACTS {
            fs::remove_file(camp.join(name)).expect(name);
        }
        let telemetry = resume(&camp, threads);
        assert!(telemetry.contains("6 skipped"), "{tag}: {telemetry}");
        assert!(telemetry.contains("0 quarantined"), "{tag}: {telemetry}");
        assert!(telemetry.contains("0 executed"), "{tag}: {telemetry}");
        for (name, (got, want)) in ARTIFACTS.iter().zip(read_artifacts(&camp).iter().zip(&want)) {
            assert_eq!(got, want, "{tag}: {name} differs from the uninterrupted run");
        }
    }
    fs::remove_dir_all(&clean).unwrap();
    fs::remove_dir_all(&camp).unwrap();
}

#[test]
fn aborted_campaign_resumes_to_identical_artifacts_single_threaded() {
    let clean = scratch("abort-clean");
    let camp = scratch("abort-camp");
    let (json, csv) = reference(&clean, "1");

    // Kill the child from inside right after its second shard commits.
    let status = sweep_cmd(&["--threads", "1", "--shard-size", "3"])
        .args(["--out", camp.to_str().unwrap()])
        .env("PREFENDER_FAILPOINTS", "shard.commit=kill@2")
        .status()
        .expect("spawn sharded sweep");
    assert!(!status.success(), "the kill failpoint must take the process down");
    let committed = shard_files(&camp);
    assert_eq!(committed.len(), 2, "exactly two shards committed before the abort");
    assert!(camp.join(MANIFEST_NAME).exists(), "manifest committed before any shard");

    // A torn shard on top of the crash: quarantined, not trusted.
    corrupt_tail(&committed[0]);

    let telemetry = resume(&camp, "1");
    assert!(telemetry.contains("1 quarantined"), "{telemetry}");
    assert!(telemetry.contains("1 skipped"), "{telemetry}");
    assert_artifacts_equal(&camp, &json, &csv, "abort + corrupt, 1 thread");

    // Resuming a finished campaign is a cheap no-op with full telemetry.
    let telemetry = resume(&camp, "1");
    assert!(telemetry.contains("6 skipped"), "{telemetry}");
    assert!(telemetry.contains("0 executed"), "{telemetry}");

    fs::remove_dir_all(&clean).unwrap();
    fs::remove_dir_all(&camp).unwrap();
}

#[test]
fn sigkilled_campaign_resumes_to_identical_artifacts_at_8_threads() {
    let clean = scratch("kill9-clean");
    let camp = scratch("kill9-camp");
    let (json, csv) = reference(&clean, "8");

    // Park the child after its third shard commit, then deliver a real
    // SIGKILL — the exact "node died mid-campaign" failure mode.
    let mut child = sweep_cmd(&["--threads", "8", "--shard-size", "2"])
        .args(["--out", camp.to_str().unwrap()])
        .env("PREFENDER_FAILPOINTS", "shard.commit=hang@3")
        .spawn()
        .expect("spawn sharded sweep");
    let deadline = Instant::now() + Duration::from_secs(120);
    while shard_files(&camp).len() < 3 {
        assert!(Instant::now() < deadline, "child never reached the hang failpoint");
        assert!(
            child.try_wait().expect("poll child").is_none(),
            "child exited before the hang failpoint"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("kill -9 the child");
    let status = child.wait().expect("reap child");
    assert!(!status.success(), "SIGKILL cannot look like success");
    assert_eq!(shard_files(&camp).len(), 3, "three shards committed before the kill");

    corrupt_tail(&shard_files(&camp)[2]);

    let telemetry = resume(&camp, "8");
    assert!(telemetry.contains("1 quarantined"), "{telemetry}");
    assert_artifacts_equal(&camp, &json, &csv, "kill -9 + corrupt, 8 threads");

    fs::remove_dir_all(&clean).unwrap();
    fs::remove_dir_all(&camp).unwrap();
}
