//! Crash-safety properties of sharded campaigns.
//!
//! 1. The shard plan is an exact partition of the scenario index space —
//!    no scenario is dropped or run twice, whatever the grid size and
//!    shard size.
//! 2. Resume is exact: after deleting a random subset of committed
//!    shards (and truncating one survivor), `resume_sharded` reproduces
//!    the plain sequential single-process artifacts **bit for bit**, at
//!    1, 2 and 8 threads.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use prefender_sweep::{
    resume_sharded, run_sharded, shard_file_name, AttackCase, AttackKind, Basic, DefenseConfig,
    DefensePoint, Hierarchy, NoiseSpec, ShardPlan, SweepGrid, SweepOptions, SHARD_DIR,
};

/// A deterministic picker over a seed (SplitMix64 stream) so a single
/// `u64` strategy drives every grid-shaping choice.
struct Picker(u64);

impl Picker {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.below(options.len() as u64) as usize]
    }
}

/// A small random grid touching every payload kind, kept compact so
/// each proptest case runs the grid a handful of times (reference plus
/// resumes at three thread counts).
fn random_grid(seed: u64) -> SweepGrid {
    let mut p = Picker(seed);
    let kinds = [AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe];
    let noises = [NoiseSpec::NONE, NoiseSpec::C3, NoiseSpec::C4, NoiseSpec::C3C4];
    let mut g = SweepGrid::empty();
    g.attacks = (0..1 + p.below(2))
        .map(|_| AttackCase {
            kind: p.pick(&kinds),
            noise: p.pick(&noises),
            cross_core: p.below(2) == 0,
        })
        .collect();
    if p.below(2) == 0 {
        g.workloads = vec!["999.specrand".to_string()];
    }
    if p.below(2) == 0 {
        g.leakages =
            vec![AttackCase { kind: p.pick(&kinds), noise: NoiseSpec::NONE, cross_core: false }];
        g.leakage_secrets = 2;
        g.leakage_trials = 1;
    }
    g.defenses = vec![DefensePoint {
        config: p.pick(&[DefenseConfig::None, DefenseConfig::StAt, DefenseConfig::Full]),
        buffers: p.pick(&[16usize, 32]),
    }];
    g.basics = vec![p.pick(&[Basic::None, Basic::Tagged, Basic::Stride])];
    g.hierarchies = vec![p.pick(&[Hierarchy::Paper, Hierarchy::Fifo])];
    g.seeds = 1 + p.below(2) as u32;
    g
}

fn scratch(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("prefender-shardprops-{tag}-{}-{seed:x}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shard ranges partition `0..n` exactly: contiguous, in order,
    /// nonempty, each at most `shard_size` long, with nothing missing
    /// and nothing repeated.
    #[test]
    fn shard_plan_partitions_the_index_space(n in 0usize..5000, shard_size in 1usize..64) {
        let plan = ShardPlan::new(n, shard_size);
        prop_assert_eq!(plan.n_shards(), n.div_ceil(shard_size));
        let mut covered = 0usize;
        for shard in 0..plan.n_shards() {
            let range = plan.range(shard);
            prop_assert_eq!(range.start, covered, "shard {} is contiguous", shard);
            prop_assert!(!range.is_empty(), "shard {} is nonempty", shard);
            prop_assert!(range.len() <= shard_size, "shard {} respects the size cap", shard);
            covered = range.end;
        }
        prop_assert_eq!(covered, n, "the plan covers every scenario exactly once");
        prop_assert_eq!(plan.ranges().count(), plan.n_shards());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The resume-exactness claim: drop a random subset of committed
    /// shards, truncate one survivor, resume — the merged report's
    /// artifacts are byte-identical to an uninterrupted in-memory run,
    /// at every thread count. Each round re-damages the (now complete)
    /// campaign so 1, 2 and 8 threads all actually execute shards.
    #[test]
    fn resume_after_dropping_random_shards_is_bit_exact(seed in 0u64..1 << 48) {
        let grid = random_grid(seed);
        let campaign_seed = 0xC0FFEE ^ seed;
        let shard_size = 1 + (seed % 3) as usize;
        let reference = {
            let opts = SweepOptions { threads: 1, campaign_seed };
            prefender_sweep::run_sweep(&grid, &opts)
        };
        let (ref_json, ref_csv) = (reference.to_json(), reference.to_csv());

        let dir = scratch("resume", seed);
        let opts = SweepOptions { threads: 2, campaign_seed };
        let (first, _) = run_sharded(&dir, &grid, &opts, shard_size).expect("fresh run");
        prop_assert_eq!(&first.to_json(), &ref_json);

        let plan = ShardPlan::new(grid.len(), shard_size);
        let mut p = Picker(seed ^ 0xD1CE);
        for threads in [1usize, 2, 8] {
            // Damage: delete each shard with probability 1/2, and
            // truncate the tail of one random survivor.
            let shards = dir.join(SHARD_DIR);
            let mut survivors = Vec::new();
            for shard in 0..plan.n_shards() {
                if p.below(2) == 0 {
                    fs::remove_file(shards.join(shard_file_name(shard))).expect("drop shard");
                } else {
                    survivors.push(shard);
                }
            }
            if !survivors.is_empty() {
                let victim = shards.join(shard_file_name(p.pick(&survivors)));
                let bytes = fs::read(&victim).expect("read victim");
                let keep = bytes.len() - 1 - p.below(24.min(bytes.len() as u64 - 1)) as usize;
                fs::write(&victim, &bytes[..keep]).expect("truncate victim");
            }
            let (resumed, _, stats) = resume_sharded(&dir, threads).expect("resume");
            prop_assert_eq!(resumed.to_json(), ref_json.clone(), "threads={}", threads);
            prop_assert_eq!(resumed.to_csv(), ref_csv.clone(), "threads={}", threads);
            if reference.has_leakage() {
                prop_assert_eq!(
                    resumed.leakage_json(),
                    reference.leakage_json(),
                    "threads={}", threads
                );
            }
            prop_assert_eq!(
                stats.skipped + stats.executed,
                plan.n_shards(),
                "every shard is either loaded or re-run"
            );
            if !survivors.is_empty() {
                prop_assert_eq!(stats.quarantined.len(), 1, "the truncated survivor quarantines");
            }
        }
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
