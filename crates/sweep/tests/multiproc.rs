//! Out-of-process multi-worker campaigns: real `sweep serve` / `sweep
//! work` processes racing on one manifest, with genuine `kill -9`s and
//! on-disk corruption injected mid-run. The acceptance bar is the one
//! the lease protocol is designed around: whatever the kill schedule,
//! the campaign converges to artifacts byte-identical to an
//! uninterrupted single-process run — at 1 thread and at 8.
//!
//! Worker processes are parked mid-shard via the `shard.write=hang@N`
//! failpoint (claimed lease held, heartbeat alive) so the test can
//! deliver SIGKILLs at a deterministic phase; the supervisor's stall
//! detector, restart budget, and heal pass then have to finish the job.
#![cfg(unix)]

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use prefender_sweep::{LEASE_DIR, SHARD_DIR};

const SWEEP: &str = env!("CARGO_BIN_EXE_sweep");

/// The grid every run in this file uses: 16 scenarios (1 attack kind ×
/// 4 noise mixes × 2 defenses × 2 seeds), small enough for debug builds.
const GRID: &[&str] = &["--attacks", "fr", "--defenses", "base,full", "--seeds", "2"];

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("prefender-multiproc-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Runs an uninterrupted, unsharded reference sweep and returns its
/// artifact bytes.
fn reference(dir: &Path, threads: &str) -> (Vec<u8>, Vec<u8>) {
    let status = Command::new(SWEEP)
        .args(GRID)
        .args(["--threads", threads, "--out", dir.to_str().unwrap(), "--quiet"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn reference sweep");
    assert!(status.success(), "reference sweep failed: {status}");
    (
        fs::read(dir.join("sweep.json")).expect("reference json"),
        fs::read(dir.join("sweep.csv")).expect("reference csv"),
    )
}

fn shard_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir.join(SHARD_DIR))
        .map(|rd| rd.filter_map(|e| e.ok()).map(|e| e.path()).collect())
        .unwrap_or_default();
    files.sort();
    files
}

/// Pids currently named in decodable lease files — the workers holding
/// (or parked on) a shard right now.
fn lease_pids(dir: &Path) -> Vec<u32> {
    let mut pids = Vec::new();
    let Ok(rd) = fs::read_dir(dir.join(LEASE_DIR)) else { return pids };
    for entry in rd.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "lease") {
            continue;
        }
        let Ok(text) = fs::read_to_string(&path) else { continue };
        if let Some(pid) =
            text.lines().find_map(|l| l.strip_prefix("pid=")).and_then(|v| v.parse::<u32>().ok())
        {
            pids.push(pid);
        }
    }
    pids.sort_unstable();
    pids.dedup();
    pids
}

/// Delivers a real SIGKILL to `pid` via the shell builtin.
fn kill_dash_9(pid: u32) -> bool {
    Command::new("sh")
        .args(["-c", &format!("kill -9 {pid}")])
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Spawns a thread that drains a child's stderr into a shared buffer so
/// the pipe never fills while the test is busy killing workers.
fn drain_stderr(child: &mut Child) -> Arc<Mutex<String>> {
    let stderr = child.stderr.take().expect("piped stderr");
    let buf = Arc::new(Mutex::new(String::new()));
    let sink = Arc::clone(&buf);
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines().map_while(Result::ok) {
            let mut out = sink.lock().unwrap();
            out.push_str(&line);
            out.push('\n');
        }
    });
    buf
}

fn wait_with_deadline(child: &mut Child, secs: u64, what: &str) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(status) = child.try_wait().expect("poll child") {
            return status;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("{what} did not finish within {secs}s");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn corrupt_tail(path: &Path) {
    let bytes = fs::read(path).expect("read shard");
    assert!(bytes.len() > 9, "shard too small to corrupt");
    fs::write(path, &bytes[..bytes.len() - 9]).expect("truncate shard");
}

fn assert_artifacts_equal(dir: &Path, json: &[u8], csv: &[u8], what: &str) {
    assert_eq!(
        fs::read(dir.join("sweep.json")).expect("campaign json"),
        json,
        "{what}: sweep.json differs from the uninterrupted run"
    );
    assert_eq!(
        fs::read(dir.join("sweep.csv")).expect("campaign csv"),
        csv,
        "{what}: sweep.csv differs from the uninterrupted run"
    );
}

/// The headline acceptance test: `sweep serve` with 4 workers, two of
/// them SIGKILLed while parked mid-shard holding live leases, plus one
/// committed shard corrupted on disk mid-run. The supervisor must
/// converge (restarts + stale-lease breaks + quarantine + heal pass)
/// and the final artifacts must be byte-identical to uninterrupted
/// 1-thread and 8-thread runs.
#[test]
fn serve_survives_sigkilled_workers_and_a_corrupted_shard() {
    let clean1 = scratch("serve-clean1");
    let clean8 = scratch("serve-clean8");
    let camp = scratch("serve-camp");
    let (json, csv) = reference(&clean1, "1");
    let (json8, csv8) = reference(&clean8, "8");
    assert_eq!(json, json8, "references must agree across thread counts");
    assert_eq!(csv, csv8, "references must agree across thread counts");

    // Every worker hangs at its own 3rd shard write: lease claimed,
    // heartbeat alive, shard file not yet committed — the exact state a
    // SIGKILL mid-shard leaves behind. Shard size 1 → 16 shards, so the
    // first generation commits 8 shards before all four workers park.
    let mut serve = Command::new(SWEEP)
        .args(["serve", camp.to_str().unwrap(), "--workers", "4"])
        .args(["--restart-budget", "4", "--lease-ttl-ms", "400"])
        .args(["--stall-timeout-ms", "3000"])
        .args(["--worker-failpoints", "shard.write=hang@3"])
        .args(["--shard-size", "1"])
        .args(GRID)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sweep serve");
    let stderr = drain_stderr(&mut serve);

    // Wait for the parked-mid-shard state: enough shards committed that
    // workers are into their 3rd claim, with at least two leases held.
    let supervisor_pid = serve.id();
    let deadline = Instant::now() + Duration::from_secs(120);
    let victims = loop {
        assert!(Instant::now() < deadline, "workers never parked: {}", stderr.lock().unwrap());
        assert!(
            serve.try_wait().expect("poll serve").is_none(),
            "serve exited before the kill: {}",
            stderr.lock().unwrap()
        );
        let pids: Vec<u32> =
            lease_pids(&camp).into_iter().filter(|&p| p != supervisor_pid).collect();
        if shard_files(&camp).len() >= 6 && pids.len() >= 2 {
            break pids;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let killed: Vec<u32> = victims.into_iter().take(2).filter(|&pid| kill_dash_9(pid)).collect();
    assert_eq!(killed.len(), 2, "two workers must take a real SIGKILL");

    // A torn committed shard on top: quarantined and re-executed, never
    // trusted half-written.
    corrupt_tail(&shard_files(&camp)[0]);

    let status = wait_with_deadline(&mut serve, 240, "sweep serve");
    let log = stderr.lock().unwrap().clone();
    assert!(status.success(), "serve must converge: {status}\n{log}");
    assert!(log.contains("broke stale lease"), "no stale-lease break telemetry:\n{log}");
    assert!(log.contains("quarantined"), "no quarantine telemetry:\n{log}");
    assert!(log.contains("restarting"), "no worker-restart telemetry:\n{log}");

    assert_artifacts_equal(&camp, &json, &csv, "serve after 2×SIGKILL + corruption");

    fs::remove_dir_all(&clean1).unwrap();
    fs::remove_dir_all(&clean8).unwrap();
    fs::remove_dir_all(&camp).unwrap();
}

/// Two fault-free `sweep work` processes racing on one half-finished
/// campaign: both must exit cleanly and write identical artifacts.
#[test]
fn concurrent_work_processes_finish_an_aborted_campaign() {
    let clean = scratch("work-clean");
    let camp = scratch("work-camp");
    let (json, csv) = reference(&clean, "2");

    // Abort a sharded run after its first commit so the campaign exists
    // on disk with 1 of 8 shards done — built by the same CLI grid
    // parsing the reference used.
    let status = Command::new(SWEEP)
        .args(GRID)
        .args(["--threads", "1", "--shard-size", "2", "--out", camp.to_str().unwrap(), "--quiet"])
        .env("PREFENDER_FAILPOINTS", "shard.commit=kill@1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn sharded sweep");
    assert!(!status.success(), "the kill failpoint must take the process down");
    assert_eq!(shard_files(&camp).len(), 1, "one shard committed before the abort");

    let spawn_worker = || {
        Command::new(SWEEP)
            .args(["work", camp.to_str().unwrap(), "--threads", "2"])
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn sweep work")
    };
    let mut a = spawn_worker();
    let mut b = spawn_worker();
    let (log_a, log_b) = (drain_stderr(&mut a), drain_stderr(&mut b));
    let status_a = wait_with_deadline(&mut a, 240, "worker a");
    let status_b = wait_with_deadline(&mut b, 240, "worker b");
    let (log_a, log_b) = (log_a.lock().unwrap().clone(), log_b.lock().unwrap().clone());
    assert!(status_a.success(), "worker a failed: {status_a}\n{log_a}");
    assert!(status_b.success(), "worker b failed: {status_b}\n{log_b}");
    assert!(log_a.contains("sweep: work: 8 shards:"), "{log_a}");
    assert!(log_b.contains("sweep: work: 8 shards:"), "{log_b}");

    assert_artifacts_equal(&camp, &json, &csv, "two concurrent workers");

    fs::remove_dir_all(&clean).unwrap();
    fs::remove_dir_all(&camp).unwrap();
}
