//! # prefender-bench — the experiment harness
//!
//! One runner per table and figure of the PREFENDER paper's evaluation
//! (Section V), all reachable through the `repro` binary:
//!
//! | Paper artifact | Runner | `repro` subcommand |
//! |---|---|---|
//! | Figure 8 (a)–(l) | [`security::figure8`] | `fig8` |
//! | Figure 9 (a)–(f) | [`security::figure9`] | `fig9` |
//! | Table IV | [`tables::table4`] | `table4` |
//! | Table V | [`tables::table5`] | `table5` |
//! | Table VI | [`tables::table6`] | `table6` |
//! | Figure 10 | [`figures::figure10`] | `fig10` |
//! | Figure 11 | [`figures::figure11`] | `fig11` |
//! | Figure 12 | [`figures::figure12`] | `fig12` |
//! | Section V-E | [`hwcost::report`] | `hwcost` |
//! | (extensions) | [`ablation`] | `ablate-*` |
//! | (extension: Figure 8 in bits) | [`leakage::leakage_map`] | `leakage` |
//! | (extension: static audit) | [`audit::run`] | `audit` |
//! | (extension: hot-path throughput) | [`simbench::run`] | `bench-sim` |
//! | (extension: phase profile) | [`profile::run`] | `profile` |
//!
//! Every runner is a pure function returning printable text plus
//! structured data, so the integration tests can assert the paper's
//! qualitative claims (who wins, where, by roughly what factor) while the
//! binary prints the same rows/series the paper reports.

pub mod ablation;
pub mod audit;
pub mod figures;
pub mod forensics;
pub mod hwcost;
pub mod leakage;
pub mod profile;
pub mod security;
pub mod simbench;
pub mod sweepbench;
pub mod tables;

// The performance-run machinery lives beside the sweep engine
// (`prefender_sweep::perf`); the types are flattened here for the
// harness's callers.
pub use prefender_sweep::perf::{Basic, PerfColumn, PerfResult, PrefenderKind};
