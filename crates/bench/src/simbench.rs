//! Simulator-throughput microbenches behind `repro bench-sim`.
//!
//! Three probes of the simulation hot path, emitted as `BENCH_sim.json`
//! so CI can track the throughput trajectory release over release:
//!
//! * **access-hit loop** — the settled fast path: demand hits against an
//!   idle completion queue (accesses/sec), measured three ways — spans
//!   disarmed (the default), spans armed, and with the flight recorder
//!   armed — so CI can gate the obs layer's overhead on the hottest path
//!   (counters are always-on plain `u64` adds; the span-armed run
//!   additionally pays each span site's enabled-check, the trace-armed
//!   run pays full event construction and the ring push);
//! * **prefetch storm** — in-flight-heavy behaviour: interleaved
//!   prefetches and demand accesses keeping the completion queues busy
//!   (operations/sec);
//! * **leakage cells** — end-to-end trial throughput of representative
//!   leakage-campaign cells, fresh-machine-per-trial (the pre-runner
//!   baseline, what `run_attack_full` does) versus one reused
//!   [`Runner`] (sims/sec each, plus the speedup). Outcome equality
//!   between the two paths is asserted on every trial.

use std::fmt::Write as _;
use std::time::Instant;

use prefender_attacks::{run_attack_full, AttackKind, AttackSpec, DefenseConfig, Runner};
use prefender_obs::{
    arm_trace, disarm_trace, enable_spans, take_thread_profile, take_thread_trace, HostInfo,
};
use prefender_sim::{AccessKind, Addr, Cycle, HierarchyConfig, MemorySystem, PrefetchSource};

/// Fresh-vs-runner measurement of one leakage-campaign cell.
#[derive(Debug, Clone)]
pub struct CellBench {
    /// Stable cell label (`attack/defense/scope`).
    pub label: &'static str,
    /// Trials each path ran.
    pub trials: u32,
    /// Trials per second with a fresh machine per trial.
    pub fresh_sims_per_sec: f64,
    /// Trials per second through one reused [`Runner`].
    pub runner_sims_per_sec: f64,
    /// `runner_sims_per_sec / fresh_sims_per_sec`.
    pub speedup: f64,
}

/// The full `repro bench-sim` record.
#[derive(Debug, Clone)]
pub struct SimBenchReport {
    /// Settled-fast-path demand hits per second, spans disarmed.
    pub access_hit_per_sec: f64,
    /// The same loop with the span collector armed — the obs-overhead
    /// gate compares this against `access_hit_per_sec`.
    pub access_hit_obs_per_sec: f64,
    /// The same loop with the flight recorder armed (ring sized so no
    /// event drops): the trace-overhead gate compares this against
    /// `access_hit_per_sec`. The *disarmed* recorder costs one Relaxed
    /// load per site and is already priced into the baseline.
    pub access_hit_trace_per_sec: f64,
    /// Prefetch-storm operations (prefetch + access pairs count as two)
    /// per second.
    pub storm_ops_per_sec: f64,
    /// Per-cell fresh-vs-runner results.
    pub cells: Vec<CellBench>,
}

impl SimBenchReport {
    /// The `BENCH_sim.json` body (one JSON object, trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"bench\": \"sim\"");
        let _ = write!(s, ", \"access_hit_per_sec\": {:.1}", self.access_hit_per_sec);
        let _ = write!(s, ", \"access_hit_obs_per_sec\": {:.1}", self.access_hit_obs_per_sec);
        let _ = write!(s, ", \"access_hit_trace_per_sec\": {:.1}", self.access_hit_trace_per_sec);
        let _ = write!(s, ", \"storm_ops_per_sec\": {:.1}", self.storm_ops_per_sec);
        s.push_str(", \"leakage_cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"cell\": \"{}\", \"trials\": {}, \"fresh_sims_per_sec\": {:.1}, \
                 \"runner_sims_per_sec\": {:.1}, \"speedup\": {:.2}}}",
                c.label, c.trials, c.fresh_sims_per_sec, c.runner_sims_per_sec, c.speedup
            );
        }
        s.push(']');
        let _ = write!(s, ", \"host\": {}", HostInfo::capture().json_inline());
        s.push_str("}\n");
        s
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "access-hit fast path   {:>12.0} accesses/s", self.access_hit_per_sec);
        let _ =
            writeln!(s, "access-hit, spans on   {:>12.0} accesses/s", self.access_hit_obs_per_sec);
        let _ = writeln!(
            s,
            "access-hit, trace on   {:>12.0} accesses/s",
            self.access_hit_trace_per_sec
        );
        let _ = writeln!(s, "prefetch storm         {:>12.0} ops/s", self.storm_ops_per_sec);
        for c in &self.cells {
            let _ = writeln!(
                s,
                "leakage cell {:<22} {:>8.0} sims/s fresh  {:>8.0} sims/s runner  ({:.2}x)",
                c.label, c.fresh_sims_per_sec, c.runner_sims_per_sec, c.speedup
            );
        }
        s
    }

    /// The headline cell speedup (first cell), for quick gating.
    pub fn headline_speedup(&self) -> f64 {
        self.cells.first().map_or(0.0, |c| c.speedup)
    }
}

/// Demand hits against a settled hierarchy, with a far-future in-flight
/// prefetch parked in every queue so the measurement includes the
/// completion-queue peek (the realistic idle state, not the empty one).
fn bench_access_hit(iters: u64) -> f64 {
    let mut m = MemorySystem::new(HierarchyConfig::paper_baseline(1).expect("valid baseline"));
    let a = Addr::new(0x4000);
    m.access(0, a, AccessKind::Read, Cycle::ZERO);
    // Issue the parked prefetch far enough in the future that it never
    // completes inside the measured loop: every access pays exactly one
    // completion-queue peek against a pending (not-yet-due) entry.
    m.prefetch(0, Addr::new(0x10_0000), PrefetchSource::Other, Cycle::new(1 << 40));
    let start = Instant::now();
    for i in 0..iters {
        std::hint::black_box(m.access(0, a, AccessKind::Read, Cycle::new(10 + i)));
    }
    iters as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Interleaved prefetches and demand accesses: queues stay hot, entries
/// expire continuously, MSHRs merge and stall.
fn bench_storm(pairs: u64) -> f64 {
    let mut m = MemorySystem::new(HierarchyConfig::paper_baseline(1).expect("valid baseline"));
    let mut now = 0u64;
    let start = Instant::now();
    for k in 0..pairs {
        let addr = Addr::new(0x100_0000 + (k % 4096) * 64);
        m.prefetch(0, addr, PrefetchSource::Basic, Cycle::new(now));
        std::hint::black_box(m.access(
            0,
            Addr::new(0x4000 + (k % 16) * 64),
            AccessKind::Read,
            Cycle::new(now + 2),
        ));
        now += 7;
    }
    (2 * pairs) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// One leakage-cell spec per trial: the cell's base with the trial's
/// secret and seed injected (the shape `LeakageCampaign` sweeps).
fn trial_spec(base: &AttackSpec, trial: u32) -> AttackSpec {
    let l = &base.layout;
    let secret = l.first_index + (trial as usize % l.n_indices);
    base.clone().with_secret(secret).with_seed(0xC0FFEE ^ u64::from(trial))
}

fn bench_cell(label: &'static str, base: &AttackSpec, trials: u32) -> CellBench {
    // Fresh-machine baseline: what every trial paid before the runner
    // existed (and what one-shot `run_attack_full` still does).
    let start = Instant::now();
    let mut fresh_outcomes = Vec::with_capacity(trials as usize);
    for t in 0..trials {
        let spec = trial_spec(base, t);
        fresh_outcomes.push(run_attack_full(&spec).expect("cell trial"));
    }
    let fresh = start.elapsed();

    let mut runner = Runner::new(base).expect("cell runner");
    let start = Instant::now();
    let mut runner_outcomes = Vec::with_capacity(trials as usize);
    for t in 0..trials {
        let spec = trial_spec(base, t);
        runner_outcomes.push(runner.run_full(&spec).expect("cell trial"));
    }
    let reused = start.elapsed();

    assert_eq!(fresh_outcomes, runner_outcomes, "runner reuse must be bit-exact ({label})");
    let fresh_sims_per_sec = f64::from(trials) / fresh.as_secs_f64().max(1e-9);
    let runner_sims_per_sec = f64::from(trials) / reused.as_secs_f64().max(1e-9);
    CellBench {
        label,
        trials,
        fresh_sims_per_sec,
        runner_sims_per_sec,
        speedup: runner_sims_per_sec / fresh_sims_per_sec.max(1e-9),
    }
}

/// Best-of-3 access-hit measurement: both sides of the obs-overhead
/// gate use the fastest of three runs, so one scheduler hiccup can't
/// fake a regression (or hide one behind noise).
fn best_access_hit(iters: u64) -> f64 {
    (0..3).map(|_| bench_access_hit(iters)).fold(0.0, f64::max)
}

/// Best-of-3 with the flight recorder armed. Each hit records two events
/// (`demand_hit` + `access`), so the ring is sized to hold every event of
/// a run without wrapping — drop-newest at capacity is *cheaper* than a
/// push and would flatter the number. The ring is drained between runs
/// and the recorder disarmed before returning.
fn best_access_hit_traced(iters: u64) -> f64 {
    arm_trace((2 * iters as usize + 1024).next_power_of_two());
    let best = (0..3)
        .map(|_| {
            let per_sec = bench_access_hit(iters);
            let trace = take_thread_trace();
            assert_eq!(trace.dropped, 0, "traced bench ring must not wrap");
            per_sec
        })
        .fold(0.0, f64::max);
    disarm_trace();
    best
}

/// Runs the whole suite. `trials` sizes the leakage cells (the CI smoke
/// uses 200; anything ≥ 50 gives stable ratios).
pub fn run(trials: u32) -> SimBenchReport {
    let access_hit_per_sec = best_access_hit(1_000_000);
    // The armed variant: spans enabled globally, profile drained after
    // so the bench leaves no state behind. The measured loop never
    // *opens* a span (the settle span only opens when completions are
    // due), so this prices exactly what always-on arming costs the
    // fast path: the per-site enabled checks.
    let access_hit_obs_per_sec = {
        enable_spans(true);
        let per_sec = best_access_hit(1_000_000);
        enable_spans(false);
        let _ = take_thread_profile();
        per_sec
    };
    let access_hit_trace_per_sec = best_access_hit_traced(1_000_000);
    let storm_ops_per_sec = bench_storm(200_000);
    // Headline cell: the cross-core Flush+Reload channel — the paper's
    // flagship attack in the scope every open ROADMAP campaign sweeps.
    let cells = vec![
        bench_cell(
            "fr/base/cross-core",
            &AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None).cross_core(true),
            trials,
        ),
        bench_cell(
            "fr/full/single-core",
            &AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full),
            trials,
        ),
    ];
    SimBenchReport {
        access_hit_per_sec,
        access_hit_obs_per_sec,
        access_hit_trace_per_sec,
        storm_ops_per_sec,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_shape() {
        let r = SimBenchReport {
            access_hit_per_sec: 1000.0,
            access_hit_obs_per_sec: 990.0,
            access_hit_trace_per_sec: 800.0,
            storm_ops_per_sec: 2000.5,
            cells: vec![CellBench {
                label: "fr/base/cross-core",
                trials: 10,
                fresh_sims_per_sec: 100.0,
                runner_sims_per_sec: 400.0,
                speedup: 4.0,
            }],
        };
        let j = r.to_json();
        assert!(j.starts_with("{\"bench\": \"sim\""));
        assert!(j.contains("\"access_hit_obs_per_sec\": 990.0"));
        assert!(j.contains("\"access_hit_trace_per_sec\": 800.0"));
        assert!(j.contains("\"speedup\": 4.00"));
        // The host block closes the record (after the cells array).
        assert!(j.contains("], \"host\": {\"nproc\": "));
        assert!(j.ends_with("}\n"));
        assert_eq!(r.headline_speedup(), 4.0);
        assert!(r.render().contains("fr/base/cross-core"));
        assert!(r.render().contains("spans on"));
        assert!(r.render().contains("trace on"));
    }

    #[test]
    fn cell_bench_asserts_fresh_runner_equality() {
        // A tiny cell run end to end: the internal assertion compares
        // every fresh trial against its runner twin bit-for-bit.
        let base = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None);
        let c = bench_cell("fr/base/single-core", &base, 3);
        assert_eq!(c.trials, 3);
        assert!(c.fresh_sims_per_sec > 0.0 && c.runner_sims_per_sec > 0.0);
    }
}
