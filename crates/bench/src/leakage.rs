//! The leakage map: the paper's Figure 8 grid re-measured in bits.
//!
//! Where `fig8` reports one boolean verdict per (attack, defense) cell,
//! the leakage map runs a secret-sweep campaign per cell through the
//! sweep engine and reports the estimated channel: mutual information,
//! capacity, max-likelihood accuracy and guessing entropy (see
//! `prefender-leakage`). An undefended cell sits at `log2(secrets)`
//! bits; a sealed cell at 0.
//!
//! Every cell is calibrated against its label-permutation null: a
//! starred value (`0.54* (p<0.01)`) rejects "this channel leaks 0
//! bits", an unstarred one (`0.000 (p=1.00)`) is indistinguishable from
//! estimator noise — which is what separates a real residual channel
//! from the upward bias of a small-sample MI estimate.

use prefender_stats::Table;
use prefender_sweep::{
    basic_tag, run_sweep, Hierarchy, ScenarioResult, SweepGrid, SweepOptions, SweepReport,
};

/// The measured leakage map plus the grid shape it ran under.
#[derive(Debug, Clone)]
pub struct LeakageMap {
    /// The underlying campaign report (leakage scenarios only).
    pub report: SweepReport,
    /// The grid that produced it.
    pub grid: SweepGrid,
}

/// Label permutations behind every `repro leakage` cell's p-value.
pub const MAP_PERMUTATIONS: u32 = 200;

/// Bootstrap resamples behind every `repro leakage` cell's MI interval.
pub const MAP_BOOTSTRAP: u32 = 100;

/// Runs the full Figure 8 leakage grid — twelve attack panels × six
/// defenses, each an 8-secret × 4-trial campaign with a 200-permutation
/// MI null test and 100-resample bootstrap CIs — on the sweep engine's
/// worker pool.
pub fn leakage_map() -> LeakageMap {
    let mut grid = SweepGrid::leakage_full();
    grid.leakage_permutations = MAP_PERMUTATIONS;
    grid.leakage_bootstrap = MAP_BOOTSTRAP;
    leakage_map_over(grid, 0)
}

/// Runs an arbitrary leakage grid at a chosen thread count (0 = all
/// CPUs). The grid must contain leakage payloads.
pub fn leakage_map_over(grid: SweepGrid, threads: usize) -> LeakageMap {
    let report = run_sweep(&grid, &SweepOptions { threads, ..SweepOptions::default() });
    LeakageMap { report, grid }
}

impl LeakageMap {
    /// The result cell for an attack case × defense point at the grid's
    /// *first* basic / hierarchy axis value and seed slot 0 (the map is
    /// two-dimensional; [`LeakageMap::report`] holds every axis).
    pub fn cell(&self, case_tag: &str, defense_tag: &str) -> Option<&ScenarioResult> {
        let basic = basic_tag(*self.grid.basics.first()?);
        let hierarchy = self.grid.hierarchies.first().unwrap_or(&Hierarchy::Paper).tag();
        let jitter = if self.grid.leakage_jitter > 0 {
            format!("j{}", self.grid.leakage_jitter)
        } else {
            String::new()
        };
        let id = format!(
            "leak:{case_tag}:{}x{}{jitter}/{defense_tag}/{basic}/{hierarchy}/s0",
            self.grid.leakage_secrets, self.grid.leakage_trials
        );
        self.report.by_id(&id)
    }

    /// The secret entropy every campaign sweeps (`log2(secrets)`).
    pub fn secret_bits(&self) -> f64 {
        f64::from(self.grid.leakage_secrets.max(1)).log2()
    }

    /// One rendered cell: the MI estimate, significance-annotated when
    /// the campaign ran a permutation null (`0.54* (p<0.01)` rejects the
    /// zero-leakage null, `0.000 (p=0.62)` accepts it); the plain
    /// `MI/accuracy` form when it did not.
    fn render_cell(r: &ScenarioResult) -> String {
        let mi = r.mi_bits.unwrap_or(f64::NAN);
        match r.mi_p_value {
            Some(p) if p < 0.01 => format!("{mi:.3}* (p<0.01)"),
            Some(p) => format!("{mi:.3} (p={p:.2})"),
            None => format!("{:.2}b p{:.2}", mi, r.ml_accuracy.unwrap_or(f64::NAN)),
        }
    }

    /// Renders the map: one row per attack case, one column per defense.
    /// Cells carry the MI estimate plus its permutation significance
    /// when the grid ran with a null test.
    pub fn render(&self) -> String {
        let defenses: Vec<String> = self.grid.defenses.iter().map(|d| d.tag()).collect();
        let mut header = vec!["Attack".to_string()];
        header.extend(defenses.iter().cloned());
        let mut t = Table::new(header);
        for case in &self.grid.leakages {
            let mut row = vec![case.to_string()];
            for d in &defenses {
                row.push(self.cell(&case.tag(), d).map_or_else(|| "-".into(), Self::render_cell));
            }
            t.row(row);
        }
        let mut caption = format!(
            "Secret space: {} values ({:.1} bits), {} trials/secret.",
            self.grid.leakage_secrets,
            self.secret_bits(),
            self.grid.leakage_trials,
        );
        if self.grid.leakage_permutations > 0 {
            let _ = std::fmt::Write::write_fmt(
                &mut caption,
                format_args!(
                    " Cell = MI (bits) vs its {}-permutation null; * rejects 0-bit leakage \
                     at p < 0.01.",
                    self.grid.leakage_permutations
                ),
            );
        } else {
            caption.push_str(" Cell = mutual information (bits) / ML attacker accuracy.");
        }
        format!("{caption}\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_sweep::{AttackCase, AttackKind, DefenseConfig, DefensePoint, NoiseSpec};

    fn quick_grid() -> SweepGrid {
        let mut g = SweepGrid::leakage_quick();
        g.leakages = vec![AttackCase {
            kind: AttackKind::FlushReload,
            noise: NoiseSpec::NONE,
            cross_core: false,
        }];
        g.defenses =
            vec![DefensePoint::new(DefenseConfig::None), DefensePoint::new(DefenseConfig::Full)];
        g.leakage_secrets = 8;
        g.leakage_trials = 2;
        g
    }

    #[test]
    fn quick_map_shows_open_and_sealed_channels() {
        let map = leakage_map_over(quick_grid(), 4);
        assert_eq!(map.secret_bits(), 3.0);
        let open = map.cell("fr", "base").expect("base cell");
        assert!(
            (open.mi_bits.unwrap() - 3.0).abs() < 0.1,
            "undefended FR must carry ~3 bits, got {:?}",
            open.mi_bits
        );
        let sealed = map.cell("fr", "full32").expect("full cell");
        assert!(sealed.mi_bits.unwrap() <= 0.2, "PREFENDER must seal FR: {:?}", sealed.mi_bits);
        assert!(map.cell("fr", "nope").is_none());
        let text = map.render();
        assert!(text.contains("3.00b") && text.contains("0.00b"), "{text}");
        assert!(text.contains("Flush+Reload"));
    }

    #[test]
    fn significance_annotates_cells_when_permutations_run() {
        let mut g = quick_grid();
        g.leakage_permutations = 199;
        g.leakage_bootstrap = 50;
        let map = leakage_map_over(g, 4);
        // The undefended noiseless channel rejects the zero-leakage null
        // at the resolution 199 permutations allow (p = 1/200).
        let open = map.cell("fr", "base").expect("base cell");
        assert!(open.mi_p_value.unwrap() < 0.01, "open p = {:?}", open.mi_p_value);
        // The sealed channel is indistinguishable from estimator noise.
        let sealed = map.cell("fr", "full32").expect("full cell");
        assert!(sealed.mi_p_value.unwrap() >= 0.05, "sealed p = {:?}", sealed.mi_p_value);
        let text = map.render();
        assert!(text.contains("3.000* (p<0.01)"), "{text}");
        assert!(text.contains("0.000 (p="), "{text}");
        assert!(text.contains("199-permutation null"), "{text}");
    }

    #[test]
    fn cell_lookup_follows_non_default_axes() {
        use prefender_sweep::{Basic, Hierarchy};
        let mut g = quick_grid();
        g.leakage_secrets = 4;
        g.basics = vec![Basic::Tagged];
        g.hierarchies = vec![Hierarchy::BigL2];
        let map = leakage_map_over(g, 2);
        let cell = map.cell("fr", "base").expect("tagged/bigl2 cell must resolve");
        assert!(cell.id.ends_with("/base/tagged/bigl2/s0"), "{}", cell.id);
        // Every rendered cell carries a measurement (no "-" fallbacks).
        let text = map.render();
        let data_cells = text.matches("b p").count();
        assert_eq!(data_cells, 2, "one measured cell per defense column: {text}");
    }
}
