//! Ablations beyond the paper: design-choice sweeps DESIGN.md calls out.

use prefender_attacks::{flush_program, reload_probe_program, victim_program, AttackLayout};
use prefender_core::{AtConfig, Prefender, RpConfig};
use prefender_cpu::{CpuConfig, Machine};
use prefender_sim::{CacheConfig, HierarchyConfig, ReplacementPolicy};
use prefender_stats::{speedup_pct, Table};
use prefender_sweep::{parallel_map, parallel_map_2d};
use prefender_workloads::spec2006;

use prefender_sweep::perf::{run_perf, Basic, PerfColumn, PrefenderKind};

/// Workloads used by the fast ablation sweeps (one per idiom family).
const ABLATION_WORKLOADS: [&str; 4] = ["462.libquantum", "429.mcf", "483.xalancbmk", "445.gobmk"];

fn sweep_workloads() -> Vec<prefender_workloads::Workload> {
    spec2006().into_iter().filter(|w| ABLATION_WORKLOADS.contains(&w.name())).collect()
}

/// Runs a single-core Flush+Reload with a *custom* PREFENDER instance and
/// reports `(anomalies, leaked)` — the hook the parameter sweeps use to
/// check that a configuration still defends.
pub fn custom_flush_reload(build: impl Fn() -> Prefender, c3_noise: bool) -> (Vec<usize>, bool) {
    let l = AttackLayout::paper();
    let cpu = CpuConfig { model_fetch: false, ..CpuConfig::default() };
    let mut m =
        Machine::with_cpu_config(HierarchyConfig::paper_baseline(1).expect("valid baseline"), cpu);
    m.set_prefetcher(0, Box::new(build()));
    m.trace_mut().set_enabled(true);
    m.write_data(l.secret_addr, l.secret as u64);
    // Deterministically shuffled probe order (same scheme as the runner).
    let mut targets: Vec<u64> = l.indices().map(|i| l.index_addr(i).raw()).collect();
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    targets.shuffle(&mut rand::rngs::StdRng::seed_from_u64(0xC0FFEE));
    for (k, t) in targets.iter().enumerate() {
        m.write_data(l.order_table + 8 * k as u64, *t);
    }
    // Phases run back to back on core 0.
    m.load_program(0, flush_program(&l));
    m.run();
    m.load_program(0, victim_program(&l));
    m.run();
    let probe = reload_probe_program(&l, targets.len(), c3_noise);
    m.load_program(0, probe.program.clone());
    m.run();
    let anomalies: Vec<usize> = m
        .trace()
        .by_pc(probe.probe_pcs[0])
        .filter_map(|e| l.addr_index(e.addr).map(|i| (i, e.latency)))
        .filter(|&(_, lat)| lat < l.hit_threshold)
        .map(|(i, _)| i)
        .collect();
    let leaked = anomalies.len() == 1 && anomalies[0] == l.secret;
    (anomalies, leaked)
}

/// Access-buffer count sweep: performance and C3-defense vs. buffer count.
pub fn ablate_buffers() -> String {
    let mut t = Table::new(vec!["Buffers".into(), "Avg speedup".into(), "F+R C3 defense".into()]);
    let workloads = sweep_workloads();
    // Each buffer count is an independent campaign point — shard the
    // whole sweep over the engine's deterministic parallel map.
    let points = [8usize, 16, 32, 64, 128];
    let rows = parallel_map(&points, 0, |&buffers| {
        let mut sum = 0.0;
        for w in &workloads {
            let base = run_perf(w, PerfColumn::BASELINE, None).cycles as f64;
            let col =
                PerfColumn { prefender: Some(PrefenderKind::Full { buffers }), basic: Basic::None };
            sum += speedup_pct(base, run_perf(w, col, None).cycles as f64);
        }
        let (_, leaked) = custom_flush_reload(
            || Prefender::builder(64, 4096).access_buffers(buffers).build(),
            true,
        );
        (buffers, sum / workloads.len() as f64, leaked)
    });
    for (buffers, speedup, leaked) in rows {
        t.row(vec![
            buffers.to_string(),
            format!("{speedup:+.3}%"),
            if leaked { "LEAKED".into() } else { "defended".into() },
        ]);
    }
    t.render()
}

/// DiffMin prefetch-threshold sweep: lower thresholds prefetch earlier
/// but from flimsier evidence.
pub fn ablate_threshold() -> String {
    let mut t =
        Table::new(vec!["Threshold".into(), "F+R (AT only) anomalies".into(), "Verdict".into()]);
    let points = [2usize, 3, 4, 6, 8];
    let rows = parallel_map(&points, 0, |&threshold| {
        custom_flush_reload(
            || {
                Prefender::builder(64, 4096)
                    .scale_tracker(false)
                    .record_protector(false)
                    .at_config(AtConfig { prefetch_threshold: threshold, ..AtConfig::paper() })
                    .build()
            },
            false,
        )
    });
    for (threshold, (anomalies, leaked)) in points.iter().zip(rows) {
        t.row(vec![
            threshold.to_string(),
            anomalies.len().to_string(),
            if leaked { "LEAKED".into() } else { "defended".into() },
        ]);
    }
    t.render()
}

/// Record Protector unprotect-threshold sweep under C3 noise: too-eager
/// unprotection re-exposes the access buffer to LRU thrash.
pub fn ablate_unprotect() -> String {
    let mut t =
        Table::new(vec!["Unprotect after".into(), "F+R C3 anomalies".into(), "Verdict".into()]);
    let points = [1u32, 4, 16, 64, 256];
    let rows = parallel_map(&points, 0, |&after| {
        custom_flush_reload(
            || {
                Prefender::builder(64, 4096)
                    .rp_config(RpConfig {
                        unprotect_prefetch_threshold: after,
                        ..RpConfig::paper()
                    })
                    .build()
            },
            true,
        )
    });
    for (after, (anomalies, leaked)) in points.iter().zip(rows) {
        t.row(vec![
            after.to_string(),
            anomalies.len().to_string(),
            if leaked { "LEAKED".into() } else { "defended".into() },
        ]);
    }
    t.render()
}

/// Cache replacement-policy sweep: baseline workload cycles under
/// LRU/FIFO/Random L1D+L2 replacement.
pub fn ablate_replacement() -> String {
    let workloads = sweep_workloads();
    let mut headers = vec!["Benchmark".to_string()];
    headers.extend(ReplacementPolicy::ALL.iter().map(|p| p.to_string()));
    let mut t = Table::new(headers);
    let cycles = parallel_map_2d(workloads.len(), ReplacementPolicy::ALL.len(), 0, |w, p| {
        let policy = ReplacementPolicy::ALL[p];
        let mut h = HierarchyConfig::paper_baseline(1).expect("valid baseline");
        h.l1d = CacheConfig::new("L1D", 64 * 1024, 2, 64, 4)
            .expect("valid L1D")
            .with_replacement(policy);
        h.l2 = CacheConfig::new("L2", 2 * 1024 * 1024, 16, 64, 20)
            .expect("valid L2")
            .with_replacement(policy);
        let mut m = Machine::new(h);
        workloads[w].install(&mut m);
        m.run().cycles
    });
    for (workload, row) in workloads.iter().zip(&cycles) {
        let mut cells = vec![workload.name().to_string()];
        cells.extend(row.iter().map(|c| c.to_string()));
        t.row(cells);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custom_attack_hook_matches_runner_semantics() {
        // Undefended leaks; full PREFENDER defends — same as the runner.
        let (a, leaked) = custom_flush_reload(
            || {
                Prefender::builder(64, 4096)
                    .scale_tracker(false)
                    .access_tracker(false)
                    .record_protector(false)
                    .build()
            },
            false,
        );
        assert!(leaked);
        assert_eq!(a, vec![65]);
        let (_, leaked) = custom_flush_reload(|| Prefender::builder(64, 4096).build(), true);
        assert!(!leaked);
    }

    #[test]
    fn unprotect_sweep_shows_reprotection_robustness() {
        // Ablation finding: the unprotect threshold is *not* critical as
        // long as the scale-buffer entry survives — the very next probe
        // access hits the scale buffer and re-protects the buffer (RP
        // stage 2 runs on every access). The defense holds across the
        // whole sweep; the threshold only matters once the scale buffer
        // itself has been evicted and protection rests on the per-buffer
        // protected-scale registers alone.
        let out = ablate_unprotect();
        for row in out.lines().skip(2) {
            assert!(row.contains("defended"), "unexpected leak: {row}");
        }
    }
}
