//! `repro forensics` — the differential leakage forensics experiment.
//!
//! Runs `prefender_leakage::run_forensics` over the four cells that
//! bracket the leakage map's story and renders `forensics.json`:
//!
//! * **fr/base** — the undefended Flush+Reload control: the probe
//!   features must both carry the secret *and* survive the visible-tier
//!   Bonferroni test (a non-empty survivor list);
//! * **pp/full32** — the full-PREFENDER Prime+Probe residual: `repro
//!   leakage` shows this cell retains significant MI, and the forensics
//!   map names the event classes and sets that carry it — the first
//!   mechanistic account of the residual;
//! * **fr/full32**, **er/full32** — sealed cells: the carrier map may
//!   rank microarchitectural features (the secret is still physically
//!   processed), but no attacker-visible feature may survive the null.

use prefender_attacks::{AttackKind, AttackSpec, DefenseConfig, Runner};
use prefender_leakage::{run_forensics, ForensicsOptions, ForensicsReport, LeakageCampaign};
use prefender_obs::Value;
use prefender_stats::Table;

/// Secrets per forensics campaign (evenly spaced in the probe window).
pub const FORENSICS_SECRETS: usize = 8;

/// Trials per secret. Per-feature permutation nulls need enough labels
/// that chance groupings are rarer than the Bonferroni threshold; 8
/// trials × 8 secrets gives 64 labels per feature stream.
pub const FORENSICS_TRIALS: u32 = 8;

/// Label permutations per tested feature: the attainable p-value floor
/// is `1/(N+1)` ≈ 3.3e-4, below the visible tier's Bonferroni threshold
/// even when every probe stream of a 64-set cache gets tested.
pub const FORENSICS_PERMUTATIONS: u32 = 2999;

/// One forensics cell: its id (`attack/defense`) and ranked map.
#[derive(Debug, Clone)]
pub struct ForensicsCell {
    /// `fr/base`-style cell id.
    pub id: String,
    /// The ranked leakage map of this cell.
    pub report: ForensicsReport,
}

/// The whole experiment: every cell's ranked map under one configuration.
#[derive(Debug, Clone)]
pub struct ForensicsRun {
    /// Cells in fixed experiment order.
    pub cells: Vec<ForensicsCell>,
}

/// The paper cells: undefended FR control, the full-PREFENDER P+P
/// residual, and the two sealed full-PREFENDER cells.
fn paper_cells() -> Vec<(String, AttackSpec)> {
    vec![
        ("fr/base".into(), AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None)),
        ("pp/full32".into(), AttackSpec::new(AttackKind::PrimeProbe, DefenseConfig::Full)),
        ("fr/full32".into(), AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full)),
        ("er/full32".into(), AttackSpec::new(AttackKind::EvictReload, DefenseConfig::Full)),
    ]
}

/// Runs the standard four-cell experiment at the module constants.
pub fn run() -> ForensicsRun {
    let opts = ForensicsOptions { permutations: FORENSICS_PERMUTATIONS, alpha: 0.05 };
    run_cells(&paper_cells(), FORENSICS_SECRETS, FORENSICS_TRIALS, &opts)
}

/// Runs forensics over arbitrary `(id, spec)` cells — the CI smoke path
/// shrinks the cell list and permutation depth through this.
///
/// # Panics
///
/// Panics if a cell's spec is invalid or a trial fails (the standard
/// cells are all valid paper configurations).
pub fn run_cells(
    cells: &[(String, AttackSpec)],
    secrets: usize,
    trials: u32,
    opts: &ForensicsOptions,
) -> ForensicsRun {
    let cells = cells
        .iter()
        .map(|(id, spec)| {
            let campaign = LeakageCampaign::new(spec.clone(), secrets, trials);
            let mut runner =
                Runner::new(&campaign.base).unwrap_or_else(|e| panic!("forensics cell {id}: {e}"));
            let report = run_forensics(&campaign, 0xC0FFEE, opts, &mut runner)
                .unwrap_or_else(|e| panic!("forensics cell {id}: {e}"));
            ForensicsCell { id: id.clone(), report }
        })
        .collect();
    ForensicsRun { cells }
}

impl ForensicsRun {
    /// The `forensics.json` document.
    pub fn to_json(&self) -> String {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                let Value::Obj(mut fields) = c.report.to_value() else {
                    unreachable!("report value is an object")
                };
                fields.insert(0, ("id".into(), Value::Str(c.id.clone())));
                Value::Obj(fields)
            })
            .collect();
        let doc = Value::Obj(vec![
            ("schema_version".into(), Value::U64(1)),
            ("cells".into(), Value::Arr(cells)),
        ]);
        doc.to_json(0) + "\n"
    }

    /// Renders the experiment: one row per cell with its top-ranked
    /// carrier, the strongest attacker-visible feature, and the survivor
    /// verdict.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Cell".into(),
            "Features".into(),
            "Top carrier".into(),
            "Top visible".into(),
            "Survivors".into(),
        ]);
        for c in &self.cells {
            let r = &c.report;
            let fmt = |f: &prefender_leakage::FeatureStat| {
                format!("{} ({:.3}b, p={:.4})", f.name, f.mi_bits, f.p_value)
            };
            let top = r.features.first().map_or_else(|| "-".into(), fmt);
            let top_vis = r.features.iter().find(|f| f.visible).map_or_else(|| "-".into(), fmt);
            let survivors = if r.survivors.is_empty() {
                "none (sealed)".into()
            } else {
                format!("{}: {}", r.survivors.len(), r.survivors.join(", "))
            };
            t.row(vec![
                c.id.clone(),
                format!("{} ({} tested visible)", r.n_features, r.n_tested_visible),
                top,
                top_vis,
                survivors,
            ]);
        }
        let head = self.cells.first().map(|c| &c.report);
        format!(
            "Per-cell trace-feature leakage map: {} secrets x {} trials, {}-permutation null \
             per feature, survivor threshold = Bonferroni over tested visible features \
             (alpha {}).\n{}",
            head.map_or(0, |r| r.secrets),
            head.map_or(0, |r| r.trials),
            head.map_or(0, |r| r.permutations),
            head.map_or(0.05, |r| r.alpha),
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_emits_control_survivors_and_sealed_cells() {
        let cells = vec![
            ("fr/base".to_string(), AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None)),
            (
                "fr/full32".to_string(),
                AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full),
            ),
        ];
        let opts = ForensicsOptions { permutations: 199, alpha: 0.05 };
        let run = run_cells(&cells, 4, 8, &opts);
        assert_eq!(run.cells.len(), 2);
        let open = &run.cells[0].report;
        assert!(!open.survivors.is_empty(), "undefended FR must have survivors");
        let sealed = &run.cells[1].report;
        assert!(sealed.survivors.is_empty(), "sealed FR must have none");
        let json = run.to_json();
        assert!(json.contains("\"id\": \"fr/base\""));
        assert!(json.contains("\"schema_version\": 1"));
        let text = run.render();
        assert!(text.contains("none (sealed)"), "{text}");
        assert!(text.contains("fr/base"), "{text}");
    }
}
