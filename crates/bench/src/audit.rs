//! `repro audit` — the static secret-dependence audit.
//!
//! Runs `prefender-taint` over every guest program the repo executes —
//! the twelve composed single-core attack programs (one per Figure 8
//! panel), the six standalone attack phase programs, and all 21 synthetic
//! SPEC workloads — then cross-validates the static verdicts against a
//! compact measured leakage grid ([`SweepGrid::audit_quick`]).
//!
//! The headline invariant is **zero static false negatives**: every
//! leakage cell whose mutual information rejects the permutation null
//! (`p < alpha`) must belong to a program with at least one statically
//! flagged sink. Cells that are flagged but *sealed* (non-significant MI)
//! quantify where the defense covers a statically present leak.
//!
//! `AUDIT.json` is deterministic: byte-identical across runs and thread
//! counts, like every other artifact in the repo.

use prefender_attacks::{
    composed_attack_program, evict_program, flush_program, prime_probe_probe_program,
    prime_probe_program, reload_probe_program, victim_program, AttackLayout, AttackSpec,
    DefenseConfig,
};
use prefender_isa::Program;
use prefender_obs::Value;
use prefender_sweep::{AttackCase, SweepGrid};
use prefender_taint::{analyze, SinkKind, TaintSpec};
use prefender_workloads::Suite;

use crate::leakage::{leakage_map_over, LeakageMap};

/// One audited program with its analysis report.
#[derive(Debug, Clone)]
pub struct AuditEntry {
    /// Stable entry name (`atk:fr`, `prog:victim`, `wl:2006:mcf`, ...).
    pub name: String,
    /// Entry group: `attack` (composed single-core programs),
    /// `program` (standalone attack phases) or `workload`.
    pub group: &'static str,
    /// The analyzer's verdicts.
    pub report: prefender_taint::TaintReport,
}

/// One leakage cell joined against the static verdict of its program.
#[derive(Debug, Clone)]
pub struct CrossCell {
    /// The sweep scenario id of the measured cell.
    pub id: String,
    /// Attack-case tag (`fr`, `er`, `pp`).
    pub case: String,
    /// Defense tag (`base`, `full32`).
    pub defense: String,
    /// Measured mutual information in bits.
    pub mi_bits: f64,
    /// Permutation-null p-value of the MI estimate.
    pub p_value: Option<f64>,
    /// `p < alpha`: the cell measurably leaks.
    pub significant: bool,
    /// Statically flagged sinks in the cell's program.
    pub flagged: usize,
    /// Flagged sinks DataScale is predicted to cover.
    pub covered: usize,
    /// `leak-flagged`, `false-negative`, `flagged-sealed` or `clean`.
    pub verdict: &'static str,
}

/// The static-vs-measured join over the audit grid.
#[derive(Debug, Clone)]
pub struct CrossValidation {
    /// Significance level of the permutation test.
    pub alpha: f64,
    /// Label permutations behind each cell's p-value.
    pub permutations: u32,
    /// Every joined cell.
    pub cells: Vec<CrossCell>,
    /// Significant cells whose program is flagged (expected).
    pub leak_flagged: usize,
    /// Significant cells with **no** flagged sink — the gate; must be 0.
    pub false_negatives: usize,
    /// Flagged programs whose measured channel is sealed: the defense
    /// covers a statically present leak.
    pub flagged_sealed: usize,
    /// Neither flagged nor significant.
    pub clean: usize,
}

/// The full audit: per-program reports plus the cross-validation.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Every audited program, in stable order.
    pub entries: Vec<AuditEntry>,
    /// The static-vs-measured join.
    pub cross: CrossValidation,
}

fn suite_tag(s: Suite) -> &'static str {
    match s {
        Suite::Spec2006 => "2006",
        Suite::Spec2017 => "2017",
    }
}

/// Every audited `(name, group, program, taint spec)`, in the stable
/// order AUDIT.json lists them.
fn program_set() -> Vec<(String, &'static str, Program, TaintSpec)> {
    let l = AttackLayout::paper();
    let secret = TaintSpec::secret_cell(l.secret_addr);
    let mut out = Vec::new();

    // The composed single-core attack programs, one per Figure 8 panel.
    for case in AttackCase::figure8_panels() {
        let spec = AttackSpec::new(case.kind, DefenseConfig::None).with_noise(case.noise);
        let (program, _) = composed_attack_program(&spec);
        out.push((format!("atk:{}", case.tag()), "attack", program, TaintSpec::for_attack(&spec)));
    }

    // The standalone phase programs (what cross-core runs execute).
    let standalone: [(&str, Program); 6] = [
        ("flush", flush_program(&l)),
        ("evict", evict_program(&l)),
        ("victim", victim_program(&l)),
        ("reload", reload_probe_program(&l, l.n_indices, false).program),
        ("prime", prime_probe_program(&l, false)),
        ("probe", prime_probe_probe_program(&l, false, false, false).program),
    ];
    for (name, program) in standalone {
        out.push((format!("prog:{name}"), "program", program, secret.clone()));
    }

    // Every synthetic SPEC workload, audited against the same secret cell:
    // "if a secret lived at the attack layout's address, would this
    // workload touch it?" — all must report zero sinks.
    for w in prefender_workloads::all() {
        let name = format!("wl:{}:{}", suite_tag(w.suite()), w.name());
        out.push((name, "workload", w.program(), secret.clone()));
    }
    out
}

/// Audits every program; deterministic order and content.
pub fn entries() -> Vec<AuditEntry> {
    program_set()
        .into_iter()
        .map(|(name, group, program, spec)| AuditEntry {
            name,
            group,
            report: analyze(&program, &spec),
        })
        .collect()
}

/// The audit entry names with their groups (the `--list` view).
pub fn entry_names() -> Vec<(String, &'static str)> {
    program_set().into_iter().map(|(name, group, _, _)| (name, group)).collect()
}

/// Audits a single named entry, or `None` for an unknown name.
pub fn audit_one(name: &str) -> Option<AuditEntry> {
    program_set().into_iter().find(|(n, _, _, _)| n == name).map(|(n, group, program, spec)| {
        AuditEntry { name: n, group, report: analyze(&program, &spec) }
    })
}

/// Joins a measured leakage map against the static verdicts.
pub fn cross_validate(map: &LeakageMap, entries: &[AuditEntry]) -> CrossValidation {
    let alpha = map.grid.leakage_alpha;
    let mut cells = Vec::new();
    for case in &map.grid.leakages {
        let tag = case.tag();
        let entry = entries.iter().find(|e| e.name == format!("atk:{tag}"));
        let (flagged, covered) =
            entry.map(|e| (e.report.flagged(), e.report.covered())).unwrap_or((0, 0));
        for def in &map.grid.defenses {
            let Some(r) = map.cell(&tag, &def.tag()) else { continue };
            let significant = r.mi_p_value.is_some_and(|p| p < alpha);
            let verdict = match (significant, flagged > 0) {
                (true, true) => "leak-flagged",
                (true, false) => "false-negative",
                (false, true) => "flagged-sealed",
                (false, false) => "clean",
            };
            cells.push(CrossCell {
                id: r.id.clone(),
                case: tag.clone(),
                defense: def.tag(),
                mi_bits: r.mi_bits.unwrap_or(0.0),
                p_value: r.mi_p_value,
                significant,
                flagged,
                covered,
                verdict,
            });
        }
    }
    let count = |v: &str| cells.iter().filter(|c| c.verdict == v).count();
    CrossValidation {
        alpha,
        permutations: map.grid.leakage_permutations,
        leak_flagged: count("leak-flagged"),
        false_negatives: count("false-negative"),
        flagged_sealed: count("flagged-sealed"),
        clean: count("clean"),
        cells,
    }
}

/// Runs the full audit: every program analyzed, then cross-validated
/// against the measured [`SweepGrid::audit_quick`] leakage grid.
pub fn run() -> AuditReport {
    let entries = entries();
    let map = leakage_map_over(SweepGrid::audit_quick(), 0);
    let cross = cross_validate(&map, &entries);
    AuditReport { entries, cross }
}

impl AuditReport {
    /// Serializes the audit; byte-identical across runs/thread counts.
    pub fn to_json(&self) -> String {
        let programs: Vec<Value> = self
            .entries
            .iter()
            .map(|e| {
                let r = &e.report;
                let sinks: Vec<Value> = r
                    .sinks
                    .iter()
                    .map(|s| {
                        Value::Obj(vec![
                            ("index".into(), Value::U64(s.index as u64)),
                            ("pc".into(), Value::U64(s.pc)),
                            ("kind".into(), Value::Str(s.kind.tag().into())),
                            (
                                "scale".into(),
                                s.scale.map_or(Value::Null, |sc| Value::U64(sc as u64)),
                            ),
                            ("covered".into(), Value::Bool(s.covered)),
                            ("instr".into(), Value::Str(s.disasm.clone())),
                        ])
                    })
                    .collect();
                Value::Obj(vec![
                    ("name".into(), Value::Str(e.name.clone())),
                    ("group".into(), Value::Str(e.group.into())),
                    ("instrs".into(), Value::U64(r.n_instrs as u64)),
                    ("flagged".into(), Value::U64(r.flagged() as u64)),
                    ("load_sinks".into(), Value::U64(r.count(SinkKind::LoadAddr) as u64)),
                    ("store_sinks".into(), Value::U64(r.count(SinkKind::StoreAddr) as u64)),
                    ("branch_sinks".into(), Value::U64(r.count(SinkKind::Branch) as u64)),
                    ("flush_sinks".into(), Value::U64(r.count(SinkKind::FlushTarget) as u64)),
                    ("covered".into(), Value::U64(r.covered() as u64)),
                    ("residual".into(), Value::U64(r.residual() as u64)),
                    ("sinks".into(), Value::Arr(sinks)),
                ])
            })
            .collect();

        let group_total = |g: &str| self.entries.iter().filter(|e| e.group == g).count() as u64;
        let workload_flagged: u64 = self
            .entries
            .iter()
            .filter(|e| e.group == "workload")
            .map(|e| e.report.flagged() as u64)
            .sum();
        let summary = Value::Obj(vec![
            ("programs".into(), Value::U64(self.entries.len() as u64)),
            ("attack_programs".into(), Value::U64(group_total("attack"))),
            ("standalone_programs".into(), Value::U64(group_total("program"))),
            ("workload_programs".into(), Value::U64(group_total("workload"))),
            ("workload_flagged".into(), Value::U64(workload_flagged)),
            (
                "flagged_total".into(),
                Value::U64(self.entries.iter().map(|e| e.report.flagged() as u64).sum()),
            ),
            (
                "covered_total".into(),
                Value::U64(self.entries.iter().map(|e| e.report.covered() as u64).sum()),
            ),
            (
                "residual_total".into(),
                Value::U64(self.entries.iter().map(|e| e.report.residual() as u64).sum()),
            ),
        ]);

        let cells: Vec<Value> = self
            .cross
            .cells
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("id".into(), Value::Str(c.id.clone())),
                    ("case".into(), Value::Str(c.case.clone())),
                    ("defense".into(), Value::Str(c.defense.clone())),
                    ("mi_bits".into(), Value::F64(c.mi_bits)),
                    ("p_value".into(), c.p_value.map_or(Value::Null, Value::F64)),
                    ("significant".into(), Value::Bool(c.significant)),
                    ("flagged".into(), Value::U64(c.flagged as u64)),
                    ("covered".into(), Value::U64(c.covered as u64)),
                    ("verdict".into(), Value::Str(c.verdict.into())),
                ])
            })
            .collect();
        let cross = Value::Obj(vec![
            ("alpha".into(), Value::F64(self.cross.alpha)),
            ("permutations".into(), Value::U64(self.cross.permutations as u64)),
            ("leak_flagged".into(), Value::U64(self.cross.leak_flagged as u64)),
            ("false_negatives".into(), Value::U64(self.cross.false_negatives as u64)),
            ("flagged_sealed".into(), Value::U64(self.cross.flagged_sealed as u64)),
            ("clean".into(), Value::U64(self.cross.clean as u64)),
            ("cells".into(), Value::Arr(cells)),
        ]);

        let doc = Value::Obj(vec![
            ("schema".into(), Value::Str("audit-v1".into())),
            ("programs".into(), Value::Arr(programs)),
            ("summary".into(), summary),
            ("cross_validation".into(), cross),
        ]);
        doc.to_json(0) + "\n"
    }

    /// Renders the audit as a console table plus the cross-validation.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>6} {:>8} {:>5} {:>5} {:>7} {:>7} {:>8}",
            "program", "instrs", "flagged", "load", "br", "flush", "covered", "residual"
        );
        for e in &self.entries {
            let r = &e.report;
            let _ = writeln!(
                out,
                "{:<22} {:>6} {:>8} {:>5} {:>5} {:>7} {:>7} {:>8}",
                e.name,
                r.n_instrs,
                r.flagged(),
                r.count(SinkKind::LoadAddr) + r.count(SinkKind::StoreAddr),
                r.count(SinkKind::Branch),
                r.count(SinkKind::FlushTarget),
                r.covered(),
                r.residual(),
            );
        }
        let c = &self.cross;
        let _ = writeln!(
            out,
            "\ncross-validation (alpha {}, {} permutations):",
            c.alpha, c.permutations
        );
        for cell in &c.cells {
            let _ = writeln!(
                out,
                "  {:<42} mi {:>6.3}  p {}  flagged {}  -> {}",
                cell.id,
                cell.mi_bits,
                cell.p_value.map_or("   na".into(), |p| format!("{p:.3}")),
                cell.flagged,
                cell.verdict,
            );
        }
        let _ = writeln!(
            out,
            "  {} leak-flagged, {} false negatives, {} flagged-sealed, {} clean",
            c.leak_flagged, c.false_negatives, c.flagged_sealed, c.clean
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_programs_have_exactly_one_covered_load_sink() {
        for e in entries() {
            match e.group {
                // Every composed attack embeds exactly one victim gadget:
                // one secret-dependent load, covered at scale 0x200.
                "attack" => {
                    assert_eq!(
                        e.report.count(SinkKind::LoadAddr),
                        1,
                        "{}: expected exactly one load sink",
                        e.name
                    );
                    assert_eq!(e.report.flagged(), 1, "{}", e.name);
                    assert_eq!(e.report.covered(), 1, "{}", e.name);
                    assert_eq!(e.report.sinks[0].scale, Some(0x200), "{}", e.name);
                }
                // Standalone phases never read the secret — except the
                // victim itself.
                "program" => {
                    let expected = usize::from(e.name == "prog:victim");
                    assert_eq!(e.report.flagged(), expected, "{}", e.name);
                }
                "workload" => {
                    assert_eq!(e.report.flagged(), 0, "{}: workloads are secret-free", e.name)
                }
                other => panic!("unknown group {other}"),
            }
        }
    }

    #[test]
    fn entry_names_are_unique_and_stable() {
        let names = entry_names();
        let mut sorted: Vec<_> = names.iter().map(|(n, _)| n.clone()).collect();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate audit entry names");
        assert_eq!(names.len(), 12 + 6 + 21);
        assert_eq!(names[0].0, "atk:fr");
        assert!(names.iter().any(|(n, _)| n == "prog:victim"));
    }

    #[test]
    fn audit_one_matches_full_audit() {
        let one = audit_one("prog:victim").expect("known entry");
        let full = entries();
        let from_full = full.iter().find(|e| e.name == "prog:victim").unwrap();
        assert_eq!(one.report, from_full.report);
        assert!(audit_one("prog:nope").is_none());
    }

    #[test]
    fn cross_validation_has_zero_false_negatives() {
        // The compact deterministic grid: open cells must be significant
        // AND flagged; sealed cells stay flagged (the defense covers the
        // statically present leak), never the other way around.
        let entries = entries();
        let map = leakage_map_over(SweepGrid::audit_quick(), 0);
        let cross = cross_validate(&map, &entries);
        assert_eq!(cross.cells.len(), 6);
        assert_eq!(cross.false_negatives, 0, "static false negative: {:#?}", cross.cells);
        // The gate must not be vacuous: the undefended cells measurably
        // leak, so at least one cell is significant.
        assert!(cross.leak_flagged > 0, "no significant cell — gate is vacuous");
        // Every flagged-but-sealed cell is a fully defended point.
        for c in cross.cells.iter().filter(|c| c.verdict == "flagged-sealed") {
            assert_eq!(c.defense, "full32", "{}: sealed without a defense", c.id);
        }
    }

    #[test]
    fn audit_json_is_deterministic() {
        let a = run();
        let b = run();
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"false_negatives\": 0"));
    }
}
