//! Figures 8 and 9: the security evaluation.

use prefender_attacks::{
    run_attack, run_attack_with_timeline, AttackKind, AttackOutcome, AttackSpec, DefenseConfig,
    NoiseSpec,
};
use prefender_stats::{Series, Table};
use prefender_sweep::{parallel_map, parallel_map_2d};

/// The paper's Figure 8 panel grid: three attacks × four challenge sets.
pub const PANELS: [(&str, AttackKind, NoiseSpec); 12] = [
    ("(a) Flush+Reload (C1+C2)", AttackKind::FlushReload, NoiseSpec::NONE),
    ("(b) Evict+Reload (C1+C2)", AttackKind::EvictReload, NoiseSpec::NONE),
    ("(c) Prime+Probe (C1+C2)", AttackKind::PrimeProbe, NoiseSpec::NONE),
    ("(d) Flush+Reload (C1+C2+C3)", AttackKind::FlushReload, NoiseSpec::C3),
    ("(e) Evict+Reload (C1+C2+C3)", AttackKind::EvictReload, NoiseSpec::C3),
    ("(f) Prime+Probe (C1+C2+C3)", AttackKind::PrimeProbe, NoiseSpec::C3),
    ("(g) Flush+Reload (C1+C2+C4)", AttackKind::FlushReload, NoiseSpec::C4),
    ("(h) Evict+Reload (C1+C2+C4)", AttackKind::EvictReload, NoiseSpec::C4),
    ("(i) Prime+Probe (C1+C2+C4)", AttackKind::PrimeProbe, NoiseSpec::C4),
    ("(j) Flush+Reload (C1+C2+C3+C4)", AttackKind::FlushReload, NoiseSpec::C3C4),
    ("(k) Evict+Reload (C1+C2+C3+C4)", AttackKind::EvictReload, NoiseSpec::C3C4),
    ("(l) Prime+Probe (C1+C2+C3+C4)", AttackKind::PrimeProbe, NoiseSpec::C3C4),
];

/// One regenerated Figure 8 panel: the latency series per defense config
/// plus each config's leak verdict.
#[derive(Debug, Clone)]
pub struct Figure8Panel {
    /// Panel title, e.g. `"(a) Flush+Reload (C1+C2)"`.
    pub title: String,
    /// One latency-vs-index series per defense configuration.
    pub series: Vec<Series>,
    /// `(config label, anomalous indices, leaked?)` verdicts.
    pub verdicts: Vec<(String, Vec<usize>, bool)>,
}

impl Figure8Panel {
    /// The verdict of a configuration, by its display label.
    pub fn leaked(&self, config: &str) -> Option<bool> {
        self.verdicts.iter().find(|(c, ..)| c == config).map(|&(_, _, l)| l)
    }

    /// Renders verdicts plus a sparkline per config.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Config".into(),
            "Latency (idx 50..110)".into(),
            "Anomalies".into(),
            "Verdict".into(),
        ]);
        for ((cfg, anomalies, leaked), s) in self.verdicts.iter().zip(&self.series) {
            t.row(vec![
                cfg.clone(),
                s.sparkline(61),
                format!("{anomalies:?}"),
                if *leaked { "LEAKED".into() } else { "defended".into() },
            ]);
        }
        format!("{}\n{}", self.title, t.render())
    }
}

fn panel_from_outcomes(title: &str, outcomes: &[AttackOutcome]) -> Figure8Panel {
    let mut series = Vec::new();
    let mut verdicts = Vec::new();
    for (defense, o) in DefenseConfig::ALL.iter().zip(outcomes) {
        let mut s = Series::new(&defense.to_string());
        for p in &o.samples {
            s.push(p.index as f64, p.latency as f64);
        }
        series.push(s);
        verdicts.push((defense.to_string(), o.anomalies.clone(), o.leaked));
    }
    Figure8Panel { title: title.to_string(), series, verdicts }
}

/// Regenerates one Figure 8 panel across all six defense configurations,
/// sharded over the sweep engine's worker pool.
pub fn figure8_panel(title: &str, kind: AttackKind, noise: NoiseSpec) -> Figure8Panel {
    let outcomes = parallel_map(&DefenseConfig::ALL, 0, |&defense| {
        run_attack(&AttackSpec::new(kind, defense).with_noise(noise)).expect("attack run")
    });
    panel_from_outcomes(title, &outcomes)
}

/// Regenerates all twelve Figure 8 panels.
///
/// The full 12 × 6 grid is flattened into one work-list and sharded
/// across the sweep engine's worker pool — results are identical to the
/// old one-attack-at-a-time loop at any thread count.
pub fn figure8() -> Vec<Figure8Panel> {
    let outcomes = parallel_map_2d(PANELS.len(), DefenseConfig::ALL.len(), 0, |p, d| {
        let (_, kind, noise) = PANELS[p];
        run_attack(&AttackSpec::new(kind, DefenseConfig::ALL[d]).with_noise(noise))
            .expect("attack run")
    });
    PANELS
        .iter()
        .zip(&outcomes)
        .map(|(&(title, ..), row)| panel_from_outcomes(title, row))
        .collect()
}

/// One Figure 9 panel: cumulative prefetch counts (ST/AT/RP) over time
/// during an attack.
#[derive(Debug, Clone)]
pub struct Figure9Panel {
    /// Panel title.
    pub title: String,
    /// Cumulative ST / AT / RP prefetches plus protected-buffer count.
    pub st: Series,
    /// Access Tracker series.
    pub at: Series,
    /// RP-guided series.
    pub rp: Series,
}

impl Figure9Panel {
    /// Renders the three curves as sparklines with final counts.
    pub fn render(&self) -> String {
        let last = |s: &Series| s.points().last().map_or(0.0, |&(_, y)| y);
        format!(
            "{}\n  ST {:>6}  {}\n  AT {:>6}  {}\n  RP {:>6}  {}\n",
            self.title,
            last(&self.st),
            self.st.sparkline(40),
            last(&self.at),
            self.at.sparkline(40),
            last(&self.rp),
            self.rp.sparkline(40),
        )
    }
}

/// Regenerates Figure 9: panels (a)-(c) run PREFENDER-ST+AT against the
/// clean attacks, panels (d)-(f) run full PREFENDER with all challenges.
pub fn figure9(bucket_cycles: u64) -> Vec<Figure9Panel> {
    let mut out = Vec::new();
    let cases = [
        (
            "(a) Flush+Reload (C1+C2), ST+AT",
            AttackKind::FlushReload,
            NoiseSpec::NONE,
            DefenseConfig::StAt,
        ),
        (
            "(b) Evict+Reload (C1+C2), ST+AT",
            AttackKind::EvictReload,
            NoiseSpec::NONE,
            DefenseConfig::StAt,
        ),
        (
            "(c) Prime+Probe (C1+C2), ST+AT",
            AttackKind::PrimeProbe,
            NoiseSpec::NONE,
            DefenseConfig::StAt,
        ),
        (
            "(d) Flush+Reload (all), Prefender",
            AttackKind::FlushReload,
            NoiseSpec::C3C4,
            DefenseConfig::Full,
        ),
        (
            "(e) Evict+Reload (all), Prefender",
            AttackKind::EvictReload,
            NoiseSpec::C3C4,
            DefenseConfig::Full,
        ),
        (
            "(f) Prime+Probe (all), Prefender",
            AttackKind::PrimeProbe,
            NoiseSpec::C3C4,
            DefenseConfig::Full,
        ),
    ];
    for (title, kind, noise, defense) in cases {
        let spec = AttackSpec::new(kind, defense).with_noise(noise);
        let (outcome, timeline) =
            run_attack_with_timeline(&spec, bucket_cycles).expect("attack run");
        assert!(!outcome.leaked, "{title}: the defended run must not leak");
        let mut st = Series::new("ST");
        let mut at = Series::new("AT");
        let mut rp = Series::new("RP");
        for p in &timeline {
            st.push(p.at as f64, p.st as f64);
            at.push(p.at as f64, p.at_count as f64);
            rp.push(p.at as f64, p.rp as f64);
        }
        out.push(Figure9Panel { title: title.to_string(), st, at, rp });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_grid_matches_paper() {
        assert_eq!(PANELS.len(), 12);
    }

    #[test]
    fn panel_a_reproduces_paper_verdicts() {
        let p = figure8_panel("(a)", AttackKind::FlushReload, NoiseSpec::NONE);
        assert_eq!(p.leaked("Base"), Some(true));
        assert_eq!(p.leaked("Prefender-ST"), Some(false));
        assert_eq!(p.leaked("Prefender-AT"), Some(false));
        assert_eq!(p.leaked("Prefender"), Some(false));
        assert!(p.render().contains("LEAKED"));
        assert!(p.render().contains("defended"));
    }

    #[test]
    fn figure9_first_panel_orders_units() {
        let panels = figure9(2_000);
        assert_eq!(panels.len(), 6);
        let a = &panels[0];
        let last = |s: &Series| s.points().last().map_or(0.0, |&(_, y)| y);
        // The paper: the ST prefetches a small amount, the AT much more.
        assert!(last(&a.st) >= 1.0);
        assert!(last(&a.at) > last(&a.st));
        assert!(!a.render().is_empty());
    }
}
