//! Shared performance-run machinery for Tables IV–VI and Figures 10–12.
//!
//! The implementation moved to [`prefender_sweep::perf`] when the sweep
//! engine became the substrate every harness runs on; this module remains
//! as the bench-local name for it.

pub use prefender_sweep::perf::{
    prefender_stats, run_perf, Basic, PerfColumn, PerfResult, PrefenderKind,
};
