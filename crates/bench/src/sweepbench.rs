//! Sweep-engine thread-scaling bench behind `repro bench-sweep`.
//!
//! Runs one fixed campaign grid — the CI 576-scenario attack grid
//! (attacks × noise × cross-core × defenses × 4 seeds) — once per thread
//! count and emits `BENCH_sweep.json` (schema v2): one row per thread
//! count with throughput and `parallel_efficiency` (speedup over the
//! 1-thread row divided by the thread count), so the scaling trajectory
//! is tracked across PRs as a single artifact instead of ad-hoc
//! single-run records.
//!
//! Every run's artifacts are asserted byte-identical to the 1-thread
//! run's before any number is reported — scaling can never be bought
//! with drift.

use std::fmt::Write as _;
use std::time::Instant;

use prefender_obs::HostInfo;
use prefender_sweep::{run_sweep, AttackCase, AttackKind, NoiseSpec, SweepGrid, SweepOptions};

/// `BENCH_sweep.json` schema version written by [`run`].
pub const SWEEP_BENCH_SCHEMA_VERSION: u32 = 2;

/// One thread count's measurement.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Worker threads the run used.
    pub threads: usize,
    /// Scenarios in the grid.
    pub scenarios: usize,
    /// Machine simulations the grid fans out into.
    pub sims: u64,
    /// Wall-clock seconds for the whole campaign.
    pub elapsed_secs: f64,
    /// Scenarios per second.
    pub scenarios_per_sec: f64,
    /// Simulations per second.
    pub sims_per_sec: f64,
    /// Throughput relative to the 1-thread row (1.0 for that row).
    pub speedup_vs_1t: f64,
    /// `speedup_vs_1t / threads`: 1.0 is perfect scaling.
    pub parallel_efficiency: f64,
}

/// The full `repro bench-sweep` record.
#[derive(Debug, Clone)]
pub struct SweepBenchReport {
    /// One row per measured thread count, ascending.
    pub rows: Vec<ScalingRow>,
}

impl SweepBenchReport {
    /// The `BENCH_sweep.json` body (one JSON object, trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"bench\": \"sweep\", \"schema_version\": {SWEEP_BENCH_SCHEMA_VERSION}, \"rows\": ["
        );
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"threads\": {}, \"scenarios\": {}, \"sims\": {}, \
                 \"elapsed_secs\": {:.6}, \"scenarios_per_sec\": {:.3}, \
                 \"sims_per_sec\": {:.3}, \"speedup_vs_1t\": {:.3}, \
                 \"parallel_efficiency\": {:.3}}}",
                r.threads,
                r.scenarios,
                r.sims,
                r.elapsed_secs,
                r.scenarios_per_sec,
                r.sims_per_sec,
                r.speedup_vs_1t,
                r.parallel_efficiency
            );
        }
        s.push(']');
        let _ = write!(s, ", \"host\": {}", HostInfo::capture().json_inline());
        s.push_str("}\n");
        s
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::from("threads   scenarios/s     sims/s   speedup   efficiency\n");
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:>7} {:>13.1} {:>10.1} {:>8.2}x {:>11.2}",
                r.threads,
                r.scenarios_per_sec,
                r.sims_per_sec,
                r.speedup_vs_1t,
                r.parallel_efficiency
            );
        }
        s
    }

    /// The row measured at `threads`, if present.
    pub fn row(&self, threads: usize) -> Option<&ScalingRow> {
        self.rows.iter().find(|r| r.threads == threads)
    }

    /// Speedup of the highest thread count over 1 thread (the CI gate's
    /// quantity).
    pub fn top_speedup(&self) -> f64 {
        self.rows.last().map_or(0.0, |r| r.speedup_vs_1t)
    }
}

/// The CI scaling grid: the 576-scenario attack campaign
/// (3 attacks × 4 noise × both scopes × 6 defenses × 4 seeds).
pub fn scaling_grid() -> SweepGrid {
    let mut attacks = Vec::new();
    for kind in [AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe] {
        for noise in [NoiseSpec::NONE, NoiseSpec::C3, NoiseSpec::C4, NoiseSpec::C3C4] {
            for cross_core in [false, true] {
                attacks.push(AttackCase { kind, noise, cross_core });
            }
        }
    }
    let mut grid = SweepGrid::security_full();
    grid.attacks = attacks;
    grid.seeds = 4;
    grid
}

/// Runs the scaling grid once per entry of `threads` (the first entry
/// must be 1 — it is the efficiency baseline) and asserts every run's
/// artifacts byte-identical to the 1-thread run's.
///
/// # Panics
///
/// Panics if `threads` is empty or does not start at 1, or if any run's
/// artifacts differ from the 1-thread run's (a determinism regression).
pub fn run(threads: &[usize]) -> SweepBenchReport {
    assert!(
        threads.first() == Some(&1),
        "the threads list must start at 1 (the efficiency baseline)"
    );
    let grid = scaling_grid();
    let scenarios = grid.len();
    let sims = grid.sims();
    let mut rows: Vec<ScalingRow> = Vec::with_capacity(threads.len());
    let mut baseline: Option<(f64, String)> = None;
    for &t in threads {
        let start = Instant::now();
        let report = run_sweep(&grid, &SweepOptions { threads: t, campaign_seed: 0xC0FFEE });
        let elapsed = start.elapsed().as_secs_f64();
        let json = report.to_json();
        let base_sps = match &baseline {
            None => {
                baseline = Some((scenarios as f64 / elapsed.max(1e-9), json));
                baseline.as_ref().expect("just set").0
            }
            Some((sps, base_json)) => {
                assert_eq!(
                    *base_json, json,
                    "artifacts at {t} threads differ from the 1-thread run"
                );
                *sps
            }
        };
        let scenarios_per_sec = scenarios as f64 / elapsed.max(1e-9);
        let speedup = scenarios_per_sec / base_sps.max(1e-9);
        rows.push(ScalingRow {
            threads: t,
            scenarios,
            sims,
            elapsed_secs: elapsed,
            scenarios_per_sec,
            sims_per_sec: sims as f64 / elapsed.max(1e-9),
            speedup_vs_1t: speedup,
            parallel_efficiency: speedup / t as f64,
        });
    }
    SweepBenchReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_grid_is_the_ci_576() {
        let g = scaling_grid();
        assert_eq!(g.len(), 576);
        assert_eq!(g.sims(), 576);
    }

    #[test]
    fn report_json_shape() {
        let r = SweepBenchReport {
            rows: vec![
                ScalingRow {
                    threads: 1,
                    scenarios: 576,
                    sims: 576,
                    elapsed_secs: 0.5,
                    scenarios_per_sec: 1152.0,
                    sims_per_sec: 1152.0,
                    speedup_vs_1t: 1.0,
                    parallel_efficiency: 1.0,
                },
                ScalingRow {
                    threads: 8,
                    scenarios: 576,
                    sims: 576,
                    elapsed_secs: 0.125,
                    scenarios_per_sec: 4608.0,
                    sims_per_sec: 4608.0,
                    speedup_vs_1t: 4.0,
                    parallel_efficiency: 0.5,
                },
            ],
        };
        let j = r.to_json();
        assert!(j.starts_with("{\"bench\": \"sweep\", \"schema_version\": 2, \"rows\": ["));
        assert!(j.contains("\"parallel_efficiency\": 0.500"));
        // The host block closes the record (after the rows array).
        assert!(j.contains("], \"host\": {\"nproc\": "));
        assert!(j.ends_with("}\n"));
        assert_eq!(r.top_speedup(), 4.0);
        assert_eq!(r.row(8).map(|x| x.threads), Some(8));
        assert!(r.render().contains("efficiency"));
    }

    #[test]
    #[should_panic(expected = "must start at 1")]
    fn threads_must_start_at_one() {
        let _ = run(&[2, 4]);
    }
}
