//! `repro profile` — span-based phase breakdown of the hot stack.
//!
//! Arms the `prefender-obs` span collector, runs two representative
//! campaigns at one thread (so the whole profile lands on the calling
//! thread), and emits `PROFILE.json`:
//!
//! * **one leakage cell** — the fully-defended Flush+Reload channel
//!   (8 secrets × 4 trials through one runner), the shape every leakage
//!   campaign repeats;
//! * **one performance workload** — a catalog workload under the full
//!   defense, the only payload kind that models instruction fetch (so
//!   the `fetch` phase appears here and nowhere else);
//! * **the CI 576-scenario grid** — the thread-scaling benchmark grid,
//!   the shape `BENCH_sweep.json` tracks.
//!
//! Phases are the span names the stack opens: `fetch` / `execute` /
//! `defense` (CPU core loop), `settle` (memory-system completion
//! drain), `expiry` (Record Protector protection expiry), `decode` /
//! `resample` (leakage campaign analysis). Per phase the profile
//! records spans closed, total wall time, and *self* time (exclusive of
//! nested spans) — self times are disjoint, so they sum to attributed
//! wall time. Everything here is wall-clock and host-dependent:
//! `PROFILE.json` is a timing record like `BENCH_sim.json`, never a
//! determinism-checked artifact.

use std::fmt::Write as _;
use std::time::Instant;

use prefender_obs::{enable_spans, take_thread_profile, HostInfo, Phase, Value};
use prefender_sweep::{
    run_sweep_observed, AttackCase, AttackKind, DefenseConfig, DefensePoint, NoiseSpec, SweepGrid,
    SweepOptions,
};

use crate::sweepbench;

/// One profiled campaign: a grid run start-to-finish with spans armed.
#[derive(Debug, Clone)]
pub struct ProfileSection {
    /// Stable section label.
    pub label: &'static str,
    /// Scenarios the grid enumerated.
    pub scenarios: usize,
    /// Machine simulations the grid fanned out into.
    pub sims: u64,
    /// Wall-clock milliseconds for the whole run.
    pub elapsed_ms: f64,
    /// Per-phase accumulations, sorted by phase name.
    pub phases: Vec<Phase>,
}

impl ProfileSection {
    /// Wall nanoseconds attributed to some phase (sum of self times —
    /// disjoint by construction, unlike totals which nest).
    pub fn attributed_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.self_ns).sum()
    }

    fn to_value(&self) -> Value {
        let attributed = self.attributed_ns();
        Value::Obj(vec![
            ("label".into(), Value::Str(self.label.into())),
            ("scenarios".into(), Value::U64(self.scenarios as u64)),
            ("sims".into(), Value::U64(self.sims)),
            ("elapsed_ms".into(), Value::F64(self.elapsed_ms)),
            ("attributed_ns".into(), Value::U64(attributed)),
            (
                "phases".into(),
                Value::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Value::Obj(vec![
                                ("phase".into(), Value::Str(p.name.into())),
                                ("count".into(), Value::U64(p.count)),
                                ("total_ns".into(), Value::U64(p.total_ns)),
                                ("self_ns".into(), Value::U64(p.self_ns)),
                                (
                                    "self_share".into(),
                                    Value::F64(if attributed == 0 {
                                        0.0
                                    } else {
                                        p.self_ns as f64 / attributed as f64
                                    }),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The full `repro profile` record.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Profiled campaigns, in run order.
    pub sections: Vec<ProfileSection>,
}

impl ProfileReport {
    /// The `PROFILE.json` body (one JSON object, trailing newline).
    pub fn to_json(&self) -> String {
        let v = Value::Obj(vec![
            ("profile".into(), Value::Str("prefender".into())),
            ("schema_version".into(), Value::U64(1)),
            ("host".into(), HostInfo::capture().to_value()),
            (
                "sections".into(),
                Value::Arr(self.sections.iter().map(ProfileSection::to_value).collect()),
            ),
        ]);
        let mut s = v.to_json(0);
        s.push('\n');
        s
    }

    /// Human-readable per-section phase tables.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for sec in &self.sections {
            let _ = writeln!(
                s,
                "{} — {} scenarios, {} sims, {:.1} ms wall",
                sec.label, sec.scenarios, sec.sims, sec.elapsed_ms
            );
            let attributed = sec.attributed_ns().max(1);
            let _ = writeln!(
                s,
                "  {:<10} {:>12} {:>12} {:>12} {:>7}",
                "phase", "spans", "total ms", "self ms", "share"
            );
            for p in &sec.phases {
                let _ = writeln!(
                    s,
                    "  {:<10} {:>12} {:>12.2} {:>12.2} {:>6.1}%",
                    p.name,
                    p.count,
                    p.total_ns as f64 / 1e6,
                    p.self_ns as f64 / 1e6,
                    100.0 * p.self_ns as f64 / attributed as f64
                );
            }
            s.push('\n');
        }
        s
    }
}

/// Runs `grid` at one thread with spans armed and drains the calling
/// thread's profile into a section.
fn profile_grid(label: &'static str, grid: &SweepGrid) -> ProfileSection {
    let scenarios = grid.len();
    let sims = grid.sims();
    // Drain any spans a previous section (or stray test) left behind so
    // the section owns exactly its own run.
    enable_spans(true);
    let _ = take_thread_profile();
    let start = Instant::now();
    let (_report, _obs) =
        run_sweep_observed(grid, &SweepOptions { threads: 1, campaign_seed: 0xC0FFEE }, None);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    enable_spans(false);
    let phases = take_thread_profile();
    ProfileSection { label, scenarios, sims, elapsed_ms, phases }
}

/// The single-cell grid: the fully-defended Flush+Reload leakage
/// campaign (8 × 4, the paper shape).
fn leakage_cell_grid() -> SweepGrid {
    let mut g = SweepGrid::empty();
    g.leakages = vec![AttackCase {
        kind: AttackKind::FlushReload,
        noise: NoiseSpec::NONE,
        cross_core: false,
    }];
    g.defenses = vec![DefensePoint::new(DefenseConfig::Full)];
    // Resampling on, so the `resample` phase shows up in the breakdown.
    g.leakage_permutations = 200;
    g.leakage_bootstrap = 100;
    g
}

/// The single-workload grid: one catalog workload under the full
/// defense — the fetch-modelled payload kind.
fn workload_grid() -> SweepGrid {
    let mut g = SweepGrid::empty();
    g.workloads = vec!["462.libquantum".to_string()];
    g.defenses = vec![DefensePoint::new(DefenseConfig::Full)];
    g
}

/// Runs the whole profile suite: one leakage cell, one workload, then
/// the 576 grid.
pub fn run() -> ProfileReport {
    ProfileReport {
        sections: vec![
            profile_grid("leakage-cell fr/full32 8x4", &leakage_cell_grid()),
            profile_grid("workload 462.libquantum/full32", &workload_grid()),
            profile_grid("sweep-grid 576 (1 thread)", &sweepbench::scaling_grid()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_cell_profile_breaks_out_the_phases() {
        let section = profile_grid("test cell", &leakage_cell_grid());
        assert_eq!(section.scenarios, 1);
        assert_eq!(section.sims, 32);
        let names: Vec<&str> = section.phases.iter().map(|p| p.name).collect();
        // Attack programs run with unmodelled fetch, so no `fetch` here —
        // the workload section covers that phase.
        for expected in ["execute", "defense", "settle", "expiry", "decode", "resample"] {
            assert!(names.contains(&expected), "missing phase {expected} in {names:?}");
        }
        // Self times are disjoint, so attributed time can't exceed wall.
        assert!(section.attributed_ns() as f64 / 1e6 <= section.elapsed_ms * 1.05);
        // Every phase's self time fits inside its total.
        for p in &section.phases {
            assert!(p.self_ns <= p.total_ns, "{}: self > total", p.name);
            assert!(p.count > 0);
        }
    }

    #[test]
    fn workload_profile_includes_the_fetch_phase() {
        let section = profile_grid("test workload", &workload_grid());
        let names: Vec<&str> = section.phases.iter().map(|p| p.name).collect();
        for expected in ["fetch", "execute", "defense"] {
            assert!(names.contains(&expected), "missing phase {expected} in {names:?}");
        }
    }

    #[test]
    fn report_json_shape() {
        let r = ProfileReport {
            sections: vec![ProfileSection {
                label: "s",
                scenarios: 1,
                sims: 2,
                elapsed_ms: 3.5,
                phases: vec![Phase { name: "fetch", count: 4, total_ns: 100, self_ns: 60 }],
            }],
        };
        let j = r.to_json();
        assert!(j.starts_with("{\n  \"profile\": \"prefender\""));
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.contains("\"host\""));
        assert!(j.contains("\"phase\": \"fetch\""));
        assert!(j.contains("\"self_share\": 1"));
        assert!(j.ends_with("}\n"));
        assert!(r.render().contains("fetch"));
    }
}
