//! `repro profile` — span-based phase breakdown of the hot stack.
//!
//! Arms the `prefender-obs` span collector, runs two representative
//! campaigns at one thread (so the whole profile lands on the calling
//! thread), and emits `PROFILE.json`:
//!
//! * **one leakage cell** — the fully-defended Flush+Reload channel
//!   (8 secrets × 4 trials through one runner), the shape every leakage
//!   campaign repeats;
//! * **one performance workload** — a catalog workload under the full
//!   defense, the only payload kind that models instruction fetch (so
//!   the `fetch` phase appears here and nowhere else);
//! * **the CI 576-scenario grid** — the thread-scaling benchmark grid,
//!   the shape `BENCH_sweep.json` tracks.
//!
//! Phases are the span names the stack opens: `fetch` / `execute` /
//! `defense` (CPU core loop), `settle` (memory-system completion
//! drain), `expiry` (Record Protector protection expiry), `decode` /
//! `resample` (leakage campaign analysis). Per phase the profile
//! records spans closed, total wall time, and *self* time (exclusive of
//! nested spans) — self times are disjoint, so they sum to attributed
//! wall time.
//!
//! A fourth section re-runs the leakage cell with the **flight
//! recorder** armed and reports the per-event-class trace volume plus
//! p50/p95/p99 latency quantiles for the latency-carrying classes
//! (`access`, `flush`). The quantiles are simulated-cycle data and
//! deterministic; the span timings are wall-clock and host-dependent —
//! `PROFILE.json` as a whole is a timing record like `BENCH_sim.json`,
//! never a determinism-checked artifact.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use prefender_obs::{enable_spans, take_thread_profile, HostInfo, Phase, TraceEvent, Value};
use prefender_stats::Histogram;
use prefender_sweep::{
    run_sweep_observed, AttackCase, AttackKind, DefenseConfig, DefensePoint, NoiseSpec, SweepGrid,
    SweepOptions,
};

use crate::sweepbench;

/// One profiled campaign: a grid run start-to-finish with spans armed.
#[derive(Debug, Clone)]
pub struct ProfileSection {
    /// Stable section label.
    pub label: &'static str,
    /// Scenarios the grid enumerated.
    pub scenarios: usize,
    /// Machine simulations the grid fanned out into.
    pub sims: u64,
    /// Wall-clock milliseconds for the whole run.
    pub elapsed_ms: f64,
    /// Per-phase accumulations, sorted by phase name.
    pub phases: Vec<Phase>,
}

impl ProfileSection {
    /// Wall nanoseconds attributed to some phase (sum of self times —
    /// disjoint by construction, unlike totals which nest).
    pub fn attributed_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.self_ns).sum()
    }

    fn to_value(&self) -> Value {
        let attributed = self.attributed_ns();
        Value::Obj(vec![
            ("label".into(), Value::Str(self.label.into())),
            ("scenarios".into(), Value::U64(self.scenarios as u64)),
            ("sims".into(), Value::U64(self.sims)),
            ("elapsed_ms".into(), Value::F64(self.elapsed_ms)),
            ("attributed_ns".into(), Value::U64(attributed)),
            (
                "phases".into(),
                Value::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Value::Obj(vec![
                                ("phase".into(), Value::Str(p.name.into())),
                                ("count".into(), Value::U64(p.count)),
                                ("total_ns".into(), Value::U64(p.total_ns)),
                                ("self_ns".into(), Value::U64(p.self_ns)),
                                (
                                    "self_share".into(),
                                    Value::F64(if attributed == 0 {
                                        0.0
                                    } else {
                                        p.self_ns as f64 / attributed as f64
                                    }),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Per-event-class statistics of one traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceClassStat {
    /// Event class name (`TraceEvent::class`).
    pub class: String,
    /// Events of this class captured.
    pub events: u64,
    /// `(p50, p95, p99)` latency quantiles, for latency-carrying classes.
    pub latency_quantiles: Option<(u64, u64, u64)>,
}

/// The flight-recorder section: event volume and latency quantiles of a
/// trace-armed re-run of the leakage cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSection {
    /// Stable section label.
    pub label: &'static str,
    /// Events captured across the run.
    pub events: u64,
    /// Events dropped to full ring buffers.
    pub dropped: u64,
    /// Per-class stats, sorted by class name.
    pub classes: Vec<TraceClassStat>,
}

impl TraceSection {
    fn to_value(&self) -> Value {
        let classes = self
            .classes
            .iter()
            .map(|c| {
                let mut fields = vec![
                    ("class".into(), Value::Str(c.class.clone())),
                    ("events".into(), Value::U64(c.events)),
                ];
                if let Some((p50, p95, p99)) = c.latency_quantiles {
                    fields.push(("latency_p50".into(), Value::U64(p50)));
                    fields.push(("latency_p95".into(), Value::U64(p95)));
                    fields.push(("latency_p99".into(), Value::U64(p99)));
                }
                Value::Obj(fields)
            })
            .collect();
        Value::Obj(vec![
            ("label".into(), Value::Str(self.label.into())),
            ("events".into(), Value::U64(self.events)),
            ("dropped".into(), Value::U64(self.dropped)),
            ("classes".into(), Value::Arr(classes)),
        ])
    }
}

/// The full `repro profile` record.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Profiled campaigns, in run order.
    pub sections: Vec<ProfileSection>,
    /// The flight-recorder breakdown of the leakage cell.
    pub trace: TraceSection,
}

impl ProfileReport {
    /// The `PROFILE.json` body (one JSON object, trailing newline).
    pub fn to_json(&self) -> String {
        let v = Value::Obj(vec![
            ("profile".into(), Value::Str("prefender".into())),
            ("schema_version".into(), Value::U64(1)),
            ("host".into(), HostInfo::capture().to_value()),
            (
                "sections".into(),
                Value::Arr(self.sections.iter().map(ProfileSection::to_value).collect()),
            ),
            ("trace".into(), self.trace.to_value()),
        ]);
        let mut s = v.to_json(0);
        s.push('\n');
        s
    }

    /// Human-readable per-section phase tables.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for sec in &self.sections {
            let _ = writeln!(
                s,
                "{} — {} scenarios, {} sims, {:.1} ms wall",
                sec.label, sec.scenarios, sec.sims, sec.elapsed_ms
            );
            let attributed = sec.attributed_ns().max(1);
            let _ = writeln!(
                s,
                "  {:<10} {:>12} {:>12} {:>12} {:>7}",
                "phase", "spans", "total ms", "self ms", "share"
            );
            for p in &sec.phases {
                let _ = writeln!(
                    s,
                    "  {:<10} {:>12} {:>12.2} {:>12.2} {:>6.1}%",
                    p.name,
                    p.count,
                    p.total_ns as f64 / 1e6,
                    p.self_ns as f64 / 1e6,
                    100.0 * p.self_ns as f64 / attributed as f64
                );
            }
            s.push('\n');
        }
        let t = &self.trace;
        let _ = writeln!(s, "{} — {} trace events, {} dropped", t.label, t.events, t.dropped);
        let _ = writeln!(
            s,
            "  {:<18} {:>12} {:>8} {:>8} {:>8}",
            "class", "events", "p50", "p95", "p99"
        );
        for c in &t.classes {
            match c.latency_quantiles {
                Some((p50, p95, p99)) => {
                    let _ = writeln!(
                        s,
                        "  {:<18} {:>12} {:>8} {:>8} {:>8}",
                        c.class, c.events, p50, p95, p99
                    );
                }
                None => {
                    let _ = writeln!(
                        s,
                        "  {:<18} {:>12} {:>8} {:>8} {:>8}",
                        c.class, c.events, "-", "-", "-"
                    );
                }
            }
        }
        s.push('\n');
        s
    }
}

/// Runs `grid` at one thread with spans armed and drains the calling
/// thread's profile into a section.
fn profile_grid(label: &'static str, grid: &SweepGrid) -> ProfileSection {
    let scenarios = grid.len();
    let sims = grid.sims();
    // Drain any spans a previous section (or stray test) left behind so
    // the section owns exactly its own run.
    enable_spans(true);
    let _ = take_thread_profile();
    let start = Instant::now();
    let (_report, _obs) =
        run_sweep_observed(grid, &SweepOptions { threads: 1, campaign_seed: 0xC0FFEE }, None);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    enable_spans(false);
    let phases = take_thread_profile();
    ProfileSection { label, scenarios, sims, elapsed_ms, phases }
}

/// The single-cell grid: the fully-defended Flush+Reload leakage
/// campaign (8 × 4, the paper shape).
fn leakage_cell_grid() -> SweepGrid {
    let mut g = SweepGrid::empty();
    g.leakages = vec![AttackCase {
        kind: AttackKind::FlushReload,
        noise: NoiseSpec::NONE,
        cross_core: false,
    }];
    g.defenses = vec![DefensePoint::new(DefenseConfig::Full)];
    // Resampling on, so the `resample` phase shows up in the breakdown.
    g.leakage_permutations = 200;
    g.leakage_bootstrap = 100;
    g
}

/// The single-workload grid: one catalog workload under the full
/// defense — the fetch-modelled payload kind.
fn workload_grid() -> SweepGrid {
    let mut g = SweepGrid::empty();
    g.workloads = vec!["462.libquantum".to_string()];
    g.defenses = vec![DefensePoint::new(DefenseConfig::Full)];
    g
}

/// Re-runs `grid` at one thread with the flight recorder armed and
/// reduces the captured trace to per-class volumes and latency
/// quantiles (`access` load-to-use latency, `flush` completion latency).
fn trace_grid(label: &'static str, grid: &SweepGrid) -> TraceSection {
    prefender_obs::arm_trace(prefender_obs::DEFAULT_TRACE_CAPACITY);
    let (_report, obs) =
        run_sweep_observed(grid, &SweepOptions { threads: 1, campaign_seed: 0xC0FFEE }, None);
    prefender_obs::disarm_trace();
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut latencies: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    for (_, buf) in &obs.traces {
        for e in &buf.events {
            *counts.entry(e.class()).or_insert(0) += 1;
            let latency = match e {
                TraceEvent::Access { latency, .. } => Some(*latency),
                TraceEvent::Flush { latency, .. } => Some(*latency),
                _ => None,
            };
            if let Some(l) = latency {
                latencies.entry(e.class()).or_default().record(l);
            }
        }
    }
    let classes = counts
        .into_iter()
        .map(|(class, events)| TraceClassStat {
            class: class.to_string(),
            events,
            latency_quantiles: latencies.get(class).map(|h| {
                let q = |q| h.quantile(q).unwrap_or(0);
                (q(0.50), q(0.95), q(0.99))
            }),
        })
        .collect();
    TraceSection { label, events: obs.trace_events(), dropped: obs.trace_dropped(), classes }
}

/// Runs the whole profile suite: one leakage cell, one workload, the
/// 576 grid, then the trace-armed leakage-cell re-run.
pub fn run() -> ProfileReport {
    ProfileReport {
        sections: vec![
            profile_grid("leakage-cell fr/full32 8x4", &leakage_cell_grid()),
            profile_grid("workload 462.libquantum/full32", &workload_grid()),
            profile_grid("sweep-grid 576 (1 thread)", &sweepbench::scaling_grid()),
        ],
        trace: trace_grid("trace leakage-cell fr/full32 8x4", &leakage_cell_grid()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_cell_profile_breaks_out_the_phases() {
        let section = profile_grid("test cell", &leakage_cell_grid());
        assert_eq!(section.scenarios, 1);
        assert_eq!(section.sims, 32);
        let names: Vec<&str> = section.phases.iter().map(|p| p.name).collect();
        // Attack programs run with unmodelled fetch, so no `fetch` here —
        // the workload section covers that phase.
        for expected in ["execute", "defense", "settle", "expiry", "decode", "resample"] {
            assert!(names.contains(&expected), "missing phase {expected} in {names:?}");
        }
        // Self times are disjoint, so attributed time can't exceed wall.
        assert!(section.attributed_ns() as f64 / 1e6 <= section.elapsed_ms * 1.05);
        // Every phase's self time fits inside its total.
        for p in &section.phases {
            assert!(p.self_ns <= p.total_ns, "{}: self > total", p.name);
            assert!(p.count > 0);
        }
    }

    #[test]
    fn workload_profile_includes_the_fetch_phase() {
        let section = profile_grid("test workload", &workload_grid());
        let names: Vec<&str> = section.phases.iter().map(|p| p.name).collect();
        for expected in ["fetch", "execute", "defense"] {
            assert!(names.contains(&expected), "missing phase {expected} in {names:?}");
        }
    }

    #[test]
    fn report_json_shape() {
        let r = ProfileReport {
            sections: vec![ProfileSection {
                label: "s",
                scenarios: 1,
                sims: 2,
                elapsed_ms: 3.5,
                phases: vec![Phase { name: "fetch", count: 4, total_ns: 100, self_ns: 60 }],
            }],
            trace: TraceSection {
                label: "t",
                events: 7,
                dropped: 0,
                classes: vec![
                    TraceClassStat {
                        class: "access".into(),
                        events: 5,
                        latency_quantiles: Some((3, 20, 200)),
                    },
                    TraceClassStat { class: "eviction".into(), events: 2, latency_quantiles: None },
                ],
            },
        };
        let j = r.to_json();
        assert!(j.starts_with("{\n  \"profile\": \"prefender\""));
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.contains("\"host\""));
        assert!(j.contains("\"phase\": \"fetch\""));
        assert!(j.contains("\"self_share\": 1"));
        assert!(j.contains("\"latency_p50\": 3"));
        assert!(j.contains("\"latency_p99\": 200"));
        assert!(j.contains("\"class\": \"eviction\""));
        assert!(!j.contains("\"class\": \"eviction\", \"latency"), "no quantiles without latency");
        assert!(j.ends_with("}\n"));
        let text = r.render();
        assert!(text.contains("fetch"));
        assert!(text.contains("7 trace events"));
    }

    #[test]
    fn trace_section_quantiles_latency_classes() {
        let t = trace_grid("test trace", &leakage_cell_grid());
        assert!(!prefender_obs::trace_armed(), "recorder must be disarmed on return");
        assert!(t.events > 0);
        assert_eq!(t.dropped, 0);
        let access = t.classes.iter().find(|c| c.class == "access").expect("access class");
        let (p50, p95, p99) = access.latency_quantiles.expect("access carries latency");
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 >= 1, "L1 hit latency is at least a cycle");
        let flush = t.classes.iter().find(|c| c.class == "flush").expect("flush class");
        assert!(flush.latency_quantiles.is_some());
        // Structural classes carry no latency quantiles.
        if let Some(h) = t.classes.iter().find(|c| c.class == "demand_hit") {
            assert!(h.latency_quantiles.is_none());
        }
    }
}
