//! Tables IV, V and VI: SPEC speedup tables.

use prefender_stats::{speedup_pct, Table};
use prefender_sweep::parallel_map_2d;
use prefender_workloads::{spec2006, spec2017, Workload};

use prefender_sweep::perf::{run_perf, Basic, PerfColumn, PrefenderKind};

/// One regenerated speedup table: headers, per-benchmark speedup rows and
/// the average row, in percent versus the no-prefetcher baseline.
#[derive(Debug, Clone)]
pub struct SpeedupTable {
    /// Column labels (first cell is "Benchmark").
    pub headers: Vec<String>,
    /// `(benchmark, speedups-per-column)` rows.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Arithmetic mean per column (the paper's "Avg." row).
    pub avg: Vec<f64>,
}

impl SpeedupTable {
    /// The speedup of `benchmark` in the column labelled `label`.
    pub fn speedup(&self, benchmark: &str, label: &str) -> Option<f64> {
        let col = self.headers.iter().position(|h| h == label)? - 1;
        let row = self.rows.iter().find(|(b, _)| b == benchmark)?;
        row.1.get(col).copied()
    }

    /// Average speedup of the column labelled `label`.
    pub fn avg_of(&self, label: &str) -> Option<f64> {
        let col = self.headers.iter().position(|h| h == label)? - 1;
        self.avg.get(col).copied()
    }

    /// Renders in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = Table::new(self.headers.clone());
        for (name, vals) in &self.rows {
            let mut cells = vec![name.clone()];
            cells.extend(vals.iter().map(|v| format!("{v:+.3}%")));
            t.row(cells);
        }
        let mut avg = vec!["Avg.".to_string()];
        avg.extend(self.avg.iter().map(|v| format!("{v:+.3}%")));
        t.row(avg);
        t.render()
    }
}

fn build(workloads: &[Workload], columns: &[PerfColumn]) -> SpeedupTable {
    let mut headers = vec!["Benchmark".to_string()];
    headers.extend(columns.iter().map(PerfColumn::label));
    // One work cell per (workload, column) — column 0 is the per-workload
    // baseline — sharded over the sweep engine's worker pool. Cells are
    // pure and the map is order-preserving, so the table is identical to
    // the old serial nested loop at any thread count.
    let cycles = parallel_map_2d(workloads.len(), columns.len() + 1, 0, |w, c| {
        let column = if c == 0 { PerfColumn::BASELINE } else { columns[c - 1] };
        run_perf(&workloads[w], column, None).cycles as f64
    });
    let mut rows = Vec::with_capacity(workloads.len());
    let mut sums = vec![0.0f64; columns.len()];
    for (workload, row) in workloads.iter().zip(&cycles) {
        let base = row[0];
        let mut vals = Vec::with_capacity(columns.len());
        for (sum, cell) in sums.iter_mut().zip(&row[1..]) {
            let s = speedup_pct(base, *cell);
            *sum += s;
            vals.push(s);
        }
        rows.push((workload.name().to_string(), vals));
    }
    let n = workloads.len().max(1) as f64;
    let avg = sums.into_iter().map(|s| s / n).collect();
    SpeedupTable { headers, rows, avg }
}

/// The eleven columns of Tables IV/V: PREFENDER alone at 16/32/64
/// buffers, Tagged, PREFENDER-over-Tagged at 16/32/64, Stride,
/// PREFENDER-over-Stride at 16/32/64.
fn table45_columns(rp: bool) -> Vec<PerfColumn> {
    let kind = |buffers| {
        if rp {
            PrefenderKind::Full { buffers }
        } else {
            PrefenderKind::StAt { buffers }
        }
    };
    let mut cols = Vec::new();
    for basic in [Basic::None, Basic::Tagged, Basic::Stride] {
        if basic != Basic::None {
            cols.push(PerfColumn { prefender: None, basic });
        }
        for buffers in [16, 32, 64] {
            cols.push(PerfColumn { prefender: Some(kind(buffers)), basic });
        }
    }
    cols
}

/// Table IV: SPEC 2006 speedups *without* the Record Protector.
pub fn table4() -> SpeedupTable {
    build(&spec2006(), &table45_columns(false))
}

/// Table V: SPEC 2006 speedups *with* the Record Protector.
pub fn table5() -> SpeedupTable {
    build(&spec2006(), &table45_columns(true))
}

/// Table VI: SPEC 2017 speedups, ST+AT and full PREFENDER at 32 buffers
/// over each basic prefetcher.
pub fn table6() -> SpeedupTable {
    let mut cols = Vec::new();
    for basic in [Basic::None, Basic::Tagged, Basic::Stride] {
        if basic != Basic::None {
            cols.push(PerfColumn { prefender: None, basic });
        }
        cols.push(PerfColumn { prefender: Some(PrefenderKind::StAt { buffers: 32 }), basic });
        cols.push(PerfColumn { prefender: Some(PrefenderKind::Full { buffers: 32 }), basic });
    }
    build(&spec2017(), &cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table45_column_shape() {
        let cols = table45_columns(false);
        assert_eq!(cols.len(), 11, "the paper's Tables IV/V have 11 data columns");
        assert_eq!(cols[0].label(), "P-ST+AT/16");
        assert_eq!(cols[3].label(), "Tagged");
        assert_eq!(cols[10].label(), "P-ST+AT/64(Stride)");
        let cols = table45_columns(true);
        assert_eq!(cols[0].label(), "Prefender/16");
    }

    // Full-table runs live in tests/experiments.rs (they take seconds);
    // here we spot-check a two-benchmark slice.
    #[test]
    fn slice_of_table4_has_positive_streaming_speedups() {
        let workloads: Vec<_> = spec2006()
            .into_iter()
            .filter(|w| w.name() == "462.libquantum" || w.name() == "999.specrand")
            .collect();
        let t = build(&workloads, &table45_columns(false));
        let lib = t.speedup("462.libquantum", "P-ST+AT/32").unwrap();
        assert!(lib > 0.0, "libquantum should gain: {lib}");
        let rand = t.speedup("999.specrand", "P-ST+AT/32").unwrap();
        assert!(rand.abs() < 0.5, "specrand should be flat: {rand}");
        assert!(t.render().contains("Avg."));
    }
}
