//! Section V-E: the hardware resource report.

use prefender_core::{hw_cost, AtConfig, PrefenderConfig};
use prefender_stats::Table;

/// Renders the Section V-E SRAM budget for the paper configuration and
/// the buffer-count sweep.
pub fn report() -> String {
    let mut t = Table::new(vec![
        "Configuration".into(),
        "ST bytes".into(),
        "AT bytes".into(),
        "RP bytes".into(),
        "Total bytes".into(),
    ]);
    for buffers in [16usize, 32, 64] {
        let cfg = PrefenderConfig {
            at: Some(AtConfig::with_buffers(buffers)),
            ..PrefenderConfig::full()
        };
        let c = hw_cost(&cfg);
        t.row(vec![
            format!("ST+AT({buffers})+RP"),
            (c.st_sram_bits / 8).to_string(),
            (c.at_sram_bits / 8).to_string(),
            (c.rp_sram_bits / 8).to_string(),
            c.total_bytes().to_string(),
        ]);
    }
    let paper = hw_cost(&PrefenderConfig::full());
    format!(
        "{}\nPaper checks: AT < 3 KB ({}), RP = 400 B ({}), RP modulus datapath {} bits.\n",
        t.render(),
        paper.at_sram_bits / 8,
        paper.rp_sram_bits / 8,
        paper.rp_modulus_bits
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_paper_budgets() {
        let r = super::report();
        assert!(r.contains("400"), "the paper's 400-byte RP budget: {r}");
        assert!(r.contains("ST+AT(32)+RP"));
    }
}
