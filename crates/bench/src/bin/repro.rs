//! `repro` — regenerate every table and figure of the PREFENDER paper.
//!
//! ```text
//! repro <experiment> [experiment ...]
//!
//! experiments:
//!   fig8      Figure 8  — attack latency panels, all defenses/challenges
//!   fig9      Figure 9  — prefetch counts over time during attacks
//!   fig10     Figure 10 — normalized total L1D miss latency
//!   fig11     Figure 11 — prefetch counts by unit per benchmark
//!   fig12     Figure 12 — protected access buffers over execution
//!   table4    Table IV  — SPEC 2006 speedups without the Record Protector
//!   table5    Table V   — SPEC 2006 speedups with the Record Protector
//!   table6    Table VI  — SPEC 2017 speedups
//!   hwcost    Section V-E — hardware resource budget
//!   ablate-buffers | ablate-threshold | ablate-unprotect | ablate-replacement
//!   sweep     full attack x defense grid through the sweep engine
//!   leakage   Figure 8 re-measured in bits: secret-sweep campaigns per
//!             panel, mutual information calibrated against a
//!             200-permutation null (* = rejects 0-bit leakage, p<0.01)
//!   forensics differential leakage forensics: re-run key leakage cells
//!             with the flight recorder armed, rank trace-feature
//!             streams (event class x cache set) by MI against the
//!             secret, and name the attacker-visible features surviving
//!             a Bonferroni-corrected permutation null; writes
//!             forensics.json in the working directory
//!   bench-sim simulator-throughput microbenches (access fast path,
//!             prefetch storm, fresh-vs-runner leakage cells); writes
//!             BENCH_sim.json in the working directory
//!   bench-sweep
//!             sweep-engine thread-scaling bench: the CI 576-scenario
//!             grid at 1/2/4/8 threads with parallel efficiency per row
//!             (artifacts asserted byte-identical across thread counts);
//!             writes BENCH_sweep.json (schema v2)
//!   profile   span-based phase breakdown (fetch/execute/defense/settle/
//!             expiry/decode/resample) of one leakage cell and the
//!             576-scenario grid at 1 thread; writes PROFILE.json in the
//!             working directory
//!   audit     static secret-dependence audit: taint-analyze every attack
//!             and workload program, predict DataScale coverage per sink,
//!             and cross-validate against a compact measured leakage grid
//!             (zero static false negatives); writes AUDIT.json in the
//!             working directory.
//!             audit --list             list auditable programs
//!             audit --program <name>   analyze one program, no leakage run
//!   all       everything above except forensics (a deliberately slow
//!             trace-armed deep dive) and bench-sim, bench-sweep and
//!             profile (whose output is timing-dependent, not a paper
//!             artifact)
//! ```
//!
//! Every grid-shaped experiment is sharded across the sweep engine's
//! worker pool; the dedicated `sweep` binary in `prefender-sweep` adds
//! grid selection and JSON/CSV artifacts on top of the same engine.

use std::env;
use std::process::ExitCode;

use prefender_bench::{ablation, audit, figures, hwcost, leakage, security, tables};

/// What `repro audit [--list | --program <name>]` should do.
enum AuditMode {
    /// Full audit: every program plus the measured cross-validation.
    Full,
    /// Print the auditable program names and exit.
    List,
    /// Analyze one named program; skips the leakage run.
    One(String),
}

/// Parses the arguments after `audit`, validating program names at parse
/// time (same conventions as the sweep CLI: `Err` carries the message,
/// `"help"` prints usage).
fn parse_audit_args(args: &[String]) -> Result<AuditMode, String> {
    let mut mode = AuditMode::Full;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => mode = AuditMode::List,
            "--program" => {
                let name = it.next().ok_or("--program needs a value; try --list")?;
                if !audit::entry_names().iter().any(|(n, _)| n == name) {
                    return Err(format!("unknown program `{name}`; try --list"));
                }
                mode = AuditMode::One(name.clone());
            }
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown audit flag `{other}`; try --help")),
        }
    }
    Ok(mode)
}

fn run_audit(args: &[String]) -> Result<(), String> {
    let mode = match parse_audit_args(args) {
        Ok(m) => m,
        Err(e) if e == "help" => {
            println!("usage: repro audit [--list | --program <name>]");
            return Ok(());
        }
        Err(e) => return Err(e),
    };
    match mode {
        AuditMode::List => {
            for (i, (name, group)) in audit::entry_names().iter().enumerate() {
                println!("{i:>6}  {name:<24} {group}");
            }
        }
        AuditMode::One(name) => {
            let entry = audit::audit_one(&name).expect("validated at parse time");
            print!("{}", entry.report.render());
        }
        AuditMode::Full => {
            println!("=== Static audit: secret-dependence across every guest program ===\n");
            let report = audit::run();
            print!("{}", report.render());
            prefender_obs::write_atomic("AUDIT.json", report.to_json())
                .map_err(|e| format!("writing AUDIT.json: {e}"))?;
            println!("\nwrote AUDIT.json");
        }
    }
    Ok(())
}

fn run_one(name: &str) -> Result<(), String> {
    match name {
        "fig8" => {
            println!("=== Figure 8: security evaluation ===\n");
            for panel in security::figure8() {
                println!("{}", panel.render());
            }
        }
        "fig9" => {
            println!("=== Figure 9: prefetches over time ===\n");
            for panel in security::figure9(2_000) {
                println!("{}", panel.render());
            }
        }
        "fig10" => {
            println!("=== Figure 10: normalized total L1D miss latency ===\n");
            println!("{}", figures::figure10(None).render());
        }
        "fig11" => {
            println!("=== Figure 11: prefetch counts by unit (ST/AT/RP) ===\n");
            println!("{}", figures::figure11(None).render());
        }
        "fig12" => {
            println!("=== Figure 12: protected access buffers over execution ===\n");
            for s in figures::figure12(None, 32) {
                let peak = s.points().iter().map(|&(_, y)| y).fold(0.0, f64::max);
                println!("{:<18} peak {:>4}  {}", s.name(), peak, s.sparkline(48));
            }
        }
        "table4" => {
            println!("=== Table IV: SPEC 2006, without Record Protector ===\n");
            println!("{}", tables::table4().render());
        }
        "table5" => {
            println!("=== Table V: SPEC 2006, with Record Protector ===\n");
            println!("{}", tables::table5().render());
        }
        "table6" => {
            println!("=== Table VI: SPEC 2017 ===\n");
            println!("{}", tables::table6().render());
        }
        "hwcost" => {
            println!("=== Section V-E: hardware resource budget ===\n");
            println!("{}", hwcost::report());
        }
        "ablate-buffers" => {
            println!("=== Ablation: access-buffer count ===\n");
            println!("{}", ablation::ablate_buffers());
        }
        "ablate-threshold" => {
            println!("=== Ablation: DiffMin prefetch threshold ===\n");
            println!("{}", ablation::ablate_threshold());
        }
        "ablate-unprotect" => {
            println!("=== Ablation: RP unprotect threshold ===\n");
            println!("{}", ablation::ablate_unprotect());
        }
        "ablate-replacement" => {
            println!("=== Ablation: cache replacement policy ===\n");
            println!("{}", ablation::ablate_replacement());
        }
        "sweep" => {
            println!("=== Sweep: full attack x defense grid ===\n");
            let report = prefender_sweep::run_sweep(
                &prefender_sweep::SweepGrid::security_full(),
                &prefender_sweep::SweepOptions::default(),
            );
            println!("{}", report.render_table());
        }
        "leakage" => {
            println!("=== Leakage map: Figure 8 measured in bits (permutation-calibrated) ===\n");
            println!("{}", leakage::leakage_map().render());
        }
        "forensics" => {
            println!("=== Leakage forensics: which mechanism carries the secret ===\n");
            let run = prefender_bench::forensics::run();
            println!("{}", run.render());
            prefender_obs::write_atomic("forensics.json", run.to_json())
                .map_err(|e| format!("writing forensics.json: {e}"))?;
            println!("wrote forensics.json");
        }
        "bench-sweep" => {
            println!("=== Sweep-engine thread scaling: 576-scenario grid ===\n");
            let report = prefender_bench::sweepbench::run(&[1, 2, 4, 8]);
            print!("{}", report.render());
            prefender_obs::write_atomic("BENCH_sweep.json", report.to_json())
                .map_err(|e| format!("writing BENCH_sweep.json: {e}"))?;
            println!("\nwrote BENCH_sweep.json");
        }
        "profile" => {
            println!("=== Phase profile: spans over one leakage cell + the 576 grid ===\n");
            let report = prefender_bench::profile::run();
            print!("{}", report.render());
            prefender_obs::write_atomic("PROFILE.json", report.to_json())
                .map_err(|e| format!("writing PROFILE.json: {e}"))?;
            println!("wrote PROFILE.json");
        }
        "bench-sim" => {
            println!("=== Simulator throughput: hot path + fresh-vs-runner cells ===\n");
            let report = prefender_bench::simbench::run(200);
            print!("{}", report.render());
            prefender_obs::write_atomic("BENCH_sim.json", report.to_json())
                .map_err(|e| format!("writing BENCH_sim.json: {e}"))?;
            println!("\nwrote BENCH_sim.json");
        }
        "all" => {
            for e in [
                "fig8",
                "fig9",
                "fig10",
                "fig11",
                "fig12",
                "table4",
                "table5",
                "table6",
                "hwcost",
                "ablate-buffers",
                "ablate-threshold",
                "ablate-unprotect",
                "ablate-replacement",
                "sweep",
                "leakage",
            ] {
                run_one(e)?;
            }
        }
        other => return Err(format!("unknown experiment `{other}`")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: repro <fig8|fig9|fig10|fig11|fig12|table4|table5|table6|hwcost|ablate-*|sweep|leakage|forensics|audit|bench-sim|bench-sweep|profile|all> ..."
        );
        return ExitCode::FAILURE;
    }
    if args[0] == "audit" {
        return match run_audit(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("repro: {e}");
                ExitCode::FAILURE
            }
        };
    }
    for a in &args {
        if let Err(e) = run_one(a) {
            eprintln!("repro: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
