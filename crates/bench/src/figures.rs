//! Figures 10, 11 and 12: miss latency, prefetch counts, protected buffers.

use prefender_stats::{Series, Table};
use prefender_workloads::spec2006;

use prefender_sweep::perf::{run_perf, Basic, PerfColumn, PrefenderKind};

/// Figure 10 data: per-benchmark total L1D demand-miss latency, normalized
/// to the no-prefetcher baseline, for each configuration.
#[derive(Debug, Clone)]
pub struct Figure10 {
    /// Configuration labels, in column order.
    pub configs: Vec<String>,
    /// `(benchmark, normalized latency per config)`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Figure10 {
    /// The normalized miss latency of `benchmark` under `config`.
    pub fn value(&self, benchmark: &str, config: &str) -> Option<f64> {
        let c = self.configs.iter().position(|x| x == config)?;
        self.rows.iter().find(|(b, _)| b == benchmark)?.1.get(c).copied()
    }

    /// Column averages.
    pub fn averages(&self) -> Vec<f64> {
        let n = self.rows.len().max(1) as f64;
        (0..self.configs.len())
            .map(|c| self.rows.iter().map(|(_, v)| v[c]).sum::<f64>() / n)
            .collect()
    }

    /// Renders as a table (the paper plots these as bars).
    pub fn render(&self) -> String {
        let mut headers = vec!["Benchmark".to_string()];
        headers.extend(self.configs.clone());
        let mut t = Table::new(headers);
        for (name, vals) in &self.rows {
            let mut cells = vec![name.clone()];
            cells.extend(vals.iter().map(|v| format!("{v:.3}")));
            t.row(cells);
        }
        let mut avg = vec!["Avg.".to_string()];
        avg.extend(self.averages().iter().map(|v| format!("{v:.3}")));
        t.row(avg);
        t.render()
    }
}

fn fig10_columns() -> Vec<(String, PerfColumn)> {
    let st_at = |basic| PerfColumn { prefender: Some(PrefenderKind::StAt { buffers: 32 }), basic };
    let full = |basic| PerfColumn { prefender: Some(PrefenderKind::Full { buffers: 32 }), basic };
    vec![
        ("Prefender-ST+AT".into(), st_at(Basic::None)),
        ("Prefender".into(), full(Basic::None)),
        ("Tagged".into(), PerfColumn { prefender: None, basic: Basic::Tagged }),
        ("P-ST+AT(Tagged)".into(), st_at(Basic::Tagged)),
        ("Prefender(Tagged)".into(), full(Basic::Tagged)),
        ("Stride".into(), PerfColumn { prefender: None, basic: Basic::Stride }),
        ("P-ST+AT(Stride)".into(), st_at(Basic::Stride)),
        ("Prefender(Stride)".into(), full(Basic::Stride)),
    ]
}

/// Regenerates Figure 10 over the given benchmark names (default: all 12).
pub fn figure10(only: Option<&[&str]>) -> Figure10 {
    let cols = fig10_columns();
    let configs = cols.iter().map(|(n, _)| n.clone()).collect();
    let mut rows = Vec::new();
    for w in spec2006() {
        if let Some(filter) = only {
            if !filter.contains(&w.name()) {
                continue;
            }
        }
        let base = run_perf(&w, PerfColumn::BASELINE, None).l1d.demand_miss_latency.max(1) as f64;
        let vals = cols
            .iter()
            .map(|(_, c)| run_perf(&w, *c, None).l1d.demand_miss_latency as f64 / base)
            .collect();
        rows.push((w.name().to_string(), vals));
    }
    Figure10 { configs, rows }
}

/// Figure 11 data: prefetch counts by unit (ST/AT/RP) per benchmark, for
/// PREFENDER alone and over each basic prefetcher.
#[derive(Debug, Clone)]
pub struct Figure11 {
    /// `(benchmark, basic-prefetcher label, st, at, rp)` rows.
    pub rows: Vec<(String, String, u64, u64, u64)>,
}

impl Figure11 {
    /// The `(st, at, rp)` counts for a benchmark under a basic config.
    pub fn counts(&self, benchmark: &str, basic: &str) -> Option<(u64, u64, u64)> {
        self.rows
            .iter()
            .find(|(b, k, ..)| b == benchmark && k == basic)
            .map(|&(_, _, st, at, rp)| (st, at, rp))
    }

    /// Renders as a table (the paper plots log10 bars).
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Benchmark".into(),
            "Basic".into(),
            "ST".into(),
            "AT".into(),
            "RP".into(),
        ]);
        for (b, k, st, at, rp) in &self.rows {
            t.row(vec![b.clone(), k.clone(), st.to_string(), at.to_string(), rp.to_string()]);
        }
        t.render()
    }
}

/// Regenerates Figure 11 (full PREFENDER, 32 buffers, per basic config).
pub fn figure11(only: Option<&[&str]>) -> Figure11 {
    let mut rows = Vec::new();
    for w in spec2006() {
        if let Some(filter) = only {
            if !filter.contains(&w.name()) {
                continue;
            }
        }
        for basic in [Basic::None, Basic::Tagged, Basic::Stride] {
            let col = PerfColumn { prefender: Some(PrefenderKind::Full { buffers: 32 }), basic };
            let r = run_perf(&w, col, None);
            let s = r.prefender.expect("PREFENDER column");
            rows.push((
                w.name().to_string(),
                basic.to_string(),
                s.st_prefetches,
                s.at_prefetches,
                s.rp_prefetches,
            ));
        }
    }
    Figure11 { rows }
}

/// Regenerates Figure 12: the protected-access-buffer count sampled over
/// each benchmark's execution (full PREFENDER, 32 buffers, no basic —
/// the paper's Table V column 2 configuration).
pub fn figure12(only: Option<&[&str]>, buckets: usize) -> Vec<Series> {
    let mut out = Vec::new();
    for w in spec2006() {
        if let Some(filter) = only {
            if !filter.contains(&w.name()) {
                continue;
            }
        }
        let col =
            PerfColumn { prefender: Some(PrefenderKind::Full { buffers: 32 }), basic: Basic::None };
        // Pick the sample interval from a quick baseline cycle estimate so
        // every workload yields roughly `buckets` points.
        let cycles = run_perf(&w, PerfColumn::BASELINE, None).cycles;
        let every = (cycles / buckets.max(1) as u64).max(1_000);
        let r = run_perf(&w, col, Some(every));
        let mut s = Series::new(w.name());
        let total = r.cycles.max(1) as f64;
        for (at, protected) in r.protected_series {
            s.push(at as f64 / total * 100.0, protected as f64);
        }
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_column_count_matches_paper() {
        assert_eq!(fig10_columns().len(), 8);
    }

    #[test]
    fn fig10_slice_normalizes_to_baseline() {
        let f = figure10(Some(&["462.libquantum"]));
        assert_eq!(f.rows.len(), 1);
        let v = f.value("462.libquantum", "Tagged").unwrap();
        assert!(v < 1.0, "tagged must reduce streaming miss latency: {v}");
        assert!(f.render().contains("Avg."));
    }

    #[test]
    fn fig11_slice_counts_units() {
        let f = figure11(Some(&["483.xalancbmk"]));
        assert_eq!(f.rows.len(), 3, "one row per basic config");
        let (st, _at, _rp) = f.counts("483.xalancbmk", "-").unwrap();
        assert!(st > 0, "the gather phase must trigger the ST");
    }

    #[test]
    fn fig12_slice_produces_percent_axis() {
        let series = figure12(Some(&["999.specrand"]), 10);
        assert_eq!(series.len(), 1);
        let pts = series[0].points();
        assert!(!pts.is_empty());
        assert!(pts.iter().all(|&(x, _)| (0.0..=100.0).contains(&x)));
    }
}
