//! Criterion bench: one full attack round per (attack, defense) — the
//! kernel of the Figure 8 / Figure 9 harnesses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prefender_attacks::{run_attack, AttackKind, AttackSpec, DefenseConfig, NoiseSpec};

fn bench_attacks(c: &mut Criterion) {
    let mut g = c.benchmark_group("attack_round");
    g.sample_size(10);
    for kind in [AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe] {
        for defense in [DefenseConfig::None, DefenseConfig::Full] {
            let spec = AttackSpec::new(kind, defense).with_noise(NoiseSpec::C3C4);
            g.bench_with_input(
                BenchmarkId::new(kind.to_string(), defense.to_string()),
                &spec,
                |b, spec| b.iter(|| run_attack(spec).expect("attack run")),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
