//! Criterion bench: one workload run per prefetcher column — the kernel
//! of the Table IV/V/VI and Figure 10–12 harnesses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prefender_sweep::perf::{Basic, PerfColumn, PrefenderKind};
use prefender_workloads::spec2006;

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_run");
    g.sample_size(10);
    let columns = [
        ("baseline", PerfColumn::BASELINE),
        ("tagged", PerfColumn { prefender: None, basic: Basic::Tagged }),
        ("stride", PerfColumn { prefender: None, basic: Basic::Stride }),
        (
            "prefender",
            PerfColumn { prefender: Some(PrefenderKind::Full { buffers: 32 }), basic: Basic::None },
        ),
        (
            "prefender+stride",
            PerfColumn {
                prefender: Some(PrefenderKind::Full { buffers: 32 }),
                basic: Basic::Stride,
            },
        ),
    ];
    for name in ["462.libquantum", "429.mcf", "445.gobmk"] {
        let w = spec2006().into_iter().find(|w| w.name() == name).expect("catalog entry");
        for (label, col) in columns {
            g.bench_with_input(BenchmarkId::new(name, label), &(&w, col), |b, (w, col)| {
                b.iter(|| prefender_sweep::perf::run_perf(w, *col, None))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
