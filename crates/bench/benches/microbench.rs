//! Criterion microbenchmarks of the core data structures: cache access,
//! Scale Tracker retire stream, Access Tracker activation, Record
//! Protector record/hit.

use criterion::{criterion_group, criterion_main, Criterion};
use prefender_core::{AccessTracker, AtConfig, CalculationBuffer, RecordProtector, RpConfig};
use prefender_isa::Program;
use prefender_sim::{AccessKind, Addr, Cycle, HierarchyConfig, MemorySystem};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("memory_system_access_hit", |b| {
        let mut m = MemorySystem::new(HierarchyConfig::paper_baseline(1).unwrap());
        let a = Addr::new(0x4000);
        m.access(0, a, AccessKind::Read, Cycle::ZERO);
        let mut t = 1000u64;
        b.iter(|| {
            t += 1;
            m.access(0, a, AccessKind::Read, Cycle::new(t))
        });
    });
    c.bench_function("memory_system_access_streaming", |b| {
        let mut m = MemorySystem::new(HierarchyConfig::paper_baseline(1).unwrap());
        let mut t = 0u64;
        let mut addr = 0u64;
        b.iter(|| {
            t += 300;
            addr = (addr + 64) % (1 << 24);
            m.access(0, Addr::new(addr), AccessKind::Read, Cycle::new(t))
        });
    });
}

fn bench_scale_tracker(c: &mut Criterion) {
    let program = Program::parse(
        "
        ld r1, 0(r0)
        li r3, 0x200
        mul r4, r1, r3
        add r5, r2, r4
        sub r6, r5, 8
        shl r7, r1, 6
        ",
    )
    .unwrap();
    c.bench_function("calculation_buffer_retire_stream", |b| {
        let mut buf = CalculationBuffer::new();
        b.iter(|| {
            for i in program.instrs() {
                buf.apply(i);
            }
        });
    });
}

fn bench_access_tracker(c: &mut Criterion) {
    c.bench_function("access_tracker_on_load", |b| {
        let mut at = AccessTracker::new(AtConfig::paper());
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            at.on_load(
                0x8000 + (k % 40) * 8,
                Addr::new(0x10_0000 + (k % 61) * 0x200),
                Cycle::new(k),
                None,
                &|_| false,
            )
        });
    });
}

fn bench_record_protector(c: &mut Criterion) {
    c.bench_function("record_protector_record_and_hit", |b| {
        let mut rp = RecordProtector::new(RpConfig::paper());
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            rp.record(0x200 + (k % 7) * 0x40, 0x10_0000 + k * 0x200, Cycle::new(k));
            rp.hit(0x10_0000 + k * 0x200)
        });
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_scale_tracker,
    bench_access_tracker,
    bench_record_protector
);
criterion_main!(benches);
