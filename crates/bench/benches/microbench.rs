//! Criterion microbenchmarks of the simulation hot path and the core
//! data structures: the settled access fast path, an in-flight-heavy
//! prefetch storm, fresh-vs-runner leakage-cell trials, Scale Tracker
//! retire stream, Access Tracker activation, Record Protector record/hit.

use criterion::{criterion_group, criterion_main, Criterion};
use prefender_attacks::{run_attack_full, AttackKind, AttackSpec, DefenseConfig, Runner};
use prefender_core::{AccessTracker, AtConfig, CalculationBuffer, RecordProtector, RpConfig};
use prefender_isa::Program;
use prefender_sim::{AccessKind, Addr, Cycle, HierarchyConfig, MemorySystem, PrefetchSource};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("memory_system_access_hit", |b| {
        let mut m = MemorySystem::new(HierarchyConfig::paper_baseline(1).unwrap());
        let a = Addr::new(0x4000);
        m.access(0, a, AccessKind::Read, Cycle::ZERO);
        let mut t = 1000u64;
        b.iter(|| {
            t += 1;
            m.access(0, a, AccessKind::Read, Cycle::new(t))
        });
    });
    c.bench_function("memory_system_access_streaming", |b| {
        let mut m = MemorySystem::new(HierarchyConfig::paper_baseline(1).unwrap());
        let mut t = 0u64;
        let mut addr = 0u64;
        b.iter(|| {
            t += 300;
            addr = (addr + 64) % (1 << 24);
            m.access(0, Addr::new(addr), AccessKind::Read, Cycle::new(t))
        });
    });
    c.bench_function("memory_system_access_settled_pending", |b| {
        // The settled fast path with a *pending* (far-future) prefetch in
        // every completion queue: settle must early-exit on one peek.
        // Issued far enough out that it never completes during the run.
        let mut m = MemorySystem::new(HierarchyConfig::paper_baseline(1).unwrap());
        let a = Addr::new(0x4000);
        m.access(0, a, AccessKind::Read, Cycle::ZERO);
        m.prefetch(0, Addr::new(0x10_0000), PrefetchSource::Other, Cycle::new(1 << 40));
        let mut t = 1000u64;
        b.iter(|| {
            t += 1;
            m.access(0, a, AccessKind::Read, Cycle::new(t))
        });
    });
    c.bench_function("memory_system_prefetch_storm", |b| {
        // In-flight-heavy: a stream of prefetches expiring while demand
        // accesses interleave — the completion queues never go idle.
        let mut m = MemorySystem::new(HierarchyConfig::paper_baseline(1).unwrap());
        let mut now = 0u64;
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            m.prefetch(
                0,
                Addr::new(0x100_0000 + (k % 4096) * 64),
                PrefetchSource::Basic,
                Cycle::new(now),
            );
            let out = m.access(
                0,
                Addr::new(0x4000 + (k % 16) * 64),
                AccessKind::Read,
                Cycle::new(now + 2),
            );
            now += 7;
            out
        });
    });
}

fn bench_leakage_cell(c: &mut Criterion) {
    // One leakage-campaign trial (cross-core Flush+Reload cell), fresh
    // machine per trial versus one reused Runner — the BENCH_sim.json
    // headline, sampled at criterion granularity.
    let base = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None).cross_core(true);
    c.bench_function("leakage_cell_trial_fresh_machine", |b| {
        let mut trial = 0u64;
        b.iter(|| {
            trial += 1;
            run_attack_full(&base.clone().with_seed(trial)).unwrap()
        });
    });
    c.bench_function("leakage_cell_trial_reused_runner", |b| {
        let mut runner = Runner::new(&base).unwrap();
        let mut trial = 0u64;
        b.iter(|| {
            trial += 1;
            runner.run_full(&base.clone().with_seed(trial)).unwrap()
        });
    });
}

fn bench_scale_tracker(c: &mut Criterion) {
    let program = Program::parse(
        "
        ld r1, 0(r0)
        li r3, 0x200
        mul r4, r1, r3
        add r5, r2, r4
        sub r6, r5, 8
        shl r7, r1, 6
        ",
    )
    .unwrap();
    c.bench_function("calculation_buffer_retire_stream", |b| {
        let mut buf = CalculationBuffer::new();
        b.iter(|| {
            for i in program.instrs() {
                buf.apply(i);
            }
        });
    });
}

fn bench_access_tracker(c: &mut Criterion) {
    c.bench_function("access_tracker_on_load", |b| {
        let mut at = AccessTracker::new(AtConfig::paper());
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            at.on_load(
                0x8000 + (k % 40) * 8,
                Addr::new(0x10_0000 + (k % 61) * 0x200),
                Cycle::new(k),
                None,
                &|_| false,
            )
        });
    });
}

fn bench_record_protector(c: &mut Criterion) {
    c.bench_function("record_protector_record_and_hit", |b| {
        let mut rp = RecordProtector::new(RpConfig::paper());
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            rp.record(0x200 + (k % 7) * 0x40, 0x10_0000 + k * 0x200, Cycle::new(k));
            rp.hit(0x10_0000 + k * 0x200)
        });
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_leakage_cell,
    bench_scale_tracker,
    bench_access_tracker,
    bench_record_protector
);
criterion_main!(benches);
