//! Criterion microbenchmarks of the simulation hot path and the core
//! data structures: the settled access fast path, an in-flight-heavy
//! prefetch storm, fresh-vs-runner leakage-cell trials, Scale Tracker
//! retire stream, Access Tracker activation, Record Protector record/hit.

use criterion::{criterion_group, criterion_main, Criterion};
use prefender_attacks::{run_attack_full, AttackKind, AttackSpec, DefenseConfig, Runner};
use prefender_core::{AccessTracker, AtConfig, CalculationBuffer, RecordProtector, RpConfig};
use prefender_isa::Program;
use prefender_sim::{AccessKind, Addr, Cycle, HierarchyConfig, MemorySystem, PrefetchSource};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("memory_system_access_hit", |b| {
        let mut m = MemorySystem::new(HierarchyConfig::paper_baseline(1).unwrap());
        let a = Addr::new(0x4000);
        m.access(0, a, AccessKind::Read, Cycle::ZERO);
        let mut t = 1000u64;
        b.iter(|| {
            t += 1;
            m.access(0, a, AccessKind::Read, Cycle::new(t))
        });
    });
    c.bench_function("memory_system_access_streaming", |b| {
        let mut m = MemorySystem::new(HierarchyConfig::paper_baseline(1).unwrap());
        let mut t = 0u64;
        let mut addr = 0u64;
        b.iter(|| {
            t += 300;
            addr = (addr + 64) % (1 << 24);
            m.access(0, Addr::new(addr), AccessKind::Read, Cycle::new(t))
        });
    });
    c.bench_function("memory_system_access_settled_pending", |b| {
        // The settled fast path with a *pending* (far-future) prefetch in
        // every completion queue: settle must early-exit on one peek.
        // Issued far enough out that it never completes during the run.
        let mut m = MemorySystem::new(HierarchyConfig::paper_baseline(1).unwrap());
        let a = Addr::new(0x4000);
        m.access(0, a, AccessKind::Read, Cycle::ZERO);
        m.prefetch(0, Addr::new(0x10_0000), PrefetchSource::Other, Cycle::new(1 << 40));
        let mut t = 1000u64;
        b.iter(|| {
            t += 1;
            m.access(0, a, AccessKind::Read, Cycle::new(t))
        });
    });
    c.bench_function("memory_system_prefetch_storm", |b| {
        // In-flight-heavy: a stream of prefetches expiring while demand
        // accesses interleave — the completion queues never go idle.
        let mut m = MemorySystem::new(HierarchyConfig::paper_baseline(1).unwrap());
        let mut now = 0u64;
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            m.prefetch(
                0,
                Addr::new(0x100_0000 + (k % 4096) * 64),
                PrefetchSource::Basic,
                Cycle::new(now),
            );
            let out = m.access(
                0,
                Addr::new(0x4000 + (k % 16) * 64),
                AccessKind::Read,
                Cycle::new(now + 2),
            );
            now += 7;
            out
        });
    });
}

fn bench_leakage_cell(c: &mut Criterion) {
    // One leakage-campaign trial (cross-core Flush+Reload cell), fresh
    // machine per trial versus one reused Runner — the BENCH_sim.json
    // headline, sampled at criterion granularity.
    let base = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None).cross_core(true);
    c.bench_function("leakage_cell_trial_fresh_machine", |b| {
        let mut trial = 0u64;
        b.iter(|| {
            trial += 1;
            run_attack_full(&base.clone().with_seed(trial)).unwrap()
        });
    });
    c.bench_function("leakage_cell_trial_reused_runner", |b| {
        let mut runner = Runner::new(&base).unwrap();
        let mut trial = 0u64;
        b.iter(|| {
            trial += 1;
            runner.run_full(&base.clone().with_seed(trial)).unwrap()
        });
    });
}

fn bench_scale_tracker(c: &mut Criterion) {
    let program = Program::parse(
        "
        ld r1, 0(r0)
        li r3, 0x200
        mul r4, r1, r3
        add r5, r2, r4
        sub r6, r5, 8
        shl r7, r1, 6
        ",
    )
    .unwrap();
    c.bench_function("calculation_buffer_retire_stream", |b| {
        let mut buf = CalculationBuffer::new();
        b.iter(|| {
            for i in program.instrs() {
                buf.apply(i);
            }
        });
    });
}

fn bench_access_tracker(c: &mut Criterion) {
    c.bench_function("access_tracker_on_load", |b| {
        let mut at = AccessTracker::new(AtConfig::paper());
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            at.on_load(
                0x8000 + (k % 40) * 8,
                Addr::new(0x10_0000 + (k % 61) * 0x200),
                Cycle::new(k),
                None,
                &|_| false,
            )
        });
    });
}

fn bench_prefender_on_access(c: &mut Criterion) {
    use prefender_core::Prefender;
    use prefender_isa::{Program, Reg};
    use prefender_prefetch::{AccessEvent, PrefetchRequest, Prefetcher, RetireEvent};
    use prefender_sim::{AccessOutcome, Level};

    // The composed defense's per-load cost in isolation, per path, so a
    // defense-model regression is caught without running a leakage cell.
    fn load_event(pc: u64, addr: u64, l1_hit: bool) -> AccessEvent {
        AccessEvent {
            core: 0,
            pc,
            vaddr: Addr::new(addr),
            base: Some(Reg::R5),
            kind: AccessKind::Read,
            outcome: AccessOutcome {
                latency: if l1_hit { 4 } else { 200 },
                served_by: if l1_hit { Level::L1 } else { Level::Memory },
                first_prefetch_use: false,
                prefetch_source: None,
            },
            now: Cycle::ZERO,
        }
    }

    fn full() -> Prefender {
        Prefender::builder(64, 4096).access_buffers(32).build()
    }

    // Entry-update (hit) path: the same block re-touched — no insert, no
    // DiffMin work, no prefetch.
    c.bench_function("prefender_on_access_hit", |b| {
        let mut p = full();
        let mut out: Vec<PrefetchRequest> = Vec::new();
        let ev = load_event(0x8008, 0x10_0000, true);
        b.iter(|| {
            out.clear();
            p.on_access_into(&ev, &|_| false, &mut out);
        });
    });

    // Insert (miss) path: a fresh block every call — one incremental
    // DiffMin pass, an LRU entry eviction that keeps the minimum
    // (uniform stride), and a DiffMin prefetch decision.
    c.bench_function("prefender_on_access_miss_insert", |b| {
        let mut p = full();
        let mut out: Vec<PrefetchRequest> = Vec::new();
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            out.clear();
            p.on_access_into(
                &load_event(0x8008, 0x10_0000 + k * 0x200, false),
                &|_| false,
                &mut out,
            );
        });
    });

    // DiffMin-recompute path: quadratically spaced blocks make the two
    // oldest entries the unique minimum pair, so every LRU eviction
    // removes the last minimum pair and forces the full pairwise rescan.
    c.bench_function("prefender_on_access_diffmin_recompute", |b| {
        let mut p = full();
        let mut out: Vec<PrefetchRequest> = Vec::new();
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            out.clear();
            p.on_access_into(
                &load_event(0x8008, 0x10_0000 + k * k * 0x40, false),
                &|_| false,
                &mut out,
            );
        });
    });

    // Protected-buffer path: a victim's `mul`-derived scale records a
    // pattern; on-pattern probe accesses hit the scale buffer, protect
    // the buffer and take the RP-guided prefetch branch.
    c.bench_function("prefender_on_access_protected", |b| {
        let mut p = full();
        for i in Program::parse("ld r1, 0(r0)\nmul r5, r1, 0x200\n").unwrap().instrs() {
            p.on_retire(&RetireEvent { core: 0, pc: 0, instr: i, now: Cycle::ZERO });
        }
        // Record the (0x200, victim block) pattern once.
        let mut out: Vec<PrefetchRequest> = Vec::new();
        p.on_access_into(&load_event(0x8000, 0x10_0800, false), &|_| false, &mut out);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            out.clear();
            p.on_access_into(
                &load_event(0x9000, 0x10_0800 + (k % 61) * 0x200, false),
                &|_| false,
                &mut out,
            );
        });
    });
}

fn bench_record_protector(c: &mut Criterion) {
    c.bench_function("record_protector_record_and_hit", |b| {
        let mut rp = RecordProtector::new(RpConfig::paper());
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            rp.record(0x200 + (k % 7) * 0x40, 0x10_0000 + k * 0x200, Cycle::new(k));
            rp.hit(0x10_0000 + k * 0x200)
        });
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_leakage_cell,
    bench_scale_tracker,
    bench_access_tracker,
    bench_prefender_on_access,
    bench_record_protector
);
criterion_main!(benches);
