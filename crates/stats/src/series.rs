//! Named `(x, y)` sequences for figure regeneration.

use std::fmt;

/// A named data series — one curve of a paper figure.
///
/// # Examples
///
/// ```
/// use prefender_stats::Series;
///
/// let mut s = Series::new("Prefender-ST");
/// s.push(64.0, 4.0);
/// s.push(65.0, 4.0);
/// assert_eq!(s.len(), 2);
/// assert!(s.to_csv().contains("Prefender-ST"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty named series.
    pub fn new(name: &str) -> Self {
        Series { name: name.to_owned(), points: Vec::new() }
    }

    /// The series name (figure legend entry).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) -> &mut Self {
        self.points.push((x, y));
        self
    }

    /// The points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The y value at the first point whose x equals `x`.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|&(_, y)| y)
    }

    /// CSV rows `name,x,y`.
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        for (x, y) in &self.points {
            s.push_str(&format!("{},{x},{y}\n", self.name));
        }
        s
    }

    /// A crude fixed-width ASCII sparkline of the y values (harness
    /// output niceness; empty series render as an empty string).
    pub fn sparkline(&self, width: usize) -> String {
        if self.points.is_empty() || width == 0 {
            return String::new();
        }
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let ys: Vec<f64> = self.points.iter().map(|&(_, y)| y).collect();
        let (lo, hi) =
            ys.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &y| (l.min(y), h.max(y)));
        let span = if hi > lo { hi - lo } else { 1.0 };
        (0..width)
            .map(|i| {
                let idx = i * ys.len() / width;
                let level = ((ys[idx] - lo) / span * 7.0).round() as usize;
                LEVELS[level.min(7)]
            })
            .collect()
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} points)", self.name, self.points.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = Series::new("x");
        assert!(s.is_empty());
        s.push(1.0, 10.0).push(2.0, 20.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y_at(2.0), Some(20.0));
        assert_eq!(s.y_at(3.0), None);
    }

    #[test]
    fn csv_rows() {
        let mut s = Series::new("curve");
        s.push(1.0, 2.0);
        assert_eq!(s.to_csv(), "curve,1,2\n");
    }

    #[test]
    fn sparkline_shape() {
        let mut s = Series::new("ramp");
        for i in 0..16 {
            s.push(i as f64, i as f64);
        }
        let spark = s.sparkline(8);
        assert_eq!(spark.chars().count(), 8);
        let first = spark.chars().next().unwrap();
        let last = spark.chars().last().unwrap();
        assert!(first < last, "ramp should rise: {spark}");
    }

    #[test]
    fn sparkline_degenerate() {
        assert_eq!(Series::new("e").sparkline(5), "");
        let mut s = Series::new("flat");
        s.push(0.0, 3.0);
        assert_eq!(s.sparkline(0), "");
        assert_eq!(s.sparkline(3).chars().count(), 3);
    }

    #[test]
    fn display() {
        let s = Series::new("n");
        assert_eq!(s.to_string(), "n (0 points)");
    }
}
