//! Discrete-distribution primitives: symbol histograms and entropy.

use std::collections::BTreeMap;
use std::fmt;

/// Shannon entropy of a probability (or weight) sequence, in bits.
///
/// Non-positive entries are skipped, and the sequence is normalized by
/// its own sum — so raw counts work as well as probabilities. Zero for an
/// empty or all-zero sequence.
///
/// # Examples
///
/// ```
/// use prefender_stats::entropy_bits;
/// assert_eq!(entropy_bits([0.5, 0.5]), 1.0);
/// assert_eq!(entropy_bits([2.0, 2.0, 2.0, 2.0]), 2.0);
/// assert_eq!(entropy_bits([1.0, 0.0]), 0.0);
/// ```
pub fn entropy_bits(weights: impl IntoIterator<Item = f64>) -> f64 {
    let w: Vec<f64> = weights.into_iter().filter(|&p| p > 0.0).collect();
    let total: f64 = w.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let h: f64 = w
        .iter()
        .map(|&x| {
            let p = x / total;
            -p * p.log2()
        })
        .sum();
    h.max(0.0)
}

/// An exact count histogram over `u64` symbols, iterated in symbol order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from `(symbol, count)` pairs (duplicate symbols accumulate).
    pub fn from_counts(pairs: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mut h = Histogram::new();
        for (symbol, n) in pairs {
            h.record_n(symbol, n);
        }
        h
    }

    /// Counts one occurrence of `symbol`.
    pub fn record(&mut self, symbol: u64) {
        self.record_n(symbol, 1);
    }

    /// Counts `n` occurrences of `symbol`.
    pub fn record_n(&mut self, symbol: u64, n: u64) {
        if n > 0 {
            *self.counts.entry(symbol).or_insert(0) += n;
            self.total += n;
        }
    }

    /// Total recorded occurrences.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct symbols.
    pub fn n_symbols(&self) -> usize {
        self.counts.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The count of one symbol.
    pub fn count(&self, symbol: u64) -> u64 {
        self.counts.get(&symbol).copied().unwrap_or(0)
    }

    /// `(symbol, count)` pairs in ascending symbol order.
    pub fn counts(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&s, &c)| (s, c))
    }

    /// `(symbol, probability)` pairs in ascending symbol order.
    pub fn probabilities(&self) -> Vec<(u64, f64)> {
        self.counts.iter().map(|(&s, &c)| (s, c as f64 / self.total.max(1) as f64)).collect()
    }

    /// The most frequent symbol (smallest on ties), if any.
    pub fn mode(&self) -> Option<u64> {
        self.counts.iter().max_by_key(|&(&s, &c)| (c, std::cmp::Reverse(s))).map(|(&s, _)| s)
    }

    /// Shannon entropy of the empirical distribution, in bits.
    pub fn entropy_bits(&self) -> f64 {
        entropy_bits(self.counts.values().map(|&c| c as f64))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (s, c) in other.counts() {
            self.record_n(s, c);
        }
    }

    /// The `q`-quantile symbol (nearest-rank over the recorded counts):
    /// the smallest symbol whose cumulative count reaches `q · total`.
    /// `None` when empty; `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (s, c) in self.counts() {
            seen += c;
            if seen >= rank {
                return Some(s);
            }
        }
        self.counts.keys().next_back().copied()
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for s in iter {
            h.record(s);
        }
        h
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} symbols / {} counts, H={:.3} bits",
            self.n_symbols(),
            self.total,
            self.entropy_bits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_known_values() {
        assert_eq!(entropy_bits([]), 0.0);
        assert_eq!(entropy_bits([0.0, 0.0]), 0.0);
        assert_eq!(entropy_bits([1.0]), 0.0);
        assert_eq!(entropy_bits([0.5, 0.5]), 1.0);
        assert!((entropy_bits([1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]) - 3.0).abs() < 1e-12);
        // Negative weights are ignored, counts are self-normalizing.
        assert_eq!(entropy_bits([-3.0, 4.0, 4.0]), 1.0);
    }

    #[test]
    fn histogram_counting_and_entropy() {
        let mut h = Histogram::new();
        h.record(4);
        h.record_n(200, 3);
        h.record(4);
        assert_eq!(h.total(), 5);
        assert_eq!(h.n_symbols(), 2);
        assert_eq!(h.count(4), 2);
        assert_eq!(h.count(9), 0);
        assert_eq!(h.mode(), Some(200));
        let probs = h.probabilities();
        assert_eq!(probs, vec![(4, 0.4), (200, 0.6)]);
        let expected = entropy_bits([2.0, 3.0]);
        assert_eq!(h.entropy_bits(), expected);
    }

    #[test]
    fn histogram_degenerate_cases() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.entropy_bits(), 0.0);
        assert_eq!(h.mode(), None);
        assert!(h.probabilities().is_empty());
        let mut h = Histogram::new();
        h.record_n(7, 0);
        assert!(h.is_empty(), "zero-count record must not create a symbol");
        h.record_n(7, 10);
        assert_eq!(h.entropy_bits(), 0.0, "single symbol carries no entropy");
    }

    #[test]
    fn histogram_merge_and_from() {
        let a: Histogram = [1u64, 1, 2].into_iter().collect();
        let mut b = Histogram::from_counts([(2, 1), (3, 4)]);
        b.merge(&a);
        assert_eq!(b.count(1), 2);
        assert_eq!(b.count(2), 2);
        assert_eq!(b.count(3), 4);
        assert_eq!(b.total(), 8);
        assert_eq!(Histogram::from_counts([(5, 2), (5, 3)]).count(5), 5);
    }

    #[test]
    fn quantile_nearest_rank() {
        assert_eq!(Histogram::new().quantile(0.5), None);
        let h = Histogram::from_counts([(1, 1), (2, 1), (3, 1), (4, 1)]);
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.25), Some(1));
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(0.75), Some(3));
        assert_eq!(h.quantile(1.0), Some(4));
        // Out-of-range q clamps instead of panicking.
        assert_eq!(h.quantile(-1.0), Some(1));
        assert_eq!(h.quantile(2.0), Some(4));
        // A heavy symbol absorbs the middle quantiles.
        let h = Histogram::from_counts([(10, 98), (500, 2)]);
        assert_eq!(h.quantile(0.5), Some(10));
        assert_eq!(h.quantile(0.99), Some(500));
    }

    #[test]
    fn mode_prefers_smallest_on_ties() {
        let h = Histogram::from_counts([(9, 2), (3, 2), (5, 1)]);
        assert_eq!(h.mode(), Some(3));
    }

    #[test]
    fn display_mentions_entropy() {
        let h = Histogram::from_counts([(1, 1), (2, 1)]);
        assert!(h.to_string().contains("H=1.000 bits"));
    }
}
