//! Aligned plain-text tables.

use std::fmt;

/// A simple right-padded text table, rendered like the paper's tables.
///
/// # Examples
///
/// ```
/// use prefender_stats::Table;
///
/// let mut t = Table::new(vec!["Benchmark".into(), "Tagged".into()]);
/// t.row(vec!["401.bzip2".into(), "4.43%".into()]);
/// let s = t.render();
/// assert!(s.starts_with("Benchmark"));
/// assert!(s.contains("401.bzip2"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table { headers, rows: Vec::new() }
    }

    /// Appends a row. Shorter rows are padded with empty cells; longer
    /// rows extend the header row with empty headers.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with space-aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let n_cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; n_cols];
        let all = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |row: &[String]| -> String {
            let mut out = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let pad = width - cell.chars().count();
                out.push_str(cell);
                if i + 1 < n_cols {
                    out.extend(std::iter::repeat_n(' ', pad + 2));
                }
            }
            out.trim_end().to_string()
        };
        let mut s = fmt_row(&self.headers);
        s.push('\n');
        s.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n_cols.saturating_sub(1))));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&fmt_row(row));
            s.push('\n');
        }
        s
    }

    /// Renders as comma-separated values (headers first).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut s = String::new();
        s.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment() {
        let mut t = Table::new(vec!["A".into(), "Long header".into()]);
        t.row(vec!["wide cell value".into(), "x".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        // The second column starts at the same offset in every line.
        let header_pos = lines[0].find("Long header").unwrap();
        let cell_pos = lines[2].find('x').unwrap();
        assert_eq!(header_pos, cell_pos);
    }

    #[test]
    fn ragged_rows_tolerated() {
        let mut t = Table::new(vec!["A".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec![]);
        assert_eq!(t.n_rows(), 2);
        assert!(t.render().contains('3'));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["name".into(), "note".into()]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn display_matches_render() {
        let t = Table::new(vec!["H".into()]);
        assert_eq!(t.to_string(), t.render());
    }
}
