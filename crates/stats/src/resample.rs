//! Deterministic resampling primitives: the SplitMix64 generator, seed
//! derivation chains, Fisher–Yates shuffles, multinomial bootstrap draws
//! and the p-value/quantile helpers built on them.
//!
//! Everything here is a pure function of its seed: resampling a channel
//! estimate on one thread or sixteen, today or in CI, produces identical
//! bits. That determinism is what lets sweep artifacts carry permutation
//! p-values and bootstrap confidence intervals while staying
//! byte-identical at any thread count.

/// The SplitMix64 increment (the 64-bit golden ratio).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output mix: adds the golden-ratio increment and runs
/// the two xorshift-multiply finalizer rounds. A bijection on `u64`.
///
/// This is the single finalizer every seed-derivation chain in the
/// workspace composes; see [`derive_seed`].
pub fn mix64(z: u64) -> u64 {
    let mut z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from `root` and a sequence of axis coordinates
/// by chaining the SplitMix64 finalizer **per axis**: each part is
/// XOR-folded into the running state and immediately re-mixed.
///
/// Because [`mix64`] is a bijection, two derivations sharing a prefix
/// but differing in any later part cannot collide by construction —
/// unlike XOR-ing multiplied contributions into one pre-mix accumulator,
/// where distinct coordinate pairs can cancel to the same input of a
/// single finalize.
pub fn derive_seed(root: u64, parts: &[u64]) -> u64 {
    parts.iter().fold(mix64(root), |z, &p| mix64(z ^ p))
}

/// A SplitMix64 pseudo-random generator — tiny, seedable, and with a
/// fully specified output sequence, so resampled statistics reproduce
/// exactly everywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = mix64(self.state);
        self.state = self.state.wrapping_add(GOLDEN);
        out
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// An unbiased uniform draw in `[0, n)`, by rejection.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is an empty range");
        // Skip the first `2^64 mod n` values: the remaining consecutive
        // run has length divisible by n, so `% n` over it is exact.
        let skip = (u64::MAX % n + 1) % n;
        loop {
            let v = self.next_u64();
            if v >= skip {
                return v % n;
            }
        }
    }
}

/// In-place Fisher–Yates shuffle driven by a [`SplitMix64`].
pub fn shuffle<T>(rng: &mut SplitMix64, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        xs.swap(i, j);
    }
}

/// One multinomial bootstrap draw: `draws` samples distributed over the
/// cells of `weights` with probability proportional to each weight.
///
/// Returns the per-cell sample counts (summing to `draws`); all zeros
/// when the weights are empty or sum to zero.
pub fn multinomial(rng: &mut SplitMix64, weights: &[u64], draws: u64) -> Vec<u64> {
    let total: u64 = weights.iter().sum();
    let mut out = vec![0u64; weights.len()];
    if total == 0 {
        return out;
    }
    // Inclusive running sums; cell i covers [cum[i-1], cum[i]).
    let cum: Vec<u64> = weights
        .iter()
        .scan(0u64, |acc, &w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    for _ in 0..draws {
        let v = rng.below(total);
        let idx = cum.partition_point(|&c| c <= v);
        out[idx] += 1;
    }
    out
}

/// The `q`-quantile of an **ascending-sorted** sample, by linear
/// interpolation between order statistics. Zero for an empty sample;
/// `q` is clamped to `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// The one-sided permutation p-value of `observed` against `null`
/// samples: `(1 + #{null >= observed}) / (1 + |null|)`, the standard
/// add-one estimate that never reports exactly zero.
///
/// Null samples within `1e-9` of `observed` count as ≥, so a degenerate
/// statistic (observed 0, all nulls 0) reports `p = 1` rather than
/// whatever floating-point noise dictates. `1.0` for an empty null.
pub fn p_value_ge(null: &[f64], observed: f64) -> f64 {
    if null.is_empty() {
        return 1.0;
    }
    let ge = null.iter().filter(|&&x| x >= observed - 1e-9).count();
    (1 + ge) as f64 / (1 + null.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), mix64(1));
        // Single-bit inputs land far apart (sanity, not avalanche proof).
        let outs: Vec<u64> = (0..64).map(|b| mix64(1u64 << b)).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 64);
    }

    #[test]
    fn derive_seed_chains_per_axis() {
        assert_eq!(derive_seed(7, &[1, 2]), derive_seed(7, &[1, 2]));
        assert_ne!(derive_seed(7, &[1, 2]), derive_seed(7, &[2, 1]), "axis order matters");
        assert_ne!(derive_seed(7, &[1, 2]), derive_seed(8, &[1, 2]), "root matters");
        assert_ne!(derive_seed(7, &[]), derive_seed(8, &[]));
        // Fixed prefix: the last axis is injective (mix64 is a bijection).
        let mut seen: Vec<u64> = (0..4096).map(|t| derive_seed(7, &[3, t])).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4096);
    }

    #[test]
    fn splitmix_sequence_is_reproducible() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], xs[1]);
        let f = SplitMix64::new(9).next_f64();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SplitMix64::new(1);
        let mut seen = [false; 7];
        for _ in 0..200 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 draws must cover 0..7");
        assert_eq!(SplitMix64::new(3).below(1), 0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut xs: Vec<u32> = (0..20).collect();
        shuffle(&mut SplitMix64::new(5), &mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>(), "shuffle must be a permutation");
        assert_ne!(xs, (0..20).collect::<Vec<_>>(), "seed 5 must actually move something");
        let mut again: Vec<u32> = (0..20).collect();
        shuffle(&mut SplitMix64::new(5), &mut again);
        assert_eq!(xs, again, "same seed, same permutation");
    }

    #[test]
    fn multinomial_conserves_mass_and_respects_zeros() {
        let mut rng = SplitMix64::new(11);
        let draws = multinomial(&mut rng, &[3, 0, 5, 2], 1000);
        assert_eq!(draws.len(), 4);
        assert_eq!(draws.iter().sum::<u64>(), 1000);
        assert_eq!(draws[1], 0, "zero-weight cells draw nothing");
        assert!(draws[2] > draws[3], "heavier cells draw more at n=1000");
        assert_eq!(multinomial(&mut rng, &[0, 0], 10), vec![0, 0]);
        assert_eq!(multinomial(&mut rng, &[], 10), Vec::<u64>::new());
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert_eq!(quantile(&xs, 2.0), 4.0, "q clamps to [0,1]");
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[7.0], 0.25), 7.0);
    }

    #[test]
    fn p_value_counts_with_add_one() {
        assert_eq!(p_value_ge(&[], 1.0), 1.0);
        assert_eq!(p_value_ge(&[0.0; 99], 0.0), 1.0, "ties count as >=");
        assert_eq!(p_value_ge(&[0.0; 99], 1.0), 0.01);
        let null = [0.1, 0.2, 0.3];
        assert_eq!(p_value_ge(&null, 0.25), 0.5);
        assert!(p_value_ge(&null, -1.0) == 1.0);
    }
}
