//! # prefender-stats — summaries, series and table rendering
//!
//! Small, dependency-free helpers the experiment harnesses share:
//!
//! * [`Summary`] — count/mean/min/max/stddev of a sample set;
//! * [`geo_mean`] / [`speedup_pct`] — the paper's headline metrics;
//! * [`Histogram`] / [`entropy_bits`] — exact symbol counts and Shannon
//!   entropy, the substrate of the leakage lab's channel estimates;
//! * [`SplitMix64`] / [`derive_seed`] / [`shuffle`] / [`multinomial`] /
//!   [`quantile`] / [`p_value_ge`] — deterministic resampling: seeded
//!   permutation nulls and bootstrap draws for the statistical-rigor
//!   layer of the leakage lab;
//! * [`Table`] — aligned plain-text tables matching the paper's layout;
//! * [`Series`] — named `(x, y)` sequences with CSV export, for figures.
//!
//! ```
//! use prefender_stats::{Table, speedup_pct};
//!
//! let mut t = Table::new(vec!["Benchmark".into(), "Speedup".into()]);
//! t.row(vec!["429.mcf".into(), format!("{:+.3}%", speedup_pct(1000.0, 920.0))]);
//! assert!(t.render().contains("+8.000%"));
//! ```

mod dist;
mod resample;
mod series;
mod summary;
mod table;

pub use dist::{entropy_bits, Histogram};
pub use resample::{derive_seed, mix64, multinomial, p_value_ge, quantile, shuffle, SplitMix64};
pub use series::Series;
pub use summary::{geo_mean, speedup_pct, Summary};
pub use table::Table;
