//! Scalar sample summaries.

use std::fmt;

/// Percentage speedup of `new` over `base`, from cycle counts
/// (positive = faster, the paper's Tables IV–VI convention).
///
/// # Examples
///
/// ```
/// use prefender_stats::speedup_pct;
/// assert_eq!(speedup_pct(1000.0, 900.0), 10.0);
/// assert_eq!(speedup_pct(1000.0, 1100.0), -10.0);
/// ```
pub fn speedup_pct(base_cycles: f64, new_cycles: f64) -> f64 {
    if base_cycles == 0.0 {
        return 0.0;
    }
    (base_cycles - new_cycles) / base_cycles * 100.0
}

/// Geometric mean of positive values; `None` for an empty slice or any
/// non-positive member.
pub fn geo_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Count, mean, min, max and (population) standard deviation of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean (0 for empty input).
    pub mean: f64,
    /// Minimum (0 for empty input).
    pub min: f64,
    /// Maximum (0 for empty input).
    pub max: f64,
    /// Population standard deviation (0 for empty input).
    pub stddev: f64,
}

impl Summary {
    /// Summarizes an iterator of samples.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let v: Vec<f64> = values.into_iter().collect();
        if v.is_empty() {
            return Summary { n: 0, mean: 0.0, min: 0.0, max: 0.0, stddev: 0.0 };
        }
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let min = v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary { n, mean, min, max, stddev: var.sqrt() }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} min={:.3} max={:.3} sd={:.3}",
            self.n, self.mean, self.min, self.max, self.stddev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_signs() {
        assert_eq!(speedup_pct(100.0, 50.0), 50.0);
        assert_eq!(speedup_pct(100.0, 100.0), 0.0);
        assert!(speedup_pct(100.0, 120.0) < 0.0);
        assert_eq!(speedup_pct(0.0, 10.0), 0.0, "degenerate base");
    }

    #[test]
    fn geo_mean_basics() {
        assert_eq!(geo_mean(&[4.0, 1.0]), Some(2.0));
        assert_eq!(geo_mean(&[]), None);
        assert_eq!(geo_mean(&[1.0, 0.0]), None);
        assert_eq!(geo_mean(&[2.0, -1.0]), None);
        let g = geo_mean(&[8.0]).unwrap();
        assert!((g - 8.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_known_set() {
        let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of([]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(Summary::of([1.0]).to_string().contains("n=1"));
    }
}
