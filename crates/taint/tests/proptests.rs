//! Property tests for the taint analyzer.
//!
//! Three properties pin the analyzer's contract:
//!
//! 1. **Dynamic soundness** (the important one): on random straight-line
//!    programs whose memory addressing is either constant or explicitly
//!    derived from loaded values, any address the machine *actually*
//!    touches differently under two secrets must sit at a statically
//!    flagged load/store sink. The generator keeps the programs inside
//!    the analyzer's documented soundness scope — explicit flows only, no
//!    `rdtsc` — so a miss here is a real analyzer bug, not a scope gap.
//! 2. **Nop-padding invariance**: inserting `nop`s anywhere preserves the
//!    flagged sink set (modulo index remapping).
//! 3. **Block-reorder invariance**: emitting the same chain of basic
//!    blocks in a different physical order (with label-based `jmp`s
//!    preserving the logical chain) preserves the sink set per block.

use proptest::prelude::*;

use prefender_cpu::Machine;
use prefender_isa::{Instr, Operand, Program, ProgramBuilder, Reg};
use prefender_sim::HierarchyConfig;
use prefender_taint::{analyze, SinkKind, TaintSpec};

/// Where the secret lives (one 8-byte cell, same as the attack layout).
const SECRET: i64 = 0x0002_0100;
/// A data window far from the secret; masked addressing stays inside
/// `[DATA_BASE, DATA_BASE + 0x800)`, which never overlaps the secret.
const DATA_BASE: i64 = 0x40_0000;
/// Mask keeping window offsets 8-aligned and inside the window.
const MASK: i64 = 0x7f8;

/// Scratch registers reserved for the generator's address computations.
const T1: Reg = Reg::R11;
const T2: Reg = Reg::R12;

fn pool() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(|n| Reg::new(n).expect("in range"))
}

/// One generator step: a short instruction fragment. Every memory address
/// is a compile-time constant, the secret cell, or `DATA_BASE + (v & MASK)`
/// for a register `v` — so dynamically secret-varying addresses always
/// arise from explicitly tainted dataflow.
fn arb_fragment() -> impl Strategy<Value = Vec<Instr>> {
    let alu =
        (0u8..8, pool(), (pool(), pool()), -256i64..256).prop_map(|(op, rd, (a, breg), imm)| {
            // Even ops take a register operand, odd ops an immediate.
            let b = if op % 2 == 0 { Operand::Reg(breg) } else { Operand::Imm(imm) };
            vec![match op / 2 {
                0 => Instr::Add { rd, a, b },
                1 => Instr::Sub { rd, a, b },
                2 => Instr::Mul { rd, a, b },
                _ => Instr::Xor { rd, a, b },
            }]
        });
    let window_addr = |src: Reg| {
        vec![
            Instr::And { rd: T1, a: src, b: Operand::Imm(MASK) },
            Instr::LoadImm { rd: T2, imm: DATA_BASE },
            Instr::Add { rd: T1, a: T1, b: Operand::Reg(T2) },
        ]
    };
    prop_oneof![
        // Constants and register shuffling.
        (pool(), -0x1000i64..0x1000).prop_map(|(rd, imm)| vec![Instr::LoadImm { rd, imm }]),
        alu,
        (pool(), pool()).prop_map(|(rd, rs)| vec![Instr::Mov { rd, rs }]),
        // Read the secret cell: the taint source.
        pool().prop_map(|rd| vec![
            Instr::LoadImm { rd: T1, imm: SECRET },
            Instr::Load { rd, base: T1, offset: 0 },
        ]),
        // Data-dependent window access: `mem[DATA_BASE + (src & MASK)]`.
        (pool(), pool()).prop_map(move |(rd, src)| {
            let mut v = window_addr(src);
            v.push(Instr::Load { rd, base: T1, offset: 0 });
            v
        }),
        (pool(), pool()).prop_map(move |(val, src)| {
            let mut v = window_addr(src);
            v.push(Instr::Store { src: val, base: T1, offset: 0 });
            v
        }),
        // Constant window access: `mem[DATA_BASE + 8k]`.
        (pool(), 0i64..256).prop_map(|(rd, k)| vec![
            Instr::LoadImm { rd: T1, imm: DATA_BASE + 8 * k },
            Instr::Load { rd, base: T1, offset: 0 },
        ]),
        (pool(), 0i64..256).prop_map(|(src, k)| vec![
            Instr::LoadImm { rd: T1, imm: DATA_BASE + 8 * k },
            Instr::Store { src, base: T1, offset: 0 },
        ]),
    ]
}

fn straight_line(fragments: Vec<Vec<Instr>>) -> Program {
    let mut instrs: Vec<Instr> = fragments.into_iter().flatten().collect();
    instrs.push(Instr::Halt);
    Program::from_instrs(instrs).expect("no branches, always valid")
}

/// Runs `p` with `secret` in the secret cell; returns the data-access
/// trace as `(pc, addr)` pairs.
fn run_trace(p: &Program, secret: u64) -> Vec<(u64, u64)> {
    let mut m = Machine::new(HierarchyConfig::paper_baseline(1).expect("valid"));
    m.write_data(SECRET as u64, secret);
    m.trace_mut().set_enabled(true);
    m.load_program(0, p.clone());
    let s = m.run();
    assert!(!s.truncated, "straight-line program must halt");
    m.trace().entries().iter().map(|e| (e.pc, e.addr.raw())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness oracle: every dynamically secret-varying access is a
    /// statically flagged load/store sink.
    #[test]
    fn secret_varying_accesses_are_flagged(
        fragments in prop::collection::vec(arb_fragment(), 1..32),
        secret in 0u64..0x1_0000,
    ) {
        let p = straight_line(fragments);
        let ta = run_trace(&p, secret);
        let tb = run_trace(&p, secret ^ 0x7f8); // differs under the mask
        prop_assert_eq!(ta.len(), tb.len(), "straight-line runs same ops");

        let report = analyze(&p, &TaintSpec::secret_cell(SECRET as u64));
        let flagged: Vec<usize> = report
            .sinks
            .iter()
            .filter(|s| matches!(s.kind, SinkKind::LoadAddr | SinkKind::StoreAddr))
            .map(|s| s.index)
            .collect();
        for (a, b) in ta.iter().zip(&tb) {
            prop_assert_eq!(a.0, b.0, "straight-line runs visit the same pcs");
            if a.1 != b.1 {
                let idx = ((a.0 - p.base_pc()) / 4) as usize;
                prop_assert!(
                    flagged.contains(&idx),
                    "pc {:#x} (index {}) touches {:#x} vs {:#x} under different \
                     secrets but is not a flagged sink; flagged = {:?}\n{}",
                    a.0, idx, a.1, b.1, flagged, p
                );
            }
        }
    }

    /// Nop padding never changes the sink set (modulo index remapping).
    #[test]
    fn nop_padding_preserves_sinks(
        fragments in prop::collection::vec(arb_fragment(), 1..24),
        pad in prop::collection::vec(0usize..3, 0..96),
    ) {
        let p = straight_line(fragments);
        // Insert pad[i] nops before instruction i; record the new index
        // of every original instruction.
        let mut padded = Vec::new();
        let mut remap = Vec::with_capacity(p.len());
        for (i, instr) in p.instrs().iter().enumerate() {
            for _ in 0..pad.get(i).copied().unwrap_or(0) {
                padded.push(Instr::Nop);
            }
            remap.push(padded.len());
            padded.push(*instr);
        }
        let q = Program::from_instrs(padded).expect("still branch-free");

        let key = |s: &prefender_taint::Sink| (s.index, s.kind, s.scale, s.covered);
        let orig: Vec<_> = analyze(&p, &TaintSpec::secret_cell(SECRET as u64))
            .sinks
            .iter()
            .map(|s| { let mut k = key(s); k.0 = remap[k.0]; k })
            .collect();
        let new: Vec<_> =
            analyze(&q, &TaintSpec::secret_cell(SECRET as u64)).sinks.iter().map(key).collect();
        prop_assert_eq!(orig, new);
    }

    /// Emitting the logical block chain in a different physical order
    /// (header `jmp` + label-linked blocks) preserves each block's sinks.
    #[test]
    fn block_reorder_preserves_sinks(
        bodies in prop::collection::vec(prop::collection::vec(arb_fragment(), 1..6), 2..5),
        rot in 1usize..4,
    ) {
        let bodies: Vec<Vec<Instr>> = bodies
            .into_iter()
            .map(|frags| frags.into_iter().flatten().collect())
            .collect();
        let n = bodies.len();

        // Emits the logical chain 0 -> 1 -> ... -> n-1 -> halt with the
        // blocks laid out in `order`; returns the program plus each
        // block's start index.
        let build = |order: &[usize]| -> (Program, Vec<usize>) {
            let mut b = ProgramBuilder::new();
            let labels: Vec<_> = (0..=n).map(|_| b.new_label()).collect();
            b.jmp(labels[0]);
            let mut starts = vec![0usize; n];
            for &id in order {
                b.bind(labels[id]);
                starts[id] = b.here();
                b.extend_raw(&bodies[id]);
                b.jmp(labels[id + 1]);
            }
            b.bind(labels[n]);
            b.halt();
            (b.build().expect("all labels bound"), starts)
        };

        // Map a sink to its logical position: (block, offset-in-block).
        let localize = |p: &Program, starts: &[usize]| -> Vec<(usize, usize, SinkKind, Option<i64>, bool)> {
            let mut v: Vec<_> = analyze(p, &TaintSpec::secret_cell(SECRET as u64))
                .sinks
                .iter()
                .map(|s| {
                    let block = (0..starts.len())
                        .filter(|&i| starts[i] <= s.index)
                        .min_by_key(|&i| s.index - starts[i])
                        .expect("sink inside some block");
                    (block, s.index - starts[block], s.kind, s.scale, s.covered)
                })
                .collect();
            v.sort();
            v
        };

        let natural: Vec<usize> = (0..n).collect();
        let rotated: Vec<usize> = (0..n).map(|i| (i + rot) % n).collect();
        let (pa, sa) = build(&natural);
        let (pb, sb) = build(&rotated);
        prop_assert_eq!(localize(&pa, &sa), localize(&pb, &sb));
    }
}
