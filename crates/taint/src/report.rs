//! Per-program analysis reports.

use std::fmt::Write as _;

/// What kind of secret-dependent use a sink is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkKind {
    /// A load whose address derives from the secret — the cache channel
    /// access-based attacks observe.
    LoadAddr,
    /// A store whose address derives from the secret.
    StoreAddr,
    /// A conditional branch on a secret-derived value.
    Branch,
    /// A `flush` whose target derives from the secret.
    FlushTarget,
}

impl SinkKind {
    /// Stable artifact tag.
    pub fn tag(self) -> &'static str {
        match self {
            SinkKind::LoadAddr => "load-addr",
            SinkKind::StoreAddr => "store-addr",
            SinkKind::Branch => "branch",
            SinkKind::FlushTarget => "flush",
        }
    }
}

/// One flagged secret-dependent instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sink {
    /// Instruction index in the program.
    pub index: usize,
    /// The instruction's PC (`base_pc + 4 * index`).
    pub pc: u64,
    /// Sink class.
    pub kind: SinkKind,
    /// The Scale Tracker mirror's `sc` for the address base register at
    /// this point — `None` when no single stride survives every path.
    pub scale: Option<i64>,
    /// `true` when PREFENDER's DataScale is predicted to cover the sink
    /// with pretending prefetches (`line < sc < page` on every path;
    /// load/store sinks only — no prefetch hides a branch or a flush).
    pub covered: bool,
    /// Disassembly of the flagged instruction.
    pub disasm: String,
}

/// The analysis result for one program: every flagged sink, with the
/// DataScale coverage prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintReport {
    /// The analyzed program's name.
    pub name: String,
    /// Number of instructions analyzed.
    pub n_instrs: usize,
    /// Flagged sinks, ordered by instruction index.
    pub sinks: Vec<Sink>,
}

impl TaintReport {
    /// Total flagged sinks.
    pub fn flagged(&self) -> usize {
        self.sinks.len()
    }

    /// Flagged sinks of one class.
    pub fn count(&self, kind: SinkKind) -> usize {
        self.sinks.iter().filter(|s| s.kind == kind).count()
    }

    /// Sinks DataScale is predicted to cover.
    pub fn covered(&self) -> usize {
        self.sinks.iter().filter(|s| s.covered).count()
    }

    /// Flagged sinks the defense is *not* predicted to cover.
    pub fn residual(&self) -> usize {
        self.flagged() - self.covered()
    }

    /// Human-readable sink listing (the `repro audit --program` detail).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} instrs, {} flagged ({} covered, {} residual)",
            self.name,
            self.n_instrs,
            self.flagged(),
            self.covered(),
            self.residual(),
        );
        for s in &self.sinks {
            let scale = match s.scale {
                Some(sc) => format!("{sc:#x}"),
                None => "-".into(),
            };
            let _ = writeln!(
                out,
                "  [{:>4}] {:#08x}  {:<10} scale {:<8} {:<10} {}",
                s.index,
                s.pc,
                s.kind.tag(),
                scale,
                if s.covered { "covered" } else { "residual" },
                s.disasm,
            );
        }
        out
    }
}
