//! Control-flow graph construction.
//!
//! Branch targets in the ISA are resolved instruction indices (validated
//! by [`Program::from_instrs`](prefender_isa::Program::from_instrs)), so
//! block discovery needs no symbol resolution: leaders are the entry,
//! every branch target, and every instruction following a branch or
//! `halt`. Successors fall out of each block's terminator.

use std::collections::BTreeSet;

use prefender_isa::{Instr, Program};

/// A maximal straight-line run of instructions `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the block's first instruction.
    pub start: usize,
    /// One past the block's last instruction.
    pub end: usize,
    /// Successor block indices (taken target first for branches).
    pub succs: Vec<usize>,
}

/// The control-flow graph of one program. Blocks are ordered by `start`;
/// block 0 (when present) is the entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
}

impl Cfg {
    /// Builds the CFG of `p`.
    pub fn build(p: &Program) -> Cfg {
        let instrs = p.instrs();
        let n = instrs.len();
        if n == 0 {
            return Cfg { blocks: Vec::new() };
        }

        let mut leaders: BTreeSet<usize> = BTreeSet::new();
        leaders.insert(0);
        for (i, instr) in instrs.iter().enumerate() {
            if let Some(t) = instr.branch_target() {
                leaders.insert(t);
            }
            let splits_after = instr.is_branch() || matches!(instr, Instr::Halt);
            if splits_after && i + 1 < n {
                leaders.insert(i + 1);
            }
        }

        let starts: Vec<usize> = leaders.into_iter().collect();
        let block_at = |idx: usize| -> usize { starts.partition_point(|&s| s <= idx) - 1 };

        let mut blocks = Vec::with_capacity(starts.len());
        for (b, &start) in starts.iter().enumerate() {
            let end = starts.get(b + 1).copied().unwrap_or(n);
            let mut succs = Vec::new();
            match &instrs[end - 1] {
                Instr::Jmp { target } => succs.push(block_at(*target)),
                Instr::Bnz { target, .. }
                | Instr::Beq { target, .. }
                | Instr::Blt { target, .. } => {
                    succs.push(block_at(*target));
                    if end < n {
                        let fall = block_at(end);
                        if !succs.contains(&fall) {
                            succs.push(fall);
                        }
                    }
                }
                Instr::Halt => {}
                _ => {
                    if end < n {
                        succs.push(block_at(end));
                    }
                }
            }
            blocks.push(BasicBlock { start, end, succs });
        }
        Cfg { blocks }
    }

    /// All blocks, ordered by start index.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block containing instruction `idx`.
    pub fn block_of(&self, idx: usize) -> usize {
        self.blocks.partition_point(|b| b.start <= idx) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_is_one_block() {
        let p = Program::parse("li r1, 1\nadd r2, r1, 1\nhalt\n").unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0], BasicBlock { start: 0, end: 3, succs: vec![] });
    }

    #[test]
    fn loop_splits_blocks_and_back_edge() {
        // 0: li r1, 4        block 0
        // 1: sub r1, r1, 1   block 1 (branch target)
        // 2: bnz r1, @1
        // 3: halt            block 2
        let p = Program::parse("li r1, 4\nL0:\nsub r1, r1, 1\nbnz r1, L0\nhalt\n").unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.blocks()[0].succs, vec![1]);
        assert_eq!(cfg.blocks()[1].succs, vec![1, 2]);
        assert_eq!(cfg.blocks()[2].succs, Vec::<usize>::new());
        assert_eq!(cfg.block_of(0), 0);
        assert_eq!(cfg.block_of(2), 1);
        assert_eq!(cfg.block_of(3), 2);
    }

    #[test]
    fn jmp_has_single_successor() {
        let p = Program::parse("jmp L1\nL0:\nhalt\nL1:\nnop\njmp L0\n").unwrap();
        let cfg = Cfg::build(&p);
        // Blocks: [jmp], [halt], [nop; jmp].
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.blocks()[0].succs, vec![2]);
        assert_eq!(cfg.blocks()[1].succs, Vec::<usize>::new());
        assert_eq!(cfg.blocks()[2].succs, vec![1]);
    }
}
